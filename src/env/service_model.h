// End-to-end service-time models (Sec. VI-B).
//
// A task's service time is the serial pipeline of radio upload, transport
// transfer, and GPU inference, each determined by the fraction of that
// domain's resource the slice holds. Two models are provided:
//
//  * DirectServiceModel — computes the pipeline analytically from the RA's
//    substrate capacities (used as ground truth, and to generate data);
//  * LocalLinearServiceModel — the paper's approach: a grid-search dataset
//    at 10% action granularity plus a local linear regression fitted on
//    the adjacent grid actions of a queried orchestration action.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compute/computing_manager.h"
#include "env/app_model.h"
#include "opt/linreg.h"
#include "radio/radio_manager.h"
#include "transport/transport_manager.h"

namespace edgeslice::env {

/// Number of resource domains: radio, transport, computing.
inline constexpr std::size_t kResources = 3;
enum ResourceKind : std::size_t { kRadio = 0, kTransport = 1, kCompute = 2 };

/// Per-resource allocation fractions for one slice.
using Allocation = std::array<double, kResources>;

/// Full-allocation capacities of one RA's substrates.
struct RaCapacity {
  double radio_bits_per_second = 0.0;
  double transport_bits_per_second = 0.0;
  double compute_work_per_second = 0.0;
};

/// Capacities matching the prototype (Table II): 5 MHz LTE carrier at a
/// mid-range CQI, an 80 Mbps transport link, and a 51200-thread GPU.
RaCapacity prototype_capacity();

/// Derive the capacity by driving the actual resource managers at 100%
/// allocation — keeps the environment's ground truth tied to the substrate
/// implementations rather than to constants.
RaCapacity measure_capacity(radio::RadioManager& radio,
                            transport::TransportManager& transport,
                            compute::ComputingManager& computing);

/// Service times above this cap are reported as the cap (a slice holding
/// no resources cannot serve; the cap keeps regressions finite).
inline constexpr double kServiceTimeCap = 1e4;

class ServiceModel {
 public:
  virtual ~ServiceModel() = default;
  /// Seconds to serve one task of `profile` under `allocation`.
  virtual double service_time(const AppProfile& profile,
                              const Allocation& allocation) const = 0;
};

class DirectServiceModel final : public ServiceModel {
 public:
  explicit DirectServiceModel(const RaCapacity& capacity);
  double service_time(const AppProfile& profile,
                      const Allocation& allocation) const override;

 private:
  RaCapacity capacity_;
};

/// One measured grid point.
struct GridSample {
  Allocation allocation;
  double service_time = 0.0;
};

/// The grid-search dataset for one application profile: all allocations at
/// the configured granularity, measured through a ground-truth model.
class GridDataset {
 public:
  GridDataset(const AppProfile& profile, const ServiceModel& ground_truth,
              double granularity = 0.1);

  const std::vector<GridSample>& samples() const { return samples_; }
  double granularity() const { return granularity_; }
  std::size_t points_per_axis() const { return points_per_axis_; }
  const AppProfile& profile() const { return profile_; }

  /// The grid actions adjacent to `allocation`: the corners of the grid
  /// cell containing it (up to 8 points), e.g. [12,38,22]% ->
  /// {[10,30,20], [10,40,20], ...}%.
  std::vector<GridSample> adjacent(const Allocation& allocation) const;

 private:
  AppProfile profile_;
  double granularity_;
  std::size_t points_per_axis_;
  std::vector<GridSample> samples_;
};

/// Sec. VI-B: fit a linear model on the adjacent grid samples of the
/// queried action and predict the service time from it.
///
/// The fit for a query depends only on which grid cell the query falls
/// in, so the constructor pre-fits one model per cell and service_time
/// is a table lookup plus a 3-term dot product — allocation-free and
/// bit-identical to fitting at query time (same neighbors, same
/// fit_linear, same predict arithmetic). This is what keeps the warm
/// environment step loop off the heap at city scale (see
/// tests/env/test_env_alloc.cpp).
class LocalLinearServiceModel final : public ServiceModel {
 public:
  explicit LocalLinearServiceModel(std::shared_ptr<const GridDataset> dataset);
  double service_time(const AppProfile& profile,
                      const Allocation& allocation) const override;

 private:
  struct CellModel {
    std::array<double, kResources> coefficients{};
    double intercept = 0.0;
    double fallback = 0.0;  // used when the cell collapses to < 2 unique corners
    bool fitted = false;
  };

  std::shared_ptr<const GridDataset> dataset_;
  std::size_t points_per_axis_ = 0;
  std::vector<CellModel> cells_;  // one per (lo0, lo1, lo2) grid cell
};

/// Dispatches to a profile-specific grid model by profile name — one grid
/// dataset per application profile, as in Fig. 5 where every slice has its
/// own data set + linear model. Unknown profiles throw.
class PerProfileLinearServiceModel final : public ServiceModel {
 public:
  /// Build grid datasets for all `profiles` against one ground truth.
  PerProfileLinearServiceModel(const std::vector<AppProfile>& profiles,
                               const ServiceModel& ground_truth,
                               double granularity = 0.1);
  double service_time(const AppProfile& profile,
                      const Allocation& allocation) const override;
  std::size_t profile_count() const { return models_.size(); }

 private:
  std::map<std::string, LocalLinearServiceModel> models_;
};

}  // namespace edgeslice::env
