#include "env/queue.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edgeslice::env {

SliceQueue::SliceQueue(std::size_t max_length) : max_length_(max_length) {
  if (max_length == 0) throw std::invalid_argument("SliceQueue: zero max length");
}

std::size_t SliceQueue::arrive(std::size_t count) {
  total_arrivals_ += count;
  const std::size_t admitted = std::min(count, max_length_ - length_);
  length_ += admitted;
  dropped_ += count - admitted;
  return admitted;
}

std::size_t SliceQueue::serve(double rate) {
  if (rate < 0.0) throw std::invalid_argument("SliceQueue::serve: negative rate");
  if (length_ == 0) {
    // Service capacity is not bankable while idle.
    credit_ = 0.0;
    return 0;
  }
  credit_ += rate;
  const auto departures = std::min(length_, static_cast<std::size_t>(std::floor(credit_)));
  credit_ -= static_cast<double>(departures);
  length_ -= departures;
  total_departures_ += departures;
  if (length_ == 0) credit_ = 0.0;
  return departures;
}

void SliceQueue::restore(std::size_t length, double credit, std::size_t dropped,
                         std::size_t total_arrivals, std::size_t total_departures) {
  if (length > max_length_)
    throw std::runtime_error("SliceQueue::restore: backlog exceeds max_length");
  if (!std::isfinite(credit) || credit < 0.0)
    throw std::runtime_error("SliceQueue::restore: bad service credit");
  if (total_departures > total_arrivals)
    throw std::runtime_error("SliceQueue::restore: departures exceed arrivals");
  length_ = length;
  credit_ = credit;
  dropped_ = dropped;
  total_arrivals_ = total_arrivals;
  total_departures_ = total_departures;
}

void SliceQueue::reset() {
  length_ = 0;
  credit_ = 0.0;
  dropped_ = 0;
  total_arrivals_ = 0;
  total_departures_ = 0;
}

}  // namespace edgeslice::env
