#include "env/app_model.h"

#include <stdexcept>
#include <string>

namespace edgeslice::env {

double frame_bits(FrameResolution resolution) {
  // pixels * ~1.15 bits/pixel JPEG. The constant is calibrated (like the
  // paper's "slice traffic is normalized based on the hardware capability
  // of the prototype") so that the prototype RA can sustain the Poisson-10
  // arrival rate of Sec. VII-C under a *good* orchestration but not under
  // an arbitrary one — the regime where orchestration quality matters.
  switch (resolution) {
    case FrameResolution::R100x100: return 100.0 * 100.0 * 1.15;
    case FrameResolution::R300x300: return 300.0 * 300.0 * 1.15;
    case FrameResolution::R500x500: return 500.0 * 500.0 * 1.15;
  }
  throw std::invalid_argument("frame_bits: bad resolution");
}

double yolo_work(YoloModel model) {
  // Work scales ~ quadratically with network input size; anchor YOLO-320
  // at 320 work units = 6.25 ms on 51200 threads at unit speed (a
  // 1080Ti-class card runs small YOLO variants above 100 fps).
  switch (model) {
    case YoloModel::Y320: return 320.0;
    case YoloModel::Y416: return 320.0 * (416.0 * 416.0) / (320.0 * 320.0);
    case YoloModel::Y608: return 320.0 * (608.0 * 608.0) / (320.0 * 320.0);
  }
  throw std::invalid_argument("yolo_work: bad model");
}

AppProfile make_profile(FrameResolution resolution, YoloModel model) {
  AppProfile p;
  p.name = std::string(to_string(resolution)) + "+" + to_string(model);
  p.uplink_bits = frame_bits(resolution);
  p.compute_work = yolo_work(model);
  return p;
}

AppProfile slice1_profile() {
  return make_profile(FrameResolution::R500x500, YoloModel::Y320);
}

AppProfile slice2_profile() {
  return make_profile(FrameResolution::R100x100, YoloModel::Y608);
}

const char* to_string(FrameResolution resolution) {
  switch (resolution) {
    case FrameResolution::R100x100: return "100x100";
    case FrameResolution::R300x300: return "300x300";
    case FrameResolution::R500x500: return "500x500";
  }
  return "?";
}

const char* to_string(YoloModel model) {
  switch (model) {
    case YoloModel::Y320: return "YOLO-320";
    case YoloModel::Y416: return "YOLO-416";
    case YoloModel::Y608: return "YOLO-608";
  }
  return "?";
}

}  // namespace edgeslice::env
