// Slice performance functions (Sec. VII).
//
// The evaluation defines U = -(queue length)^alpha with alpha = 2 by
// default (and a sweep over alpha in Fig. 11a), plus an alternative
// "negative service time" function that deliberately ignores queue state
// (Fig. 11b). Neither the coordinator nor the agents ever see the closed
// form — they only observe reported values.
#pragma once

#include <memory>
#include <string>

namespace edgeslice::env {

/// Inputs available to a performance function at the end of an interval.
struct PerfObservation {
  double queue_length = 0.0;
  double service_time = 0.0;  // per-task end-to-end service time this interval
};

class PerformanceFunction {
 public:
  virtual ~PerformanceFunction() = default;
  virtual double evaluate(const PerfObservation& observation) const = 0;
  virtual std::string name() const = 0;
};

/// U = -(l)^alpha (the paper's default with alpha = 2).
class QueuePowerPerf final : public PerformanceFunction {
 public:
  explicit QueuePowerPerf(double alpha = 2.0);
  double evaluate(const PerfObservation& observation) const override;
  std::string name() const override;
  double alpha() const { return alpha_; }

 private:
  double alpha_;
};

/// U = -service_time, independent of the queue (Fig. 11b).
class NegServiceTimePerf final : public PerformanceFunction {
 public:
  /// Service times are capped to keep U finite when a slice holds no
  /// resources.
  explicit NegServiceTimePerf(double cap_seconds = 100.0);
  double evaluate(const PerfObservation& observation) const override;
  std::string name() const override { return "neg-service-time"; }

 private:
  double cap_seconds_;
};

std::unique_ptr<PerformanceFunction> make_queue_power_perf(double alpha = 2.0);
std::unique_ptr<PerformanceFunction> make_neg_service_time_perf();

}  // namespace edgeslice::env
