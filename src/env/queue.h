// FIFO service queue of a network slice (Sec. VI-B).
//
// Tasks are homogeneous within a slice (one application profile per
// slice). Service progress is tracked as fractional credit so that a
// service rate of, say, 2.5 tasks/interval departs 2 or 3 tasks per
// interval with the correct long-run average.
#pragma once

#include <cstddef>

namespace edgeslice::env {

class SliceQueue {
 public:
  /// `max_length` bounds the backlog (arrivals beyond it are dropped and
  /// counted), keeping rewards finite when a slice is starved.
  explicit SliceQueue(std::size_t max_length = 500);

  /// Add `count` arriving tasks; returns how many were admitted.
  std::size_t arrive(std::size_t count);

  /// Serve the queue for one interval at the given service rate
  /// (tasks per interval); returns the number of departures.
  std::size_t serve(double rate);

  std::size_t length() const { return length_; }
  std::size_t dropped() const { return dropped_; }
  std::size_t total_arrivals() const { return total_arrivals_; }
  std::size_t total_departures() const { return total_departures_; }
  bool empty() const { return length_ == 0; }
  std::size_t max_length() const { return max_length_; }
  /// Fractional service carry-over (checkpointable queue state).
  double credit() const { return credit_; }

  void reset();

  /// Restore a checkpointed queue state. Throws std::runtime_error when
  /// the state is inconsistent (backlog above max_length, departures
  /// exceeding arrivals, negative/non-finite credit).
  void restore(std::size_t length, double credit, std::size_t dropped,
               std::size_t total_arrivals, std::size_t total_departures);

 private:
  std::size_t max_length_;
  std::size_t length_ = 0;
  double credit_ = 0.0;  // fractional service carry-over
  std::size_t dropped_ = 0;
  std::size_t total_arrivals_ = 0;
  std::size_t total_departures_ = 0;
};

}  // namespace edgeslice::env
