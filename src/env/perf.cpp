#include "env/perf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edgeslice::env {

QueuePowerPerf::QueuePowerPerf(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0) throw std::invalid_argument("QueuePowerPerf: alpha must be > 0");
}

double QueuePowerPerf::evaluate(const PerfObservation& observation) const {
  return -std::pow(std::max(0.0, observation.queue_length), alpha_);
}

std::string QueuePowerPerf::name() const {
  return "queue-power(alpha=" + std::to_string(alpha_) + ")";
}

NegServiceTimePerf::NegServiceTimePerf(double cap_seconds) : cap_seconds_(cap_seconds) {
  if (cap_seconds <= 0.0) throw std::invalid_argument("NegServiceTimePerf: bad cap");
}

double NegServiceTimePerf::evaluate(const PerfObservation& observation) const {
  return -std::min(observation.service_time, cap_seconds_);
}

std::unique_ptr<PerformanceFunction> make_queue_power_perf(double alpha) {
  return std::make_unique<QueuePowerPerf>(alpha);
}

std::unique_ptr<PerformanceFunction> make_neg_service_time_perf() {
  return std::make_unique<NegServiceTimePerf>();
}

}  // namespace edgeslice::env
