#include "env/environment.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/binio.h"

namespace edgeslice::env {

RaEnvironment::RaEnvironment(const RaEnvironmentConfig& config,
                             std::vector<AppProfile> profiles,
                             std::shared_ptr<const ServiceModel> service_model,
                             std::shared_ptr<const PerformanceFunction> perf, Rng rng)
    : config_(config),
      profiles_(std::move(profiles)),
      service_model_(std::move(service_model)),
      perf_(std::move(perf)),
      rng_(rng),
      queue_length_(config.slices, 0),
      queue_credit_(config.slices, 0.0),
      queue_dropped_(config.slices, 0),
      queue_arrivals_(config.slices, 0),
      queue_departures_(config.slices, 0),
      coordination_(config.slices, 0.0),
      arrival_rates_(config.slices, config.arrival_rate),
      last_service_time_(config.slices, 0.0) {
  if (profiles_.size() != config_.slices)
    throw std::invalid_argument("RaEnvironment: one profile per slice required");
  if (!service_model_ || !perf_)
    throw std::invalid_argument("RaEnvironment: null model or performance function");
  if (config_.max_queue == 0)
    throw std::invalid_argument("RaEnvironment: zero max_queue");
}

SliceQueue RaEnvironment::queue(std::size_t slice) const {
  if (slice >= config_.slices)
    throw std::out_of_range("RaEnvironment::queue: bad slice");
  SliceQueue q(config_.max_queue);
  q.restore(queue_length_[slice], queue_credit_[slice], queue_dropped_[slice],
            queue_arrivals_[slice], queue_departures_[slice]);
  return q;
}

void RaEnvironment::set_coordination(const std::vector<double>& z_minus_y) {
  if (z_minus_y.size() != config_.slices)
    throw std::invalid_argument("RaEnvironment: coordination size mismatch");
  coordination_ = z_minus_y;
  if (config_.coordination_clip > 0.0) {
    for (auto& c : coordination_) {
      c = std::clamp(c, -config_.coordination_clip, 0.0);
    }
  }
}

void RaEnvironment::set_resource_derate(const std::array<double, kResources>& derate) {
  for (double d : derate) {
    if (!(d >= 0.0 && d <= 1.0))
      throw std::invalid_argument("RaEnvironment: derate must be in [0,1]");
  }
  derate_ = derate;
}

void RaEnvironment::set_arrival_rates(const std::vector<double>& rates) {
  if (rates.size() != config_.slices)
    throw std::invalid_argument("RaEnvironment: arrival-rate size mismatch");
  for (double r : rates) {
    if (r < 0.0) throw std::invalid_argument("RaEnvironment: negative arrival rate");
  }
  arrival_rates_ = rates;
}

void RaEnvironment::set_arrival_profiles(std::vector<std::vector<double>> profiles) {
  if (!profiles.empty()) {
    if (profiles.size() != config_.slices)
      throw std::invalid_argument("RaEnvironment: one arrival profile per slice");
    for (const auto& p : profiles) {
      if (p.empty()) throw std::invalid_argument("RaEnvironment: empty arrival profile");
      for (double r : p) {
        if (r < 0.0) throw std::invalid_argument("RaEnvironment: negative profile rate");
      }
    }
  }
  arrival_profiles_ = std::move(profiles);
}

std::size_t RaEnvironment::state_dim() const {
  return config_.include_traffic_in_state ? 2 * config_.slices : config_.slices;
}

void RaEnvironment::state_into(std::vector<double>& out) const {
  out.resize(state_dim());
  std::size_t n = 0;
  if (config_.include_traffic_in_state) {
    for (std::size_t i = 0; i < config_.slices; ++i) {
      out[n++] = static_cast<double>(queue_length_[i]) / config_.state_queue_scale;
    }
  }
  for (double c : coordination_) {
    out[n++] = c / config_.coordination_scale;
  }
}

std::vector<double> RaEnvironment::state() const {
  std::vector<double> s;
  state_into(s);
  return s;
}

void RaEnvironment::step_into(const std::vector<double>& action, StepResult& result) {
  if (action.size() != action_dim())
    throw std::invalid_argument("RaEnvironment::step: action size mismatch");
  for (double a : action) {
    if (a < -1e-9 || a > 1.0 + 1e-9)
      throw std::invalid_argument("RaEnvironment::step: action outside [0,1]");
  }

  state_into(result.state);
  result.constraint_violation = 0.0;

  // Raw per-resource sums for the shaping penalty (Eq. 15's [.]^+ term).
  std::array<double, kResources> usage{};
  for (std::size_t i = 0; i < config_.slices; ++i) {
    for (std::size_t k = 0; k < kResources; ++k) {
      usage[k] += std::clamp(action[i * kResources + k], 0.0, 1.0);
    }
  }
  for (std::size_t k = 0; k < kResources; ++k) {
    result.constraint_violation += std::max(0.0, usage[k] - 1.0);
  }

  // Physical scaling: a resource cannot be over-allocated in the substrate.
  // (Disabled in the paper-faithful training configuration, where the
  // constraint lives only in the reward.)
  std::array<double, kResources> scale{};
  for (std::size_t k = 0; k < kResources; ++k) {
    scale[k] = (config_.enforce_capacity_scaling && usage[k] > 1.0) ? 1.0 / usage[k] : 1.0;
  }

  // Arrivals, then service. The queue updates inline SliceQueue's
  // arrive()/serve() over the structure-of-arrays state, operation for
  // operation, so trajectories are bit-identical to the per-object queues.
  result.performance.resize(config_.slices);
  result.queue_lengths.resize(config_.slices);
  result.service_rates.resize(config_.slices);
  for (std::size_t i = 0; i < config_.slices; ++i) {
    const double arrival_mean =
        arrival_profiles_.empty()
            ? arrival_rates_[i]
            : arrival_profiles_[i][step_count_ % arrival_profiles_[i].size()];
    const auto count = static_cast<std::size_t>(rng_.poisson(arrival_mean));
    queue_arrivals_[i] += count;
    const std::size_t admitted = std::min(count, config_.max_queue - queue_length_[i]);
    queue_length_[i] += admitted;
    queue_dropped_[i] += count - admitted;

    Allocation alloc{};
    for (std::size_t k = 0; k < kResources; ++k) {
      alloc[k] = std::clamp(action[i * kResources + k], 0.0, 1.0) * scale[k] * derate_[k];
    }
    const double tau = service_model_->service_time(profiles_[i], alloc);
    last_service_time_[i] = tau;
    const double rate = tau > 0.0 ? config_.interval_seconds / tau : 0.0;
    result.service_rates[i] = rate;
    if (queue_length_[i] == 0) {
      // Service capacity is not bankable while idle.
      queue_credit_[i] = 0.0;
    } else {
      queue_credit_[i] += rate;
      const auto departures = std::min(
          queue_length_[i], static_cast<std::size_t>(std::floor(queue_credit_[i])));
      queue_credit_[i] -= static_cast<double>(departures);
      queue_length_[i] -= departures;
      queue_departures_[i] += departures;
      if (queue_length_[i] == 0) queue_credit_[i] = 0.0;
    }

    PerfObservation obs;
    obs.queue_length = static_cast<double>(queue_length_[i]);
    obs.service_time = tau;
    result.performance[i] = perf_->evaluate(obs);
    result.queue_lengths[i] = obs.queue_length;
  }

  // Reward shaping per Eq. 15.
  double reward = 0.0;
  const double T = static_cast<double>(config_.intervals_per_period);
  for (std::size_t i = 0; i < config_.slices; ++i) {
    const double target = coordination_[i] / T;
    const double deviation = result.performance[i] - target;
    reward += result.performance[i] - 0.5 * config_.rho * deviation * deviation;
  }
  reward -= config_.beta * result.constraint_violation;
  reward *= config_.reward_scale;
  if (config_.reward_clip > 0.0) {
    reward = std::clamp(reward, -config_.reward_clip, config_.reward_clip);
  }
  result.reward = reward;
  state_into(result.next_state);
  ++step_count_;
}

StepResult RaEnvironment::step(const std::vector<double>& action) {
  StepResult result;
  step_into(action, result);
  return result;
}

void RaEnvironment::save_state(std::ostream& out) const {
  write_u64(out, config_.slices);
  write_u64(out, config_.max_queue);
  write_string(out, rng_.serialize());
  write_u64(out, step_count_);
  for (double d : derate_) write_f64(out, d);
  write_f64_vector(out, coordination_);
  write_f64_vector(out, arrival_rates_);
  write_u64(out, arrival_profiles_.size());
  for (const auto& profile : arrival_profiles_) write_f64_vector(out, profile);
  write_f64_vector(out, last_service_time_);
  for (std::size_t i = 0; i < config_.slices; ++i) {
    write_u64(out, queue_length_[i]);
    write_f64(out, queue_credit_[i]);
    write_u64(out, queue_dropped_[i]);
    write_u64(out, queue_arrivals_[i]);
    write_u64(out, queue_departures_[i]);
  }
}

void RaEnvironment::load_state(std::istream& in) {
  constexpr const char* kContext = "RaEnvironment::load_state";
  const auto fail = [&](const std::string& what) {
    throw std::runtime_error(std::string(kContext) + ": " + what);
  };
  const std::uint64_t slices = read_u64(in, kContext);
  if (slices != config_.slices) {
    fail("slice count mismatch (stored " + std::to_string(slices) + ", configured " +
         std::to_string(config_.slices) + ")");
  }
  const std::uint64_t max_queue = read_u64(in, kContext);
  if (max_queue != config_.max_queue) {
    fail("max_queue mismatch (stored " + std::to_string(max_queue) + ", configured " +
         std::to_string(config_.max_queue) + ")");
  }

  // Parse and validate everything into temporaries, then apply (a corrupt
  // blob must not leave the environment half-restored).
  const Rng rng = Rng::deserialize(read_string(in, kContext));
  const std::uint64_t step_count = read_u64(in, kContext);
  std::array<double, kResources> derate{};
  for (auto& d : derate) {
    d = read_f64(in, kContext);
    if (!(d >= 0.0 && d <= 1.0)) fail("derate outside [0,1]");
  }
  const std::vector<double> coordination = read_f64_vector(in, kContext);
  if (coordination.size() != config_.slices) fail("coordination size mismatch");
  const std::vector<double> arrival_rates = read_f64_vector(in, kContext);
  if (arrival_rates.size() != config_.slices) fail("arrival-rate size mismatch");
  for (double r : arrival_rates) {
    if (!(r >= 0.0)) fail("negative or non-finite arrival rate");
  }
  const std::uint64_t profile_count = read_u64(in, kContext);
  if (profile_count != 0 && profile_count != config_.slices) {
    fail("arrival-profile count mismatch");
  }
  std::vector<std::vector<double>> profiles;
  profiles.reserve(static_cast<std::size_t>(profile_count));
  for (std::uint64_t i = 0; i < profile_count; ++i) {
    profiles.push_back(read_f64_vector(in, kContext));
    if (profiles.back().empty()) fail("empty arrival profile");
    for (double r : profiles.back()) {
      if (!(r >= 0.0)) fail("negative or non-finite profile rate");
    }
  }
  const std::vector<double> last_service_time = read_f64_vector(in, kContext);
  if (last_service_time.size() != config_.slices) fail("service-time size mismatch");

  struct QueueState {
    std::size_t length, dropped, arrivals, departures;
    double credit;
  };
  std::vector<QueueState> queue_states(config_.slices);
  for (auto& qs : queue_states) {
    qs.length = static_cast<std::size_t>(read_u64(in, kContext));
    qs.credit = read_f64(in, kContext);
    qs.dropped = static_cast<std::size_t>(read_u64(in, kContext));
    qs.arrivals = static_cast<std::size_t>(read_u64(in, kContext));
    qs.departures = static_cast<std::size_t>(read_u64(in, kContext));
    // Pre-validated with SliceQueue::restore's invariants, so the writes
    // below cannot fail after part of the environment is overwritten.
    if (qs.length > config_.max_queue) fail("queue backlog exceeds max_queue");
    if (!std::isfinite(qs.credit) || qs.credit < 0.0) fail("bad queue service credit");
    if (qs.departures > qs.arrivals) fail("queue departures exceed arrivals");
  }

  rng_ = rng;
  step_count_ = static_cast<std::size_t>(step_count);
  derate_ = derate;
  coordination_ = coordination;
  arrival_rates_ = arrival_rates;
  arrival_profiles_ = std::move(profiles);
  last_service_time_ = last_service_time;
  for (std::size_t i = 0; i < config_.slices; ++i) {
    const QueueState& qs = queue_states[i];
    queue_length_[i] = qs.length;
    queue_credit_[i] = qs.credit;
    queue_dropped_[i] = qs.dropped;
    queue_arrivals_[i] = qs.arrivals;
    queue_departures_[i] = qs.departures;
  }
}

void RaEnvironment::reset() {
  std::fill(queue_length_.begin(), queue_length_.end(), 0);
  std::fill(queue_credit_.begin(), queue_credit_.end(), 0.0);
  std::fill(queue_dropped_.begin(), queue_dropped_.end(), 0);
  std::fill(queue_arrivals_.begin(), queue_arrivals_.end(), 0);
  std::fill(queue_departures_.begin(), queue_departures_.end(), 0);
  std::fill(last_service_time_.begin(), last_service_time_.end(), 0.0);
  step_count_ = 0;
}

}  // namespace edgeslice::env
