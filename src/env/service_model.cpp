#include "env/service_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edgeslice::env {

RaCapacity prototype_capacity() {
  RaCapacity cap;
  // 25 PRBs at CQI 9 (16QAM): see radio/lte.h.
  cap.radio_bits_per_second = radio::tbs_bits(25, 9) * 1000.0;
  cap.transport_bits_per_second = 80e6;
  cap.compute_work_per_second = 51200.0;
  return cap;
}

RaCapacity measure_capacity(radio::RadioManager& radio,
                            transport::TransportManager& transport,
                            compute::ComputingManager& computing) {
  RaCapacity cap;
  // Temporarily grant slice 0 everything and read back the capacities.
  radio.set_slice_share(0, 1.0);
  cap.radio_bits_per_second = radio.slice_capacity_bits(0, 1.0);
  radio.set_slice_share(0, 0.0);

  transport.set_slice_share(0, 1.0);
  cap.transport_bits_per_second = transport.slice_rate_mbps(0) * 1e6;
  transport.set_slice_share(0, 0.0);

  computing.set_slice_share(0, 1.0);
  cap.compute_work_per_second =
      1.0 / computing.service_time(0, 1.0);  // work units per second at full share
  computing.set_slice_share(0, 0.0);
  return cap;
}

DirectServiceModel::DirectServiceModel(const RaCapacity& capacity) : capacity_(capacity) {
  if (capacity.radio_bits_per_second <= 0.0 || capacity.transport_bits_per_second <= 0.0 ||
      capacity.compute_work_per_second <= 0.0) {
    throw std::invalid_argument("DirectServiceModel: non-positive capacity");
  }
}

double DirectServiceModel::service_time(const AppProfile& profile,
                                        const Allocation& allocation) const {
  for (double a : allocation) {
    if (a < 0.0 || a > 1.0)
      throw std::invalid_argument("DirectServiceModel: allocation outside [0,1]");
  }
  double total = 0.0;
  const auto stage = [&](double demand, double capacity, double fraction) {
    if (demand <= 0.0) return 0.0;
    if (fraction <= 0.0) return kServiceTimeCap;
    return demand / (capacity * fraction);
  };
  total += stage(profile.uplink_bits, capacity_.radio_bits_per_second, allocation[kRadio]);
  total += stage(profile.uplink_bits, capacity_.transport_bits_per_second,
                 allocation[kTransport]);
  total += stage(profile.compute_work, capacity_.compute_work_per_second,
                 allocation[kCompute]);
  return std::min(total, kServiceTimeCap);
}

GridDataset::GridDataset(const AppProfile& profile, const ServiceModel& ground_truth,
                         double granularity)
    : profile_(profile), granularity_(granularity) {
  if (granularity <= 0.0 || granularity > 1.0)
    throw std::invalid_argument("GridDataset: granularity in (0,1]");
  points_per_axis_ = static_cast<std::size_t>(std::round(1.0 / granularity)) + 1;
  samples_.reserve(points_per_axis_ * points_per_axis_ * points_per_axis_);
  for (std::size_t r = 0; r < points_per_axis_; ++r) {
    for (std::size_t t = 0; t < points_per_axis_; ++t) {
      for (std::size_t c = 0; c < points_per_axis_; ++c) {
        Allocation a{static_cast<double>(r) * granularity,
                     static_cast<double>(t) * granularity,
                     static_cast<double>(c) * granularity};
        for (auto& v : a) v = std::min(v, 1.0);
        samples_.push_back(GridSample{a, ground_truth.service_time(profile, a)});
      }
    }
  }
}

std::vector<GridSample> GridDataset::adjacent(const Allocation& allocation) const {
  // Indices of the floor/ceil grid lines per axis.
  std::array<std::array<std::size_t, 2>, kResources> bounds{};
  for (std::size_t k = 0; k < kResources; ++k) {
    const double pos = std::clamp(allocation[k], 0.0, 1.0) / granularity_;
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = std::min(lo + 1, points_per_axis_ - 1);
    bounds[k] = {std::min(lo, points_per_axis_ - 1), hi};
  }
  std::vector<GridSample> out;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      for (std::size_t k = 0; k < 2; ++k) {
        const std::size_t idx = (bounds[0][i] * points_per_axis_ + bounds[1][j]) *
                                    points_per_axis_ +
                                bounds[2][k];
        out.push_back(samples_[idx]);
      }
    }
  }
  // Deduplicate corners that collapsed on a grid boundary.
  std::sort(out.begin(), out.end(), [](const GridSample& a, const GridSample& b) {
    return a.allocation < b.allocation;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const GridSample& a, const GridSample& b) {
                          return a.allocation == b.allocation;
                        }),
            out.end());
  return out;
}

LocalLinearServiceModel::LocalLinearServiceModel(
    std::shared_ptr<const GridDataset> dataset)
    : dataset_(std::move(dataset)) {
  if (!dataset_) throw std::invalid_argument("LocalLinearServiceModel: null dataset");
  // Pre-fit one local model per grid cell. adjacent() depends only on the
  // per-axis floor indices, so any query lands on one of these cells and
  // gets the exact model query-time fitting would have produced.
  points_per_axis_ = dataset_->points_per_axis();
  const std::size_t cells = points_per_axis_ * points_per_axis_ * points_per_axis_;
  cells_.resize(cells);
  const double granularity = dataset_->granularity();
  for (std::size_t l0 = 0; l0 < points_per_axis_; ++l0) {
    for (std::size_t l1 = 0; l1 < points_per_axis_; ++l1) {
      for (std::size_t l2 = 0; l2 < points_per_axis_; ++l2) {
        // A point strictly inside the cell reproduces adjacent()'s floor
        // indices (for the last grid line the cell degenerates in place).
        const Allocation probe{
            std::min((static_cast<double>(l0) + 0.5) * granularity, 1.0),
            std::min((static_cast<double>(l1) + 0.5) * granularity, 1.0),
            std::min((static_cast<double>(l2) + 0.5) * granularity, 1.0)};
        const auto neighbors = dataset_->adjacent(probe);
        CellModel& cell =
            cells_[(l0 * points_per_axis_ + l1) * points_per_axis_ + l2];
        if (neighbors.size() < 2) {
          cell.fallback =
              neighbors.empty() ? kServiceTimeCap : neighbors.front().service_time;
          continue;
        }
        nn::Matrix x(neighbors.size(), kResources);
        std::vector<double> y(neighbors.size());
        for (std::size_t n = 0; n < neighbors.size(); ++n) {
          for (std::size_t k = 0; k < kResources; ++k) {
            x(n, k) = neighbors[n].allocation[k];
          }
          y[n] = neighbors[n].service_time;
        }
        const auto model = opt::fit_linear(x, y, 1e-9);
        for (std::size_t k = 0; k < kResources; ++k) {
          cell.coefficients[k] = model.coefficients[k];
        }
        cell.intercept = model.intercept;
        cell.fitted = true;
      }
    }
  }
}

double LocalLinearServiceModel::service_time(const AppProfile& profile,
                                             const Allocation& allocation) const {
  (void)profile;  // the dataset is profile-specific
  // Same cell selection as GridDataset::adjacent — clamp, divide by the
  // granularity, floor, clamp to the last grid line.
  const double granularity = dataset_->granularity();
  std::size_t index = 0;
  for (std::size_t k = 0; k < kResources; ++k) {
    const double pos = std::clamp(allocation[k], 0.0, 1.0) / granularity;
    const std::size_t lo = std::min(static_cast<std::size_t>(std::floor(pos)),
                                    points_per_axis_ - 1);
    index = index * points_per_axis_ + lo;
  }
  const CellModel& cell = cells_[index];
  if (!cell.fitted) return cell.fallback;
  // LinearModel::predict's accumulation order, term for term.
  double predicted = cell.intercept;
  for (std::size_t k = 0; k < kResources; ++k) {
    predicted += cell.coefficients[k] * allocation[k];
  }
  return std::clamp(predicted, 0.0, kServiceTimeCap);
}

PerProfileLinearServiceModel::PerProfileLinearServiceModel(
    const std::vector<AppProfile>& profiles, const ServiceModel& ground_truth,
    double granularity) {
  if (profiles.empty())
    throw std::invalid_argument("PerProfileLinearServiceModel: no profiles");
  for (const auto& profile : profiles) {
    if (models_.count(profile.name)) continue;  // slices may share a profile
    models_.emplace(profile.name,
                    LocalLinearServiceModel(
                        std::make_shared<GridDataset>(profile, ground_truth, granularity)));
  }
}

double PerProfileLinearServiceModel::service_time(const AppProfile& profile,
                                                  const Allocation& allocation) const {
  const auto it = models_.find(profile.name);
  if (it == models_.end())
    throw std::invalid_argument("PerProfileLinearServiceModel: unknown profile " +
                                profile.name);
  return it->second.service_time(profile, allocation);
}

}  // namespace edgeslice::env
