// The per-RA network slicing environment (Fig. 5).
//
// One RaEnvironment hosts the service queues of all slices in a resource
// autonomy, generates their traffic, converts an orchestration action into
// per-slice service rates through a ServiceModel, reports per-slice
// performance U, and shapes the DRL reward per Eq. 15:
//
//   r(s,a) = sum_i ( U_i - rho/2 * || U_i - c_i / T ||^2 )
//            - beta * sum_k [ sum_i x_{i,k} - R_k ]^+
//
// where c_i = z_i - y_i is the coordinating information. (Eq. 15 prints
// the coordination target as (z + y)/T; the augmented Lagrangian in Eq. 7
// penalizes ||sum_t U - z + y||^2, whose per-interval target is (z - y)/T,
// which also matches the state definition in Eq. 13 — we follow Eq. 7.)
#pragma once

#include <array>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "env/app_model.h"
#include "env/perf.h"
#include "env/queue.h"
#include "env/service_model.h"

namespace edgeslice::env {

struct RaEnvironmentConfig {
  std::size_t slices = 2;
  double interval_seconds = 1.0;        // t: prototype 1 s, simulation 1 h (3600)
  std::size_t intervals_per_period = 10;  // T: prototype 10, simulation 24
  double rho = 1.0;                     // ADMM penalty (Sec. VII)
  double beta = 20.0;                   // reward-shaping weight (Sec. VI-A)
  double arrival_rate = 10.0;           // Poisson mean per interval (Sec. VII-C)
  std::size_t max_queue = 500;
  double state_queue_scale = 50.0;      // queue-length normalization for the NN
  double coordination_scale = 50.0;     // |z - y| normalization for the NN
  bool include_traffic_in_state = true; // false reproduces EdgeSlice-NT
  /// Numerical conditioning of the learning signal (performance metrics
  /// are reported raw; only the shaped reward handed to the DRL agent is
  /// affected). The quadratic ADMM term in Eq. 15 explodes when a starved
  /// queue saturates, so the reward is scaled and clipped to keep critic
  /// targets in a trainable range.
  double reward_scale = 0.01;
  double reward_clip = 500.0;           // |reward| bound after scaling; 0 = off
  /// Coordination values are clamped to [-clip, 0] on entry. During a
  /// transient SLA violation the raw z - y can be orders of magnitude
  /// below the range the agent was trained on, and the accumulated dual
  /// can push it *positive* — but every performance function here is
  /// non-positive, so a positive target is unreachable and reads as
  /// "maximize", which c = 0 already encodes. The clamp keeps the agent
  /// exactly on the trained manifold [-clip, 0]. 0 disables.
  double coordination_clip = 50.0;
  /// When true, over-subscribed resources are proportionally scaled before
  /// computing service times — the physical behaviour of the resource
  /// managers (a substrate cannot allocate more than 100%). When false,
  /// each slice's service time depends only on its own allocation and the
  /// capacity constraint is enforced purely through the beta penalty —
  /// exactly the paper's simulated training environment (Sec. VI-B, where
  /// the per-slice linear model knows nothing about other slices). Train
  /// with false, evaluate systems with true.
  bool enforce_capacity_scaling = true;
};

/// Result of advancing the environment by one time interval.
struct StepResult {
  std::vector<double> state;          // state observed before the action
  std::vector<double> next_state;
  double reward = 0.0;                // shaped reward (Eq. 15)
  std::vector<double> performance;    // U_i per slice (raw, for metrics)
  std::vector<double> queue_lengths;  // l_i after the interval
  std::vector<double> service_rates;  // tasks/interval granted per slice
  double constraint_violation = 0.0;  // sum_k [sum_i x_ik - 1]^+
};

class RaEnvironment {
 public:
  RaEnvironment(const RaEnvironmentConfig& config, std::vector<AppProfile> profiles,
                std::shared_ptr<const ServiceModel> service_model,
                std::shared_ptr<const PerformanceFunction> perf, Rng rng);

  /// Update the coordinating information c_i = z_i - y_i (one per slice).
  void set_coordination(const std::vector<double>& z_minus_y);
  const std::vector<double>& coordination() const { return coordination_; }

  /// Fault hook: per-resource service derate in [0, 1] (1 = healthy). The
  /// effective allocation seen by the service model is action * derate —
  /// a radio blackout is derate[0] = 0, a transport link failure
  /// derate[1] = 0, a compute slowdown by factor f derate[2] = 1/f. The
  /// agent's action, state, and reward shaping are untouched: faults
  /// degrade the substrate, not the controller's view of its own decision.
  void set_resource_derate(const std::array<double, kResources>& derate);
  const std::array<double, kResources>& resource_derate() const { return derate_; }

  /// Override per-slice Poisson arrival rates (traffic diversity; traces).
  void set_arrival_rates(const std::vector<double>& rates);

  /// Drive arrivals from cyclic per-interval rate profiles (one vector per
  /// slice, e.g. a 24-hour trace-derived diurnal profile). The profile
  /// advances one bin per step and wraps around; it overrides the static
  /// rates until cleared with an empty vector.
  void set_arrival_profiles(std::vector<std::vector<double>> profiles);

  /// The DRL state (Eq. 13): normalized queue lengths (unless configured
  /// as EdgeSlice-NT) followed by normalized coordinating information.
  std::vector<double> state() const;
  /// state() into a caller-owned buffer (resized to state_dim()); the
  /// steady-state period loop reuses one buffer and never allocates.
  void state_into(std::vector<double>& out) const;
  std::size_t state_dim() const;
  std::size_t action_dim() const { return config_.slices * kResources; }

  /// Advance one interval under `action` (slice-major fractions,
  /// action[i * 3 + k]). Over-subscribed resources are proportionally
  /// scaled for physical service but penalized at full strength in the
  /// reward.
  StepResult step(const std::vector<double>& action);

  /// step() into a caller-owned result whose vectors are resized in place,
  /// so a loop reusing one StepResult runs allocation-free once warm.
  /// Bit-identical to step() — step() is implemented on top of this.
  void step_into(const std::vector<double>& action, StepResult& result);

  void reset();

  /// The environment's private random stream. Exposed so evaluation code
  /// that must be reproducible across calls (core::validate_policy) can
  /// save the stream, swap in a fixed one, and restore it afterwards.
  Rng& rng() { return rng_; }
  const Rng& rng() const { return rng_; }

  /// Serialize the mutable simulation state — the private Rng stream,
  /// step counter, per-resource derates, coordination targets, arrival
  /// rates/profiles, last service times, and every queue (including its
  /// fractional service credit) — as the "environment blob" of
  /// FORMATS.md. Configuration and models are NOT serialized: they are
  /// re-derived from the experiment config, and load_state() verifies the
  /// blob was written by an environment of the same shape.
  void save_state(std::ostream& out) const;
  /// Restore into this environment. Slice count and queue bound must
  /// match; throws std::runtime_error on mismatch or corruption without
  /// partially applying state.
  void load_state(std::istream& in);

  const RaEnvironmentConfig& config() const { return config_; }
  std::size_t slice_count() const { return config_.slices; }
  /// Snapshot of slice `slice`'s queue, materialized from the
  /// structure-of-arrays state (see below). Returned by value; use
  /// queue_length()/queue_lengths() on hot paths.
  SliceQueue queue(std::size_t slice) const;
  /// O(1) direct accessors over the contiguous queue-state arrays.
  std::size_t queue_length(std::size_t slice) const { return queue_length_.at(slice); }
  const std::vector<std::size_t>& queue_lengths() const { return queue_length_; }
  const AppProfile& profile(std::size_t slice) const { return profiles_.at(slice); }
  double arrival_rate(std::size_t slice) const { return arrival_rates_.at(slice); }

 private:
  RaEnvironmentConfig config_;
  std::vector<AppProfile> profiles_;
  std::shared_ptr<const ServiceModel> service_model_;
  std::shared_ptr<const PerformanceFunction> perf_;
  Rng rng_;
  /// Per-slice queue state as structure-of-arrays: the period hot path
  /// touches every slice every interval, so lengths/credits live in
  /// contiguous arrays scanned linearly instead of per-object scatter.
  /// Semantics are exactly SliceQueue's arrive()/serve() (see env/queue.h);
  /// queue(i) materializes a SliceQueue snapshot for cold-path callers.
  std::vector<std::size_t> queue_length_;
  std::vector<double> queue_credit_;
  std::vector<std::size_t> queue_dropped_;
  std::vector<std::size_t> queue_arrivals_;
  std::vector<std::size_t> queue_departures_;
  std::array<double, kResources> derate_{1.0, 1.0, 1.0};
  std::vector<double> coordination_;
  std::vector<double> arrival_rates_;
  std::vector<std::vector<double>> arrival_profiles_;
  std::size_t step_count_ = 0;
  std::vector<double> last_service_time_;
};

}  // namespace edgeslice::env
