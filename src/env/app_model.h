// Application demand profiles.
//
// The paper's workload (Sec. VII-A) is a mobile video-analytics app: the
// user uploads a frame of a chosen resolution (100x100 .. 500x500 pixels)
// and the edge server runs YOLO object detection with a chosen model size
// (320x320 .. 608x608 network input). Frame resolution drives the radio
// and transport demand; model size drives the compute demand. This module
// captures those profiles as per-task demand vectors.
#pragma once

#include <cstddef>
#include <string>

namespace edgeslice::env {

/// Frame resolutions selectable by the mobile application.
enum class FrameResolution { R100x100, R300x300, R500x500 };

/// YOLO network input sizes selectable on the server.
enum class YoloModel { Y320, Y416, Y608 };

/// Per-task resource demand of one (frame, model) configuration.
struct AppProfile {
  std::string name;
  double uplink_bits = 0.0;   // bits transferred over radio + transport per task
  double compute_work = 0.0;  // abstract GPU work units per task
};

/// Bits for one compressed video frame of the given resolution (JPEG at
/// ~1.5 bits/pixel, the operating point of the prototype app).
double frame_bits(FrameResolution resolution);

/// GPU work units for one YOLO inference. Scaled so that YOLO-320 on the
/// full 51200-thread GPU takes ~25 ms, matching 1080Ti-class throughput;
/// cost grows with the square of the network input size.
double yolo_work(YoloModel model);

AppProfile make_profile(FrameResolution resolution, YoloModel model);

/// The two slice archetypes of the prototype experiment (Sec. VII-C):
/// slice 1: 500x500 frames + YOLO-320 — heavy traffic, moderate compute;
/// slice 2: 100x100 frames + YOLO-608 — light traffic, intensive compute.
AppProfile slice1_profile();
AppProfile slice2_profile();

const char* to_string(FrameResolution resolution);
const char* to_string(YoloModel model);

}  // namespace edgeslice::env
