#include "compute/gpu.h"

#include <algorithm>
#include <stdexcept>

namespace edgeslice::compute {

Gpu::Gpu(const GpuConfig& config) : config_(config) {
  if (config.total_threads == 0) throw std::invalid_argument("Gpu: zero threads");
  if (config.work_units_per_thread_per_second <= 0.0)
    throw std::invalid_argument("Gpu: non-positive speed");
}

std::size_t Gpu::register_app() {
  const std::size_t id = next_app_++;
  streams_[id];
  caps_[id] = std::nullopt;
  return id;
}

void Gpu::submit(std::size_t app_id, const Kernel& kernel) {
  const auto it = streams_.find(app_id);
  if (it == streams_.end()) throw std::out_of_range("Gpu::submit: unknown app");
  if (kernel.threads == 0 || kernel.threads > config_.total_threads)
    throw std::invalid_argument("Gpu::submit: invalid thread request");
  if (kernel.work < 0.0) throw std::invalid_argument("Gpu::submit: negative work");
  it->second.push_back(PendingKernel{app_id, kernel, kernel.work});
}

void Gpu::set_thread_cap(std::size_t app_id, std::optional<std::size_t> cap) {
  if (!caps_.count(app_id)) throw std::out_of_range("Gpu::set_thread_cap: unknown app");
  caps_[app_id] = cap;
}

std::map<std::size_t, double> Gpu::run(double seconds, double tick) {
  if (seconds < 0.0 || tick <= 0.0) throw std::invalid_argument("Gpu::run: bad durations");
  std::map<std::size_t, double> completed;
  for (const auto& [id, stream] : streams_) completed[id] = 0.0;

  double elapsed = 0.0;
  while (elapsed < seconds) {
    const double dt = std::min(tick, seconds - elapsed);
    elapsed += dt;

    // Admission: each app's stream head competes for threads in app-id
    // order (MPS admission is opaque; first-come order is its observable
    // behaviour for saturated clients). Kernel-split caps bound each app.
    occupancy_.clear();
    std::size_t free_threads = config_.total_threads;
    std::vector<PendingKernel*> running;
    for (auto& [id, stream] : streams_) {
      if (stream.empty()) continue;
      PendingKernel& head = stream.front();
      std::size_t want = head.kernel.threads;
      const auto& cap = caps_[id];
      if (cap.has_value()) want = std::min(want, *cap);
      const std::size_t granted = std::min(want, free_threads);
      if (granted == 0) continue;
      free_threads -= granted;
      occupancy_[id] = granted;
      running.push_back(&head);
    }

    // Execute the tick.
    for (PendingKernel* k : running) {
      const double rate = static_cast<double>(occupancy_[k->app_id]) *
                          config_.work_units_per_thread_per_second;
      const double done = std::min(k->remaining_work, rate * dt);
      k->remaining_work -= done;
      completed[k->app_id] += done;
    }

    // Retire finished kernels (in-order per stream).
    for (auto& [id, stream] : streams_) {
      while (!stream.empty() && stream.front().remaining_work <= 1e-12) {
        stream.pop_front();
      }
    }
  }
  return completed;
}

bool Gpu::idle(std::size_t app_id) const {
  const auto it = streams_.find(app_id);
  if (it == streams_.end()) throw std::out_of_range("Gpu::idle: unknown app");
  return it->second.empty();
}

std::size_t Gpu::queued_kernels(std::size_t app_id) const {
  const auto it = streams_.find(app_id);
  if (it == streams_.end()) throw std::out_of_range("Gpu::queued_kernels: unknown app");
  return it->second.size();
}

}  // namespace edgeslice::compute
