#include "compute/kernel_split.h"

#include <stdexcept>

namespace edgeslice::compute {

std::vector<Kernel> split_kernel(const Kernel& kernel, std::size_t max_threads) {
  if (max_threads == 0) throw std::invalid_argument("split_kernel: zero quota");
  if (kernel.threads == 0) throw std::invalid_argument("split_kernel: empty kernel");
  std::vector<Kernel> chunks;
  if (kernel.threads <= max_threads) {
    chunks.push_back(kernel);
    return chunks;
  }
  const double work_per_thread = kernel.work / static_cast<double>(kernel.threads);
  std::size_t remaining = kernel.threads;
  while (remaining > 0) {
    const std::size_t t = std::min(remaining, max_threads);
    chunks.push_back(Kernel{t, work_per_thread * static_cast<double>(t)});
    remaining -= t;
  }
  return chunks;
}

void submit_split(Gpu& gpu, std::size_t app_id, const Kernel& kernel,
                  std::size_t max_threads) {
  for (const Kernel& chunk : split_kernel(kernel, max_threads)) {
    gpu.submit(app_id, chunk);
  }
}

}  // namespace edgeslice::compute
