#include "compute/computing_manager.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/metrics.h"
#include "compute/kernel_split.h"

namespace edgeslice::compute {

ComputingManager::ComputingManager(const ComputingManagerConfig& config)
    : config_(config), gpu_(config.gpu), slice_share_(config.slices, 0.0) {
  if (config.slices == 0) throw std::invalid_argument("ComputingManager: zero slices");
  slice_app_.reserve(config.slices);
  for (std::size_t i = 0; i < config.slices; ++i) {
    slice_app_.push_back(gpu_.register_app());
  }
}

void ComputingManager::set_slice_share(std::size_t slice, double fraction) {
  if (slice >= slice_share_.size()) throw std::out_of_range("ComputingManager: bad slice");
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("ComputingManager: share must be in [0,1]");
  slice_share_[slice] = fraction;
  gpu_.set_thread_cap(slice_app_[slice], slice_threads(slice));
  // Fraction of the GPU's thread budget currently capped out to slices.
  std::size_t granted = 0;
  for (std::size_t i = 0; i < slice_share_.size(); ++i) granted += slice_threads(i);
  global_metrics().gauge("compute.thread_utilization")
      .set(static_cast<double>(granted) /
           static_cast<double>(std::max<std::size_t>(1, config_.gpu.total_threads)));
}

std::size_t ComputingManager::slice_threads(std::size_t slice) const {
  if (slice >= slice_share_.size()) throw std::out_of_range("ComputingManager: bad slice");
  return static_cast<std::size_t>(std::floor(
      slice_share_[slice] * static_cast<double>(config_.gpu.total_threads) + 1e-9));
}

void ComputingManager::register_ip(const std::string& ip, std::size_t slice) {
  if (slice >= slice_share_.size()) throw std::out_of_range("ComputingManager: bad slice");
  ip_to_slice_[ip] = slice;
}

std::size_t ComputingManager::slice_of_ip(const std::string& ip) const {
  const auto it = ip_to_slice_.find(ip);
  if (it == ip_to_slice_.end())
    throw std::out_of_range("ComputingManager: unknown IP " + ip);
  return it->second;
}

void ComputingManager::submit(std::size_t slice, const Kernel& kernel) {
  if (slice >= slice_share_.size()) throw std::out_of_range("ComputingManager: bad slice");
  const std::size_t quota = slice_threads(slice);
  if (quota == 0) {
    // A slice holding no compute resources cannot launch work; queue the
    // kernel unsplit — it will only run if a quota is assigned later.
    gpu_.submit(slice_app_[slice], kernel);
    return;
  }
  submit_split(gpu_, slice_app_[slice], kernel, quota);
}

void ComputingManager::set_slowdown(double factor) {
  if (!(factor >= 1.0))
    throw std::invalid_argument("ComputingManager: slowdown factor must be >= 1");
  slowdown_ = factor;
}

std::vector<double> ComputingManager::run(double seconds, double tick) {
  const auto completed = gpu_.run(seconds / slowdown_, tick);
  std::vector<double> out(slice_share_.size(), 0.0);
  for (std::size_t i = 0; i < slice_share_.size(); ++i) {
    const auto it = completed.find(slice_app_[i]);
    if (it != completed.end()) out[i] = it->second;
  }
  return out;
}

double ComputingManager::service_time(std::size_t slice, double work) const {
  const std::size_t threads = slice_threads(slice);
  if (threads == 0) return std::numeric_limits<double>::infinity();
  return slowdown_ * work /
         (static_cast<double>(threads) * config_.gpu.work_units_per_thread_per_second);
}

bool ComputingManager::idle(std::size_t slice) const {
  if (slice >= slice_share_.size()) throw std::out_of_range("ComputingManager: bad slice");
  return gpu_.idle(slice_app_[slice]);
}

}  // namespace edgeslice::compute
