// The kernel-split mechanism of Sec. V-C.
//
// MPS does not expose per-tenant resource control, so EdgeSlice rewrites
// application kernels: a kernel requesting a large number of threads is
// split into multiple small consecutive kernels of at most the tenant's
// virtual-resource quota. Because per-stream execution is in-order, the
// tenant's concurrent thread occupancy never exceeds its quota.
#pragma once

#include <vector>

#include "compute/gpu.h"

namespace edgeslice::compute {

/// Split `kernel` into consecutive chunks of at most `max_threads` threads,
/// dividing the work proportionally. A kernel already within the quota is
/// returned unchanged. `max_threads` == 0 is invalid.
std::vector<Kernel> split_kernel(const Kernel& kernel, std::size_t max_threads);

/// Submit a kernel to `gpu` on behalf of `app_id`, splitting it against
/// `max_threads` first (the runtime shim EdgeSlice injects into user
/// applications).
void submit_split(Gpu& gpu, std::size_t app_id, const Kernel& kernel,
                  std::size_t max_threads);

}  // namespace edgeslice::compute
