// CUDA GPU execution model.
//
// Stands in for the prototype's GTX 1080Ti + CUDA 9.0 + MPS stack
// (Table II; 51200 concurrently resident threads per RA). Applications
// submit kernels in order; a kernel requests a number of threads and
// carries an amount of work. Under the Multi-Process Service several
// applications share the GPU concurrently, but — as the paper observes —
// MPS's scheduling of resources between processes is opaque and cannot be
// controlled by the operator. The discrete-event simulator below
// reproduces exactly that: greedy thread admission in submission order,
// with no per-tenant cap unless the kernel-split mechanism imposes one.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <vector>

namespace edgeslice::compute {

/// One CUDA kernel launch: the execution-configuration thread request and
/// the total work it performs.
struct Kernel {
  std::size_t threads = 0;   // <<<blocks, threadsPerBlock>>> product
  double work = 0.0;         // abstract work units (thread-seconds at unit speed)
};

/// A queued kernel instance inside the GPU.
struct PendingKernel {
  std::size_t app_id = 0;
  Kernel kernel;
  double remaining_work = 0.0;
};

struct GpuConfig {
  std::size_t total_threads = 51200;  // prototype: 51200 CUDA threads per RA
  double work_units_per_thread_per_second = 1.0;
};

/// Discrete-time GPU simulator. Each app owns an in-order kernel stream;
/// at every tick the front kernel of each stream (if admitted) runs on its
/// granted threads.
class Gpu {
 public:
  explicit Gpu(const GpuConfig& config);

  /// Register an application (an MPS client). Returns its app id.
  std::size_t register_app();

  /// Enqueue a kernel on an app's stream (in-order execution).
  void submit(std::size_t app_id, const Kernel& kernel);

  /// Per-app cap on concurrently occupied threads. std::nullopt = uncapped
  /// (vanilla MPS); a cap of 0 blocks the app entirely (a slice holding no
  /// compute resources). The kernel-split mechanism guarantees submitted
  /// kernels never request more than a positive cap, making it enforceable.
  void set_thread_cap(std::size_t app_id, std::optional<std::size_t> cap);

  /// Advance the simulation by `seconds`, in `tick` increments. Returns the
  /// work completed per app.
  std::map<std::size_t, double> run(double seconds, double tick = 1e-3);

  /// True when an app has no queued or running kernels.
  bool idle(std::size_t app_id) const;
  std::size_t queued_kernels(std::size_t app_id) const;

  /// Threads occupied during the most recent tick, per app.
  const std::map<std::size_t, std::size_t>& last_occupancy() const { return occupancy_; }

  const GpuConfig& config() const { return config_; }

 private:
  GpuConfig config_;
  std::size_t next_app_ = 0;
  std::map<std::size_t, std::deque<PendingKernel>> streams_;
  std::map<std::size_t, std::optional<std::size_t>> caps_;
  std::map<std::size_t, std::size_t> occupancy_;
};

}  // namespace edgeslice::compute
