// Computing resource manager — the VR-C middleware of Sec. V-C.
//
// Maps the orchestration agent's virtual-resource fraction for a slice
// onto a concurrent-thread quota on the RA's GPU and enforces it through
// the kernel-split mechanism. User/slice association is by IP address.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "compute/gpu.h"

namespace edgeslice::compute {

struct ComputingManagerConfig {
  GpuConfig gpu;           // prototype: 51200 threads per RA
  std::size_t slices = 2;
};

class ComputingManager {
 public:
  explicit ComputingManager(const ComputingManagerConfig& config);

  /// --- VR-C interface -----------------------------------------------------
  /// Set slice i's share of the GPU threads (fraction in [0,1]).
  void set_slice_share(std::size_t slice, double fraction);
  std::size_t slice_threads(std::size_t slice) const;

  /// Associate a user IP with a slice (how VR-C identifies tenants).
  void register_ip(const std::string& ip, std::size_t slice);
  std::size_t slice_of_ip(const std::string& ip) const;

  /// --- Workload path --------------------------------------------------------
  /// Submit an inference kernel for a slice's application; split against
  /// the slice's quota.
  void submit(std::size_t slice, const Kernel& kernel);

  /// Advance the GPU and return work completed per slice.
  std::vector<double> run(double seconds, double tick = 1e-3);

  /// Analytic service time for `work` units on slice's current quota,
  /// assuming the slice runs alone at its cap (used by the grid dataset).
  double service_time(std::size_t slice, double work) const;

  /// --- Fault hook ---------------------------------------------------------
  /// Degrade the GPU by `factor >= 1` (thermal throttling, co-tenant
  /// interference): service times stretch by the factor and run() makes
  /// proportionally less progress per wall-clock second. 1 restores health.
  void set_slowdown(double factor);
  double slowdown() const { return slowdown_; }

  bool idle(std::size_t slice) const;
  std::size_t slice_count() const { return slice_share_.size(); }
  const Gpu& gpu() const { return gpu_; }

 private:
  ComputingManagerConfig config_;
  double slowdown_ = 1.0;
  Gpu gpu_;
  std::vector<std::size_t> slice_app_;   // GPU app id per slice
  std::vector<double> slice_share_;
  std::map<std::string, std::size_t> ip_to_slice_;
};

}  // namespace edgeslice::compute
