#include "ckpt/rotation.h"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "ckpt/container.h"
#include "common/logging.h"

namespace edgeslice::ckpt {

namespace fs = std::filesystem;

CheckpointRotation::CheckpointRotation(std::string base_path, std::size_t keep)
    : base_path_(std::move(base_path)), keep_(keep) {
  if (base_path_.empty())
    throw std::invalid_argument("CheckpointRotation: empty base path");
  if (keep_ == 0)
    throw std::invalid_argument("CheckpointRotation: keep must be >= 1");
}

std::string CheckpointRotation::path_for(std::size_t period) const {
  return base_path_ + ".p" + std::to_string(period);
}

std::vector<std::pair<std::size_t, std::string>> CheckpointRotation::list() const {
  const fs::path base(base_path_);
  fs::path dir = base.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = base.filename().string() + ".p";

  std::vector<std::pair<std::size_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0)
      continue;
    // Foreign siblings must be skipped, never thrown over: "run.ckpt.pbak",
    // "run.ckpt.p12.tmp", and even an all-digit suffix too large for a
    // period counter ("...p99999999999999999999999999") are not rotation
    // files. from_chars is exception-free and flags overflow via its error
    // code, so the scan is total on arbitrary directory contents.
    const std::string suffix = name.substr(prefix.size());
    std::uint64_t period = 0;
    const auto parsed =
        std::from_chars(suffix.data(), suffix.data() + suffix.size(), period);
    if (suffix.empty() || parsed.ec != std::errc{} ||
        parsed.ptr != suffix.data() + suffix.size()) {
      continue;  // ".p12.tmp" and friends are not rotation siblings
    }
    found.emplace_back(static_cast<std::size_t>(period), entry.path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

std::size_t CheckpointRotation::prune(std::size_t period) const {
  auto siblings = list();
  if (siblings.size() <= keep_) return 0;
  std::size_t removed = 0;
  // Delete oldest-first and never the just-published file: even an
  // inconsistent directory state (extra files from a crashed previous
  // prune) converges to the newest `keep`.
  for (std::size_t i = 0; i + keep_ < siblings.size(); ++i) {
    if (siblings[i].first == period) continue;
    if (std::remove(siblings[i].second.c_str()) == 0) {
      ++removed;
    } else {
      ES_LOG(Warn) << "ckpt rotation: could not remove " << siblings[i].second;
    }
  }
  return removed;
}

std::optional<std::string> CheckpointRotation::latest() const {
  auto siblings = list();
  for (auto it = siblings.rbegin(); it != siblings.rend(); ++it) {
    try {
      (void)CheckpointReader::from_file(it->second);  // full validation
      return it->second;
    } catch (const std::exception& e) {
      ES_LOG(Warn) << "ckpt rotation: skipping invalid checkpoint " << it->second
                   << ": " << e.what();
    }
  }
  return std::nullopt;
}

}  // namespace edgeslice::ckpt
