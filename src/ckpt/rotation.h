// Keep-last-N rotation for period-boundary checkpoints.
//
// A long run with --checkpoint-every used to rewrite one file in place;
// rotation instead writes one container per boundary —
// "<base>.p<period>" — and prunes the oldest files only AFTER the new
// one is durably published (tmp + rename inside CheckpointWriter). The
// invariant that matters for crash safety: at every instant at least one
// valid checkpoint exists on disk once the first save has completed. A
// crash mid-save leaves the previous files untouched (the tmp never
// replaces anything); a crash mid-prune leaves extra files, never fewer.
//
// latest() scans the base's directory for rotation siblings and returns
// the newest file that actually VALIDATES (magic, version, both CRC
// levels) — a corrupt newest checkpoint (torn disk, bad sector) falls
// back to the next-newest valid one instead of failing the resume.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace edgeslice::ckpt {

class CheckpointRotation {
 public:
  /// `base_path` is the stem ("run.ckpt" -> "run.ckpt.p12"); `keep` is
  /// how many newest checkpoints survive a prune (>= 1).
  CheckpointRotation(std::string base_path, std::size_t keep);

  const std::string& base_path() const { return base_path_; }
  std::size_t keep() const { return keep_; }

  /// The rotation file name for a period boundary.
  std::string path_for(std::size_t period) const;

  /// Call after the checkpoint for `period` was successfully published.
  /// Deletes rotation siblings older than the newest `keep`, never
  /// touching `period`'s own file. Returns the number of files removed.
  std::size_t prune(std::size_t period) const;

  /// Newest rotation file that validates as an ESCK container, or
  /// nullopt when none exists. Corrupt/truncated siblings are skipped
  /// (and left in place for post-mortems).
  std::optional<std::string> latest() const;

  /// Every rotation sibling on disk, sorted by period ascending
  /// (validity not checked).
  std::vector<std::pair<std::size_t, std::string>> list() const;

 private:
  std::string base_path_;
  std::size_t keep_;
};

}  // namespace edgeslice::ckpt
