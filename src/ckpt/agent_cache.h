// Content-addressed cache of trained policy networks.
//
// Bench binaries sharing a training configuration reuse each other's
// trained policies. Entries are addressed by the FNV-1a digest of a
// canonical configuration fingerprint (every knob that affects the
// trained weights, one "key = value" line each) instead of a name-mangled
// filename, so adding a knob can never silently alias two different
// configurations: the fingerprint itself is stored inside the entry and
// verified byte-for-byte on load. Entries are v1 ESCK containers holding
// one Policy section; the legacy name-mangled "<name>.mlp" text files of
// earlier releases remain readable as a fallback (FORMATS.md Sec. 3).
#pragma once

#include <optional>
#include <string>

#include "nn/mlp.h"

namespace edgeslice::ckpt {

/// 64-bit FNV-1a of the fingerprint text, rendered as 16 lowercase hex
/// digits — the content address.
std::string fingerprint_digest(const std::string& fingerprint);

/// Path of the cache entry for `fingerprint` under `dir`:
/// "<dir>/<digest>.ckpt".
std::string cache_entry_path(const std::string& dir, const std::string& fingerprint);

/// Store `policy` for `fingerprint`, creating `dir` if needed. The entry
/// is published atomically (tmp + rename). Returns false on I/O failure.
bool store_policy(const std::string& dir, const std::string& fingerprint,
                  const nn::Mlp& policy);

/// Load the entry for `fingerprint`, or std::nullopt when none exists.
/// The stored fingerprint must match byte-for-byte (a digest collision or
/// a hand-renamed file throws std::runtime_error, as does any corruption).
std::optional<nn::Mlp> load_policy(const std::string& dir,
                                   const std::string& fingerprint);

}  // namespace edgeslice::ckpt
