// Constants of the EdgeSlice checkpoint container ("ESCK" format).
//
// The container is the single on-disk envelope for every checkpointable
// artifact in the repository: full training-resume checkpoints, system
// (Alg. 1 run-loop) checkpoints, and content-addressed agent-cache
// entries. FORMATS.md Sec. 2 is the normative byte-level specification;
// this header is the single source of truth for the version number the
// docs-check test ties that spec to.
#pragma once

#include <cstdint>

namespace edgeslice::ckpt {

/// File magic: the literal bytes 'E' 'S' 'C' 'K' at offset 0.
inline constexpr char kCkptMagic[4] = {'E', 'S', 'C', 'K'};

/// Container format version. Bump on ANY byte-level change to the
/// container layout or a section payload, and update FORMATS.md in the
/// same commit (the docs-check test cross-checks the two).
inline constexpr std::uint32_t kCkptFormatVersion = 1;

/// What a section's payload holds. Codes are part of the on-disk format:
/// never renumber, only append. Readers preserve sections with unknown
/// codes (forward compatibility); writers only emit the codes below.
enum class SectionKind : std::uint32_t {
  Meta = 1,         // reserved for future structured metadata
  DdpgAgent = 2,    // rl::Ddpg::save_checkpoint blob (index = agent slot)
  TrainLoop = 3,    // core::train_agent loop state (index = agent slot)
  Environment = 4,  // env::RaEnvironment::save_state blob (index = RA)
  Coordinator = 5,  // core::PerformanceCoordinator state
  MessageBus = 6,   // core::MessageBus state
  SystemLoop = 7,   // core::EdgeSliceSystem run-loop counters
  Policy = 8,       // binary nn::Mlp (agent-cache entries)
};

/// Human-readable section name for error messages and tooling; unknown
/// codes map to "unknown".
const char* section_kind_name(SectionKind kind);

}  // namespace edgeslice::ckpt
