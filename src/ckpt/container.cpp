#include "ckpt/container.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/binio.h"
#include "common/metrics.h"
#include "common/trace_span.h"
#include "obs/event_log.h"

namespace edgeslice::ckpt {

namespace {

/// Sanity bounds a hostile header must not be able to exceed: a
/// checkpoint never has thousands of sections, and no single payload
/// (the replay buffer dominates) approaches a gigabyte.
constexpr std::uint64_t kMaxSections = 4096;
constexpr std::uint64_t kMaxFingerprintBytes = 1ull << 20;
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("CheckpointReader: " + what);
}

}  // namespace

const char* section_kind_name(SectionKind kind) {
  switch (kind) {
    case SectionKind::Meta: return "meta";
    case SectionKind::DdpgAgent: return "ddpg_agent";
    case SectionKind::TrainLoop: return "train_loop";
    case SectionKind::Environment: return "environment";
    case SectionKind::Coordinator: return "coordinator";
    case SectionKind::MessageBus: return "message_bus";
    case SectionKind::SystemLoop: return "system_loop";
    case SectionKind::Policy: return "policy";
  }
  return "unknown";
}

CheckpointWriter::CheckpointWriter(std::string config_fingerprint)
    : fingerprint_(std::move(config_fingerprint)) {
  if (fingerprint_.size() > kMaxFingerprintBytes)
    throw std::invalid_argument("CheckpointWriter: fingerprint too large");
}

void CheckpointWriter::add_section(SectionKind kind, std::uint32_t index,
                                   std::string payload) {
  if (payload.size() > kMaxPayloadBytes)
    throw std::invalid_argument("CheckpointWriter: section payload too large");
  if (sections_.size() >= kMaxSections)
    throw std::invalid_argument("CheckpointWriter: too many sections");
  sections_.push_back(Section{kind, index, std::move(payload)});
}

std::string CheckpointWriter::bytes() const {
  std::ostringstream out;
  out.write(kCkptMagic, sizeof(kCkptMagic));
  write_u32(out, kCkptFormatVersion);
  write_string(out, fingerprint_);
  write_u64(out, sections_.size());
  const std::string header = out.str();
  write_u32(out, crc32(header));
  for (const Section& s : sections_) {
    write_u32(out, static_cast<std::uint32_t>(s.kind));
    write_u32(out, s.index);
    write_u64(out, s.payload.size());
    write_u32(out, crc32(s.payload));
    out.write(s.payload.data(),
              static_cast<std::streamsize>(s.payload.size()));
  }
  return out.str();
}

bool CheckpointWriter::write_file(const std::string& path) const {
  const auto span = global_tracer().span("ckpt.save");
  const std::string image = bytes();
  if (!atomic_write_file(path, image)) return false;
  auto& metrics = global_metrics();
  metrics.counter("ckpt.saves").add();
  metrics.gauge("ckpt.last_save_bytes").set(static_cast<double>(image.size()));
  obs::Event event;
  event.kind = obs::EventKind::CheckpointSaved;
  event.value = static_cast<double>(image.size());
  obs::global_event_log().record(event);
  return true;
}

CheckpointReader CheckpointReader::from_bytes(const std::string& bytes) {
  std::istringstream in(bytes);
  constexpr const char* kContext = "CheckpointReader";

  char magic[sizeof(kCkptMagic)] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, sizeof(magic)) !=
                 std::string(kCkptMagic, sizeof(kCkptMagic))) {
    fail("bad magic (not an ESCK checkpoint)");
  }
  const std::uint32_t version = read_u32(in, kContext);
  if (version != kCkptFormatVersion) {
    fail("unsupported format version " + std::to_string(version) + " (expected " +
         std::to_string(kCkptFormatVersion) + ")");
  }

  CheckpointReader reader;
  reader.fingerprint_ = read_string(in, kContext, kMaxFingerprintBytes);
  const std::uint64_t section_count = read_u64(in, kContext);
  if (section_count > kMaxSections) fail("absurd section count");
  const auto header_end = static_cast<std::size_t>(in.tellg());
  const std::uint32_t stored_header_crc = read_u32(in, kContext);
  if (crc32(bytes.data(), header_end) != stored_header_crc) {
    fail("header CRC mismatch");
  }

  reader.sections_.reserve(static_cast<std::size_t>(section_count));
  for (std::uint64_t i = 0; i < section_count; ++i) {
    Section section;
    section.kind = static_cast<SectionKind>(read_u32(in, kContext));
    section.index = read_u32(in, kContext);
    const std::uint64_t payload_len = read_u64(in, kContext);
    if (payload_len > kMaxPayloadBytes) {
      fail("section " + std::to_string(i) + " declares absurd payload size");
    }
    const std::uint32_t stored_crc = read_u32(in, kContext);
    section.payload.resize(static_cast<std::size_t>(payload_len));
    in.read(section.payload.data(), static_cast<std::streamsize>(payload_len));
    if (!in || static_cast<std::uint64_t>(in.gcount()) != payload_len) {
      fail("truncated payload in section " + std::to_string(i) + " (" +
           section_kind_name(section.kind) + ")");
    }
    if (crc32(section.payload) != stored_crc) {
      fail("payload CRC mismatch in section " + std::to_string(i) + " (" +
           section_kind_name(section.kind) + ")");
    }
    reader.sections_.push_back(std::move(section));
  }
  if (in.peek() != std::istringstream::traits_type::eof()) {
    fail("trailing bytes after last section");
  }
  return reader;
}

CheckpointReader CheckpointReader::from_file(const std::string& path) {
  const auto span = global_tracer().span("ckpt.load");
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) fail("I/O error reading " + path);
  const std::string image = buffer.str();

  CheckpointReader reader = from_bytes(image);
  auto& metrics = global_metrics();
  metrics.counter("ckpt.loads").add();
  metrics.gauge("ckpt.last_load_bytes").set(static_cast<double>(image.size()));
  obs::Event event;
  event.kind = obs::EventKind::CheckpointLoaded;
  event.value = static_cast<double>(image.size());
  obs::global_event_log().record(event);
  return reader;
}

const Section* CheckpointReader::find(SectionKind kind, std::uint32_t index) const {
  for (const Section& s : sections_) {
    if (s.kind == kind && s.index == index) return &s;
  }
  return nullptr;
}

const std::string& CheckpointReader::require(SectionKind kind,
                                             std::uint32_t index) const {
  const Section* section = find(kind, index);
  if (section == nullptr) {
    fail(std::string("missing required section ") + section_kind_name(kind) +
         "[" + std::to_string(index) + "]");
  }
  return section->payload;
}

}  // namespace edgeslice::ckpt
