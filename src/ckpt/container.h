// The versioned, CRC-checked checkpoint container (FORMATS.md Sec. 2).
//
// Layout (all integers little-endian, see common/binio.h):
//
//   magic "ESCK" | u32 version | string fingerprint | u64 section_count
//   | u32 header_crc | section*
//
//   section := u32 kind | u32 index | u64 payload_len | u32 payload_crc
//              | payload bytes
//
// header_crc covers every byte before it; each payload_crc covers its
// payload. The fingerprint is a canonical text rendering of the
// experiment configuration — load paths compare it against the running
// config so a checkpoint can never be restored into a system of a
// different shape by accident.
//
// Writers assemble in memory and publish via tmp+rename, so a crash (or
// a reader racing the writer) never observes a torn checkpoint. Readers
// validate magic, version, both CRC levels, and every length prefix
// before allocating; corruption of any kind throws std::runtime_error —
// never UB (the hostile-file tests drive these paths under the
// sanitizers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/format.h"

namespace edgeslice::ckpt {

/// One decoded container section. `index` disambiguates repeated kinds
/// (e.g. one Environment section per RA).
struct Section {
  SectionKind kind = SectionKind::Meta;
  std::uint32_t index = 0;
  std::string payload;
};

class CheckpointWriter {
 public:
  /// `config_fingerprint` is the canonical configuration text stored in
  /// the header (see CheckpointReader::fingerprint).
  explicit CheckpointWriter(std::string config_fingerprint);

  /// Append one section. Sections are written in add order; (kind, index)
  /// pairs should be unique — find() on the reader returns the first.
  void add_section(SectionKind kind, std::uint32_t index, std::string payload);

  /// Assemble the complete container image.
  std::string bytes() const;

  /// Assemble and atomically publish to `path` (tmp + rename). Emits the
  /// ckpt.save span, ckpt.saves / ckpt.last_save_bytes metrics, and a
  /// CheckpointSaved flight-recorder event. Returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::string fingerprint_;
  std::vector<Section> sections_;
};

class CheckpointReader {
 public:
  /// Decode and fully validate a container image. Throws
  /// std::runtime_error naming the failure (bad magic, unsupported
  /// version, CRC mismatch, truncation, trailing bytes).
  static CheckpointReader from_bytes(const std::string& bytes);

  /// Read and decode `path`. Emits the ckpt.load span, ckpt.loads /
  /// ckpt.last_load_bytes metrics, and a CheckpointLoaded event. Throws
  /// std::runtime_error when the file is missing or invalid.
  static CheckpointReader from_file(const std::string& path);

  /// The canonical configuration text the checkpoint was taken under.
  const std::string& fingerprint() const { return fingerprint_; }

  const std::vector<Section>& sections() const { return sections_; }

  /// First section matching (kind, index), or nullptr.
  const Section* find(SectionKind kind, std::uint32_t index = 0) const;

  /// Like find(), but throws std::runtime_error naming the missing
  /// section. Returns the payload.
  const std::string& require(SectionKind kind, std::uint32_t index = 0) const;

 private:
  CheckpointReader() = default;

  std::string fingerprint_;
  std::vector<Section> sections_;
};

}  // namespace edgeslice::ckpt
