#include "ckpt/agent_cache.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "ckpt/container.h"

namespace edgeslice::ckpt {

std::string fingerprint_digest(const std::string& fingerprint) {
  // FNV-1a, 64-bit (offset basis / prime per the reference parameters).
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : fingerprint) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(h));
  return std::string(hex, 16);
}

std::string cache_entry_path(const std::string& dir, const std::string& fingerprint) {
  return (std::filesystem::path(dir) / (fingerprint_digest(fingerprint) + ".ckpt"))
      .string();
}

bool store_policy(const std::string& dir, const std::string& fingerprint,
                  const nn::Mlp& policy) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::ostringstream payload;
  policy.save_binary(payload);
  CheckpointWriter writer(fingerprint);
  writer.add_section(SectionKind::Policy, 0, payload.str());
  return writer.write_file(cache_entry_path(dir, fingerprint));
}

std::optional<nn::Mlp> load_policy(const std::string& dir,
                                   const std::string& fingerprint) {
  const std::string path = cache_entry_path(dir, fingerprint);
  if (!std::filesystem::exists(path)) return std::nullopt;
  const CheckpointReader reader = CheckpointReader::from_file(path);
  if (reader.fingerprint() != fingerprint) {
    throw std::runtime_error("agent cache: fingerprint mismatch in " + path +
                             " (digest collision or renamed entry)");
  }
  std::istringstream payload(reader.require(SectionKind::Policy));
  return nn::Mlp::load_binary(payload);
}

}  // namespace edgeslice::ckpt
