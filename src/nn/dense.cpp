#include "nn/dense.h"

#include <cmath>

namespace edgeslice::nn {

Dense::Dense(std::size_t in, std::size_t out, Activation activation, Rng& rng)
    : activation_(activation),
      weights_(in, out),
      bias_(1, out),
      weight_grad_(in, out),
      bias_grad_(1, out) {
  // He-style initialization scaled for the rectifier family; also a sane
  // default for tanh/sigmoid at these widths.
  const double scale = std::sqrt(2.0 / static_cast<double>(in));
  for (auto& w : weights_.data()) w = rng.normal(0.0, scale);
}

Matrix Dense::forward(const Matrix& x) {
  cached_input_ = x;
  cached_pre_activation_ = x.matmul(weights_);
  cached_pre_activation_.add_row_broadcast_assign(bias_);
  return activate(cached_pre_activation_, activation_);
}

Matrix Dense::infer(const Matrix& x) const {
  Matrix z = x.matmul(weights_);
  z.add_row_broadcast_assign(bias_);
  return activate(z, activation_);
}

void Dense::infer_into(const Matrix& x, Matrix& out) const {
  x.matmul_into(weights_, out);
  out.add_row_broadcast_assign(bias_);
  activate_assign(out, activation_);
}

Matrix Dense::backward(const Matrix& grad_out) {
  // dL/dZ = dL/dY ⊙ act'(Z)
  Matrix grad_z = activate_grad(cached_pre_activation_, activation_);
  grad_z.hadamard_assign(grad_out);
  weight_grad_.add_transposed_matmul(cached_input_, grad_z);
  bias_grad_ += grad_z.column_sums();
  return grad_z.matmul_transposed(weights_);
}

void Dense::zero_grad() {
  weight_grad_.fill(0.0);
  bias_grad_.fill(0.0);
}

}  // namespace edgeslice::nn
