#include "nn/matrix.h"

#include <cmath>
#include <stdexcept>

#include "nn/gemm.h"

namespace edgeslice::nn {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::row(const std::vector<double>& v) {
  Matrix m(1, v.size());
  m.data_ = v;
  return m;
}

Matrix Matrix::column(const std::vector<double>& v) {
  Matrix m(v.size(), 1);
  m.data_ = v;
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::row_vector(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row_vector");
  return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
          data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
}

void Matrix::set_row(std::size_t r, const std::vector<double>& v) {
  if (r >= rows_ || v.size() != cols_) throw std::out_of_range("Matrix::set_row");
  std::copy(v.begin(), v.end(), data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::matmul(const Matrix& other) const {
  Matrix out;
  matmul_into(other, out);
  return out;
}

void Matrix::matmul_into(const Matrix& other, Matrix& out) const {
  if (cols_ != other.rows_) throw std::invalid_argument("Matrix::matmul: shape mismatch");
  if (&out == this || &out == &other)
    throw std::invalid_argument("Matrix::matmul_into: output aliases an operand");
  if (out.rows_ != rows_ || out.cols_ != other.cols_) {
    out = Matrix(rows_, other.cols_);
  } else {
    out.fill(0.0);
  }
  if (active_gemm_backend() == GemmBackend::Avx2) {
    detail::gemm_nn_avx2(data_.data(), other.data_.data(), out.data_.data(), rows_,
                         cols_, other.cols_);
  } else {
    detail::gemm_nn_scalar(data_.data(), other.data_.data(), out.data_.data(), rows_,
                           cols_, other.cols_);
  }
}

Matrix Matrix::transposed_matmul(const Matrix& other) const {
  if (rows_ != other.rows_)
    throw std::invalid_argument("Matrix::transposed_matmul: shape mismatch");
  Matrix out(cols_, other.cols_);
  out.add_transposed_matmul(*this, other);
  return out;
}

Matrix& Matrix::add_transposed_matmul(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_ || rows_ != a.cols_ || cols_ != b.cols_)
    throw std::invalid_argument("Matrix::add_transposed_matmul: shape mismatch");
  // this(i, j) += sum_k a(k, i) * b(k, j).
  if (active_gemm_backend() == GemmBackend::Avx2) {
    detail::gemm_at_avx2(a.data_.data(), b.data_.data(), data_.data(), a.cols_,
                         a.rows_, b.cols_);
  } else {
    detail::gemm_at_scalar(a.data_.data(), b.data_.data(), data_.data(), a.cols_,
                           a.rows_, b.cols_);
  }
  return *this;
}

Matrix Matrix::matmul_transposed(const Matrix& other) const {
  if (cols_ != other.cols_)
    throw std::invalid_argument("Matrix::matmul_transposed: shape mismatch");
  // out(i, j) = <row_i(this), row_j(other)>: contiguous dot products.
  Matrix out(rows_, other.rows_);
  if (active_gemm_backend() == GemmBackend::Avx2) {
    detail::gemm_bt_avx2(data_.data(), other.data_.data(), out.data_.data(), rows_,
                         cols_, other.rows_);
  } else {
    detail::gemm_bt_scalar(data_.data(), other.data_.data(), out.data_.data(), rows_,
                           cols_, other.rows_);
  }
  return out;
}

void Matrix::check_same_shape(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Matrix: shape mismatch");
}

Matrix Matrix::operator+(const Matrix& other) const {
  check_same_shape(other);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  check_same_shape(other);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  check_same_shape(other);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  for (auto& x : out.data_) x *= s;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  check_same_shape(other);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  check_same_shape(other);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Matrix& Matrix::hadamard_assign(const Matrix& other) {
  check_same_shape(other);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Matrix Matrix::add_row_broadcast(const Matrix& bias) const {
  Matrix out = *this;
  out.add_row_broadcast_assign(bias);
  return out;
}

Matrix& Matrix::add_row_broadcast_assign(const Matrix& bias) {
  if (bias.rows_ != 1 || bias.cols_ != cols_)
    throw std::invalid_argument("Matrix::add_row_broadcast: bias must be 1 x cols");
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) += bias(0, c);
  return *this;
}

void Matrix::paste_columns(std::size_t c0, const Matrix& src) {
  if (src.rows_ != rows_ || c0 + src.cols_ > cols_)
    throw std::out_of_range("Matrix::paste_columns");
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < src.cols_; ++c) (*this)(r, c0 + c) = src(r, c);
}

Matrix Matrix::column_sums() const {
  Matrix out(1, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(0, c) += (*this)(r, c);
  return out;
}

Matrix Matrix::map(const std::function<double(double)>& f) const {
  Matrix out = *this;
  for (auto& x : out.data_) x = f(x);
  return out;
}

double Matrix::total() const {
  double acc = 0.0;
  for (double x : data_) acc += x;
  return acc;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

void Matrix::fill(double v) {
  for (auto& x : data_) x = v;
}

Matrix Matrix::slice_columns(std::size_t c0, std::size_t c1) const {
  if (c0 > c1 || c1 > cols_) throw std::out_of_range("Matrix::slice_columns");
  Matrix out(rows_, c1 - c0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = c0; c < c1; ++c) out(r, c - c0) = (*this)(r, c);
  return out;
}

Matrix hconcat(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("hconcat: row mismatch");
  // The column copy is exactly what paste_columns already implements;
  // keeping a second hand-rolled copy here let the two drift once.
  Matrix out(a.rows(), a.cols() + b.cols());
  out.paste_columns(0, a);
  out.paste_columns(a.cols(), b);
  return out;
}

}  // namespace edgeslice::nn
