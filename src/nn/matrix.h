// Dense row-major matrix of doubles.
//
// This is the numeric substrate of the neural network library. It favors
// clarity and determinism over peak throughput: the paper's actor/critic
// networks are 2x128 fully connected layers, so naive O(n^3) matmul is
// ample on the batch sizes involved.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <vector>

namespace edgeslice::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer list: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// A 1xN row vector view of a std::vector.
  static Matrix row(const std::vector<double>& v);
  /// An Nx1 column vector.
  static Matrix column(const std::vector<double>& v);
  /// Identity matrix.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// The r-th row as a std::vector (copy).
  std::vector<double> row_vector(std::size_t r) const;
  /// Overwrite the r-th row.
  void set_row(std::size_t r, const std::vector<double>& v);

  Matrix transpose() const;

  /// Matrix product this * other. Dimension mismatch throws.
  Matrix matmul(const Matrix& other) const;

  /// Elementwise operations (dimension mismatch throws).
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix hadamard(const Matrix& other) const;
  Matrix operator*(double s) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  /// Add a 1xC row vector to every row (broadcast bias add).
  Matrix add_row_broadcast(const Matrix& bias) const;

  /// Column sums as a 1xC matrix.
  Matrix column_sums() const;

  /// Apply f to every element, returning a new matrix.
  Matrix map(const std::function<double(double)>& f) const;

  /// Sum of all elements.
  double total() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  void fill(double v);

  /// Columns [c0, c1) as a new matrix.
  Matrix slice_columns(std::size_t c0, std::size_t c1) const;

 private:
  void check_same_shape(const Matrix& other) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Horizontal concatenation [a | b]; row counts must match.
Matrix hconcat(const Matrix& a, const Matrix& b);

}  // namespace edgeslice::nn
