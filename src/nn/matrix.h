// Dense row-major matrix of doubles.
//
// This is the numeric substrate of the neural network library. The
// paper's actor/critic networks are 2x128 fully connected layers, so the
// products are small-to-medium GEMMs. Every product routes through the
// runtime-dispatched kernels of nn/gemm.h (scalar reference or AVX2/FMA
// microkernel, selected via EDGESLICE_GEMM); the transposed-operand
// variants avoid materializing transposes in backprop. Under either
// backend a product accumulates contributions in ascending-k order with
// one accumulator chain per element, so results are deterministic,
// independent of blocking, and — crucially for cross-agent batched
// inference — row r of a batched product is bit-identical to the 1-row
// product of row r alone.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <vector>

namespace edgeslice::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer list: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// A 1xN row vector view of a std::vector.
  static Matrix row(const std::vector<double>& v);
  /// An Nx1 column vector.
  static Matrix column(const std::vector<double>& v);
  /// Identity matrix.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// The r-th row as a std::vector (copy).
  std::vector<double> row_vector(std::size_t r) const;
  /// Overwrite the r-th row.
  void set_row(std::size_t r, const std::vector<double>& v);

  Matrix transpose() const;

  /// Matrix product this * other. Dimension mismatch throws.
  Matrix matmul(const Matrix& other) const;

  /// Matrix product into a caller-owned output: out = this * other.
  /// `out` is reshaped if needed (no allocation when the shape already
  /// matches), so hot paths and kernel-only benchmarks pay for the GEMM,
  /// not for allocating and zero-filling a fresh result every call.
  /// Aliasing `out` with either operand throws.
  void matmul_into(const Matrix& other, Matrix& out) const;

  /// this^T * other without materializing the transpose (the backprop
  /// weight-gradient product X^T * dZ). Contributions accumulate in
  /// ascending-k order, matching transpose().matmul(other) bit-for-bit.
  Matrix transposed_matmul(const Matrix& other) const;

  /// this * other^T without materializing the transpose (the backprop
  /// input-gradient product dZ * W^T).
  Matrix matmul_transposed(const Matrix& other) const;

  /// Accumulate a.transposed_matmul(b) into this (dimension mismatch
  /// throws). Saves the temporary in gradient accumulation.
  Matrix& add_transposed_matmul(const Matrix& a, const Matrix& b);

  /// Elementwise operations (dimension mismatch throws).
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix hadamard(const Matrix& other) const;
  Matrix operator*(double s) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  /// In-place Hadamard product: this ⊙= other.
  Matrix& hadamard_assign(const Matrix& other);

  /// Add a 1xC row vector to every row (broadcast bias add).
  Matrix add_row_broadcast(const Matrix& bias) const;

  /// In-place broadcast bias add.
  Matrix& add_row_broadcast_assign(const Matrix& bias);

  /// Overwrite columns [c0, c0 + src.cols()) with src (row counts must
  /// match). The in-place complement of hconcat for reusing a [A | B]
  /// buffer when only the B block changes.
  void paste_columns(std::size_t c0, const Matrix& src);

  /// Column sums as a 1xC matrix.
  Matrix column_sums() const;

  /// Apply f to every element, returning a new matrix.
  Matrix map(const std::function<double(double)>& f) const;

  /// Sum of all elements.
  double total() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  void fill(double v);

  /// Columns [c0, c1) as a new matrix.
  Matrix slice_columns(std::size_t c0, std::size_t c1) const;

 private:
  void check_same_shape(const Matrix& other) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Horizontal concatenation [a | b]; row counts must match.
Matrix hconcat(const Matrix& a, const Matrix& b);

}  // namespace edgeslice::nn
