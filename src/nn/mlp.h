// Multi-layer perceptron: a stack of Dense layers.
//
// Matches the paper's actor/critic architecture (Sec. VI-A): two hidden
// layers of 128 LeakyReLU units, with a configurable output head
// (sigmoid for the actor, identity for the critic).
#pragma once

#include <iosfwd>
#include <vector>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/dense.h"

namespace edgeslice::nn {

class Mlp {
 public:
  /// `sizes` = {in, hidden..., out}. Hidden layers use `hidden`,
  /// the final layer uses `output`.
  Mlp(const std::vector<std::size_t>& sizes, Activation hidden, Activation output,
      Rng& rng);

  /// Forward pass caching intermediate state for backward().
  Matrix forward(const Matrix& x);
  /// Stateless inference (does not disturb cached training state).
  Matrix infer(const Matrix& x) const;
  /// Convenience: single input vector -> single output vector.
  std::vector<double> infer_vector(const std::vector<double>& x) const;

  /// Allocation-free inference: layer i's output lands in workspace[i]
  /// (resized to layer count / reshaped on batch change; steady-state
  /// calls allocate nothing), and the returned reference is
  /// workspace.back(). Bit-identical to infer(x) — this is the hot-path
  /// variant batched cross-agent inference runs every interval.
  const Matrix& infer_into(const Matrix& x, std::vector<Matrix>& workspace) const;

  /// Backprop dL/dOutput through the whole stack; accumulates parameter
  /// gradients and returns dL/dInput.
  Matrix backward(const Matrix& grad_out);

  void zero_grad();

  /// Register all parameters with an optimizer.
  void attach_to(Adam& optimizer);

  /// Polyak soft update: this <- tau * source + (1 - tau) * this.
  /// Used for the DDPG target networks.
  void soft_update_from(const Mlp& source, double tau);

  /// Hard copy of parameters.
  void copy_parameters_from(const Mlp& source);

  /// Flattened parameter vector (for TRPO's natural-gradient updates).
  std::vector<double> flat_parameters() const;
  void set_flat_parameters(const std::vector<double>& theta);
  /// Flattened accumulated gradient (same ordering as flat_parameters()).
  std::vector<double> flat_gradients() const;
  std::size_t parameter_count() const;

  std::size_t in_dim() const { return layers_.front().in_dim(); }
  std::size_t out_dim() const { return layers_.back().out_dim(); }
  std::vector<Dense>& layers() { return layers_; }
  const std::vector<Dense>& layers() const { return layers_; }

  /// Layer sizes {in, hidden..., out} (the constructor's `sizes`).
  std::vector<std::size_t> layer_sizes() const;

  /// Text serialization: architecture (sizes + activations) and parameters.
  /// Round-trips exactly (values written as hex doubles). This is the
  /// legacy ".mlp" cache format (FORMATS.md "Legacy .mlp"); load()
  /// validates the header (size and activation ranges), rejects
  /// non-finite parameters, and reports the layer/offset at which a
  /// truncated parameter block ends.
  void save(std::ostream& out) const;
  static Mlp load(std::istream& in);

  /// Binary serialization via common/binio (little-endian, exact f64 bit
  /// patterns) — the "mlp network blob" embedded in checkpoint sections
  /// (FORMATS.md). Same validation posture as the text loader.
  void save_binary(std::ostream& out) const;
  static Mlp load_binary(std::istream& in);

 private:
  std::vector<Dense> layers_;
};

}  // namespace edgeslice::nn
