#include "nn/adam.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edgeslice::nn {

void Adam::attach(Matrix* param, Matrix* grad) {
  if (param == nullptr || grad == nullptr) throw std::invalid_argument("Adam::attach: null");
  if (param->rows() != grad->rows() || param->cols() != grad->cols())
    throw std::invalid_argument("Adam::attach: shape mismatch");
  slots_.push_back(Slot{param, grad, Matrix(param->rows(), param->cols()),
                        Matrix(param->rows(), param->cols())});
}

void Adam::step() { step(1.0); }

void Adam::step(double scale) {
  ++t_;
  const double b1t = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double b2t = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (auto& slot : slots_) {
    auto& p = slot.param->data();
    auto& g = slot.grad->data();
    auto& m = slot.m.data();
    auto& v = slot.v.data();
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double grad = g[i] * scale;
      m[i] = config_.beta1 * m[i] + (1.0 - config_.beta1) * grad;
      v[i] = config_.beta2 * v[i] + (1.0 - config_.beta2) * grad * grad;
      const double m_hat = m[i] / b1t;
      const double v_hat = v[i] / b2t;
      p[i] -= config_.learning_rate * m_hat / (std::sqrt(v_hat) + config_.epsilon);
      g[i] = 0.0;
    }
  }
}

AdamState Adam::export_state() const {
  AdamState state;
  state.step_count = t_;
  std::size_t total = 0;
  for (const auto& slot : slots_) total += slot.m.size();
  state.m.reserve(total);
  state.v.reserve(total);
  for (const auto& slot : slots_) {
    const auto& m = slot.m.data();
    const auto& v = slot.v.data();
    state.m.insert(state.m.end(), m.begin(), m.end());
    state.v.insert(state.v.end(), v.begin(), v.end());
  }
  return state;
}

void Adam::restore_state(const AdamState& state) {
  std::size_t total = 0;
  for (const auto& slot : slots_) total += slot.m.size();
  if (state.m.size() != total || state.v.size() != total) {
    throw std::invalid_argument("Adam::restore_state: moment size mismatch");
  }
  t_ = state.step_count;
  std::size_t offset = 0;
  for (auto& slot : slots_) {
    auto& m = slot.m.data();
    auto& v = slot.v.data();
    std::copy(state.m.begin() + static_cast<std::ptrdiff_t>(offset),
              state.m.begin() + static_cast<std::ptrdiff_t>(offset + m.size()), m.begin());
    std::copy(state.v.begin() + static_cast<std::ptrdiff_t>(offset),
              state.v.begin() + static_cast<std::ptrdiff_t>(offset + v.size()), v.begin());
    offset += m.size();
  }
}

}  // namespace edgeslice::nn
