#include "nn/adam.h"

#include <cmath>
#include <stdexcept>

namespace edgeslice::nn {

void Adam::attach(Matrix* param, Matrix* grad) {
  if (param == nullptr || grad == nullptr) throw std::invalid_argument("Adam::attach: null");
  if (param->rows() != grad->rows() || param->cols() != grad->cols())
    throw std::invalid_argument("Adam::attach: shape mismatch");
  slots_.push_back(Slot{param, grad, Matrix(param->rows(), param->cols()),
                        Matrix(param->rows(), param->cols())});
}

void Adam::step() { step(1.0); }

void Adam::step(double scale) {
  ++t_;
  const double b1t = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double b2t = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (auto& slot : slots_) {
    auto& p = slot.param->data();
    auto& g = slot.grad->data();
    auto& m = slot.m.data();
    auto& v = slot.v.data();
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double grad = g[i] * scale;
      m[i] = config_.beta1 * m[i] + (1.0 - config_.beta1) * grad;
      v[i] = config_.beta2 * v[i] + (1.0 - config_.beta2) * grad * grad;
      const double m_hat = m[i] / b1t;
      const double v_hat = v[i] / b2t;
      p[i] -= config_.learning_rate * m_hat / (std::sqrt(v_hat) + config_.epsilon);
      g[i] = 0.0;
    }
  }
}

}  // namespace edgeslice::nn
