// Fully-connected layer with cached forward state for backprop.
#pragma once

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/matrix.h"

namespace edgeslice::nn {

/// Y = activation(X * W + b), X is batch x in, W is in x out, b is 1 x out.
class Dense {
 public:
  Dense(std::size_t in, std::size_t out, Activation activation, Rng& rng);

  /// Forward pass; caches X and the pre-activation Z for backward().
  Matrix forward(const Matrix& x);

  /// Forward without caching (inference only; safe to call concurrently
  /// with a cached training forward pass being alive).
  Matrix infer(const Matrix& x) const;

  /// Allocation-free infer into a caller-owned buffer (reshaped only on
  /// first use / batch change). Bit-identical to infer(); `out` must not
  /// alias `x`.
  void infer_into(const Matrix& x, Matrix& out) const;

  /// Backward pass: given dL/dY, accumulates dL/dW, dL/db and returns dL/dX.
  Matrix backward(const Matrix& grad_out);

  /// Zero the accumulated gradients.
  void zero_grad();

  std::size_t in_dim() const { return weights_.rows(); }
  std::size_t out_dim() const { return weights_.cols(); }
  Activation activation() const { return activation_; }

  Matrix& weights() { return weights_; }
  Matrix& bias() { return bias_; }
  const Matrix& weights() const { return weights_; }
  const Matrix& bias() const { return bias_; }
  Matrix& weight_grad() { return weight_grad_; }
  Matrix& bias_grad() { return bias_grad_; }
  const Matrix& weight_grad() const { return weight_grad_; }
  const Matrix& bias_grad() const { return bias_grad_; }

 private:
  Activation activation_;
  Matrix weights_;
  Matrix bias_;
  Matrix weight_grad_;
  Matrix bias_grad_;
  Matrix cached_input_;
  Matrix cached_pre_activation_;
};

}  // namespace edgeslice::nn
