// Runtime-dispatched GEMM backends for the nn substrate.
//
// Every Matrix product (matmul, transposed_matmul, matmul_transposed,
// add_transposed_matmul) routes through one of two backends:
//
//   Scalar — the always-available reference implementation: k-tiled
//     row-major loops, each output element accumulated as
//     round(round(a*b) + acc) in ascending-k order. Bit-identical to the
//     pre-dispatch implementation; the determinism contract every
//     bit-identity suite in the repo is written against.
//   Avx2 — AVX2/FMA register-tiled microkernels. Each output element is
//     a fold over ascending k of fma(a, b, acc) — one rounding per term
//     instead of two — so results differ from Scalar by bounded rounding
//     (see DESIGN.md for the bound) but are themselves fully
//     deterministic: independent of tiling, of the batch (row r of an
//     m-row product equals the 1-row product of row r, bit for bit), and
//     of every other matrix dimension.
//
// Selection: the EDGESLICE_GEMM environment variable (values in
// kGemmModeNames: "scalar", "avx2", "auto"), read once on first use;
// set_gemm_backend() overrides it programmatically (tests, benches).
// "auto" (also the unset default) picks Avx2 when the CPU supports
// AVX2+FMA and Scalar otherwise. Pinning "avx2" on a CPU without the
// instructions throws instead of silently falling back — a pinned
// backend is a reproducibility statement, not a hint.
#pragma once

#include <cstddef>

namespace edgeslice::nn {

/// A resolved kernel backend (what actually runs).
enum class GemmBackend { Scalar = 0, Avx2 = 1 };

/// Accepted EDGESLICE_GEMM values ("auto" resolves per CPU support).
/// docs_check.cmake pins the EXPERIMENTS.md documentation to this list.
inline constexpr const char* kGemmModeNames[] = {"scalar", "avx2", "auto"};

/// True when the CPU (and build target) can run the Avx2 backend.
bool cpu_supports_avx2_fma();

/// The backend the next product will use. First call resolves
/// EDGESLICE_GEMM (throws std::invalid_argument on an unknown value or an
/// unsupported explicit "avx2" pin); later calls return the cached choice.
GemmBackend active_gemm_backend();

/// Pin the backend programmatically (overrides the environment). Throws
/// std::invalid_argument when Avx2 is requested but unsupported.
void set_gemm_backend(GemmBackend backend);

/// Resolve a mode string from kGemmModeNames and pin it ("auto" re-runs
/// CPU detection). Throws std::invalid_argument on anything else.
void set_gemm_backend(const char* mode);

/// Drop any pin: the next active_gemm_backend() re-reads EDGESLICE_GEMM.
void reset_gemm_backend();

const char* gemm_backend_name(GemmBackend backend);

namespace detail {

// Raw kernels over contiguous row-major buffers. All of them ACCUMULATE
// into c (callers zero-fill first when they want a plain product), except
// gemm_bt_* which overwrites — its per-element dot product needs no
// accumulator priming. Shapes: c is m x n throughout.
//   nn: c += a(m x k) * b(k x n)
//   at: c += a(k x m)^T * b(k x n)      [a stored k x m]
//   bt: c  = a(m x k) * b(n x k)^T      [b stored n x k]

void gemm_nn_scalar(const double* a, const double* b, double* c, std::size_t m,
                    std::size_t k, std::size_t n);
void gemm_at_scalar(const double* a, const double* b, double* c, std::size_t m,
                    std::size_t k, std::size_t n);
void gemm_bt_scalar(const double* a, const double* b, double* c, std::size_t m,
                    std::size_t k, std::size_t n);

// Compiled with function-level target("avx2,fma") attributes; calling any
// of these on a CPU without AVX2+FMA is undefined — the dispatcher never
// does. On non-x86 builds they forward to the scalar kernels (and
// cpu_supports_avx2_fma() is false, so they are unreachable anyway).
void gemm_nn_avx2(const double* a, const double* b, double* c, std::size_t m,
                  std::size_t k, std::size_t n);
void gemm_at_avx2(const double* a, const double* b, double* c, std::size_t m,
                  std::size_t k, std::size_t n);
void gemm_bt_avx2(const double* a, const double* b, double* c, std::size_t m,
                  std::size_t k, std::size_t n);

}  // namespace detail

}  // namespace edgeslice::nn
