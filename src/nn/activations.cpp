#include "nn/activations.h"

#include <cmath>

namespace edgeslice::nn {

double activate(double z, Activation a) {
  switch (a) {
    case Activation::Identity: return z;
    case Activation::Relu: return z > 0.0 ? z : 0.0;
    case Activation::LeakyRelu: return z > 0.0 ? z : kLeakyReluSlope * z;
    case Activation::Tanh: return std::tanh(z);
    case Activation::Sigmoid: return 1.0 / (1.0 + std::exp(-z));
    case Activation::Softplus:
      // Numerically stable log(1 + e^z).
      return z > 30.0 ? z : std::log1p(std::exp(z));
  }
  return z;
}

double activate_grad(double z, Activation a) {
  switch (a) {
    case Activation::Identity: return 1.0;
    case Activation::Relu: return z > 0.0 ? 1.0 : 0.0;
    case Activation::LeakyRelu: return z > 0.0 ? 1.0 : kLeakyReluSlope;
    case Activation::Tanh: {
      const double t = std::tanh(z);
      return 1.0 - t * t;
    }
    case Activation::Sigmoid: {
      const double s = 1.0 / (1.0 + std::exp(-z));
      return s * (1.0 - s);
    }
    case Activation::Softplus:
      return 1.0 / (1.0 + std::exp(-z));
  }
  return 1.0;
}

Matrix activate(const Matrix& z, Activation a) {
  return z.map([a](double x) { return activate(x, a); });
}

void activate_assign(Matrix& z, Activation a) {
  // One switch per matrix instead of one indirect call per element; each
  // branch applies exactly the scalar activate(x, a) above.
  auto& data = z.data();
  switch (a) {
    case Activation::Identity:
      return;
    case Activation::Relu:
      for (auto& x : data) x = x > 0.0 ? x : 0.0;
      return;
    case Activation::LeakyRelu:
      for (auto& x : data) x = x > 0.0 ? x : kLeakyReluSlope * x;
      return;
    case Activation::Tanh:
      for (auto& x : data) x = std::tanh(x);
      return;
    case Activation::Sigmoid:
      for (auto& x : data) x = 1.0 / (1.0 + std::exp(-x));
      return;
    case Activation::Softplus:
      for (auto& x : data) x = x > 30.0 ? x : std::log1p(std::exp(x));
      return;
  }
}

Matrix activate_grad(const Matrix& z, Activation a) {
  return z.map([a](double x) { return activate_grad(x, a); });
}

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::Identity: return "identity";
    case Activation::Relu: return "relu";
    case Activation::LeakyRelu: return "leaky_relu";
    case Activation::Tanh: return "tanh";
    case Activation::Sigmoid: return "sigmoid";
    case Activation::Softplus: return "softplus";
  }
  return "?";
}

}  // namespace edgeslice::nn
