// AVX2/FMA register-tiled GEMM microkernels (the Avx2 backend).
//
// Built with function-level target("avx2,fma") attributes so the
// translation unit compiles into a generic binary; the dispatcher in
// gemm.cpp only ever calls these after cpu_supports_avx2_fma().
//
// Determinism contract (what the kernel-equivalence and batched-inference
// suites lean on): for the accumulating kernels (nn, at) every output
// element is a fold over ascending k of fma(a, b, acc) — a single
// accumulator chain per element, regardless of which register block or
// k-tile handled it, with tile boundaries parking the exact partial sum
// in c (a double-to-double store/reload rounds nothing). Vector lanes
// compute IEEE double fma, identical to the std::fma used in the scalar
// tails, so an element's value depends only on its own row of a and
// column of b and on k — never on m, n, the tiling, or its position in
// the matrix. That is what makes batched inference bit-identical to
// per-row inference under this backend.
//
// The bt kernel (dot products) uses two 4-lane partial accumulators over
// k plus an fma scalar tail, combined in one fixed order — again a pure
// function of the two rows and k alone.
//
// Versus the Scalar backend, each term suffers one rounding (fma) instead
// of two (mul then add); DESIGN.md documents the resulting bound.
#include "nn/gemm.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#define EDGESLICE_AVX2 __attribute__((target("avx2,fma")))

namespace edgeslice::nn::detail {

namespace {

// B-panel rows kept hot per tile: 128 rows x 128 cols x 8 B = 128 KiB,
// inside L2 everywhere this runs. Results are tile-size independent.
constexpr std::size_t kAvx2TileK = 128;

/// One register block of ROWS output rows x 8 columns, accumulating
/// c[i..i+ROWS)[j..j+8) over kk in [kk0, kk1). `a_i` has the stride
/// layout of the caller: element (row r, depth kk) lives at
/// a_i[r * sa_row + kk * sa_depth] (sa_row/sa_depth cover both the NN and
/// the A^T access patterns with one kernel).
template <int ROWS>
EDGESLICE_AVX2 inline void block_rows_x8(const double* a_i, std::size_t sa_row,
                                         std::size_t sa_depth, const double* b,
                                         double* c_i, std::size_t n, std::size_t j,
                                         std::size_t kk0, std::size_t kk1) {
  __m256d acc_lo[ROWS];
  __m256d acc_hi[ROWS];
  for (int r = 0; r < ROWS; ++r) {
    acc_lo[r] = _mm256_loadu_pd(c_i + static_cast<std::size_t>(r) * n + j);
    acc_hi[r] = _mm256_loadu_pd(c_i + static_cast<std::size_t>(r) * n + j + 4);
  }
  for (std::size_t kk = kk0; kk < kk1; ++kk) {
    const __m256d b_lo = _mm256_loadu_pd(b + kk * n + j);
    const __m256d b_hi = _mm256_loadu_pd(b + kk * n + j + 4);
    for (int r = 0; r < ROWS; ++r) {
      const __m256d a_r = _mm256_broadcast_sd(
          a_i + static_cast<std::size_t>(r) * sa_row + kk * sa_depth);
      acc_lo[r] = _mm256_fmadd_pd(a_r, b_lo, acc_lo[r]);
      acc_hi[r] = _mm256_fmadd_pd(a_r, b_hi, acc_hi[r]);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    _mm256_storeu_pd(c_i + static_cast<std::size_t>(r) * n + j, acc_lo[r]);
    _mm256_storeu_pd(c_i + static_cast<std::size_t>(r) * n + j + 4, acc_hi[r]);
  }
}

/// Same, for a 4-column block.
template <int ROWS>
EDGESLICE_AVX2 inline void block_rows_x4(const double* a_i, std::size_t sa_row,
                                         std::size_t sa_depth, const double* b,
                                         double* c_i, std::size_t n, std::size_t j,
                                         std::size_t kk0, std::size_t kk1) {
  __m256d acc[ROWS];
  for (int r = 0; r < ROWS; ++r) {
    acc[r] = _mm256_loadu_pd(c_i + static_cast<std::size_t>(r) * n + j);
  }
  for (std::size_t kk = kk0; kk < kk1; ++kk) {
    const __m256d b_v = _mm256_loadu_pd(b + kk * n + j);
    for (int r = 0; r < ROWS; ++r) {
      const __m256d a_r = _mm256_broadcast_sd(
          a_i + static_cast<std::size_t>(r) * sa_row + kk * sa_depth);
      acc[r] = _mm256_fmadd_pd(a_r, b_v, acc[r]);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    _mm256_storeu_pd(c_i + static_cast<std::size_t>(r) * n + j, acc[r]);
  }
}

/// Scalar column tail: the same ascending-k fma chain, one lane wide.
template <int ROWS>
EDGESLICE_AVX2 inline void block_rows_x1(const double* a_i, std::size_t sa_row,
                                         std::size_t sa_depth, const double* b,
                                         double* c_i, std::size_t n, std::size_t j,
                                         std::size_t kk0, std::size_t kk1) {
  for (int r = 0; r < ROWS; ++r) {
    double acc = c_i[static_cast<std::size_t>(r) * n + j];
    for (std::size_t kk = kk0; kk < kk1; ++kk) {
      acc = std::fma(a_i[static_cast<std::size_t>(r) * sa_row + kk * sa_depth],
                     b[kk * n + j], acc);
    }
    c_i[static_cast<std::size_t>(r) * n + j] = acc;
  }
}

/// Shared accumulate kernel: c(m x n) += A * b(k x n), where A's element
/// (i, kk) is a[i * sa_row + kk * sa_depth]. (sa_row = k, sa_depth = 1)
/// is the NN product; (sa_row = 1, sa_depth = m) is the A^T product.
EDGESLICE_AVX2 void gemm_acc(const double* a, std::size_t sa_row, std::size_t sa_depth,
                             const double* b, double* c, std::size_t m, std::size_t k,
                             std::size_t n) {
  for (std::size_t kk0 = 0; kk0 < k; kk0 += kAvx2TileK) {
    const std::size_t kk1 = std::min(k, kk0 + kAvx2TileK);
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const double* a_i = a + i * sa_row;
      double* c_i = c + i * n;
      std::size_t j = 0;
      for (; j + 8 <= n; j += 8) block_rows_x8<4>(a_i, sa_row, sa_depth, b, c_i, n, j, kk0, kk1);
      for (; j + 4 <= n; j += 4) block_rows_x4<4>(a_i, sa_row, sa_depth, b, c_i, n, j, kk0, kk1);
      for (; j < n; ++j) block_rows_x1<4>(a_i, sa_row, sa_depth, b, c_i, n, j, kk0, kk1);
    }
    for (; i < m; ++i) {
      const double* a_i = a + i * sa_row;
      double* c_i = c + i * n;
      std::size_t j = 0;
      for (; j + 8 <= n; j += 8) block_rows_x8<1>(a_i, sa_row, sa_depth, b, c_i, n, j, kk0, kk1);
      for (; j + 4 <= n; j += 4) block_rows_x4<1>(a_i, sa_row, sa_depth, b, c_i, n, j, kk0, kk1);
      for (; j < n; ++j) block_rows_x1<1>(a_i, sa_row, sa_depth, b, c_i, n, j, kk0, kk1);
    }
  }
}

}  // namespace

EDGESLICE_AVX2 void gemm_nn_avx2(const double* a, const double* b, double* c,
                                 std::size_t m, std::size_t k, std::size_t n) {
  gemm_acc(a, /*sa_row=*/k, /*sa_depth=*/1, b, c, m, k, n);
}

EDGESLICE_AVX2 void gemm_at_avx2(const double* a, const double* b, double* c,
                                 std::size_t m, std::size_t k, std::size_t n) {
  gemm_acc(a, /*sa_row=*/1, /*sa_depth=*/m, b, c, m, k, n);
}

EDGESLICE_AVX2 void gemm_bt_avx2(const double* a, const double* b, double* c,
                                 std::size_t m, std::size_t k, std::size_t n) {
  // c(i, j) = <row_i(a), row_j(b)>: two interleaved 4-lane partials over
  // ascending k, an fma scalar tail, then one fixed-order combine. The
  // value depends only on the two rows and k — never on m, n or position.
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = b + j * k;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      std::size_t kk = 0;
      for (; kk + 8 <= k; kk += 8) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + kk),
                               _mm256_loadu_pd(brow + kk), acc0);
        acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + kk + 4),
                               _mm256_loadu_pd(brow + kk + 4), acc1);
      }
      for (; kk + 4 <= k; kk += 4) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + kk),
                               _mm256_loadu_pd(brow + kk), acc0);
      }
      double tail = 0.0;
      for (; kk < k; ++kk) tail = std::fma(arow[kk], brow[kk], tail);
      alignas(32) double l0[4];
      alignas(32) double l1[4];
      _mm256_store_pd(l0, acc0);
      _mm256_store_pd(l1, acc1);
      crow[j] = ((l0[0] + l0[1]) + (l0[2] + l0[3])) +
                ((l1[0] + l1[1]) + (l1[2] + l1[3])) + tail;
    }
  }
}

}  // namespace edgeslice::nn::detail

#else  // non-x86: unreachable (cpu_supports_avx2_fma() is false), but keep
       // the symbols defined by forwarding to the scalar reference.

namespace edgeslice::nn::detail {

void gemm_nn_avx2(const double* a, const double* b, double* c, std::size_t m,
                  std::size_t k, std::size_t n) {
  gemm_nn_scalar(a, b, c, m, k, n);
}
void gemm_at_avx2(const double* a, const double* b, double* c, std::size_t m,
                  std::size_t k, std::size_t n) {
  gemm_at_scalar(a, b, c, m, k, n);
}
void gemm_bt_avx2(const double* a, const double* b, double* c, std::size_t m,
                  std::size_t k, std::size_t n) {
  gemm_bt_scalar(a, b, c, m, k, n);
}

}  // namespace edgeslice::nn::detail

#endif
