#include "nn/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace edgeslice::nn {

namespace {

// -1 = unresolved (read EDGESLICE_GEMM on next use). The cached value is
// process-global: a pinned backend applies to every thread and survives
// into forked worker processes, which is what keeps multi-process runs on
// one kernel.
std::atomic<int> g_backend{-1};

GemmBackend resolve(const char* mode) {
  const std::string value = mode == nullptr ? "auto" : mode;
  if (value == "scalar") return GemmBackend::Scalar;
  if (value == "avx2") {
    if (!cpu_supports_avx2_fma()) {
      throw std::invalid_argument(
          "EDGESLICE_GEMM=avx2: this CPU does not support AVX2+FMA (a pinned "
          "backend never silently falls back; use auto or scalar)");
    }
    return GemmBackend::Avx2;
  }
  if (value == "auto" || value.empty()) {
    return cpu_supports_avx2_fma() ? GemmBackend::Avx2 : GemmBackend::Scalar;
  }
  throw std::invalid_argument("EDGESLICE_GEMM: unknown value \"" + value +
                              "\" (accepted: scalar, avx2, auto)");
}

}  // namespace

bool cpu_supports_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

GemmBackend active_gemm_backend() {
  const int cached = g_backend.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<GemmBackend>(cached);
  const GemmBackend resolved = resolve(std::getenv("EDGESLICE_GEMM"));
  g_backend.store(static_cast<int>(resolved), std::memory_order_relaxed);
  return resolved;
}

void set_gemm_backend(GemmBackend backend) {
  if (backend == GemmBackend::Avx2 && !cpu_supports_avx2_fma()) {
    throw std::invalid_argument(
        "set_gemm_backend: AVX2 backend requested but this CPU does not "
        "support AVX2+FMA");
  }
  g_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
}

void set_gemm_backend(const char* mode) {
  g_backend.store(static_cast<int>(resolve(mode)), std::memory_order_relaxed);
}

void reset_gemm_backend() { g_backend.store(-1, std::memory_order_relaxed); }

const char* gemm_backend_name(GemmBackend backend) {
  switch (backend) {
    case GemmBackend::Scalar: return "scalar";
    case GemmBackend::Avx2: return "avx2";
  }
  return "?";
}

namespace detail {

namespace {

// K-blocking keeps the active rows of B resident in cache while the
// whole output is swept; 64 rows of a 128-wide B is 64 KiB, inside L2 on
// anything this runs on. Per output element the contributions still
// accumulate in ascending-k order, so blocking never changes the result.
constexpr std::size_t kScalarTileK = 64;

}  // namespace

void gemm_nn_scalar(const double* a, const double* b, double* c, std::size_t m,
                    std::size_t k, std::size_t n) {
  for (std::size_t k0 = 0; k0 < k; k0 += kScalarTileK) {
    const std::size_t k1 = std::min(k, k0 + kScalarTileK);
    for (std::size_t i = 0; i < m; ++i) {
      const double* arow = a + i * k;
      double* crow = c + i * n;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const double aik = arow[kk];
        const double* brow = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

void gemm_at_scalar(const double* a, const double* b, double* c, std::size_t m,
                    std::size_t k, std::size_t n) {
  // c(i, j) += sum_kk a(kk, i) * b(kk, j): both operands stream row-wise.
  for (std::size_t kk = 0; kk < k; ++kk) {
    const double* arow = a + kk * m;
    const double* brow = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double aki = arow[i];
      double* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

void gemm_bt_scalar(const double* a, const double* b, double* c, std::size_t m,
                    std::size_t k, std::size_t n) {
  // c(i, j) = <row_i(a), row_j(b)>: contiguous dot products.
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = b + j * k;
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
}

}  // namespace detail

}  // namespace edgeslice::nn
