// Activation functions for the neural network library.
//
// The paper (Sec. VI-A) uses Leaky Rectifier hidden layers and a sigmoid
// output layer; Tanh and Identity are needed by the SAC/PPO policy heads.
#pragma once

#include "nn/matrix.h"

namespace edgeslice::nn {

enum class Activation { Identity, Relu, LeakyRelu, Tanh, Sigmoid, Softplus };

/// Elementwise forward pass.
Matrix activate(const Matrix& z, Activation a);

/// In-place forward pass: z <- activate(z). Bit-identical to activate()
/// (same scalar function per element) without the copy — the hot-path
/// variant used by allocation-free inference (Mlp::infer_into).
void activate_assign(Matrix& z, Activation a);

/// Elementwise derivative evaluated from the *pre-activation* z.
Matrix activate_grad(const Matrix& z, Activation a);

/// Scalar versions (used in tests and a few analytic spots).
double activate(double z, Activation a);
double activate_grad(double z, Activation a);

/// Slope of the leaky rectifier's negative branch.
inline constexpr double kLeakyReluSlope = 0.01;

const char* activation_name(Activation a);

}  // namespace edgeslice::nn
