#include "nn/mlp.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace edgeslice::nn {

Mlp::Mlp(const std::vector<std::size_t>& sizes, Activation hidden, Activation output,
         Rng& rng) {
  if (sizes.size() < 2) throw std::invalid_argument("Mlp: need at least in and out sizes");
  layers_.reserve(sizes.size() - 1);
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    const bool last = (i + 2 == sizes.size());
    layers_.emplace_back(sizes[i], sizes[i + 1], last ? output : hidden, rng);
  }
}

Matrix Mlp::forward(const Matrix& x) {
  Matrix h = x;
  for (auto& layer : layers_) h = layer.forward(h);
  return h;
}

Matrix Mlp::infer(const Matrix& x) const {
  Matrix h = x;
  for (const auto& layer : layers_) h = layer.infer(h);
  return h;
}

std::vector<double> Mlp::infer_vector(const std::vector<double>& x) const {
  return infer(Matrix::row(x)).row_vector(0);
}

Matrix Mlp::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = it->backward(g);
  return g;
}

void Mlp::zero_grad() {
  for (auto& layer : layers_) layer.zero_grad();
}

void Mlp::attach_to(Adam& optimizer) {
  for (auto& layer : layers_) {
    optimizer.attach(&layer.weights(), &layer.weight_grad());
    optimizer.attach(&layer.bias(), &layer.bias_grad());
  }
}

void Mlp::soft_update_from(const Mlp& source, double tau) {
  if (source.layers_.size() != layers_.size())
    throw std::invalid_argument("Mlp::soft_update_from: architecture mismatch");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    auto& w = layers_[i].weights().data();
    auto& b = layers_[i].bias().data();
    const auto& sw = source.layers_[i].weights().data();
    const auto& sb = source.layers_[i].bias().data();
    for (std::size_t j = 0; j < w.size(); ++j) w[j] = tau * sw[j] + (1.0 - tau) * w[j];
    for (std::size_t j = 0; j < b.size(); ++j) b[j] = tau * sb[j] + (1.0 - tau) * b[j];
  }
}

void Mlp::copy_parameters_from(const Mlp& source) { soft_update_from(source, 1.0); }

std::vector<double> Mlp::flat_parameters() const {
  std::vector<double> theta;
  theta.reserve(parameter_count());
  for (const auto& layer : layers_) {
    const auto& w = layer.weights().data();
    const auto& b = layer.bias().data();
    theta.insert(theta.end(), w.begin(), w.end());
    theta.insert(theta.end(), b.begin(), b.end());
  }
  return theta;
}

void Mlp::set_flat_parameters(const std::vector<double>& theta) {
  if (theta.size() != parameter_count())
    throw std::invalid_argument("Mlp::set_flat_parameters: size mismatch");
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    auto& w = layer.weights().data();
    auto& b = layer.bias().data();
    std::copy(theta.begin() + static_cast<std::ptrdiff_t>(offset),
              theta.begin() + static_cast<std::ptrdiff_t>(offset + w.size()), w.begin());
    offset += w.size();
    std::copy(theta.begin() + static_cast<std::ptrdiff_t>(offset),
              theta.begin() + static_cast<std::ptrdiff_t>(offset + b.size()), b.begin());
    offset += b.size();
  }
}

std::vector<double> Mlp::flat_gradients() const {
  std::vector<double> g;
  g.reserve(parameter_count());
  for (const auto& layer : layers_) {
    const auto& w = layer.weight_grad().data();
    const auto& b = layer.bias_grad().data();
    g.insert(g.end(), w.begin(), w.end());
    g.insert(g.end(), b.begin(), b.end());
  }
  return g;
}

void Mlp::save(std::ostream& out) const {
  out << "mlp v1\n" << layers_.size() + 1 << "\n";
  out << layers_.front().in_dim();
  for (const auto& layer : layers_) out << " " << layer.out_dim();
  out << "\n";
  for (const auto& layer : layers_) {
    out << static_cast<int>(layer.activation()) << " ";
  }
  out << "\n";
  char buffer[32];
  for (const double v : flat_parameters()) {
    std::snprintf(buffer, sizeof(buffer), "%a\n", v);
    out << buffer;
  }
}

Mlp Mlp::load(std::istream& in) {
  std::string magic;
  std::string version;
  in >> magic >> version;
  if (magic != "mlp" || version != "v1")
    throw std::runtime_error("Mlp::load: bad header");
  std::size_t size_count = 0;
  in >> size_count;
  if (size_count < 2 || size_count > 64) throw std::runtime_error("Mlp::load: bad sizes");
  std::vector<std::size_t> sizes(size_count);
  for (auto& s : sizes) in >> s;
  std::vector<int> activations(size_count - 1);
  for (auto& a : activations) in >> a;
  if (!in) throw std::runtime_error("Mlp::load: truncated header");

  // Rebuild with a throwaway seed; parameters are overwritten below. The
  // stored per-layer activations are re-applied directly.
  Rng rng(0);
  Mlp net(sizes, Activation::Identity, Activation::Identity, rng);
  for (std::size_t i = 0; i < net.layers_.size(); ++i) {
    net.layers_[i] = Dense(sizes[i], sizes[i + 1],
                           static_cast<Activation>(activations[i]), rng);
  }
  std::vector<double> theta(net.parameter_count());
  std::string token;
  for (auto& v : theta) {
    in >> token;
    if (!in) throw std::runtime_error("Mlp::load: truncated parameters");
    v = std::strtod(token.c_str(), nullptr);
  }
  net.set_flat_parameters(theta);
  return net;
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    n += layer.weights().size() + layer.bias().size();
  }
  return n;
}

}  // namespace edgeslice::nn
