#include "nn/mlp.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "common/binio.h"

namespace edgeslice::nn {

namespace {

/// Largest accepted single layer width and total parameter count. A
/// hostile header declaring astronomically wide layers must fail the
/// load cleanly instead of driving a multi-gigabyte allocation.
constexpr std::size_t kMaxLayerWidth = 1u << 20;
constexpr std::size_t kMaxParameters = 1u << 26;
constexpr int kActivationCount = static_cast<int>(Activation::Softplus) + 1;

/// Validate a deserialized architecture header; returns the total
/// parameter count. `context` names the calling loader in errors.
std::size_t validate_architecture(const std::vector<std::size_t>& sizes,
                                  const std::vector<int>& activations,
                                  const char* context) {
  if (sizes.size() < 2 || sizes.size() > 64)
    throw std::runtime_error(std::string(context) + ": bad layer count");
  std::size_t parameters = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] == 0 || sizes[i] > kMaxLayerWidth)
      throw std::runtime_error(std::string(context) + ": bad layer size " +
                               std::to_string(sizes[i]) + " (layer " +
                               std::to_string(i) + ")");
    if (i > 0) parameters += (sizes[i - 1] + 1) * sizes[i];
  }
  if (parameters > kMaxParameters)
    throw std::runtime_error(std::string(context) + ": parameter count " +
                             std::to_string(parameters) + " exceeds limit");
  for (std::size_t i = 0; i < activations.size(); ++i) {
    if (activations[i] < 0 || activations[i] >= kActivationCount)
      throw std::runtime_error(std::string(context) + ": bad activation code " +
                               std::to_string(activations[i]) + " (layer " +
                               std::to_string(i) + ")");
  }
  return parameters;
}

/// Locate flat parameter index `idx` for error messages: which layer it
/// falls in and the offset within that layer's (weights + bias) block.
std::string describe_offset(const std::vector<std::size_t>& sizes, std::size_t idx) {
  std::size_t start = 0;
  for (std::size_t layer = 0; layer + 1 < sizes.size(); ++layer) {
    const std::size_t span = (sizes[layer] + 1) * sizes[layer + 1];
    if (idx < start + span) {
      return "layer " + std::to_string(layer) + ", offset " +
             std::to_string(idx - start) + " of " + std::to_string(span);
    }
    start += span;
  }
  return "offset " + std::to_string(idx);
}

/// Build an uninitialized net with the given architecture; parameters are
/// overwritten by the caller (the throwaway seed never surfaces).
Mlp build_for_load(const std::vector<std::size_t>& sizes,
                   const std::vector<int>& activations) {
  Rng rng(0);
  Mlp net(sizes, Activation::Identity, Activation::Identity, rng);
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    net.layers()[i] =
        Dense(sizes[i], sizes[i + 1], static_cast<Activation>(activations[i]), rng);
  }
  return net;
}

}  // namespace

Mlp::Mlp(const std::vector<std::size_t>& sizes, Activation hidden, Activation output,
         Rng& rng) {
  if (sizes.size() < 2) throw std::invalid_argument("Mlp: need at least in and out sizes");
  layers_.reserve(sizes.size() - 1);
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    const bool last = (i + 2 == sizes.size());
    layers_.emplace_back(sizes[i], sizes[i + 1], last ? output : hidden, rng);
  }
}

Matrix Mlp::forward(const Matrix& x) {
  Matrix h = x;
  for (auto& layer : layers_) h = layer.forward(h);
  return h;
}

Matrix Mlp::infer(const Matrix& x) const {
  Matrix h = x;
  for (const auto& layer : layers_) h = layer.infer(h);
  return h;
}

const Matrix& Mlp::infer_into(const Matrix& x,
                              std::vector<Matrix>& workspace) const {
  workspace.resize(layers_.size());
  const Matrix* h = &x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].infer_into(*h, workspace[i]);
    h = &workspace[i];
  }
  return workspace.back();
}

std::vector<double> Mlp::infer_vector(const std::vector<double>& x) const {
  return infer(Matrix::row(x)).row_vector(0);
}

Matrix Mlp::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = it->backward(g);
  return g;
}

void Mlp::zero_grad() {
  for (auto& layer : layers_) layer.zero_grad();
}

void Mlp::attach_to(Adam& optimizer) {
  for (auto& layer : layers_) {
    optimizer.attach(&layer.weights(), &layer.weight_grad());
    optimizer.attach(&layer.bias(), &layer.bias_grad());
  }
}

void Mlp::soft_update_from(const Mlp& source, double tau) {
  if (source.layers_.size() != layers_.size())
    throw std::invalid_argument("Mlp::soft_update_from: architecture mismatch");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    auto& w = layers_[i].weights().data();
    auto& b = layers_[i].bias().data();
    const auto& sw = source.layers_[i].weights().data();
    const auto& sb = source.layers_[i].bias().data();
    for (std::size_t j = 0; j < w.size(); ++j) w[j] = tau * sw[j] + (1.0 - tau) * w[j];
    for (std::size_t j = 0; j < b.size(); ++j) b[j] = tau * sb[j] + (1.0 - tau) * b[j];
  }
}

void Mlp::copy_parameters_from(const Mlp& source) { soft_update_from(source, 1.0); }

std::vector<double> Mlp::flat_parameters() const {
  std::vector<double> theta;
  theta.reserve(parameter_count());
  for (const auto& layer : layers_) {
    const auto& w = layer.weights().data();
    const auto& b = layer.bias().data();
    theta.insert(theta.end(), w.begin(), w.end());
    theta.insert(theta.end(), b.begin(), b.end());
  }
  return theta;
}

void Mlp::set_flat_parameters(const std::vector<double>& theta) {
  if (theta.size() != parameter_count())
    throw std::invalid_argument("Mlp::set_flat_parameters: size mismatch");
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    auto& w = layer.weights().data();
    auto& b = layer.bias().data();
    std::copy(theta.begin() + static_cast<std::ptrdiff_t>(offset),
              theta.begin() + static_cast<std::ptrdiff_t>(offset + w.size()), w.begin());
    offset += w.size();
    std::copy(theta.begin() + static_cast<std::ptrdiff_t>(offset),
              theta.begin() + static_cast<std::ptrdiff_t>(offset + b.size()), b.begin());
    offset += b.size();
  }
}

std::vector<double> Mlp::flat_gradients() const {
  std::vector<double> g;
  g.reserve(parameter_count());
  for (const auto& layer : layers_) {
    const auto& w = layer.weight_grad().data();
    const auto& b = layer.bias_grad().data();
    g.insert(g.end(), w.begin(), w.end());
    g.insert(g.end(), b.begin(), b.end());
  }
  return g;
}

void Mlp::save(std::ostream& out) const {
  out << "mlp v1\n" << layers_.size() + 1 << "\n";
  out << layers_.front().in_dim();
  for (const auto& layer : layers_) out << " " << layer.out_dim();
  out << "\n";
  for (const auto& layer : layers_) {
    out << static_cast<int>(layer.activation()) << " ";
  }
  out << "\n";
  char buffer[32];
  for (const double v : flat_parameters()) {
    std::snprintf(buffer, sizeof(buffer), "%a\n", v);
    out << buffer;
  }
}

Mlp Mlp::load(std::istream& in) {
  std::string magic;
  std::string version;
  in >> magic >> version;
  if (magic != "mlp" || version != "v1")
    throw std::runtime_error("Mlp::load: bad header");
  std::size_t size_count = 0;
  in >> size_count;
  if (!in || size_count < 2 || size_count > 64)
    throw std::runtime_error("Mlp::load: bad sizes");
  std::vector<std::size_t> sizes(size_count);
  for (auto& s : sizes) in >> s;
  std::vector<int> activations(size_count - 1);
  for (auto& a : activations) in >> a;
  if (!in) throw std::runtime_error("Mlp::load: truncated header");
  validate_architecture(sizes, activations, "Mlp::load");

  Mlp net = build_for_load(sizes, activations);
  std::vector<double> theta(net.parameter_count());
  std::string token;
  for (std::size_t i = 0; i < theta.size(); ++i) {
    in >> token;
    if (!in) {
      throw std::runtime_error("Mlp::load: truncated parameters (" +
                               describe_offset(sizes, i) + ")");
    }
    char* end = nullptr;
    theta[i] = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      throw std::runtime_error("Mlp::load: malformed parameter \"" + token + "\" (" +
                               describe_offset(sizes, i) + ")");
    }
    if (!std::isfinite(theta[i])) {
      throw std::runtime_error("Mlp::load: non-finite parameter (" +
                               describe_offset(sizes, i) + ")");
    }
  }
  net.set_flat_parameters(theta);
  return net;
}

void Mlp::save_binary(std::ostream& out) const {
  const std::vector<std::size_t> sizes = layer_sizes();
  write_u32(out, static_cast<std::uint32_t>(sizes.size()));
  for (std::size_t s : sizes) write_u64(out, s);
  for (const auto& layer : layers_) {
    write_u8(out, static_cast<std::uint8_t>(layer.activation()));
  }
  for (const double v : flat_parameters()) write_f64(out, v);
}

Mlp Mlp::load_binary(std::istream& in) {
  const std::uint32_t size_count = read_u32(in, "Mlp::load_binary");
  if (size_count < 2 || size_count > 64)
    throw std::runtime_error("Mlp::load_binary: bad layer count");
  std::vector<std::size_t> sizes(size_count);
  for (auto& s : sizes) {
    s = static_cast<std::size_t>(read_u64(in, "Mlp::load_binary"));
  }
  std::vector<int> activations(size_count - 1);
  for (auto& a : activations) {
    a = static_cast<int>(read_u8(in, "Mlp::load_binary"));
  }
  validate_architecture(sizes, activations, "Mlp::load_binary");

  Mlp net = build_for_load(sizes, activations);
  std::vector<double> theta(net.parameter_count());
  for (std::size_t i = 0; i < theta.size(); ++i) {
    try {
      theta[i] = read_f64(in, "Mlp::load_binary");
    } catch (const std::runtime_error&) {
      throw std::runtime_error("Mlp::load_binary: truncated parameters (" +
                               describe_offset(sizes, i) + ")");
    }
    if (!std::isfinite(theta[i])) {
      throw std::runtime_error("Mlp::load_binary: non-finite parameter (" +
                               describe_offset(sizes, i) + ")");
    }
  }
  net.set_flat_parameters(theta);
  return net;
}

std::vector<std::size_t> Mlp::layer_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(layers_.size() + 1);
  sizes.push_back(layers_.front().in_dim());
  for (const auto& layer : layers_) sizes.push_back(layer.out_dim());
  return sizes;
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    n += layer.weights().size() + layer.bias().size();
  }
  return n;
}

}  // namespace edgeslice::nn
