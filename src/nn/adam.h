// Adam optimizer (Kingma & Ba, 2015) over a set of parameter matrices.
#pragma once

#include <vector>

#include "nn/matrix.h"

namespace edgeslice::nn {

struct AdamConfig {
  double learning_rate = 1e-3;  // the paper uses 0.001 for both actor and critic
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// The optimizer's complete mutable state: the step counter and the
/// first/second moment vectors flattened in slot-attachment order. What
/// must round-trip through a checkpoint for an optimizer step after
/// resume to be bit-identical to the uninterrupted run (the bias
/// correction depends on t, the update on m and v).
struct AdamState {
  std::size_t step_count = 0;
  std::vector<double> m;  // first moments, concatenated per attached tensor
  std::vector<double> v;  // second moments, same layout
};

/// Maintains first/second moment estimates per parameter tensor. The caller
/// registers (parameter, gradient) pairs once and then calls step() after
/// each backward pass; gradients are consumed (zeroed) by step().
class Adam {
 public:
  explicit Adam(AdamConfig config = {}) : config_(config) {}

  /// Register a parameter tensor with its gradient buffer. Pointers must
  /// outlive the optimizer.
  void attach(Matrix* param, Matrix* grad);

  /// Apply one Adam update to all attached tensors; zeroes gradients.
  void step();

  /// Gradient-descent step scaled by `scale` (e.g. -1 for ascent). Default
  /// descent.
  void step(double scale);

  std::size_t step_count() const { return t_; }
  const AdamConfig& config() const { return config_; }
  void set_learning_rate(double lr) { config_.learning_rate = lr; }

  /// Capture / restore the mutable state (moments + step counter). The
  /// restore target must have the same attached tensors in the same
  /// order — total moment length is validated, a mismatch throws
  /// std::invalid_argument.
  AdamState export_state() const;
  void restore_state(const AdamState& state);

 private:
  struct Slot {
    Matrix* param;
    Matrix* grad;
    Matrix m;  // first moment
    Matrix v;  // second moment
  };

  AdamConfig config_;
  std::vector<Slot> slots_;
  std::size_t t_ = 0;
};

}  // namespace edgeslice::nn
