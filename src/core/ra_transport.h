// The RA execution transport: where a resource autonomy's period runs.
//
// EdgeSliceSystem's default is in-process execution — it calls decide/
// step/feedback on the environments and policies it was handed. An
// RaTransport replaces that with a remote execution plane: the RAs live
// somewhere else (worker processes behind ipc::WorkerSupervisor), the
// system sends per-period directives and receives the per-interval
// traces back, and the RC-L leg of the MessageBus is routed through
// send_coordination instead of a local set_coordination call.
//
// The contract that keeps 1-process and N-worker runs bit-identical:
//  * run_intervals returns, for every RA it ran, the exact StepResult and
//    action sequence an in-process run would have produced (the remote
//    side executes the same deterministic code on the same state; doubles
//    travel as IEEE-754 bit patterns);
//  * an RA the transport could NOT run (worker died, hung past the
//    heartbeat deadline) comes back with ran = false, and the system
//    degrades it exactly like a crashed RA — carry-forward, then column
//    freeze;
//  * environment_state(j) is the RA's environment blob at the last
//    completed period boundary (the ESCK Environment section payload), so
//    a system checkpoint taken through the transport matches an
//    in-process checkpoint byte for byte.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.h"
#include "core/interfaces.h"
#include "env/environment.h"

namespace edgeslice::core {

/// Per-RA instruction for one period.
struct RaPeriodDirective {
  /// False for a crashed RA: no intervals run, nothing reported.
  bool run = true;
  /// Whether to apply `derate` before the intervals (mirrors the
  /// in-process rule: derates are set only when a fault injector is
  /// attached).
  bool has_derate = false;
  std::array<double, env::kResources> derate{1.0, 1.0, 1.0};
  /// Injected stalled-read fault: the worker sleeps this long before
  /// running the RA, so the supervisor's deadline machinery sees a
  /// genuinely hung process. 0 = healthy.
  std::uint32_t stall_ms = 0;
  /// Chaos hook carried to the worker: the worker process exits abruptly
  /// (no trace, no clean shutdown) when it reaches this directive —
  /// exercises death in the middle of the RC-M exchange window.
  bool abort_run = false;
  /// Supervisor-side physical action to apply to this RA's hosting worker
  /// at the period start (SIGKILL / half-close). Never serialized to the
  /// worker; the supervisor consumes it before dispatch.
  ProcessFaultKind fault = ProcessFaultKind::None;
};

/// What one RA did during one period.
struct RaPeriodTrace {
  /// False when the RA did not run (directive said skip, or its worker
  /// failed mid-period). steps/actions are empty in that case.
  bool ran = false;
  std::vector<env::StepResult> steps;
  std::vector<std::vector<double>> actions;
};

class RaTransport {
 public:
  virtual ~RaTransport() = default;

  virtual std::size_t ra_count() const = 0;

  /// Run one period: dispatch `directives` (one per RA, indexed like the
  /// system's RAs), collect the traces. Blocking; returns when every
  /// directed RA has either delivered its trace or been declared failed.
  virtual std::vector<RaPeriodTrace> run_intervals(
      std::size_t period, const std::vector<RaPeriodDirective>& directives) = 0;

  /// RC-L leg: deliver the coordination vector to RA `message.ra`'s
  /// remote agent. Returns false when undeliverable (worker down) — the
  /// remote agent keeps acting on its last-known vector, like an RA whose
  /// RC-L push the bus dropped.
  virtual bool send_coordination(std::size_t period,
                                 const RcLearningMessage& message) = 0;

  /// Period barrier: called once after the RC-L phase. Implementations
  /// flush buffered frames and update liveness accounting here.
  virtual void end_period(std::size_t period) = 0;

  /// Fresh environment blob for RA `ra` (ESCK Environment payload),
  /// fetched from the remote side — after end_period this includes the
  /// latest delivered coordination, i.e. it is byte-identical to what an
  /// in-process environment would serialize at the same boundary. Throws
  /// std::runtime_error when the RA's worker is down and cannot be
  /// restored.
  virtual std::string environment_state(std::size_t ra) = 0;

  /// Push a restored blob (system checkpoint load) to RA `ra`'s remote
  /// environment. Throws std::runtime_error on failure.
  virtual void restore_environment(std::size_t ra, const std::string& blob) = 0;
};

}  // namespace edgeslice::core
