// The EdgeSlice resource orchestration workflow (Alg. 1).
//
// Wires together the per-RA environments, their orchestration policies,
// the central performance coordinator, and the system monitor:
//
//   initialize Z, Y
//   repeat per period:
//     each RA (decentralized): run T intervals under the current policy
//     coordinator: z-update (P2) and y-update (Eq. 10) from collected U
//     push fresh coordinating information (RC-L) to every RA
//   until convergence
#pragma once

#include <memory>
#include <vector>

#include "core/coordinator.h"
#include "core/monitor.h"
#include "core/policies.h"
#include "env/environment.h"

namespace edgeslice::core {

/// Outcome of one period (T intervals in every RA + coordinator update).
struct PeriodResult {
  nn::Matrix performance_sums;                    // I x J: sum_t U
  double system_performance = 0.0;                // sum over everything
  std::vector<double> slice_performance;          // per slice, summed over t and j
  bool coordinator_converged = false;
};

struct SystemConfig {
  bool use_coordinator = true;  // TARO runs without coordination
};

class EdgeSliceSystem {
 public:
  /// `environments` and `policies` are per-RA and must have equal size,
  /// matching the coordinator's RA count. Non-owning monitor pointer may
  /// be null (a private monitor is created).
  EdgeSliceSystem(std::vector<env::RaEnvironment*> environments,
                  std::vector<RaPolicy*> policies, const CoordinatorConfig& coordinator,
                  SystemConfig config = {});

  /// Run one period of Alg. 1.
  PeriodResult run_period();

  /// Run `periods` periods; returns one result per period.
  std::vector<PeriodResult> run(std::size_t periods);

  PerformanceCoordinator& coordinator() { return coordinator_; }
  SystemMonitor& monitor() { return *monitor_; }
  std::size_t ra_count() const { return environments_.size(); }
  std::size_t period_count() const { return period_; }

 private:
  std::vector<env::RaEnvironment*> environments_;
  std::vector<RaPolicy*> policies_;
  PerformanceCoordinator coordinator_;
  SystemConfig config_;
  std::unique_ptr<SystemMonitor> monitor_;
  std::size_t period_ = 0;
  std::size_t interval_ = 0;
};

}  // namespace edgeslice::core
