// The EdgeSlice resource orchestration workflow (Alg. 1).
//
// Wires together the per-RA environments, their orchestration policies,
// the central performance coordinator, and the system monitor:
//
//   initialize Z, Y
//   repeat per period:
//     each RA (decentralized): run T intervals under the current policy
//     each RA posts its RC-M report onto the message bus
//     coordinator: z-update (P2) and y-update (Eq. 10) from delivered U
//     push fresh coordinating information (RC-L) through the bus
//   until convergence
//
// All coordinator <-> RA traffic flows through a MessageBus, which is
// behavior-neutral without faults and lossy/delaying under a FaultPlan.
// Degraded-mode semantics when messages or RAs fail:
//   - a silent RA's last delivered RC-M report is carried forward for up
//     to `max_report_staleness` periods, after which its z/y columns are
//     frozen (excluded from the masked coordinator update);
//   - an RA whose RC-L push is lost keeps acting on its last-known
//     coordination vector;
//   - a crashed RA serves nothing and reports nothing, and rejoins
//     cleanly when its outage ends — the first post-restart period posts
//     a fresh report and thaws its columns.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/fault.h"
#include "common/thread_pool.h"
#include "core/coordinator.h"
#include "core/message_bus.h"
#include "core/monitor.h"
#include "core/policies.h"
#include "core/ra_transport.h"
#include "env/environment.h"
#include "rl/batched_actor.h"

namespace edgeslice::obs {
class SlaWatchdog;
}  // namespace edgeslice::obs

namespace edgeslice::core {

/// Outcome of one period (T intervals in every RA + coordinator update).
struct PeriodResult {
  nn::Matrix performance_sums;                    // I x J: sum_t U
  double system_performance = 0.0;                // sum over everything
  std::vector<double> slice_performance;          // per slice, summed over t and j
  bool coordinator_converged = false;
  /// Degraded-mode accounting (all zero on a fault-free run).
  std::size_t crashed_ras = 0;          // RAs down this period
  std::size_t reports_fresh = 0;        // RC-M delivered for this period
  std::size_t reports_carried = 0;      // columns filled by carry-forward
  std::size_t columns_frozen = 0;       // RAs past the staleness cutoff
  std::size_t rcl_losses = 0;           // RC-L pushes lost this period
};

struct SystemConfig {
  bool use_coordinator = true;  // TARO runs without coordination
  /// Non-owning fault injector; null runs fault-free. The injector is
  /// queried per (period, RA), so one injector may be shared by systems.
  const FaultInjector* faults = nullptr;
  /// Carry-forward window: a silent RA's last report substitutes for up
  /// to this many periods of silence; beyond it the RA's z/y columns are
  /// frozen until a report arrives.
  std::size_t max_report_staleness = 3;
  /// Non-owning thread pool; null (or a 1-thread pool) runs the period
  /// loop sequentially. With workers, each RA's T intervals run on the
  /// worker that owns that RA — environments and policies are touched by
  /// exactly one thread — and the collected trajectories are reduced at
  /// the pre-existing message-bus barrier in the sequential (interval,
  /// RA) order, so results are bit-identical to a sequential run.
  /// Requirement: per-RA policies must not share *mutable* state across
  /// RAs (deployment policies — frozen actors with learn = false, TARO —
  /// qualify; a shared learning agent does not).
  ThreadPool* pool = nullptr;
  /// Non-owning SLA watchdog; null disables SLO evaluation. When set, the
  /// system feeds it the network-wide per-slice performance sums (from the
  /// monitor's incremental per-(ra, period) sums) at the end of each
  /// period. Observation-only: never feeds back into orchestration.
  obs::SlaWatchdog* watchdog = nullptr;
  /// Cross-agent batched inference (sequential in-process path only):
  /// per interval, the RAs whose policies report an inference_network()
  /// are grouped by shared network and decided with one multi-row forward
  /// pass per network instead of one per RA. Observation-neutral — per-row
  /// kernel determinism (nn/gemm.h) makes every batched action
  /// bit-identical to the per-RA decide() it replaces — and therefore,
  /// like `pool`, excluded from config_fingerprint(). The pooled path
  /// (whole-period-per-RA on dedicated workers) and the transport path
  /// (remote processes) have no cross-RA point to batch at.
  bool batched_inference = true;
  /// Non-owning remote execution plane (ipc::WorkerSupervisor); null runs
  /// the RAs in-process. With a transport, the system's environment and
  /// policy pointers are never stepped locally — periods are dispatched as
  /// directives, traces come back over the wire and are reduced in the
  /// same sequential (interval, RA) order, the RC-L leg rides the bus's
  /// transport routing, and checkpoints snapshot the remote environments.
  /// Trajectories are bit-identical to an in-process run for any worker
  /// count (see src/core/ra_transport.h for the contract). `pool` is
  /// ignored when a transport is set — parallelism is process-level.
  RaTransport* transport = nullptr;
};

class EdgeSliceSystem {
 public:
  /// `environments` and `policies` are per-RA and must have equal size,
  /// matching the coordinator's RA count. Non-owning monitor pointer may
  /// be null (a private monitor is created).
  EdgeSliceSystem(std::vector<env::RaEnvironment*> environments,
                  std::vector<RaPolicy*> policies, const CoordinatorConfig& coordinator,
                  SystemConfig config = {});

  /// Run one period of Alg. 1.
  PeriodResult run_period();

  /// run_period() into a caller-owned result whose matrix and vectors are
  /// refilled in place — a driver reusing one PeriodResult (the city-scale
  /// bench) keeps the steady-state control plane allocation-free. Results
  /// are bit-identical to run_period().
  void run_period_into(PeriodResult& result);

  /// Run `periods` periods; returns one result per period.
  std::vector<PeriodResult> run(std::size_t periods);

  PerformanceCoordinator& coordinator() { return coordinator_; }
  SystemMonitor& monitor() { return *monitor_; }
  const MessageBus& bus() const { return bus_; }
  /// The per-period scratch arena (crash masks, timing scratch). reset()
  /// at every period start; its stats().upstream_allocations must stay
  /// flat once the loop is warm — the city smoke test asserts exactly
  /// that, so transient buffers added to the period loop belong here.
  const MonotonicArena& period_arena() const { return period_arena_; }
  std::size_t ra_count() const { return environments_.size(); }
  std::size_t period_count() const { return period_; }

  /// Canonical text rendering of the system's shape (slices, RAs, period
  /// length, coordinator configuration) stored in checkpoint headers and
  /// compared on load, so a checkpoint can never restore into a
  /// differently-shaped system.
  std::string config_fingerprint() const;

  /// Write a full run-loop checkpoint — period/interval counters,
  /// carry-forward report state, coordinator Z/Y + ADMM monitor, in-flight
  /// bus envelopes, and every RA environment — as an ESCK container,
  /// atomically (tmp + rename). Taken at a period boundary, a restored
  /// system continues bit-identically to one that never stopped, including
  /// under an active FaultPlan (the stateless injector re-derives the same
  /// faults from the restored period counter). NOT serialized: the
  /// SystemMonitor and SLA watchdog (observation-only — post-resume
  /// accounting starts at the resume period) and the policies (deployment
  /// policies — frozen actors, TARO — hold no cross-period state; a
  /// learning policy's agent must be checkpointed separately).
  /// Returns false on I/O failure.
  bool save_checkpoint(const std::string& path) const;
  /// Restore from `path`. The stored fingerprint must equal
  /// config_fingerprint(); throws std::runtime_error on mismatch or
  /// corruption.
  void load_checkpoint(const std::string& path);

 private:
  std::vector<env::RaEnvironment*> environments_;
  std::vector<RaPolicy*> policies_;
  PerformanceCoordinator coordinator_;
  SystemConfig config_;
  std::unique_ptr<SystemMonitor> monitor_;
  MessageBus bus_;
  std::size_t period_ = 0;
  std::size_t interval_ = 0;
  /// Last delivered RC-M values per RA, for carry-forward.
  std::vector<std::vector<double>> last_report_;
  std::vector<std::size_t> last_report_period_;
  std::vector<bool> has_report_;

  /// --- Steady-state scratch (never read across periods) --------------------
  MonotonicArena period_arena_;
  /// Cached cross-agent batched-inference groups (sequential path), keyed
  /// by shared network. The BatchedActor and member lists persist across
  /// periods — membership is rebuilt each period (crashes change it), the
  /// buffers are not.
  struct InferenceGroup {
    rl::BatchedActor actor;
    std::vector<std::size_t> members;  // RA indices, ascending
  };
  /// Per-RA whole-period trajectory buffers for the pooled path.
  struct RaTrace {
    std::vector<env::StepResult> steps;
    std::vector<std::vector<double>> actions;
  };
  std::vector<InferenceGroup> groups_;
  std::vector<std::pair<std::size_t, std::size_t>> slot_;
  std::vector<RaTrace> traces_;
  std::vector<double> state_scratch_;
  std::vector<double> action_scratch_;
  env::StepResult step_scratch_;
  nn::Matrix u_scratch_;
  std::vector<bool> active_scratch_;
  RcMonitoringMessage report_scratch_;
  std::vector<RcmEnvelope> envelope_scratch_;
  RcLearningMessage rcl_scratch_;
  std::vector<double> slice_sums_scratch_;
  // Per-slice argmin-contribution RA of the period (watchdog attribution).
  std::vector<double> slice_min_scratch_;
  std::vector<std::size_t> slice_worst_ra_scratch_;
};

}  // namespace edgeslice::core
