#include "core/training.h"

#include <cstdio>
#include <filesystem>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "ckpt/container.h"
#include "common/binio.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "common/trace_span.h"
#include "obs/event_log.h"
#include "rl/batched_actor.h"
#include "rl/ddpg.h"

namespace edgeslice::core {

namespace {

// Tag for the dedicated validation Rng stream. Rng::spawn(tag) derives
// from the construction seed only, so every validation call on the same
// environment replays the identical arrival sequence regardless of how
// much randomness training has consumed in between.
constexpr std::uint64_t kValidationStreamTag = 0x76a11da7e;

/// Canonical double rendering for fingerprints: shortest exact form.
std::string canonical(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

/// Canonical text of everything that shapes the training trajectory.
/// Stored in the checkpoint header; resume refuses a mismatch. The
/// checkpoint_* fields themselves are deliberately excluded — saving is
/// observation-only, so resuming with a different save cadence is legal.
std::string training_fingerprint(const rl::Agent& agent,
                                 const env::RaEnvironment& environment,
                                 const TrainingConfig& config) {
  const env::RaEnvironmentConfig& e = environment.config();
  std::ostringstream out;
  out << "artifact = training\n";
  out << "agent = " << agent.name() << "\n";
  out << "state_dim = " << agent.state_dim() << "\n";
  out << "action_dim = " << agent.action_dim() << "\n";
  out << "steps = " << config.steps << "\n";
  out << "coordination_low = " << canonical(config.coordination_low) << "\n";
  out << "coordination_high = " << canonical(config.coordination_high) << "\n";
  out << "boundary_sample_probability = "
      << canonical(config.boundary_sample_probability) << "\n";
  out << "resample_every = " << config.resample_every << "\n";
  out << "reset_on_resample = " << (config.reset_on_resample ? 1 : 0) << "\n";
  out << "randomize_traffic = " << (config.randomize_traffic ? 1 : 0) << "\n";
  out << "traffic_low = " << canonical(config.traffic_low) << "\n";
  out << "traffic_high = " << canonical(config.traffic_high) << "\n";
  out << "validation_every = " << config.validation_every << "\n";
  out << "validation_intervals = " << config.validation_intervals << "\n";
  out << "validation_coordination = " << canonical(config.validation_coordination)
      << "\n";
  out << "validation_arrival_rate = " << canonical(config.validation_arrival_rate)
      << "\n";
  out << "env.slices = " << e.slices << "\n";
  out << "env.intervals_per_period = " << e.intervals_per_period << "\n";
  out << "env.max_queue = " << e.max_queue << "\n";
  out << "env.arrival_rate = " << canonical(e.arrival_rate) << "\n";
  out << "env.include_traffic_in_state = " << (e.include_traffic_in_state ? 1 : 0)
      << "\n";
  return out.str();
}

/// Serialize one RunningStat via its raw Welford fields.
void write_running_stat(std::ostream& out, const RunningStat& stat) {
  write_u64(out, stat.count());
  write_f64(out, stat.mean());
  write_f64(out, stat.m2());
  write_f64(out, stat.min());
  write_f64(out, stat.max());
}

RunningStat read_running_stat(std::istream& in, const char* context) {
  const std::uint64_t n = read_u64(in, context);
  const double mean = read_f64(in, context);
  const double m2 = read_f64(in, context);
  const double min = read_f64(in, context);
  const double max = read_f64(in, context);
  RunningStat stat;
  stat.restore(static_cast<std::size_t>(n), mean, m2, min, max);
  return stat;
}

/// Write the full mid-run training checkpoint: the agent blob, the
/// environment blob, and the loop state (next step, window/overall
/// reward statistics, histories, best-policy snapshot, caller's Rng).
bool save_training_checkpoint(const std::string& path, const std::string& fingerprint,
                              const rl::Ddpg& agent,
                              const env::RaEnvironment& environment,
                              std::size_t next_step, const RunningStat& window,
                              const RunningStat& overall, const TrainingResult& partial,
                              const Rng& rng) {
  ckpt::CheckpointWriter writer(fingerprint);

  std::ostringstream agent_blob;
  agent.save_checkpoint(agent_blob);
  writer.add_section(ckpt::SectionKind::DdpgAgent, 0, agent_blob.str());

  std::ostringstream environment_blob;
  environment.save_state(environment_blob);
  writer.add_section(ckpt::SectionKind::Environment, 0, environment_blob.str());

  std::ostringstream loop;
  write_u64(loop, next_step);
  write_running_stat(loop, window);
  write_running_stat(loop, overall);
  write_f64_vector(loop, partial.reward_history);
  write_f64_vector(loop, partial.validation_history);
  write_f64(loop, partial.best_validation_score);
  write_u8(loop, partial.best_policy.has_value() ? 1 : 0);
  if (partial.best_policy.has_value()) partial.best_policy->save_binary(loop);
  write_string(loop, rng.serialize());
  writer.add_section(ckpt::SectionKind::TrainLoop, 0, loop.str());

  return writer.write_file(path);
}

/// Restore a mid-run checkpoint into the live training objects; returns
/// the step index to continue from.
std::size_t load_training_checkpoint(const std::string& path,
                                     const std::string& fingerprint, rl::Ddpg& agent,
                                     env::RaEnvironment& environment,
                                     RunningStat& window, RunningStat& overall,
                                     TrainingResult& partial, Rng& rng) {
  constexpr const char* kContext = "train_agent (resume)";
  const ckpt::CheckpointReader reader = ckpt::CheckpointReader::from_file(path);
  if (reader.fingerprint() != fingerprint) {
    throw std::runtime_error(std::string(kContext) +
                             ": checkpoint was taken under a different training "
                             "configuration (fingerprint mismatch)");
  }

  std::istringstream loop(reader.require(ckpt::SectionKind::TrainLoop));
  const std::uint64_t next_step = read_u64(loop, kContext);
  const RunningStat window_in = read_running_stat(loop, kContext);
  const RunningStat overall_in = read_running_stat(loop, kContext);
  std::vector<double> reward_history = read_f64_vector(loop, kContext);
  std::vector<double> validation_history = read_f64_vector(loop, kContext);
  const double best_score = read_f64(loop, kContext);
  std::optional<nn::Mlp> best_policy;
  if (read_u8(loop, kContext) != 0) best_policy = nn::Mlp::load_binary(loop);
  const Rng restored_rng = Rng::deserialize(read_string(loop, kContext));

  std::istringstream agent_blob(reader.require(ckpt::SectionKind::DdpgAgent));
  agent.load_checkpoint(agent_blob);
  std::istringstream environment_blob(reader.require(ckpt::SectionKind::Environment));
  environment.load_state(environment_blob);

  window = window_in;
  overall = overall_in;
  partial.reward_history = std::move(reward_history);
  partial.validation_history = std::move(validation_history);
  partial.best_validation_score = best_score;
  partial.best_policy = std::move(best_policy);
  rng = restored_rng;
  return static_cast<std::size_t>(next_step);
}

}  // namespace

double validate_policy(rl::Agent& agent, env::RaEnvironment& environment,
                       double coordination, std::size_t intervals,
                       double arrival_rate) {
  // Save everything validation perturbs — coordination, arrival rates and
  // the random stream — so training resumes exactly where it left off,
  // and pin all three so scores from different checkpoints are computed
  // under identical traffic and are therefore comparable. (Cyclic arrival
  // profiles, when set, restart from bin 0 on reset and stay comparable
  // without pinning.)
  const std::vector<double> saved_coordination = environment.coordination();
  std::vector<double> saved_rates(environment.slice_count());
  for (std::size_t i = 0; i < saved_rates.size(); ++i) {
    saved_rates[i] = environment.arrival_rate(i);
  }
  const Rng saved_rng = environment.rng();

  const double pinned_rate =
      arrival_rate > 0.0 ? arrival_rate : environment.config().arrival_rate;
  environment.reset();
  environment.set_coordination(
      std::vector<double>(environment.slice_count(), coordination));
  environment.set_arrival_rates(
      std::vector<double>(environment.slice_count(), pinned_rate));
  environment.rng() = saved_rng.spawn(kValidationStreamTag);

  // Validation is pure exploitation, so agents whose deterministic action
  // is a plain forward pass go through the batched-inference code path
  // (batch of 1 — bit-identical to act(), and the buffer reuse skips the
  // per-call allocation that act() pays).
  const nn::Mlp* actor = agent.inference_actor();
  std::optional<rl::BatchedActor> batched;
  if (actor != nullptr) batched.emplace(*actor);

  double score = 0.0;
  for (std::size_t t = 0; t < intervals; ++t) {
    std::vector<double> action;
    if (batched) {
      batched->begin(1);
      batched->set_state(0, environment.state());
      batched->infer();
      action = batched->action(0);
    } else {
      action = agent.act(environment.state(), /*explore=*/false);
    }
    const auto result = environment.step(action);
    for (double u : result.performance) score += u;
  }

  environment.reset();
  environment.set_coordination(saved_coordination);
  environment.set_arrival_rates(saved_rates);
  environment.rng() = saved_rng;
  return score;
}

TrainingResult train_agent(rl::Agent& agent, env::RaEnvironment& environment,
                           const TrainingConfig& config, Rng& rng) {
  if (agent.state_dim() != environment.state_dim() ||
      agent.action_dim() != environment.action_dim()) {
    throw std::invalid_argument("train_agent: agent/environment dimension mismatch");
  }
  if (config.coordination_low > config.coordination_high)
    throw std::invalid_argument("train_agent: bad coordination range");

  const std::size_t resample = config.resample_every > 0
                                   ? config.resample_every
                                   : environment.config().intervals_per_period;

  // Checkpoint/resume plumbing. Only the DDPG agent serializes its
  // complete training state, so both paths require one.
  const bool checkpointing =
      config.checkpoint_every > 0 && !config.checkpoint_path.empty();
  rl::Ddpg* ddpg = nullptr;
  if (checkpointing || config.resume) {
    ddpg = dynamic_cast<rl::Ddpg*>(&agent);
    if (ddpg == nullptr) {
      throw std::invalid_argument(
          "train_agent: checkpoint/resume requires a DDPG agent (" + agent.name() +
          " does not serialize its training state)");
    }
    if (config.checkpoint_path.empty()) {
      throw std::invalid_argument("train_agent: resume requires checkpoint_path");
    }
  }
  const std::string fingerprint =
      ddpg != nullptr ? training_fingerprint(agent, environment, config) : std::string();

  const auto train_span = global_tracer().span("train.agent");
  TrainingResult result;
  RunningStat window;
  RunningStat overall;

  std::size_t start_step = 0;
  if (config.resume && std::filesystem::exists(config.checkpoint_path)) {
    start_step = load_training_checkpoint(config.checkpoint_path, fingerprint, *ddpg,
                                          environment, window, overall, result, rng);
    if (start_step > config.steps) {
      throw std::runtime_error(
          "train_agent: checkpoint is beyond this run's step budget");
    }
  }

  for (std::size_t step = start_step; step < config.steps; ++step) {
    if (step % resample == 0) {
      std::vector<double> coordination(environment.slice_count());
      for (auto& c : coordination) {
        c = rng.chance(config.boundary_sample_probability)
                ? config.coordination_low
                : rng.uniform(config.coordination_low, config.coordination_high);
      }
      environment.set_coordination(coordination);
      if (config.randomize_traffic) {
        std::vector<double> rates(environment.slice_count());
        for (auto& r : rates) r = rng.uniform(config.traffic_low, config.traffic_high);
        environment.set_arrival_rates(rates);
      }
      if (config.reset_on_resample) environment.reset();
    }
    const std::vector<double> state = environment.state();
    const std::vector<double> action = agent.act(state, /*explore=*/true);
    const env::StepResult step_result = environment.step(action);
    agent.observe(state, action, step_result.reward, step_result.next_state,
                  /*done=*/false);
    window.add(step_result.reward);
    overall.add(step_result.reward);
    if (window.count() >= 100) {
      result.reward_history.push_back(window.mean());
      window = RunningStat{};
    }

    // Validation checkpointing (skipped before the first 20% of training,
    // where snapshots would only record the random initial policy).
    if (config.validation_every > 0 && (step + 1) % config.validation_every == 0 &&
        step + 1 >= config.steps / 5 && agent.policy_network() != nullptr) {
      const double score = validate_policy(agent, environment,
                                           config.validation_coordination,
                                           config.validation_intervals,
                                           config.validation_arrival_rate);
      result.validation_history.push_back(score);
      global_metrics().gauge("train.validation_score").set(score);
      obs::Event event;
      event.kind = obs::EventKind::ValidationCheckpoint;
      event.interval = step + 1;
      event.value = score;
      obs::global_event_log().record(event);
      if (!result.best_policy.has_value() || score > result.best_validation_score) {
        result.best_validation_score = score;
        result.best_policy = *agent.policy_network();
      }
    }

    // Periodic checkpoint, taken after the step (and any validation) has
    // fully completed, so a resume continues at exactly step + 1. Pure
    // observation: serialization only reads, and the final step needs no
    // save (the run is about to return its result anyway).
    if (checkpointing && (step + 1) % config.checkpoint_every == 0 &&
        step + 1 < config.steps) {
      if (!save_training_checkpoint(config.checkpoint_path, fingerprint, *ddpg,
                                    environment, step + 1, window, overall, result,
                                    rng)) {
        throw std::runtime_error("train_agent: cannot write checkpoint to " +
                                 config.checkpoint_path);
      }
    }
  }
  result.final_mean_reward =
      result.reward_history.empty() ? overall.mean() : result.reward_history.back();
  result.steps = config.steps;
  auto& metrics = global_metrics();
  metrics.counter("train.steps").add(config.steps - start_step);
  metrics.gauge("train.final_mean_reward").set(result.final_mean_reward);
  if (result.best_policy.has_value()) {
    metrics.gauge("train.best_validation_score").set(result.best_validation_score);
  }
  return result;
}

std::vector<TrainingResult> train_agents(std::vector<TrainingJob>& jobs,
                                         ThreadPool* pool) {
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].agent == nullptr || jobs[i].environment == nullptr)
      throw std::invalid_argument("train_agents: null agent or environment");
    for (std::size_t k = 0; k < i; ++k) {
      if (jobs[k].agent == jobs[i].agent || jobs[k].environment == jobs[i].environment)
        throw std::invalid_argument(
            "train_agents: jobs must not share an agent or environment");
      if (!jobs[i].config.checkpoint_path.empty() &&
          jobs[k].config.checkpoint_path == jobs[i].config.checkpoint_path)
        throw std::invalid_argument(
            "train_agents: jobs must not share a checkpoint path");
    }
  }
  std::vector<TrainingResult> results(jobs.size());
  const auto run_one = [&](std::size_t i) {
    results[i] = train_agent(*jobs[i].agent, *jobs[i].environment, jobs[i].config,
                             jobs[i].rng);
  };
  if (pool != nullptr) {
    pool->parallel_for(jobs.size(), run_one);
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_one(i);
  }
  return results;
}

}  // namespace edgeslice::core
