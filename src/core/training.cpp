#include "core/training.h"

#include <stdexcept>

#include "common/metrics.h"
#include "common/stats.h"
#include "common/trace_span.h"
#include "obs/event_log.h"

namespace edgeslice::core {

namespace {

// Tag for the dedicated validation Rng stream. Rng::spawn(tag) derives
// from the construction seed only, so every validation call on the same
// environment replays the identical arrival sequence regardless of how
// much randomness training has consumed in between.
constexpr std::uint64_t kValidationStreamTag = 0x76a11da7e;

}  // namespace

double validate_policy(rl::Agent& agent, env::RaEnvironment& environment,
                       double coordination, std::size_t intervals,
                       double arrival_rate) {
  // Save everything validation perturbs — coordination, arrival rates and
  // the random stream — so training resumes exactly where it left off,
  // and pin all three so scores from different checkpoints are computed
  // under identical traffic and are therefore comparable. (Cyclic arrival
  // profiles, when set, restart from bin 0 on reset and stay comparable
  // without pinning.)
  const std::vector<double> saved_coordination = environment.coordination();
  std::vector<double> saved_rates(environment.slice_count());
  for (std::size_t i = 0; i < saved_rates.size(); ++i) {
    saved_rates[i] = environment.arrival_rate(i);
  }
  const Rng saved_rng = environment.rng();

  const double pinned_rate =
      arrival_rate > 0.0 ? arrival_rate : environment.config().arrival_rate;
  environment.reset();
  environment.set_coordination(
      std::vector<double>(environment.slice_count(), coordination));
  environment.set_arrival_rates(
      std::vector<double>(environment.slice_count(), pinned_rate));
  environment.rng() = saved_rng.spawn(kValidationStreamTag);

  double score = 0.0;
  for (std::size_t t = 0; t < intervals; ++t) {
    const auto action = agent.act(environment.state(), /*explore=*/false);
    const auto result = environment.step(action);
    for (double u : result.performance) score += u;
  }

  environment.reset();
  environment.set_coordination(saved_coordination);
  environment.set_arrival_rates(saved_rates);
  environment.rng() = saved_rng;
  return score;
}

TrainingResult train_agent(rl::Agent& agent, env::RaEnvironment& environment,
                           const TrainingConfig& config, Rng& rng) {
  if (agent.state_dim() != environment.state_dim() ||
      agent.action_dim() != environment.action_dim()) {
    throw std::invalid_argument("train_agent: agent/environment dimension mismatch");
  }
  if (config.coordination_low > config.coordination_high)
    throw std::invalid_argument("train_agent: bad coordination range");

  const std::size_t resample = config.resample_every > 0
                                   ? config.resample_every
                                   : environment.config().intervals_per_period;
  const auto train_span = global_tracer().span("train.agent");
  TrainingResult result;
  RunningStat window;
  RunningStat overall;

  for (std::size_t step = 0; step < config.steps; ++step) {
    if (step % resample == 0) {
      std::vector<double> coordination(environment.slice_count());
      for (auto& c : coordination) {
        c = rng.chance(config.boundary_sample_probability)
                ? config.coordination_low
                : rng.uniform(config.coordination_low, config.coordination_high);
      }
      environment.set_coordination(coordination);
      if (config.randomize_traffic) {
        std::vector<double> rates(environment.slice_count());
        for (auto& r : rates) r = rng.uniform(config.traffic_low, config.traffic_high);
        environment.set_arrival_rates(rates);
      }
      if (config.reset_on_resample) environment.reset();
    }
    const std::vector<double> state = environment.state();
    const std::vector<double> action = agent.act(state, /*explore=*/true);
    const env::StepResult step_result = environment.step(action);
    agent.observe(state, action, step_result.reward, step_result.next_state,
                  /*done=*/false);
    window.add(step_result.reward);
    overall.add(step_result.reward);
    if (window.count() >= 100) {
      result.reward_history.push_back(window.mean());
      window = RunningStat{};
    }

    // Validation checkpointing (skipped before the first 20% of training,
    // where snapshots would only record the random initial policy).
    if (config.validation_every > 0 && (step + 1) % config.validation_every == 0 &&
        step + 1 >= config.steps / 5 && agent.policy_network() != nullptr) {
      const double score = validate_policy(agent, environment,
                                           config.validation_coordination,
                                           config.validation_intervals,
                                           config.validation_arrival_rate);
      result.validation_history.push_back(score);
      global_metrics().gauge("train.validation_score").set(score);
      obs::Event event;
      event.kind = obs::EventKind::ValidationCheckpoint;
      event.interval = step + 1;
      event.value = score;
      obs::global_event_log().record(event);
      if (!result.best_policy.has_value() || score > result.best_validation_score) {
        result.best_validation_score = score;
        result.best_policy = *agent.policy_network();
      }
    }
  }
  result.final_mean_reward =
      result.reward_history.empty() ? overall.mean() : result.reward_history.back();
  result.steps = config.steps;
  auto& metrics = global_metrics();
  metrics.counter("train.steps").add(config.steps);
  metrics.gauge("train.final_mean_reward").set(result.final_mean_reward);
  if (result.best_policy.has_value()) {
    metrics.gauge("train.best_validation_score").set(result.best_validation_score);
  }
  return result;
}

std::vector<TrainingResult> train_agents(std::vector<TrainingJob>& jobs,
                                         ThreadPool* pool) {
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].agent == nullptr || jobs[i].environment == nullptr)
      throw std::invalid_argument("train_agents: null agent or environment");
    for (std::size_t k = 0; k < i; ++k) {
      if (jobs[k].agent == jobs[i].agent || jobs[k].environment == jobs[i].environment)
        throw std::invalid_argument(
            "train_agents: jobs must not share an agent or environment");
    }
  }
  std::vector<TrainingResult> results(jobs.size());
  const auto run_one = [&](std::size_t i) {
    results[i] = train_agent(*jobs[i].agent, *jobs[i].environment, jobs[i].config,
                             jobs[i].rng);
  };
  if (pool != nullptr) {
    pool->parallel_for(jobs.size(), run_one);
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_one(i);
  }
  return results;
}

}  // namespace edgeslice::core
