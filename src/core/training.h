// Offline training of orchestration agents (Sec. VI-A / VI-B).
//
// Agents are trained in the simulated network environment. To expose them
// to the full range of coordinating information they will receive online,
// the coordination values z - y are re-randomized every period, as the
// paper does ("we randomly generate z_{i,j} - y_{i,j} ... to train the
// agents under different coordinating information").
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "env/environment.h"
#include "nn/mlp.h"
#include "rl/agent.h"

namespace edgeslice::core {

struct TrainingConfig {
  std::size_t steps = 100000;           // paper trains 1e6 (scaled: see DESIGN.md)
  /// Sampling range for z - y. Covers the clamp range of the environment
  /// (RaEnvironmentConfig::coordination_clip) so the agent is never out of
  /// distribution online. The paper samples in [0, R_tot]; with the
  /// queue-power performance function the online z - y values live on the
  /// negative side, so the adapted default is [-50, 0]. Keeping the range
  /// narrow also keeps the quadratic tracking term from drowning the
  /// allocation signal in noise.
  double coordination_low = -50.0;
  double coordination_high = 0.0;
  /// Probability of pinning a slice's sampled z - y to coordination_low
  /// instead of drawing uniformly. Online, the environment clamps z - y at
  /// the same bound and a loaded system operates *at* that boundary most
  /// of the time, so training must cover it densely — uniform sampling
  /// hits the exact boundary with probability zero, which is fatal for
  /// EdgeSlice-NT whose whole state is the coordination vector.
  double boundary_sample_probability = 0.4;
  /// Re-randomize coordination (and optionally traffic) every this many
  /// steps; defaults to the environment's period length when 0.
  std::size_t resample_every = 0;
  /// Reset the environment's queues when resampling. Deployment never
  /// resets, and episodic resets hide slow queue divergence from policies
  /// that cannot observe queues (EdgeSlice-NT): a marginally unstable
  /// allocation looks cheap inside a 10-step episode but compounds over a
  /// long run. Set false (with a larger resample_every) to train under
  /// deployment-like continuing dynamics.
  bool reset_on_resample = true;
  bool randomize_traffic = false;       // sample arrival rates per episode
  double traffic_low = 2.0;
  double traffic_high = 20.0;

  /// Validation-based checkpointing: every `validation_every` steps the
  /// greedy policy is rolled out for `validation_intervals` environment
  /// steps (under coordination `validation_coordination`), and the
  /// best-scoring policy snapshot is kept. Guards against late-training
  /// divergence — the returned best policy is what should be deployed.
  /// 0 disables.
  std::size_t validation_every = 0;
  std::size_t validation_intervals = 100;
  double validation_coordination = -25.0;
  /// Arrival rate pinned during validation rollouts; <= 0 uses the
  /// environment's configured base rate. Without pinning, whatever rates
  /// the last traffic resample set would leak into validation, and
  /// best-policy selection would compare checkpoint scores measured
  /// under different traffic (incomparable when randomize_traffic is on).
  double validation_arrival_rate = 0.0;

  /// Mid-run checkpointing: every `checkpoint_every` completed steps the
  /// COMPLETE training state — the DDPG agent (networks, targets, Adam
  /// moments, replay buffer, sigma schedule, its Rng), the environment,
  /// the loop counters/statistics, and the caller's Rng stream — is
  /// written to `checkpoint_path` as an ESCK container, atomically.
  /// Saving is observation-only: a run with checkpointing on is
  /// bit-identical to one with it off. 0 (or an empty path) disables.
  /// Requires the agent to be an rl::Ddpg (throws otherwise).
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;
  /// Resume from `checkpoint_path` before the first step when the file
  /// exists (a missing file starts fresh — so crash-and-rerun loops need
  /// no existence check). The agent/environment/config must match what
  /// the checkpoint was taken under; the resumed run's remaining steps
  /// are bit-identical to the uninterrupted run's.
  bool resume = false;
};

struct TrainingResult {
  std::vector<double> reward_history;   // mean shaped reward per 100-step window
  double final_mean_reward = 0.0;
  std::size_t steps = 0;

  /// Best validated policy snapshot (only when validation is enabled and
  /// the agent exposes a policy network). Deploy this via rl::FrozenActor.
  std::optional<nn::Mlp> best_policy;
  double best_validation_score = 0.0;
  std::vector<double> validation_history;
};

/// Train `agent` in `environment` for `config.steps` interactions.
TrainingResult train_agent(rl::Agent& agent, env::RaEnvironment& environment,
                           const TrainingConfig& config, Rng& rng);

/// One independent training job. The caller owns the agent and the
/// environment; the job owns its Rng stream (spawn one child per job from
/// a single parent, in job order). Jobs share no mutable state, so
/// results are bit-identical whether the batch runs sequentially or on a
/// thread pool of any size.
struct TrainingJob {
  rl::Agent* agent = nullptr;
  env::RaEnvironment* environment = nullptr;
  TrainingConfig config;
  Rng rng{0};
};

/// Train every job — in parallel when `pool` is non-null and has workers,
/// sequentially otherwise — and return results indexed like `jobs`.
/// Each job must reference a distinct agent and environment (enforced);
/// determinism follows from the per-job Rng streams plus index-ordered
/// result collection (see DESIGN.md Sec. 7).
std::vector<TrainingResult> train_agents(std::vector<TrainingJob>& jobs,
                                         ThreadPool* pool = nullptr);

/// Greedy rollout score of the agent's current policy: the sum of raw
/// slice performance over `intervals` steps under fixed `coordination`
/// and a pinned arrival rate (`arrival_rate` <= 0 pins the environment's
/// configured base rate), driven by a fixed validation Rng stream so
/// scores from different checkpoints are directly comparable. Saves and
/// restores the environment's coordination, arrival rates, and random
/// stream; resets the queues before and after.
double validate_policy(rl::Agent& agent, env::RaEnvironment& environment,
                       double coordination, std::size_t intervals,
                       double arrival_rate = 0.0);

}  // namespace edgeslice::core
