// The EdgeSlice middleware interfaces (Fig. 2 / Sec. V-D).
//
// These message types make the system's communication structure explicit:
//   VR    — virtual resource: agent <-> radio/transport/computing manager
//   RC-L  — resource coordination (learning): coordinator -> agents
//   RC-M  — resource coordination (monitoring): monitors -> coordinator
//   SR    — slice request: tenants -> operator (SLA configuration)
// The decentralization claim of the paper is inspectable here: the only
// recurring coordinator <-> RA traffic is RcLearningMessage (|I| doubles
// per RA per period) and RcMonitoringMessage (|I| doubles back).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace edgeslice::core {

/// Which technical domain a virtual-resource command addresses.
enum class Domain { Radio, Transport, Computing };

/// VR / VR-R / VR-T / VR-C: set one slice's share of one domain resource.
struct VrMessage {
  Domain domain = Domain::Radio;
  std::size_t ra = 0;
  std::size_t slice = 0;
  double fraction = 0.0;
};

/// RC-L: coordinating information for one RA's orchestration agent
/// (the per-slice z - y values).
struct RcLearningMessage {
  std::size_t ra = 0;
  std::vector<double> z_minus_y;  // one per slice
};

/// RC-M: a system monitor's per-period report to the coordinator.
struct RcMonitoringMessage {
  std::size_t ra = 0;
  std::vector<double> performance_sums;  // sum_t U per slice over the period
};

/// SR: a slice tenant's request / SLA configuration.
struct SliceRequest {
  std::size_t slice = 0;
  double u_min = 0.0;       // minimum network-wide performance (Eq. 2)
  std::string app_profile;  // descriptive
};

}  // namespace edgeslice::core
