#include "core/policies.h"

#include <stdexcept>

namespace edgeslice::core {

LearnedPolicy::LearnedPolicy(std::shared_ptr<rl::Agent> agent, bool learn)
    : agent_(std::move(agent)), learn_(learn) {
  if (!agent_) throw std::invalid_argument("LearnedPolicy: null agent");
}

std::vector<double> LearnedPolicy::decide(const env::RaEnvironment& environment) {
  pending_action_ = agent_->act(environment.state(), learn_);
  return pending_action_;
}

void LearnedPolicy::feedback(const env::StepResult& result) {
  if (!learn_) return;
  agent_->observe(result.state, pending_action_, result.reward, result.next_state,
                  /*done=*/false);
}

std::string LearnedPolicy::name() const { return "EdgeSlice(" + agent_->name() + ")"; }

std::vector<double> TaroPolicy::decide(const env::RaEnvironment& environment) {
  const std::size_t slices = environment.slice_count();
  double total_backlog = 0.0;
  std::vector<double> lengths(slices);
  for (std::size_t i = 0; i < slices; ++i) {
    lengths[i] = static_cast<double>(environment.queue(i).length());
    total_backlog += lengths[i];
  }
  std::vector<double> action(environment.action_dim(), 0.0);
  for (std::size_t i = 0; i < slices; ++i) {
    const double share =
        total_backlog > 0.0 ? lengths[i] / total_backlog : 1.0 / static_cast<double>(slices);
    for (std::size_t k = 0; k < env::kResources; ++k) {
      action[i * env::kResources + k] = share;
    }
  }
  return action;
}

std::vector<double> EqualSharePolicy::decide(const env::RaEnvironment& environment) {
  const double share = 1.0 / static_cast<double>(environment.slice_count());
  return std::vector<double>(environment.action_dim(), share);
}

}  // namespace edgeslice::core
