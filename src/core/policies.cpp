#include "core/policies.h"

#include <stdexcept>

namespace edgeslice::core {

LearnedPolicy::LearnedPolicy(std::shared_ptr<rl::Agent> agent, bool learn)
    : agent_(std::move(agent)), learn_(learn) {
  if (!agent_) throw std::invalid_argument("LearnedPolicy: null agent");
}

std::vector<double> LearnedPolicy::decide(const env::RaEnvironment& environment) {
  pending_action_ = agent_->act(environment.state(), learn_);
  return pending_action_;
}

void LearnedPolicy::feedback(const env::StepResult& result) {
  if (!learn_) return;
  agent_->observe(result.state, pending_action_, result.reward, result.next_state,
                  /*done=*/false);
}

std::string LearnedPolicy::name() const { return "EdgeSlice(" + agent_->name() + ")"; }

std::vector<double> TaroPolicy::decide(const env::RaEnvironment& environment) {
  std::vector<double> action;
  decide_into(environment, action);
  return action;
}

void TaroPolicy::decide_into(const env::RaEnvironment& environment,
                             std::vector<double>& action) {
  const std::size_t slices = environment.slice_count();
  const auto& lengths = environment.queue_lengths();
  double total_backlog = 0.0;
  for (std::size_t i = 0; i < slices; ++i) {
    total_backlog += static_cast<double>(lengths[i]);
  }
  action.resize(environment.action_dim());
  for (std::size_t i = 0; i < slices; ++i) {
    const double share = total_backlog > 0.0
                             ? static_cast<double>(lengths[i]) / total_backlog
                             : 1.0 / static_cast<double>(slices);
    for (std::size_t k = 0; k < env::kResources; ++k) {
      action[i * env::kResources + k] = share;
    }
  }
}

std::vector<double> EqualSharePolicy::decide(const env::RaEnvironment& environment) {
  std::vector<double> action;
  decide_into(environment, action);
  return action;
}

void EqualSharePolicy::decide_into(const env::RaEnvironment& environment,
                                   std::vector<double>& action) {
  const double share = 1.0 / static_cast<double>(environment.slice_count());
  action.assign(environment.action_dim(), share);
}

}  // namespace edgeslice::core
