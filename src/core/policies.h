// Resource orchestration policies: the learned EdgeSlice agent and the
// comparison algorithms of Sec. VII-B.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "env/environment.h"
#include "rl/agent.h"

namespace edgeslice::core {

/// A per-RA policy mapping the RA's observable state to an orchestration
/// action (slice-major resource fractions).
class RaPolicy {
 public:
  virtual ~RaPolicy() = default;
  virtual std::vector<double> decide(const env::RaEnvironment& environment) = 0;
  /// decide() into a caller-owned buffer (resized to action_dim), so hot
  /// loops reusing one buffer avoid the per-interval allocation. The
  /// default wraps decide(); allocation-free policies override this and
  /// implement decide() on top of it. Bit-identical to decide().
  virtual void decide_into(const env::RaEnvironment& environment,
                           std::vector<double>& action) {
    action = decide(environment);
  }
  /// Learning hook, called after the environment advanced.
  virtual void feedback(const env::StepResult& /*result*/) {}
  virtual std::string name() const = 0;

  /// When decide() is exactly network->infer_vector(environment.state())
  /// — no exploration, no learning side effects — return that network so
  /// the system can batch this policy's inference with every other policy
  /// sharing the same network (one forward pass per network per interval;
  /// bit-identical per row, see rl/batched_actor.h). Policies with any
  /// other decide() semantics must return null (the default).
  virtual const nn::Mlp* inference_network() const { return nullptr; }
};

/// EdgeSlice / EdgeSlice-NT: a DRL agent over the environment state.
/// (EdgeSlice-NT is obtained by building the environment with
/// include_traffic_in_state = false; the policy code is identical.)
class LearnedPolicy final : public RaPolicy {
 public:
  /// `learn` controls whether transitions are fed back to the agent and
  /// whether actions are exploratory.
  LearnedPolicy(std::shared_ptr<rl::Agent> agent, bool learn);

  std::vector<double> decide(const env::RaEnvironment& environment) override;
  void feedback(const env::StepResult& result) override;
  std::string name() const override;

  /// Batchable only in deployment: with learn_ set, decide() explores and
  /// feedback() consumes the pending action, neither of which batches.
  const nn::Mlp* inference_network() const override {
    return learn_ ? nullptr : agent_->inference_actor();
  }

  rl::Agent& agent() { return *agent_; }
  void set_learning(bool learn) { learn_ = learn; }
  bool learning() const { return learn_; }

 private:
  std::shared_ptr<rl::Agent> agent_;
  bool learn_;
  std::vector<double> pending_action_;
};

/// TARO — Traffic-Aware Resource Orchestration (the baseline): every
/// resource is shared proportionally to current queue lengths,
/// x_{i,j} = R_j^tot * l_i / sum_i' l_i'.
class TaroPolicy final : public RaPolicy {
 public:
  std::vector<double> decide(const env::RaEnvironment& environment) override;
  void decide_into(const env::RaEnvironment& environment,
                   std::vector<double>& action) override;
  std::string name() const override { return "TARO"; }
};

/// Equal static split — a sanity baseline used by tests and ablations
/// (not in the paper): x_{i,k} = 1 / I.
class EqualSharePolicy final : public RaPolicy {
 public:
  std::vector<double> decide(const env::RaEnvironment& environment) override;
  void decide_into(const env::RaEnvironment& environment,
                   std::vector<double>& action) override;
  std::string name() const override { return "EqualShare"; }
};

}  // namespace edgeslice::core
