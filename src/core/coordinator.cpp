#include "core/coordinator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "opt/projection.h"

namespace edgeslice::core {

PerformanceCoordinator::PerformanceCoordinator(const CoordinatorConfig& config)
    : config_(config), monitor_(config.stopping) {
  if (config.slices == 0 || config.ras == 0)
    throw std::invalid_argument("PerformanceCoordinator: empty system");
  if (config_.u_min.empty()) {
    config_.u_min.assign(config_.slices, -50.0);  // paper default (Sec. VII)
  }
  if (config_.u_min.size() != config_.slices)
    throw std::invalid_argument("PerformanceCoordinator: u_min size mismatch");
  z_.assign(config_.slices * config_.ras, 0.0);
  y_.assign(config_.slices * config_.ras, 0.0);
}

std::size_t PerformanceCoordinator::index(std::size_t slice, std::size_t ra) const {
  if (slice >= config_.slices || ra >= config_.ras)
    throw std::out_of_range("PerformanceCoordinator: bad (slice, ra)");
  return slice * config_.ras + ra;
}

void PerformanceCoordinator::update(const nn::Matrix& performance_sums) {
  if (performance_sums.rows() != config_.slices ||
      performance_sums.cols() != config_.ras) {
    throw std::invalid_argument("PerformanceCoordinator: U matrix shape mismatch");
  }
  const std::vector<double> z_old = z_;

  // z-update (Eq. 9 / P2): per slice, project (U_i + y_i) onto
  // { z : sum_j z_j >= U_i^min }.
  for (std::size_t i = 0; i < config_.slices; ++i) {
    std::vector<double> c(config_.ras);
    for (std::size_t j = 0; j < config_.ras; ++j) {
      c[j] = performance_sums(i, j) + y_[index(i, j)];
    }
    const auto zi = opt::project_halfspace_sum_ge(c, config_.u_min[i]);
    for (std::size_t j = 0; j < config_.ras; ++j) z_[index(i, j)] = zi[j];
  }

  // y-update (Eq. 10): y <- y + (sum_t U - z).
  std::vector<double> u_flat(config_.slices * config_.ras);
  for (std::size_t i = 0; i < config_.slices; ++i) {
    for (std::size_t j = 0; j < config_.ras; ++j) {
      u_flat[index(i, j)] = performance_sums(i, j);
    }
  }
  opt::update_scaled_duals(y_, u_flat, z_);

  // Residual bookkeeping / convergence decision.
  opt::AdmmResiduals residuals;
  residuals.primal = opt::primal_residual_norm(u_flat, z_);
  residuals.dual = opt::dual_residual_norm(z_, z_old, config_.rho);
  double u_norm = 0.0;
  double z_norm = 0.0;
  double y_norm = 0.0;
  for (std::size_t k = 0; k < u_flat.size(); ++k) {
    u_norm += u_flat[k] * u_flat[k];
    z_norm += z_[k] * z_[k];
    y_norm += y_[k] * y_[k];
  }
  monitor_.record(residuals, std::sqrt(std::max(u_norm, z_norm)),
                  config_.rho * std::sqrt(y_norm), u_flat.size());
}

void PerformanceCoordinator::update(const std::vector<RcMonitoringMessage>& reports) {
  nn::Matrix u(config_.slices, config_.ras);
  if (reports.size() != config_.ras)
    throw std::invalid_argument("PerformanceCoordinator: need one report per RA");
  for (const auto& report : reports) {
    if (report.ra >= config_.ras || report.performance_sums.size() != config_.slices)
      throw std::invalid_argument("PerformanceCoordinator: malformed RC-M report");
    for (std::size_t i = 0; i < config_.slices; ++i) {
      u(i, report.ra) = report.performance_sums[i];
    }
  }
  update(u);
}

RcLearningMessage PerformanceCoordinator::coordination_for(std::size_t ra) const {
  RcLearningMessage msg;
  msg.ra = ra;
  msg.z_minus_y.resize(config_.slices);
  for (std::size_t i = 0; i < config_.slices; ++i) {
    msg.z_minus_y[i] = z_[index(i, ra)] - y_[index(i, ra)];
  }
  return msg;
}

double PerformanceCoordinator::z(std::size_t slice, std::size_t ra) const {
  return z_[index(slice, ra)];
}

double PerformanceCoordinator::y(std::size_t slice, std::size_t ra) const {
  return y_[index(slice, ra)];
}

bool PerformanceCoordinator::sla_satisfied(std::size_t slice) const {
  double total = 0.0;
  for (std::size_t j = 0; j < config_.ras; ++j) total += z_[index(slice, j)];
  return total >= config_.u_min[slice] - 1e-9;
}

void PerformanceCoordinator::apply_slice_request(const SliceRequest& request) {
  if (request.slice >= config_.slices)
    throw std::out_of_range("PerformanceCoordinator: bad slice in request");
  config_.u_min[request.slice] = request.u_min;
}

}  // namespace edgeslice::core
