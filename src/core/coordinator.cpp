#include "core/coordinator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/binio.h"
#include "common/metrics.h"
#include "common/trace_span.h"
#include "obs/event_log.h"
#include "opt/projection.h"

namespace edgeslice::core {

namespace {

/// Count the rejection under "coordinator.reject.<cause>", log it to the
/// flight recorder, and throw. The counters answer "why is the
/// coordinator ignoring updates" without a debugger attached — exactly
/// the signal a chaos run needs.
[[noreturn]] void reject(const char* cause, obs::RejectCause code,
                         const std::string& what) {
  global_metrics().counter(std::string("coordinator.reject.") + cause).add();
  obs::Event event;
  event.kind = obs::EventKind::CoordinatorReject;
  event.value = static_cast<double>(code);
  obs::global_event_log().record(event);
  throw std::invalid_argument(what);
}

}  // namespace

PerformanceCoordinator::PerformanceCoordinator(const CoordinatorConfig& config)
    : config_(config), monitor_(config.stopping) {
  if (config.slices == 0 || config.ras == 0)
    throw std::invalid_argument("PerformanceCoordinator: empty system");
  if (config_.u_min.empty()) {
    config_.u_min.assign(config_.slices, -50.0);  // paper default (Sec. VII)
  }
  if (config_.u_min.size() != config_.slices)
    throw std::invalid_argument("PerformanceCoordinator: u_min size mismatch");
  z_.assign(config_.slices * config_.ras, 0.0);
  y_.assign(config_.slices * config_.ras, 0.0);
}

std::size_t PerformanceCoordinator::index(std::size_t slice, std::size_t ra) const {
  if (slice >= config_.slices || ra >= config_.ras)
    throw std::out_of_range("PerformanceCoordinator: bad (slice, ra)");
  return slice * config_.ras + ra;
}

void PerformanceCoordinator::update(const nn::Matrix& performance_sums) {
  if (performance_sums.rows() != config_.slices ||
      performance_sums.cols() != config_.ras) {
    reject("shape", obs::RejectCause::Shape, "PerformanceCoordinator: U matrix shape mismatch");
  }
  for (double v : performance_sums.data()) {
    if (!std::isfinite(v))
      reject("nonfinite", obs::RejectCause::NonFinite, "PerformanceCoordinator: non-finite performance sum");
  }
  const auto solve_span = global_tracer().span("coordinator.solve");
  global_metrics().counter("coordinator.updates").add();
  scratch_z_old_ = z_;
  const std::vector<double>& z_old = scratch_z_old_;

  // z-update (Eq. 9 / P2): per slice, project (U_i + y_i) onto
  // { z : sum_j z_j >= U_i^min }.
  for (std::size_t i = 0; i < config_.slices; ++i) {
    scratch_c_.resize(config_.ras);
    for (std::size_t j = 0; j < config_.ras; ++j) {
      scratch_c_[j] = performance_sums(i, j) + y_[index(i, j)];
    }
    opt::project_halfspace_sum_ge_into(scratch_c_, config_.u_min[i], scratch_zi_);
    for (std::size_t j = 0; j < config_.ras; ++j) z_[index(i, j)] = scratch_zi_[j];
  }

  // y-update (Eq. 10): y <- y + (sum_t U - z).
  scratch_u_.resize(config_.slices * config_.ras);
  std::vector<double>& u_flat = scratch_u_;
  for (std::size_t i = 0; i < config_.slices; ++i) {
    for (std::size_t j = 0; j < config_.ras; ++j) {
      u_flat[index(i, j)] = performance_sums(i, j);
    }
  }
  opt::update_scaled_duals(y_, u_flat, z_);

  // Residual bookkeeping / convergence decision.
  opt::AdmmResiduals residuals;
  residuals.primal = opt::primal_residual_norm(u_flat, z_);
  residuals.dual = opt::dual_residual_norm(z_, z_old, config_.rho);
  double u_norm = 0.0;
  double z_norm = 0.0;
  double y_norm = 0.0;
  for (std::size_t k = 0; k < u_flat.size(); ++k) {
    u_norm += u_flat[k] * u_flat[k];
    z_norm += z_[k] * z_[k];
    y_norm += y_[k] * y_[k];
  }
  monitor_.record(residuals, std::sqrt(std::max(u_norm, z_norm)),
                  config_.rho * std::sqrt(y_norm), u_flat.size());
}

void PerformanceCoordinator::update(const nn::Matrix& performance_sums,
                                    const std::vector<bool>& active) {
  if (active.size() != config_.ras)
    reject("mask_size", obs::RejectCause::MaskSize, "PerformanceCoordinator: active mask size mismatch");
  const bool all_active = std::all_of(active.begin(), active.end(), [](bool a) { return a; });
  const std::size_t frozen =
      static_cast<std::size_t>(std::count(active.begin(), active.end(), false));
  global_metrics().gauge("coordinator.frozen_columns")
      .set(static_cast<double>(frozen));
  if (!all_active) {
    obs::Event event;
    event.kind = obs::EventKind::ColumnsFrozen;
    event.value = static_cast<double>(frozen);
    obs::global_event_log().record(event);
  }
  if (all_active) {
    update(performance_sums);
    return;
  }
  if (performance_sums.rows() != config_.slices ||
      performance_sums.cols() != config_.ras) {
    reject("shape", obs::RejectCause::Shape, "PerformanceCoordinator: U matrix shape mismatch");
  }
  for (std::size_t i = 0; i < config_.slices; ++i) {
    for (std::size_t j = 0; j < config_.ras; ++j) {
      if (active[j] && !std::isfinite(performance_sums(i, j)))
        reject("nonfinite", obs::RejectCause::NonFinite, "PerformanceCoordinator: non-finite performance sum");
    }
  }

  scratch_live_.clear();
  std::vector<std::size_t>& live = scratch_live_;
  for (std::size_t j = 0; j < config_.ras; ++j) {
    if (active[j]) live.push_back(j);
  }
  if (live.empty()) return;  // everything frozen: no information, no update

  const auto solve_span = global_tracer().span("coordinator.solve");
  global_metrics().counter("coordinator.updates").add();
  scratch_z_old_ = z_;
  const std::vector<double>& z_old = scratch_z_old_;

  // z-update restricted to live columns; the frozen columns contribute
  // their last z to the SLA budget, so the projection bound becomes
  // U_i^min - sum_{frozen j} z_{i,j}.
  for (std::size_t i = 0; i < config_.slices; ++i) {
    scratch_c_.resize(live.size());
    std::vector<double>& c = scratch_c_;
    double frozen_sum = 0.0;
    for (std::size_t j = 0; j < config_.ras; ++j) {
      if (!active[j]) frozen_sum += z_[index(i, j)];
    }
    for (std::size_t k = 0; k < live.size(); ++k) {
      c[k] = performance_sums(i, live[k]) + y_[index(i, live[k])];
    }
    opt::project_halfspace_sum_ge_into(c, config_.u_min[i] - frozen_sum, scratch_zi_);
    for (std::size_t k = 0; k < live.size(); ++k) z_[index(i, live[k])] = scratch_zi_[k];
  }

  // y-update on live columns only; frozen duals hold their value.
  scratch_u_.resize(config_.slices * live.size());
  scratch_z_live_.resize(config_.slices * live.size());
  scratch_z_old_live_.resize(config_.slices * live.size());
  scratch_y_live_.resize(config_.slices * live.size());
  std::vector<double>& u_live = scratch_u_;
  std::vector<double>& z_live = scratch_z_live_;
  std::vector<double>& z_old_live = scratch_z_old_live_;
  std::vector<double>& y_live = scratch_y_live_;
  for (std::size_t i = 0; i < config_.slices; ++i) {
    for (std::size_t k = 0; k < live.size(); ++k) {
      const std::size_t flat = i * live.size() + k;
      u_live[flat] = performance_sums(i, live[k]);
      z_live[flat] = z_[index(i, live[k])];
      z_old_live[flat] = z_old[index(i, live[k])];
      y_live[flat] = y_[index(i, live[k])];
    }
  }
  opt::update_scaled_duals(y_live, u_live, z_live);
  for (std::size_t i = 0; i < config_.slices; ++i) {
    for (std::size_t k = 0; k < live.size(); ++k) {
      y_[index(i, live[k])] = y_live[i * live.size() + k];
    }
  }

  opt::AdmmResiduals residuals;
  residuals.primal = opt::primal_residual_norm(u_live, z_live);
  residuals.dual = opt::dual_residual_norm(z_live, z_old_live, config_.rho);
  double u_norm = 0.0;
  double z_norm = 0.0;
  double y_norm = 0.0;
  for (std::size_t k = 0; k < u_live.size(); ++k) {
    u_norm += u_live[k] * u_live[k];
    z_norm += z_live[k] * z_live[k];
    y_norm += y_live[k] * y_live[k];
  }
  monitor_.record(residuals, std::sqrt(std::max(u_norm, z_norm)),
                  config_.rho * std::sqrt(y_norm), u_live.size());
}

void PerformanceCoordinator::update(const std::vector<RcMonitoringMessage>& reports) {
  nn::Matrix u(config_.slices, config_.ras);
  if (reports.size() != config_.ras)
    reject("report_count", obs::RejectCause::ReportCount, "PerformanceCoordinator: need one report per RA");
  std::vector<bool> seen(config_.ras, false);
  for (const auto& report : reports) {
    if (report.ra >= config_.ras || report.performance_sums.size() != config_.slices)
      reject("malformed_report", obs::RejectCause::MalformedReport, "PerformanceCoordinator: malformed RC-M report");
    if (seen[report.ra])
      reject("duplicate_report", obs::RejectCause::DuplicateReport,
             "PerformanceCoordinator: duplicate RC-M report for RA " +
                 std::to_string(report.ra));
    seen[report.ra] = true;
    for (std::size_t i = 0; i < config_.slices; ++i) {
      if (!std::isfinite(report.performance_sums[i]))
        reject("nonfinite", obs::RejectCause::NonFinite, "PerformanceCoordinator: non-finite RC-M report");
      u(i, report.ra) = report.performance_sums[i];
    }
  }
  update(u);
}

RcLearningMessage PerformanceCoordinator::coordination_for(std::size_t ra) const {
  RcLearningMessage msg;
  coordination_for_into(ra, msg);
  return msg;
}

void PerformanceCoordinator::coordination_for_into(std::size_t ra,
                                                   RcLearningMessage& msg) const {
  msg.ra = ra;
  msg.z_minus_y.resize(config_.slices);
  for (std::size_t i = 0; i < config_.slices; ++i) {
    msg.z_minus_y[i] = z_[index(i, ra)] - y_[index(i, ra)];
  }
}

double PerformanceCoordinator::z(std::size_t slice, std::size_t ra) const {
  return z_[index(slice, ra)];
}

double PerformanceCoordinator::y(std::size_t slice, std::size_t ra) const {
  return y_[index(slice, ra)];
}

bool PerformanceCoordinator::sla_satisfied(std::size_t slice) const {
  double total = 0.0;
  for (std::size_t j = 0; j < config_.ras; ++j) total += z_[index(slice, j)];
  return total >= config_.u_min[slice] - 1e-9;
}

void PerformanceCoordinator::save_state(std::ostream& out) const {
  write_u64(out, config_.slices);
  write_u64(out, config_.ras);
  write_f64_vector(out, z_);
  write_f64_vector(out, y_);
  write_u64(out, monitor_.iterations());
  write_u8(out, monitor_.converged() ? 1 : 0);
  write_u64(out, monitor_.history().size());
  for (const opt::AdmmResiduals& r : monitor_.history()) {
    write_f64(out, r.primal);
    write_f64(out, r.dual);
  }
}

void PerformanceCoordinator::load_state(std::istream& in) {
  constexpr const char* kContext = "PerformanceCoordinator::load_state";
  const auto fail = [&](const std::string& what) {
    throw std::runtime_error(std::string(kContext) + ": " + what);
  };
  if (read_u64(in, kContext) != config_.slices) fail("slice count mismatch");
  if (read_u64(in, kContext) != config_.ras) fail("RA count mismatch");
  std::vector<double> z = read_f64_vector(in, kContext);
  std::vector<double> y = read_f64_vector(in, kContext);
  if (z.size() != z_.size() || y.size() != y_.size()) fail("Z/Y size mismatch");
  for (double v : z) {
    if (!std::isfinite(v)) fail("non-finite Z entry");
  }
  for (double v : y) {
    if (!std::isfinite(v)) fail("non-finite Y entry");
  }
  const std::uint64_t iterations = read_u64(in, kContext);
  const bool converged = read_u8(in, kContext) != 0;
  const std::uint64_t history_size = read_u64(in, kContext);
  if (history_size > (1ull << 24)) fail("absurd residual history size");
  std::vector<opt::AdmmResiduals> history(static_cast<std::size_t>(history_size));
  for (auto& r : history) {
    r.primal = read_f64(in, kContext);
    r.dual = read_f64(in, kContext);
  }
  z_ = std::move(z);
  y_ = std::move(y);
  monitor_.restore(static_cast<std::size_t>(iterations), converged, std::move(history));
}

void PerformanceCoordinator::apply_slice_request(const SliceRequest& request) {
  if (request.slice >= config_.slices)
    throw std::out_of_range("PerformanceCoordinator: bad slice in request");
  if (!std::isfinite(request.u_min))
    throw std::invalid_argument("PerformanceCoordinator: non-finite u_min in request");
  config_.u_min[request.slice] = request.u_min;
}

}  // namespace edgeslice::core
