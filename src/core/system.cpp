#include "core/system.h"

#include <stdexcept>

namespace edgeslice::core {

EdgeSliceSystem::EdgeSliceSystem(std::vector<env::RaEnvironment*> environments,
                                 std::vector<RaPolicy*> policies,
                                 const CoordinatorConfig& coordinator_config,
                                 SystemConfig config)
    : environments_(std::move(environments)),
      policies_(std::move(policies)),
      coordinator_(coordinator_config),
      config_(config) {
  if (environments_.empty() || environments_.size() != policies_.size())
    throw std::invalid_argument("EdgeSliceSystem: environments/policies mismatch");
  if (environments_.size() != coordinator_config.ras)
    throw std::invalid_argument("EdgeSliceSystem: RA count mismatch with coordinator");
  for (std::size_t j = 0; j < environments_.size(); ++j) {
    if (environments_[j] == nullptr || policies_[j] == nullptr)
      throw std::invalid_argument("EdgeSliceSystem: null environment or policy");
    if (environments_[j]->slice_count() != coordinator_config.slices)
      throw std::invalid_argument("EdgeSliceSystem: slice count mismatch");
  }
  monitor_ = std::make_unique<SystemMonitor>(coordinator_config.slices,
                                             environments_.size());
}

PeriodResult EdgeSliceSystem::run_period() {
  const std::size_t slices = coordinator_.config().slices;
  const std::size_t ras = environments_.size();
  const std::size_t intervals = environments_.front()->config().intervals_per_period;

  PeriodResult result;
  result.performance_sums = nn::Matrix(slices, ras);
  result.slice_performance.assign(slices, 0.0);

  for (std::size_t t = 0; t < intervals; ++t) {
    for (std::size_t j = 0; j < ras; ++j) {
      auto& environment = *environments_[j];
      const std::vector<double> action = policies_[j]->decide(environment);
      const env::StepResult step = environment.step(action);
      policies_[j]->feedback(step);
      monitor_->record(j, period_, interval_, step, action);
      for (std::size_t i = 0; i < slices; ++i) {
        result.performance_sums(i, j) += step.performance[i];
        result.slice_performance[i] += step.performance[i];
        result.system_performance += step.performance[i];
      }
    }
    ++interval_;
  }

  if (config_.use_coordinator) {
    coordinator_.update(result.performance_sums);
    for (std::size_t j = 0; j < ras; ++j) {
      environments_[j]->set_coordination(coordinator_.coordination_for(j).z_minus_y);
    }
    result.coordinator_converged = coordinator_.converged();
  }
  ++period_;
  return result;
}

std::vector<PeriodResult> EdgeSliceSystem::run(std::size_t periods) {
  std::vector<PeriodResult> results;
  results.reserve(periods);
  for (std::size_t p = 0; p < periods; ++p) results.push_back(run_period());
  return results;
}

}  // namespace edgeslice::core
