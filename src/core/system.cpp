#include "core/system.h"

#include <array>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "ckpt/container.h"
#include "common/binio.h"
#include "common/metrics.h"
#include "common/trace_span.h"
#include "obs/event_log.h"
#include "obs/sla_watchdog.h"
#include "rl/batched_actor.h"

namespace edgeslice::core {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

/// Flight-recorder entry for one fault applied to the substrate.
void log_fault_event(obs::EventKind kind, std::size_t period, std::size_t ra,
                     double value = 0.0) {
  obs::Event event;
  event.kind = kind;
  event.period = period;
  event.ra = ra;
  event.value = value;
  obs::global_event_log().record(event);
}

}  // namespace

EdgeSliceSystem::EdgeSliceSystem(std::vector<env::RaEnvironment*> environments,
                                 std::vector<RaPolicy*> policies,
                                 const CoordinatorConfig& coordinator_config,
                                 SystemConfig config)
    : environments_(std::move(environments)),
      policies_(std::move(policies)),
      coordinator_(coordinator_config),
      config_(config),
      bus_(config.faults) {
  if (environments_.empty() || environments_.size() != policies_.size())
    throw std::invalid_argument("EdgeSliceSystem: environments/policies mismatch");
  if (environments_.size() != coordinator_config.ras)
    throw std::invalid_argument("EdgeSliceSystem: RA count mismatch with coordinator");
  for (std::size_t j = 0; j < environments_.size(); ++j) {
    if (environments_[j] == nullptr || policies_[j] == nullptr)
      throw std::invalid_argument("EdgeSliceSystem: null environment or policy");
    if (environments_[j]->slice_count() != coordinator_config.slices)
      throw std::invalid_argument("EdgeSliceSystem: slice count mismatch");
  }
  if (config_.transport != nullptr &&
      config_.transport->ra_count() != environments_.size())
    throw std::invalid_argument("EdgeSliceSystem: transport RA count mismatch");
  bus_.set_transport(config_.transport);
  monitor_ = std::make_unique<SystemMonitor>(coordinator_config.slices,
                                             environments_.size());
  last_report_.assign(environments_.size(),
                      std::vector<double>(coordinator_config.slices, 0.0));
  last_report_period_.assign(environments_.size(), 0);
  has_report_.assign(environments_.size(), false);
}

PeriodResult EdgeSliceSystem::run_period() {
  const std::size_t slices = coordinator_.config().slices;
  const std::size_t ras = environments_.size();
  const std::size_t intervals = environments_.front()->config().intervals_per_period;
  const FaultInjector* faults = config_.faults;

  global_tracer().set_period(period_);
  obs::global_event_log().set_period(period_);
  const auto period_span = global_tracer().span("system.period");

  PeriodResult result;
  result.performance_sums = nn::Matrix(slices, ras);
  result.slice_performance.assign(slices, 0.0);

  // Which RAs are down this period, and how degraded the live substrates
  // are. Crashed RAs run no intervals: the agent is gone, so no actions
  // are taken, no traffic is served, and no monitoring rows are recorded.
  // With a transport, derates travel in the directives instead of being
  // applied to the (never-stepped) local environments, and process-real
  // fault actions ride along for the supervisor to execute.
  RaTransport* transport = config_.transport;
  std::vector<RaPeriodDirective> directives(transport != nullptr ? ras : 0);
  std::vector<bool> crashed(ras, false);
  if (faults) {
    for (std::size_t j = 0; j < ras; ++j) {
      crashed[j] = faults->ra_crashed(period_, j);
      if (transport != nullptr) {
        directives[j].run = !crashed[j];
        directives[j].fault = faults->process_fault(period_, j);
        directives[j].stall_ms =
            static_cast<std::uint32_t>(faults->process_fault_stall_ms(period_, j));
      }
      if (crashed[j]) {
        ++result.crashed_ras;
        log_fault_event(obs::EventKind::FaultRaCrash, period_, j);
        continue;
      }
      std::array<double, env::kResources> derate{1.0, 1.0, 1.0};
      if (faults->cqi_blackout(period_, j)) {
        derate[env::kRadio] = 0.0;
        log_fault_event(obs::EventKind::FaultCqiBlackout, period_, j);
      }
      if (faults->link_failure(period_, j)) {
        derate[env::kTransport] = 0.0;
        log_fault_event(obs::EventKind::FaultLinkFailure, period_, j);
      }
      const double slowdown = faults->compute_slowdown(period_, j);
      derate[env::kCompute] = 1.0 / slowdown;
      if (slowdown > 1.0) {
        log_fault_event(obs::EventKind::FaultComputeSlowdown, period_, j, slowdown);
      }
      if (transport != nullptr) {
        directives[j].has_derate = true;
        directives[j].derate = derate;
      } else {
        environments_[j]->set_resource_derate(derate);
      }
    }
  }

  ThreadPool* pool = config_.pool;
  if (transport != nullptr) {
    // Remote execution: one directive per RA out, one trace per RA back,
    // reduced in the same sequential (t, j) order as every other path.
    const auto intervals_span = global_tracer().span("system.transport_intervals");
    std::vector<RaPeriodTrace> traces = transport->run_intervals(period_, directives);
    if (traces.size() != ras)
      throw std::runtime_error("EdgeSliceSystem: transport trace count mismatch");
    for (std::size_t j = 0; j < ras; ++j) {
      // An RA the transport could not run (worker died or hung mid-period)
      // degrades exactly like a crash: no monitoring rows, no RC-M report;
      // carry-forward and column-freeze take over below.
      if (!crashed[j] && (!traces[j].ran || traces[j].steps.size() != intervals ||
                          traces[j].actions.size() != intervals)) {
        crashed[j] = true;
        ++result.crashed_ras;
        log_fault_event(obs::EventKind::FaultRaCrash, period_, j);
      }
    }
    for (std::size_t t = 0; t < intervals; ++t) {
      for (std::size_t j = 0; j < ras; ++j) {
        if (crashed[j]) continue;
        const env::StepResult& step = traces[j].steps[t];
        monitor_->record(j, period_, interval_, step, traces[j].actions[t]);
        for (std::size_t i = 0; i < slices; ++i) {
          result.performance_sums(i, j) += step.performance[i];
          result.slice_performance[i] += step.performance[i];
          result.system_performance += step.performance[i];
        }
      }
      ++interval_;
    }
  } else if (pool != nullptr && pool->thread_count() > 1 && ras > 1) {
    // Decentralized execution: each RA's whole period runs on the worker
    // that owns it (its environment and policy are touched by no other
    // thread), with the per-interval results buffered per RA.
    struct RaTrace {
      std::vector<env::StepResult> steps;
      std::vector<std::vector<double>> actions;
    };
    std::vector<RaTrace> traces(ras);
    const bool timed = metrics_enabled();
    const auto dispatch_time = SteadyClock::now();
    pool->parallel_for(ras, [&](std::size_t j) {
      if (crashed[j]) return;
      // Time from batch dispatch to this RA's body starting: how long the
      // RA sat in the pool's queue behind other work.
      if (timed) {
        global_tracer().record("system.pool_queue_wait", seconds_since(dispatch_time));
      }
      const auto ra_start = SteadyClock::now();
      auto& environment = *environments_[j];
      auto& trace = traces[j];
      trace.steps.reserve(intervals);
      trace.actions.reserve(intervals);
      for (std::size_t t = 0; t < intervals; ++t) {
        std::vector<double> action = policies_[j]->decide(environment);
        env::StepResult step = environment.step(action);
        policies_[j]->feedback(step);
        trace.steps.push_back(std::move(step));
        trace.actions.push_back(std::move(action));
      }
      if (timed) global_tracer().record("system.ra_intervals", seconds_since(ra_start));
    });
    // parallel_for is the barrier; reduce in the sequential (t, j) order
    // so monitoring rows and floating-point accumulation are bit-identical
    // to a sequential run regardless of worker interleaving.
    for (std::size_t t = 0; t < intervals; ++t) {
      for (std::size_t j = 0; j < ras; ++j) {
        if (crashed[j]) continue;
        const env::StepResult& step = traces[j].steps[t];
        monitor_->record(j, period_, interval_, step, traces[j].actions[t]);
        for (std::size_t i = 0; i < slices; ++i) {
          result.performance_sums(i, j) += step.performance[i];
          result.slice_performance[i] += step.performance[i];
          result.system_performance += step.performance[i];
        }
      }
      ++interval_;
    }
  } else {
    // Sequential path: the (t, j) loops interleave RAs per interval, so
    // per-RA time is accumulated across intervals and recorded once per
    // RA — the same span granularity the parallel path reports.
    const bool timed = metrics_enabled();
    std::vector<double> ra_seconds(ras, 0.0);

    // Cross-agent batched inference: RAs whose policy's decide() is a
    // pure forward pass, grouped by the network they share (in deployment
    // that is one group holding every live RA). Their states are readable
    // up front each interval because an environment only advances when
    // its own RA steps, and per-row kernel determinism makes each batched
    // row bit-identical to the per-RA decide() it replaces.
    struct InferenceGroup {
      rl::BatchedActor actor;
      std::vector<std::size_t> members;  // RA indices, ascending
    };
    std::vector<InferenceGroup> groups;
    constexpr std::size_t kUnbatched = static_cast<std::size_t>(-1);
    // Per RA: {group index, row within the group} or {kUnbatched, 0}.
    std::vector<std::pair<std::size_t, std::size_t>> slot(ras, {kUnbatched, 0});
    if (config_.batched_inference) {
      for (std::size_t j = 0; j < ras; ++j) {
        if (crashed[j]) continue;
        const nn::Mlp* network = policies_[j]->inference_network();
        if (network == nullptr) continue;
        std::size_t g = 0;
        while (g < groups.size() && &groups[g].actor.network() != network) ++g;
        if (g == groups.size()) groups.push_back({rl::BatchedActor(*network), {}});
        slot[j] = {g, groups[g].members.size()};
        groups[g].members.push_back(j);
      }
    }

    double batch_seconds = 0.0;
    for (std::size_t t = 0; t < intervals; ++t) {
      const auto batch_start = timed ? SteadyClock::now() : SteadyClock::time_point{};
      for (auto& group : groups) {
        group.actor.begin(group.members.size());
        for (std::size_t row = 0; row < group.members.size(); ++row) {
          group.actor.set_state(row, environments_[group.members[row]]->state());
        }
        group.actor.infer();
      }
      if (timed && !groups.empty()) batch_seconds += seconds_since(batch_start);
      for (std::size_t j = 0; j < ras; ++j) {
        if (crashed[j]) continue;
        const auto ra_start = timed ? SteadyClock::now() : SteadyClock::time_point{};
        auto& environment = *environments_[j];
        const std::vector<double> action =
            slot[j].first != kUnbatched
                ? groups[slot[j].first].actor.action(slot[j].second)
                : policies_[j]->decide(environment);
        const env::StepResult step = environment.step(action);
        policies_[j]->feedback(step);
        monitor_->record(j, period_, interval_, step, action);
        for (std::size_t i = 0; i < slices; ++i) {
          result.performance_sums(i, j) += step.performance[i];
          result.slice_performance[i] += step.performance[i];
          result.system_performance += step.performance[i];
        }
        if (timed) ra_seconds[j] += seconds_since(ra_start);
      }
      ++interval_;
    }
    if (timed) {
      for (std::size_t j = 0; j < ras; ++j) {
        if (!crashed[j]) global_tracer().record("system.ra_intervals", ra_seconds[j]);
      }
      if (!groups.empty()) {
        global_tracer().record("system.batched_inference", batch_seconds);
      }
    }
  }

  if (config_.use_coordinator) {
    const auto coordinate_span = global_tracer().span("coordinate");
    // Live RAs post their RC-M reports onto the message plane; the bus may
    // drop or delay them per the fault plan.
    for (std::size_t j = 0; j < ras; ++j) {
      if (crashed[j]) continue;
      RcMonitoringMessage report;
      report.ra = j;
      report.performance_sums.resize(slices);
      for (std::size_t i = 0; i < slices; ++i) {
        report.performance_sums[i] = result.performance_sums(i, j);
      }
      bus_.post_report(period_, std::move(report));
    }

    // Ingest everything deliverable this period. Envelopes arrive ordered
    // by (deliver_period, seq), so a delayed stale report never overwrites
    // a fresher one delivered alongside it; the explicit sent_period guard
    // covers reordering across collect calls.
    for (auto& envelope : bus_.collect_reports(period_)) {
      const std::size_t ra = envelope.message.ra;
      if (ra >= ras || envelope.message.performance_sums.size() != slices) continue;
      if (has_report_[ra] && envelope.sent_period < last_report_period_[ra]) continue;
      last_report_[ra] = std::move(envelope.message.performance_sums);
      last_report_period_[ra] = envelope.sent_period;
      has_report_[ra] = true;
      if (envelope.sent_period == period_) ++result.reports_fresh;
    }

    // Assemble the coordinator's input: fresh columns, carried-forward
    // columns within the staleness window, frozen columns beyond it.
    nn::Matrix u(slices, ras);
    std::vector<bool> active(ras, false);
    for (std::size_t j = 0; j < ras; ++j) {
      if (!has_report_[j]) {
        ++result.columns_frozen;
        continue;
      }
      const std::size_t staleness = period_ - last_report_period_[j];
      if (staleness > config_.max_report_staleness) {
        ++result.columns_frozen;
        continue;
      }
      active[j] = true;
      for (std::size_t i = 0; i < slices; ++i) u(i, j) = last_report_[j][i];
      if (staleness > 0) ++result.reports_carried;
    }
    coordinator_.update(u, active);

    // RC-L push through the bus; an RA that misses it keeps acting on its
    // last-known coordination vector, and a crashed RA receives nothing
    // (it picks up the current vector after its first post-restart period).
    // With a transport the bus ships the vector to the RA's worker itself;
    // in-process the delivery is this set_coordination call.
    for (std::size_t j = 0; j < ras; ++j) {
      if (crashed[j]) continue;
      const RcLearningMessage message = coordinator_.coordination_for(j);
      if (bus_.deliver_coordination(period_, message)) {
        if (transport == nullptr) environments_[j]->set_coordination(message.z_minus_y);
      } else {
        ++result.rcl_losses;
      }
    }
    result.coordinator_converged = coordinator_.converged();
  }
  if (transport != nullptr) transport->end_period(period_);
  // Degraded-mode signals of the period just run, readable while the
  // system is live (the chaos benches and operators poll these).
  auto& metrics = global_metrics();
  metrics.gauge("system.crashed_ras").set(static_cast<double>(result.crashed_ras));
  metrics.gauge("system.columns_frozen").set(static_cast<double>(result.columns_frozen));
  metrics.gauge("system.reports_carried").set(static_cast<double>(result.reports_carried));
  metrics.counter("system.rcl_losses").add(result.rcl_losses);
  metrics.counter("system.periods").add();
  // SLO evaluation against the monitor's incremental per-(ra, period)
  // sums: the network-wide per-slice performance of the period just run.
  // Observation-only — the watchdog's verdicts never steer orchestration.
  if (config_.watchdog != nullptr) {
    std::vector<double> slice_sums(slices, 0.0);
    for (std::size_t j = 0; j < ras; ++j) {
      if (crashed[j]) continue;
      const RcMonitoringMessage report = monitor_->report(j, period_);
      for (std::size_t i = 0; i < slices; ++i) {
        slice_sums[i] += report.performance_sums[i];
      }
    }
    config_.watchdog->evaluate(period_, slice_sums);
  }
  ++period_;
  return result;
}

std::vector<PeriodResult> EdgeSliceSystem::run(std::size_t periods) {
  std::vector<PeriodResult> results;
  results.reserve(periods);
  for (std::size_t p = 0; p < periods; ++p) results.push_back(run_period());
  return results;
}

namespace {

/// Canonical double rendering for fingerprints: shortest exact form.
std::string canonical(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

}  // namespace

std::string EdgeSliceSystem::config_fingerprint() const {
  const CoordinatorConfig& c = coordinator_.config();
  std::ostringstream out;
  out << "artifact = system\n";
  out << "slices = " << c.slices << "\n";
  out << "ras = " << environments_.size() << "\n";
  out << "intervals_per_period = "
      << environments_.front()->config().intervals_per_period << "\n";
  out << "use_coordinator = " << (config_.use_coordinator ? 1 : 0) << "\n";
  out << "max_report_staleness = " << config_.max_report_staleness << "\n";
  out << "rho = " << canonical(c.rho) << "\n";
  out << "u_min =";
  for (double u : c.u_min) out << " " << canonical(u);
  out << "\n";
  out << "admm.abs_tol = " << canonical(c.stopping.absolute_tolerance) << "\n";
  out << "admm.rel_tol = " << canonical(c.stopping.relative_tolerance) << "\n";
  out << "admm.min_iterations = " << c.stopping.min_iterations << "\n";
  out << "admm.max_iterations = " << c.stopping.max_iterations << "\n";
  return out.str();
}

bool EdgeSliceSystem::save_checkpoint(const std::string& path) const {
  ckpt::CheckpointWriter writer(config_fingerprint());

  std::ostringstream loop;
  write_u64(loop, period_);
  write_u64(loop, interval_);
  for (std::size_t j = 0; j < environments_.size(); ++j) {
    write_u8(loop, has_report_[j] ? 1 : 0);
    write_u64(loop, last_report_period_[j]);
    write_f64_vector(loop, last_report_[j]);
  }
  writer.add_section(ckpt::SectionKind::SystemLoop, 0, loop.str());

  std::ostringstream coordinator;
  coordinator_.save_state(coordinator);
  writer.add_section(ckpt::SectionKind::Coordinator, 0, coordinator.str());

  std::ostringstream bus;
  bus_.save_state(bus);
  writer.add_section(ckpt::SectionKind::MessageBus, 0, bus.str());

  // Environment sections come from wherever the environments actually
  // live. Transport snapshots are requested after the period's
  // coordination frames (socket ordering guarantees the worker applied
  // them first), so the blobs are byte-identical to an in-process
  // save_state at the same boundary.
  for (std::size_t j = 0; j < environments_.size(); ++j) {
    std::string blob;
    if (config_.transport != nullptr) {
      blob = config_.transport->environment_state(j);
    } else {
      std::ostringstream environment;
      environments_[j]->save_state(environment);
      blob = environment.str();
    }
    writer.add_section(ckpt::SectionKind::Environment,
                       static_cast<std::uint32_t>(j), std::move(blob));
  }
  return writer.write_file(path);
}

void EdgeSliceSystem::load_checkpoint(const std::string& path) {
  constexpr const char* kContext = "EdgeSliceSystem::load_checkpoint";
  const ckpt::CheckpointReader reader = ckpt::CheckpointReader::from_file(path);
  if (reader.fingerprint() != config_fingerprint()) {
    throw std::runtime_error(std::string(kContext) +
                             ": checkpoint was taken under a different system "
                             "configuration (fingerprint mismatch)");
  }
  const std::size_t slices = coordinator_.config().slices;

  // Decode the loop section into temporaries before touching anything, so
  // a corrupt checkpoint leaves the system unchanged. The component
  // load_state calls below share that contract individually; they run
  // after all payloads are known present (require() throws first).
  std::istringstream loop(reader.require(ckpt::SectionKind::SystemLoop));
  const std::uint64_t period = read_u64(loop, kContext);
  const std::uint64_t interval = read_u64(loop, kContext);
  std::vector<std::vector<double>> last_report(environments_.size());
  std::vector<std::size_t> last_report_period(environments_.size(), 0);
  std::vector<bool> has_report(environments_.size(), false);
  for (std::size_t j = 0; j < environments_.size(); ++j) {
    has_report[j] = read_u8(loop, kContext) != 0;
    last_report_period[j] = static_cast<std::size_t>(read_u64(loop, kContext));
    last_report[j] = read_f64_vector(loop, kContext);
    if (last_report[j].size() != slices) {
      throw std::runtime_error(std::string(kContext) +
                               ": carried report size mismatch (RA " +
                               std::to_string(j) + ")");
    }
  }

  std::istringstream coordinator(reader.require(ckpt::SectionKind::Coordinator));
  std::istringstream bus(reader.require(ckpt::SectionKind::MessageBus));
  std::vector<std::string> environment_blobs;
  environment_blobs.reserve(environments_.size());
  for (std::size_t j = 0; j < environments_.size(); ++j) {
    environment_blobs.push_back(reader.require(
        ckpt::SectionKind::Environment, static_cast<std::uint32_t>(j)));
  }

  coordinator_.load_state(coordinator);
  bus_.load_state(bus);
  // Always validate the blobs into the local environments first (a corrupt
  // section throws before any remote state is touched); with a transport,
  // the blobs are then pushed to the workers, which are the authoritative
  // copies.
  for (std::size_t j = 0; j < environments_.size(); ++j) {
    std::istringstream blob(environment_blobs[j]);
    environments_[j]->load_state(blob);
  }
  if (config_.transport != nullptr) {
    for (std::size_t j = 0; j < environments_.size(); ++j) {
      config_.transport->restore_environment(j, environment_blobs[j]);
    }
  }
  period_ = static_cast<std::size_t>(period);
  interval_ = static_cast<std::size_t>(interval);
  last_report_ = std::move(last_report);
  last_report_period_ = std::move(last_report_period);
  has_report_ = std::move(has_report);
}

}  // namespace edgeslice::core
