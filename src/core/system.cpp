#include "core/system.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "ckpt/container.h"
#include "common/binio.h"
#include "common/metrics.h"
#include "common/trace_span.h"
#include "obs/event_log.h"
#include "obs/sla_watchdog.h"
#include "rl/batched_actor.h"

namespace edgeslice::core {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

/// Flight-recorder entry for one fault applied to the substrate.
void log_fault_event(obs::EventKind kind, std::size_t period, std::size_t ra,
                     double value = 0.0) {
  obs::Event event;
  event.kind = kind;
  event.period = period;
  event.ra = ra;
  event.value = value;
  obs::global_event_log().record(event);
}

}  // namespace

EdgeSliceSystem::EdgeSliceSystem(std::vector<env::RaEnvironment*> environments,
                                 std::vector<RaPolicy*> policies,
                                 const CoordinatorConfig& coordinator_config,
                                 SystemConfig config)
    : environments_(std::move(environments)),
      policies_(std::move(policies)),
      coordinator_(coordinator_config),
      config_(config),
      bus_(config.faults) {
  if (environments_.empty() || environments_.size() != policies_.size())
    throw std::invalid_argument("EdgeSliceSystem: environments/policies mismatch");
  if (environments_.size() != coordinator_config.ras)
    throw std::invalid_argument("EdgeSliceSystem: RA count mismatch with coordinator");
  for (std::size_t j = 0; j < environments_.size(); ++j) {
    if (environments_[j] == nullptr || policies_[j] == nullptr)
      throw std::invalid_argument("EdgeSliceSystem: null environment or policy");
    if (environments_[j]->slice_count() != coordinator_config.slices)
      throw std::invalid_argument("EdgeSliceSystem: slice count mismatch");
  }
  if (config_.transport != nullptr &&
      config_.transport->ra_count() != environments_.size())
    throw std::invalid_argument("EdgeSliceSystem: transport RA count mismatch");
  bus_.set_transport(config_.transport);
  monitor_ = std::make_unique<SystemMonitor>(coordinator_config.slices,
                                             environments_.size());
  last_report_.assign(environments_.size(),
                      std::vector<double>(coordinator_config.slices, 0.0));
  last_report_period_.assign(environments_.size(), 0);
  has_report_.assign(environments_.size(), false);
}

PeriodResult EdgeSliceSystem::run_period() {
  PeriodResult result;
  run_period_into(result);
  return result;
}

void EdgeSliceSystem::run_period_into(PeriodResult& result) {
  const std::size_t slices = coordinator_.config().slices;
  const std::size_t ras = environments_.size();
  const std::size_t intervals = environments_.front()->config().intervals_per_period;
  const FaultInjector* faults = config_.faults;

  global_tracer().set_period(period_);
  obs::global_event_log().set_period(period_);
  const auto period_span = global_tracer().span("system.period");
  period_arena_.reset();

  if (result.performance_sums.rows() != slices ||
      result.performance_sums.cols() != ras) {
    result.performance_sums = nn::Matrix(slices, ras);
  } else {
    auto& cells = result.performance_sums.data();
    std::fill(cells.begin(), cells.end(), 0.0);
  }
  result.system_performance = 0.0;
  result.slice_performance.assign(slices, 0.0);
  result.coordinator_converged = false;
  result.crashed_ras = 0;
  result.reports_fresh = 0;
  result.reports_carried = 0;
  result.columns_frozen = 0;
  result.rcl_losses = 0;

  // Which RAs are down this period, and how degraded the live substrates
  // are. Crashed RAs run no intervals: the agent is gone, so no actions
  // are taken, no traffic is served, and no monitoring rows are recorded.
  // With a transport, derates travel in the directives instead of being
  // applied to the (never-stepped) local environments, and process-real
  // fault actions ride along for the supervisor to execute.
  RaTransport* transport = config_.transport;
  std::vector<RaPeriodDirective> directives(transport != nullptr ? ras : 0);
  bool* const crashed = period_arena_.make_array<bool>(ras);
  if (faults) {
    for (std::size_t j = 0; j < ras; ++j) {
      crashed[j] = faults->ra_crashed(period_, j);
      if (transport != nullptr) {
        directives[j].run = !crashed[j];
        directives[j].fault = faults->process_fault(period_, j);
        directives[j].stall_ms =
            static_cast<std::uint32_t>(faults->process_fault_stall_ms(period_, j));
      }
      if (crashed[j]) {
        ++result.crashed_ras;
        log_fault_event(obs::EventKind::FaultRaCrash, period_, j);
        continue;
      }
      std::array<double, env::kResources> derate{1.0, 1.0, 1.0};
      if (faults->cqi_blackout(period_, j)) {
        derate[env::kRadio] = 0.0;
        log_fault_event(obs::EventKind::FaultCqiBlackout, period_, j);
      }
      if (faults->link_failure(period_, j)) {
        derate[env::kTransport] = 0.0;
        log_fault_event(obs::EventKind::FaultLinkFailure, period_, j);
      }
      const double slowdown = faults->compute_slowdown(period_, j);
      derate[env::kCompute] = 1.0 / slowdown;
      if (slowdown > 1.0) {
        log_fault_event(obs::EventKind::FaultComputeSlowdown, period_, j, slowdown);
      }
      if (transport != nullptr) {
        directives[j].has_derate = true;
        directives[j].derate = derate;
      } else {
        environments_[j]->set_resource_derate(derate);
      }
    }
  }

  ThreadPool* pool = config_.pool;
  if (transport != nullptr) {
    // Remote execution: one directive per RA out, one trace per RA back,
    // reduced in the same sequential (t, j) order as every other path.
    const auto intervals_span = global_tracer().span("system.transport_intervals");
    std::vector<RaPeriodTrace> traces = transport->run_intervals(period_, directives);
    if (traces.size() != ras)
      throw std::runtime_error("EdgeSliceSystem: transport trace count mismatch");
    for (std::size_t j = 0; j < ras; ++j) {
      // An RA the transport could not run (worker died or hung mid-period)
      // degrades exactly like a crash: no monitoring rows, no RC-M report;
      // carry-forward and column-freeze take over below.
      if (!crashed[j] && (!traces[j].ran || traces[j].steps.size() != intervals ||
                          traces[j].actions.size() != intervals)) {
        crashed[j] = true;
        ++result.crashed_ras;
        log_fault_event(obs::EventKind::FaultRaCrash, period_, j);
      }
    }
    for (std::size_t t = 0; t < intervals; ++t) {
      for (std::size_t j = 0; j < ras; ++j) {
        if (crashed[j]) continue;
        const env::StepResult& step = traces[j].steps[t];
        monitor_->record(j, period_, interval_, step, traces[j].actions[t]);
        for (std::size_t i = 0; i < slices; ++i) {
          result.performance_sums(i, j) += step.performance[i];
          result.slice_performance[i] += step.performance[i];
          result.system_performance += step.performance[i];
        }
      }
      ++interval_;
    }
  } else if (pool != nullptr && pool->thread_count() > 1 && ras > 1) {
    // Decentralized execution: each RA's whole period runs on the worker
    // that owns it (its environment and policy are touched by no other
    // thread), with the per-interval results buffered per RA. The trace
    // buffers are members so their capacity survives across periods;
    // workers write disjoint per-RA slots.
    if (traces_.size() != ras) traces_.resize(ras);
    const bool timed = metrics_enabled();
    const auto dispatch_time = SteadyClock::now();
    pool->parallel_for(ras, [&](std::size_t j) {
      if (crashed[j]) return;
      // Time from batch dispatch to this RA's body starting: how long the
      // RA sat in the pool's queue behind other work.
      if (timed) {
        global_tracer().record("system.pool_queue_wait", seconds_since(dispatch_time));
      }
      const auto ra_start = SteadyClock::now();
      auto& environment = *environments_[j];
      auto& trace = traces_[j];
      trace.steps.resize(intervals);
      trace.actions.resize(intervals);
      for (std::size_t t = 0; t < intervals; ++t) {
        policies_[j]->decide_into(environment, trace.actions[t]);
        environment.step_into(trace.actions[t], trace.steps[t]);
        policies_[j]->feedback(trace.steps[t]);
      }
      if (timed) global_tracer().record("system.ra_intervals", seconds_since(ra_start));
    });
    // parallel_for is the barrier; reduce in the sequential (t, j) order
    // so monitoring rows and floating-point accumulation are bit-identical
    // to a sequential run regardless of worker interleaving.
    for (std::size_t t = 0; t < intervals; ++t) {
      for (std::size_t j = 0; j < ras; ++j) {
        if (crashed[j]) continue;
        const env::StepResult& step = traces_[j].steps[t];
        monitor_->record(j, period_, interval_, step, traces_[j].actions[t]);
        for (std::size_t i = 0; i < slices; ++i) {
          result.performance_sums(i, j) += step.performance[i];
          result.slice_performance[i] += step.performance[i];
          result.system_performance += step.performance[i];
        }
      }
      ++interval_;
    }
  } else {
    // Sequential path: the (t, j) loops interleave RAs per interval, so
    // per-RA time is accumulated across intervals and recorded once per
    // RA — the same span granularity the parallel path reports.
    const bool timed = metrics_enabled();
    double* const ra_seconds = period_arena_.make_array<double>(ras);

    // Cross-agent batched inference: RAs whose policy's decide() is a
    // pure forward pass, grouped by the network they share (in deployment
    // that is one group holding every live RA). Their states are readable
    // up front each interval because an environment only advances when
    // its own RA steps, and per-row kernel determinism makes each batched
    // row bit-identical to the per-RA decide() it replaces. The group set
    // (keyed by network) and its buffers persist across periods; only the
    // membership is rebuilt, because crashes change it.
    constexpr std::size_t kUnbatched = static_cast<std::size_t>(-1);
    for (auto& group : groups_) group.members.clear();
    // Per RA: {group index, row within the group} or {kUnbatched, 0}.
    slot_.assign(ras, {kUnbatched, 0});
    if (config_.batched_inference) {
      for (std::size_t j = 0; j < ras; ++j) {
        if (crashed[j]) continue;
        const nn::Mlp* network = policies_[j]->inference_network();
        if (network == nullptr) continue;
        std::size_t g = 0;
        while (g < groups_.size() && &groups_[g].actor.network() != network) ++g;
        if (g == groups_.size()) groups_.push_back({rl::BatchedActor(*network), {}});
        slot_[j] = {g, groups_[g].members.size()};
        groups_[g].members.push_back(j);
      }
    }
    bool any_batched = false;

    double batch_seconds = 0.0;
    for (std::size_t t = 0; t < intervals; ++t) {
      const auto batch_start = timed ? SteadyClock::now() : SteadyClock::time_point{};
      for (auto& group : groups_) {
        if (group.members.empty()) continue;
        any_batched = true;
        group.actor.begin(group.members.size());
        for (std::size_t row = 0; row < group.members.size(); ++row) {
          environments_[group.members[row]]->state_into(state_scratch_);
          group.actor.set_state(row, state_scratch_);
        }
        group.actor.infer();
      }
      if (timed && !groups_.empty()) batch_seconds += seconds_since(batch_start);
      for (std::size_t j = 0; j < ras; ++j) {
        if (crashed[j]) continue;
        const auto ra_start = timed ? SteadyClock::now() : SteadyClock::time_point{};
        auto& environment = *environments_[j];
        if (slot_[j].first != kUnbatched) {
          groups_[slot_[j].first].actor.action_into(slot_[j].second, action_scratch_);
        } else {
          policies_[j]->decide_into(environment, action_scratch_);
        }
        environment.step_into(action_scratch_, step_scratch_);
        policies_[j]->feedback(step_scratch_);
        monitor_->record(j, period_, interval_, step_scratch_, action_scratch_);
        for (std::size_t i = 0; i < slices; ++i) {
          result.performance_sums(i, j) += step_scratch_.performance[i];
          result.slice_performance[i] += step_scratch_.performance[i];
          result.system_performance += step_scratch_.performance[i];
        }
        if (timed) ra_seconds[j] += seconds_since(ra_start);
      }
      ++interval_;
    }
    if (timed) {
      for (std::size_t j = 0; j < ras; ++j) {
        if (!crashed[j]) global_tracer().record("system.ra_intervals", ra_seconds[j]);
      }
      if (any_batched) {
        global_tracer().record("system.batched_inference", batch_seconds);
      }
    }
  }

  if (config_.use_coordinator) {
    const auto coordinate_span = global_tracer().span("coordinate");
    // Live RAs post their RC-M reports onto the message plane; the bus may
    // drop or delay them per the fault plan. One reused message feeds the
    // bus's pooled envelopes — the report plane allocates nothing once warm.
    for (std::size_t j = 0; j < ras; ++j) {
      if (crashed[j]) continue;
      report_scratch_.ra = j;
      report_scratch_.performance_sums.resize(slices);
      for (std::size_t i = 0; i < slices; ++i) {
        report_scratch_.performance_sums[i] = result.performance_sums(i, j);
      }
      bus_.post_report(period_, report_scratch_);
    }

    // Ingest everything deliverable this period. Envelopes arrive ordered
    // by (deliver_period, seq), so a delayed stale report never overwrites
    // a fresher one delivered alongside it; the explicit sent_period guard
    // covers reordering across collect calls.
    bus_.collect_reports_into(period_, envelope_scratch_);
    for (auto& envelope : envelope_scratch_) {
      const std::size_t ra = envelope.message.ra;
      if (ra >= ras || envelope.message.performance_sums.size() != slices) continue;
      if (has_report_[ra] && envelope.sent_period < last_report_period_[ra]) continue;
      // Copy, not move: the envelope keeps its buffer for the bus's pool.
      last_report_[ra] = envelope.message.performance_sums;
      last_report_period_[ra] = envelope.sent_period;
      has_report_[ra] = true;
      if (envelope.sent_period == period_) ++result.reports_fresh;
    }
    bus_.recycle(envelope_scratch_);

    // Assemble the coordinator's input: fresh columns, carried-forward
    // columns within the staleness window, frozen columns beyond it.
    if (u_scratch_.rows() != slices || u_scratch_.cols() != ras) {
      u_scratch_ = nn::Matrix(slices, ras);
    } else {
      auto& cells = u_scratch_.data();
      std::fill(cells.begin(), cells.end(), 0.0);
    }
    nn::Matrix& u = u_scratch_;
    active_scratch_.assign(ras, false);
    std::vector<bool>& active = active_scratch_;
    for (std::size_t j = 0; j < ras; ++j) {
      if (!has_report_[j]) {
        ++result.columns_frozen;
        continue;
      }
      const std::size_t staleness = period_ - last_report_period_[j];
      if (staleness > config_.max_report_staleness) {
        ++result.columns_frozen;
        continue;
      }
      active[j] = true;
      for (std::size_t i = 0; i < slices; ++i) u(i, j) = last_report_[j][i];
      if (staleness > 0) ++result.reports_carried;
    }
    coordinator_.update(u, active);

    // RC-L push through the bus; an RA that misses it keeps acting on its
    // last-known coordination vector, and a crashed RA receives nothing
    // (it picks up the current vector after its first post-restart period).
    // With a transport the bus ships the vector to the RA's worker itself;
    // in-process the delivery is this set_coordination call.
    for (std::size_t j = 0; j < ras; ++j) {
      if (crashed[j]) continue;
      coordinator_.coordination_for_into(j, rcl_scratch_);
      if (bus_.deliver_coordination(period_, rcl_scratch_)) {
        if (transport == nullptr) environments_[j]->set_coordination(rcl_scratch_.z_minus_y);
      } else {
        ++result.rcl_losses;
      }
    }
    result.coordinator_converged = coordinator_.converged();
  }
  if (transport != nullptr) transport->end_period(period_);
  // Degraded-mode signals of the period just run, readable while the
  // system is live (the chaos benches and operators poll these).
  auto& metrics = global_metrics();
  metrics.gauge("system.crashed_ras").set(static_cast<double>(result.crashed_ras));
  metrics.gauge("system.columns_frozen").set(static_cast<double>(result.columns_frozen));
  metrics.gauge("system.reports_carried").set(static_cast<double>(result.reports_carried));
  metrics.counter("system.rcl_losses").add(result.rcl_losses);
  metrics.counter("system.periods").add();
  // SLO evaluation against the monitor's incremental per-(ra, period)
  // sums: the network-wide per-slice performance of the period just run.
  // Observation-only — the watchdog's verdicts never steer orchestration.
  if (config_.watchdog != nullptr) {
    slice_sums_scratch_.assign(slices, 0.0);
    // Attribution: per slice, the non-crashed RA contributing least this
    // period — the first place to look when the slice breaches its SLO.
    slice_min_scratch_.assign(slices, 0.0);
    slice_worst_ra_scratch_.assign(slices, obs::Event::kNone);
    for (std::size_t j = 0; j < ras; ++j) {
      if (crashed[j]) continue;
      monitor_->report_into(j, period_, report_scratch_);
      for (std::size_t i = 0; i < slices; ++i) {
        const double contribution = report_scratch_.performance_sums[i];
        slice_sums_scratch_[i] += contribution;
        if (slice_worst_ra_scratch_[i] == obs::Event::kNone ||
            contribution < slice_min_scratch_[i]) {
          slice_min_scratch_[i] = contribution;
          slice_worst_ra_scratch_[i] = j;
        }
      }
    }
    config_.watchdog->evaluate(period_, slice_sums_scratch_, slice_worst_ra_scratch_);
  }
  ++period_;
}

std::vector<PeriodResult> EdgeSliceSystem::run(std::size_t periods) {
  std::vector<PeriodResult> results;
  results.reserve(periods);
  for (std::size_t p = 0; p < periods; ++p) results.push_back(run_period());
  return results;
}

namespace {

/// Canonical double rendering for fingerprints: shortest exact form.
std::string canonical(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

}  // namespace

std::string EdgeSliceSystem::config_fingerprint() const {
  const CoordinatorConfig& c = coordinator_.config();
  std::ostringstream out;
  out << "artifact = system\n";
  out << "slices = " << c.slices << "\n";
  out << "ras = " << environments_.size() << "\n";
  out << "intervals_per_period = "
      << environments_.front()->config().intervals_per_period << "\n";
  out << "use_coordinator = " << (config_.use_coordinator ? 1 : 0) << "\n";
  out << "max_report_staleness = " << config_.max_report_staleness << "\n";
  out << "rho = " << canonical(c.rho) << "\n";
  out << "u_min =";
  for (double u : c.u_min) out << " " << canonical(u);
  out << "\n";
  out << "admm.abs_tol = " << canonical(c.stopping.absolute_tolerance) << "\n";
  out << "admm.rel_tol = " << canonical(c.stopping.relative_tolerance) << "\n";
  out << "admm.min_iterations = " << c.stopping.min_iterations << "\n";
  out << "admm.max_iterations = " << c.stopping.max_iterations << "\n";
  return out.str();
}

bool EdgeSliceSystem::save_checkpoint(const std::string& path) const {
  ckpt::CheckpointWriter writer(config_fingerprint());

  std::ostringstream loop;
  write_u64(loop, period_);
  write_u64(loop, interval_);
  for (std::size_t j = 0; j < environments_.size(); ++j) {
    write_u8(loop, has_report_[j] ? 1 : 0);
    write_u64(loop, last_report_period_[j]);
    write_f64_vector(loop, last_report_[j]);
  }
  writer.add_section(ckpt::SectionKind::SystemLoop, 0, loop.str());

  std::ostringstream coordinator;
  coordinator_.save_state(coordinator);
  writer.add_section(ckpt::SectionKind::Coordinator, 0, coordinator.str());

  std::ostringstream bus;
  bus_.save_state(bus);
  writer.add_section(ckpt::SectionKind::MessageBus, 0, bus.str());

  // Environment sections come from wherever the environments actually
  // live. Transport snapshots are requested after the period's
  // coordination frames (socket ordering guarantees the worker applied
  // them first), so the blobs are byte-identical to an in-process
  // save_state at the same boundary.
  for (std::size_t j = 0; j < environments_.size(); ++j) {
    std::string blob;
    if (config_.transport != nullptr) {
      blob = config_.transport->environment_state(j);
    } else {
      std::ostringstream environment;
      environments_[j]->save_state(environment);
      blob = environment.str();
    }
    writer.add_section(ckpt::SectionKind::Environment,
                       static_cast<std::uint32_t>(j), std::move(blob));
  }
  return writer.write_file(path);
}

void EdgeSliceSystem::load_checkpoint(const std::string& path) {
  constexpr const char* kContext = "EdgeSliceSystem::load_checkpoint";
  const ckpt::CheckpointReader reader = ckpt::CheckpointReader::from_file(path);
  if (reader.fingerprint() != config_fingerprint()) {
    throw std::runtime_error(std::string(kContext) +
                             ": checkpoint was taken under a different system "
                             "configuration (fingerprint mismatch)");
  }
  const std::size_t slices = coordinator_.config().slices;

  // Decode the loop section into temporaries before touching anything, so
  // a corrupt checkpoint leaves the system unchanged. The component
  // load_state calls below share that contract individually; they run
  // after all payloads are known present (require() throws first).
  std::istringstream loop(reader.require(ckpt::SectionKind::SystemLoop));
  const std::uint64_t period = read_u64(loop, kContext);
  const std::uint64_t interval = read_u64(loop, kContext);
  std::vector<std::vector<double>> last_report(environments_.size());
  std::vector<std::size_t> last_report_period(environments_.size(), 0);
  std::vector<bool> has_report(environments_.size(), false);
  for (std::size_t j = 0; j < environments_.size(); ++j) {
    has_report[j] = read_u8(loop, kContext) != 0;
    last_report_period[j] = static_cast<std::size_t>(read_u64(loop, kContext));
    last_report[j] = read_f64_vector(loop, kContext);
    if (last_report[j].size() != slices) {
      throw std::runtime_error(std::string(kContext) +
                               ": carried report size mismatch (RA " +
                               std::to_string(j) + ")");
    }
  }

  std::istringstream coordinator(reader.require(ckpt::SectionKind::Coordinator));
  std::istringstream bus(reader.require(ckpt::SectionKind::MessageBus));
  std::vector<std::string> environment_blobs;
  environment_blobs.reserve(environments_.size());
  for (std::size_t j = 0; j < environments_.size(); ++j) {
    environment_blobs.push_back(reader.require(
        ckpt::SectionKind::Environment, static_cast<std::uint32_t>(j)));
  }

  coordinator_.load_state(coordinator);
  bus_.load_state(bus);
  // Always validate the blobs into the local environments first (a corrupt
  // section throws before any remote state is touched); with a transport,
  // the blobs are then pushed to the workers, which are the authoritative
  // copies.
  for (std::size_t j = 0; j < environments_.size(); ++j) {
    std::istringstream blob(environment_blobs[j]);
    environments_[j]->load_state(blob);
  }
  if (config_.transport != nullptr) {
    for (std::size_t j = 0; j < environments_.size(); ++j) {
      config_.transport->restore_environment(j, environment_blobs[j]);
    }
  }
  period_ = static_cast<std::size_t>(period);
  interval_ = static_cast<std::size_t>(interval);
  last_report_ = std::move(last_report);
  last_report_period_ = std::move(last_report_period);
  has_report_ = std::move(has_report);
}

}  // namespace edgeslice::core
