// The control-plane message plane for the RC-L / RC-M interfaces.
//
// The paper's decentralization claim (Sec. V-D) rests on the coordinator
// and the RAs exchanging only two small messages per period. Making that
// exchange an explicit, lossy channel — instead of direct function calls —
// lets the reproduction test the claim under failure: reports can be
// dropped or delayed, coordination pushes can be lost, and every message
// carries a sequence number so receivers detect gaps and reordering.
//
// With no FaultInjector (or an empty plan) the bus is behavior-neutral:
// every message is delivered unmodified in the period it was sent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/fault.h"
#include "core/interfaces.h"
#include "core/ra_transport.h"

namespace edgeslice::core {

/// An RC-M report in flight, stamped by the bus.
struct RcmEnvelope {
  std::uint64_t seq = 0;          // global send order
  std::size_t sent_period = 0;    // period whose performance it reports
  std::size_t deliver_period = 0; // earliest period the coordinator sees it
  RcMonitoringMessage message;
};

/// Delivery counters for diagnostics and the chaos benches.
struct MessageBusStats {
  std::uint64_t rcm_sent = 0;
  std::uint64_t rcm_dropped = 0;
  std::uint64_t rcm_delayed = 0;
  std::uint64_t rcm_delivered = 0;
  std::uint64_t rcl_sent = 0;
  std::uint64_t rcl_dropped = 0;
};

class MessageBus {
 public:
  /// `faults` is non-owning and may be null (lossless bus).
  explicit MessageBus(const FaultInjector* faults = nullptr);

  /// RA -> coordinator: submit the RC-M report for `period`. Dropped
  /// reports vanish; delayed reports surface in a later collect. The
  /// message is copied into a pooled envelope (see recycle()), so a
  /// steady-state caller reusing one message buffer posts without
  /// allocating.
  void post_report(std::size_t period, const RcMonitoringMessage& message);

  /// Coordinator side: drain every report deliverable at `period`
  /// (in-flight envelopes with deliver_period <= period), ordered by
  /// (deliver_period, seq) — i.e. delayed duplicates of a newer report
  /// sort before it only if they were due earlier.
  std::vector<RcmEnvelope> collect_reports(std::size_t period);

  /// collect_reports() into a caller-owned buffer (cleared first). Pair
  /// with recycle() to run the report plane allocation-free once warm.
  void collect_reports_into(std::size_t period, std::vector<RcmEnvelope>& due);

  /// Return drained envelopes to the internal free pool so their vector
  /// capacity is reused by future post_report() calls. Clears `envelopes`.
  void recycle(std::vector<RcmEnvelope>& envelopes);

  /// Coordinator -> RA: push an RC-L message after `period`'s update.
  /// Returns false when delivery failed (the agent must fall back to its
  /// last-known coordination vector). With a transport attached, a push
  /// that survives the fault check is additionally shipped over the wire
  /// to the RA's worker; a send failure (worker down, deadline) reports
  /// as undelivered exactly like a fault-dropped push.
  bool deliver_coordination(std::size_t period, const RcLearningMessage& message);

  /// Route the RC-L leg through a remote execution plane (non-owning; null
  /// restores in-process delivery). The RC-M leg needs no counterpart
  /// here: reports enter the bus coordinator-side after the transport's
  /// trace collection, so drop/delay bookkeeping is identical either way.
  void set_transport(RaTransport* transport) { transport_ = transport; }

  std::size_t in_flight() const { return pending_.size(); }
  const MessageBusStats& stats() const { return stats_; }

  /// Serialize the in-flight envelopes, the sequence counter, and the
  /// delivery stats as the "message bus blob" of FORMATS.md. The fault
  /// injector is NOT serialized — it is stateless (decisions are pure
  /// functions of plan seed, period, and RA), so a resumed run under the
  /// same FaultPlan replays the identical loss/delay pattern.
  void save_state(std::ostream& out) const;
  /// Restore into this bus. Throws std::runtime_error on corruption
  /// without partially applying state.
  void load_state(std::istream& in);

 private:
  const FaultInjector* faults_;
  RaTransport* transport_ = nullptr;
  std::vector<RcmEnvelope> pending_;
  /// Spare envelopes with warmed vector capacity (not serialized — a pure
  /// allocation cache; contents are dead).
  std::vector<RcmEnvelope> free_;
  std::uint64_t next_seq_ = 0;
  MessageBusStats stats_;
};

}  // namespace edgeslice::core
