#include "core/monitor.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "common/metrics.h"

namespace edgeslice::core {

SystemMonitor::SystemMonitor(std::size_t slices, std::size_t ras)
    : slices_(slices), ras_(ras) {
  if (slices == 0 || ras == 0) throw std::invalid_argument("SystemMonitor: empty system");
}

void SystemMonitor::record(std::size_t ra, std::size_t period, std::size_t interval,
                           const env::StepResult& result,
                           const std::vector<double>& action) {
  if (ra >= ras_) throw std::out_of_range("SystemMonitor::record: bad RA");

  // Fold the row into the (period, ra) running sums in arrival order —
  // exactly the accumulation a full-history rescan would perform, so
  // report() stays bit-identical to the O(rows) implementation.
  const std::pair<std::size_t, std::size_t> key{period, ra};
  auto it = period_sums_.find(key);
  if (it == period_sums_.end()) {
    if (sum_retention_ > 0 && !period_sums_.empty() &&
        period_sums_.begin()->first.first + sum_retention_ <= period) {
      // Recycle the expired node (map node + sum vector capacity) for the
      // new period: one node expires per (period, ra) slot that opens, so
      // the warmed-up map never allocates.
      auto node = period_sums_.extract(period_sums_.begin());
      node.key() = key;
      it = period_sums_.insert(std::move(node)).position;
    } else {
      it = period_sums_.emplace(key, std::vector<double>()).first;
    }
    it->second.assign(slices_, 0.0);
  }
  auto& sums = it->second;
  for (std::size_t i = 0; i < slices_ && i < result.performance.size(); ++i) {
    sums[i] += result.performance[i];
  }

  if (!row_recording_) return;
  IntervalRecord row;
  row.period = period;
  row.interval = interval;
  row.ra = ra;
  row.queue_lengths = result.queue_lengths;
  row.performance = result.performance;
  row.action = action;
  row.reward = result.reward;
  records_.push_back(std::move(row));
  global_metrics().counter("monitor.rows_recorded").add();

  // Retention: evict the oldest rows in chunks (a quarter of the cap at a
  // time) so a long run pays amortized O(1) per record instead of an
  // O(cap) front-erase on every append.
  if (retention_cap_ > 0 && records_.size() > retention_cap_ + retention_cap_ / 4) {
    const std::size_t excess = records_.size() - retention_cap_;
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<std::ptrdiff_t>(excess));
    evicted_rows_ += excess;
    global_metrics().counter("monitor.rows_evicted").add(excess);
  }
}

void SystemMonitor::clear_records() {
  records_.clear();
  period_sums_.clear();
  evicted_rows_ = 0;
}

RcMonitoringMessage SystemMonitor::report(std::size_t ra, std::size_t period) const {
  RcMonitoringMessage msg;
  report_into(ra, period, msg);
  return msg;
}

void SystemMonitor::report_into(std::size_t ra, std::size_t period,
                                RcMonitoringMessage& msg) const {
  if (ra >= ras_) throw std::out_of_range("SystemMonitor::report: bad RA");
  msg.ra = ra;
  const auto it = period_sums_.find({period, ra});
  if (it != period_sums_.end()) {
    msg.performance_sums = it->second;
  } else {
    msg.performance_sums.assign(slices_, 0.0);
  }
}

std::vector<double> SystemMonitor::system_performance_series() const {
  std::size_t max_interval = 0;
  for (const auto& row : records_) max_interval = std::max(max_interval, row.interval);
  std::vector<double> series(records_.empty() ? 0 : max_interval + 1, 0.0);
  for (const auto& row : records_) {
    for (double u : row.performance) series[row.interval] += u;
  }
  return series;
}

std::vector<std::vector<double>> SystemMonitor::slice_performance_series() const {
  std::size_t max_interval = 0;
  for (const auto& row : records_) max_interval = std::max(max_interval, row.interval);
  std::vector<std::vector<double>> series(
      slices_, std::vector<double>(records_.empty() ? 0 : max_interval + 1, 0.0));
  for (const auto& row : records_) {
    for (std::size_t i = 0; i < slices_ && i < row.performance.size(); ++i) {
      series[i][row.interval] += row.performance[i];
    }
  }
  return series;
}

std::vector<double> SystemMonitor::resource_usage_series(std::size_t ra, std::size_t slice,
                                                         std::size_t resource) const {
  if (ra >= ras_ || slice >= slices_ || resource >= env::kResources)
    throw std::out_of_range("SystemMonitor::resource_usage_series: bad index");
  std::size_t max_interval = 0;
  for (const auto& row : records_) max_interval = std::max(max_interval, row.interval);
  std::vector<double> series(records_.empty() ? 0 : max_interval + 1, 0.0);
  for (const auto& row : records_) {
    if (row.ra != ra) continue;
    const std::size_t idx = slice * env::kResources + resource;
    if (idx < row.action.size()) series[row.interval] = row.action[idx];
  }
  return series;
}

void SystemMonitor::write_csv(std::ostream& out) const {
  out << "period,interval,ra,slice,queue,performance,radio,transport,computing,reward\n";
  for (const auto& row : records_) {
    for (std::size_t i = 0; i < slices_; ++i) {
      out << row.period << "," << row.interval << "," << row.ra << "," << i << ",";
      out << (i < row.queue_lengths.size() ? row.queue_lengths[i] : 0.0) << ",";
      out << (i < row.performance.size() ? row.performance[i] : 0.0);
      for (std::size_t k = 0; k < env::kResources; ++k) {
        const std::size_t idx = i * env::kResources + k;
        out << "," << (idx < row.action.size() ? row.action[idx] : 0.0);
      }
      out << "," << row.reward << "\n";
    }
  }
}

void SystemMonitor::register_user(const UserAssociation& user) {
  if (user.slice >= slices_) throw std::invalid_argument("SystemMonitor: bad slice");
  if (imsi_index_.count(user.imsi) || ip_index_.count(user.ip))
    throw std::invalid_argument("SystemMonitor: duplicate user identity");
  imsi_index_[user.imsi] = users_.size();
  ip_index_[user.ip] = users_.size();
  users_.push_back(user);
}

std::size_t SystemMonitor::slice_of_imsi(const std::string& imsi) const {
  const auto it = imsi_index_.find(imsi);
  if (it == imsi_index_.end()) throw std::out_of_range("SystemMonitor: unknown IMSI");
  return users_[it->second].slice;
}

std::size_t SystemMonitor::slice_of_ip(const std::string& ip) const {
  const auto it = ip_index_.find(ip);
  if (it == ip_index_.end()) throw std::out_of_range("SystemMonitor: unknown IP");
  return users_[it->second].slice;
}

}  // namespace edgeslice::core
