// The central performance coordinator (Sec. IV-A).
//
// Solves the ADMM z-update (problem P2, Eq. 11) and the scaled dual
// update (Eq. 10) from the per-period slice performance collected from
// the orchestration agents, and emits the coordinating information
// c_{i,j} = z_{i,j} - y_{i,j} consumed by the agents' DRL state (Eq. 13).
//
// P2 separates per slice i: project the vector (U_i + y_i) onto the
// half-space sum_j z_{i,j} >= U_i^min — a closed-form Euclidean
// projection (see opt/projection.h; cross-validated against the iterative
// QP solver, replacing the paper's CVXPY).
#pragma once

#include <iosfwd>
#include <vector>

#include "nn/matrix.h"
#include "opt/admm.h"
#include "core/interfaces.h"

namespace edgeslice::core {

struct CoordinatorConfig {
  std::size_t slices = 2;
  std::size_t ras = 2;
  double rho = 1.0;                  // ADMM penalty (Sec. VII)
  std::vector<double> u_min;         // per-slice SLA (Eq. 2); default -50 each
  opt::AdmmStopCriteria stopping;
};

class PerformanceCoordinator {
 public:
  explicit PerformanceCoordinator(const CoordinatorConfig& config);

  /// One coordinator iteration: consume per-(slice, RA) performance sums
  /// (sum over t in T of U_{i,j}) and refresh Z and Y. The matrix must be
  /// exactly slices x ras with finite entries.
  void update(const nn::Matrix& performance_sums);

  /// Degraded-mode iteration: RAs with active[j] == false are *frozen* —
  /// their z/y columns are left untouched and excluded from the per-slice
  /// projection, whose SLA bound is tightened by the frozen columns' last
  /// z. Used when an RA has been silent past the staleness cutoff. With an
  /// all-true mask this is exactly update(performance_sums).
  void update(const nn::Matrix& performance_sums, const std::vector<bool>& active);

  /// Convenience overload taking RC-M messages from the system monitors.
  /// Requires exactly one well-formed report per RA (no duplicate or
  /// missing RA indices, finite performance sums).
  void update(const std::vector<RcMonitoringMessage>& reports);

  /// Coordinating information for RA j (z - y per slice), as an RC-L message.
  RcLearningMessage coordination_for(std::size_t ra) const;

  /// coordination_for() into a caller-owned message (vector resized in
  /// place) — the per-period RC-L push loop reuses one message.
  void coordination_for_into(std::size_t ra, RcLearningMessage& msg) const;

  double z(std::size_t slice, std::size_t ra) const;
  double y(std::size_t slice, std::size_t ra) const;

  /// Whether the SLA half-space constraint currently holds for each slice.
  bool sla_satisfied(std::size_t slice) const;

  bool converged() const { return monitor_.converged(); }
  std::size_t iterations() const { return monitor_.iterations(); }
  const opt::AdmmMonitor& monitor() const { return monitor_; }
  const CoordinatorConfig& config() const { return config_; }

  /// Register / modify a tenant SLA at runtime (the SR interface).
  void apply_slice_request(const SliceRequest& request);

  /// Serialize the ADMM iterate — Z, Y, and the monitor's iteration
  /// count, sticky convergence flag, and residual history — as the
  /// "coordinator blob" of FORMATS.md. Configuration (rho, u_min,
  /// stopping criteria) is not serialized; it is re-derived from the
  /// experiment config and the blob's shape is validated against it.
  void save_state(std::ostream& out) const;
  /// Restore into this coordinator. Throws std::runtime_error on a shape
  /// mismatch or corruption without partially applying state.
  void load_state(std::istream& in);

 private:
  std::size_t index(std::size_t slice, std::size_t ra) const;

  CoordinatorConfig config_;
  std::vector<double> z_;  // slice-major: z_[i * ras + j]
  std::vector<double> y_;
  opt::AdmmMonitor monitor_;
  /// Per-update scratch, reused across periods so the steady-state solve
  /// allocates nothing. Never read across calls.
  std::vector<double> scratch_z_old_;
  std::vector<double> scratch_c_;
  std::vector<double> scratch_zi_;
  std::vector<double> scratch_u_;
  std::vector<std::size_t> scratch_live_;
  std::vector<double> scratch_z_live_;
  std::vector<double> scratch_z_old_live_;
  std::vector<double> scratch_y_live_;
};

}  // namespace edgeslice::core
