#include "core/resource_autonomy.h"

#include <algorithm>
#include <stdexcept>

namespace edgeslice::core {

ResourceAutonomyConfig prototype_ra_config(std::size_t ra_id, std::size_t slices) {
  ResourceAutonomyConfig config;
  config.ra_id = ra_id;
  config.slices = slices;
  config.radio.slices = slices;
  config.radio.bandwidth_mhz = 5.0;
  config.transport.slices = slices;
  config.transport.link_capacity_mbps = 80.0;
  config.transport.switches = 6;
  config.computing.slices = slices;
  config.computing.gpu.total_threads = 51200;
  return config;
}

ResourceAutonomy::ResourceAutonomy(const ResourceAutonomyConfig& config, Rng& rng)
    : config_(config),
      radio_(std::make_unique<radio::RadioManager>(config.radio, rng)),
      transport_(std::make_unique<transport::TransportManager>(config.transport)),
      computing_(std::make_unique<compute::ComputingManager>(config.computing)) {
  if (config.slices == 0) throw std::invalid_argument("ResourceAutonomy: zero slices");
  if (config.radio.slices != config.slices || config.transport.slices != config.slices ||
      config.computing.slices != config.slices) {
    throw std::invalid_argument("ResourceAutonomy: manager slice counts must match");
  }
}

std::vector<VrMessage> ResourceAutonomy::apply(const std::vector<double>& action) {
  if (action.size() != config_.slices * env::kResources)
    throw std::invalid_argument("ResourceAutonomy::apply: action size mismatch");

  // Per-resource proportional scaling when over-subscribed.
  std::array<double, env::kResources> usage{};
  for (std::size_t i = 0; i < config_.slices; ++i) {
    for (std::size_t k = 0; k < env::kResources; ++k) {
      usage[k] += std::clamp(action[i * env::kResources + k], 0.0, 1.0);
    }
  }
  std::array<double, env::kResources> scale{};
  for (std::size_t k = 0; k < env::kResources; ++k) {
    scale[k] = usage[k] > 1.0 ? 1.0 / usage[k] : 1.0;
  }

  std::vector<VrMessage> messages;
  messages.reserve(action.size());
  for (std::size_t i = 0; i < config_.slices; ++i) {
    const double radio_share =
        std::clamp(action[i * env::kResources + env::kRadio], 0.0, 1.0) *
        scale[env::kRadio];
    const double transport_share =
        std::clamp(action[i * env::kResources + env::kTransport], 0.0, 1.0) *
        scale[env::kTransport];
    const double compute_share =
        std::clamp(action[i * env::kResources + env::kCompute], 0.0, 1.0) *
        scale[env::kCompute];

    radio_->set_slice_share(i, radio_share);
    transport_->set_slice_share(i, transport_share);
    computing_->set_slice_share(i, compute_share);

    messages.push_back(VrMessage{Domain::Radio, config_.ra_id, i, radio_share});
    messages.push_back(VrMessage{Domain::Transport, config_.ra_id, i, transport_share});
    messages.push_back(VrMessage{Domain::Computing, config_.ra_id, i, compute_share});
  }
  return messages;
}

void ResourceAutonomy::attach_user(const std::string& imsi, const std::string& ip,
                                   std::size_t user_id, std::size_t slice) {
  radio_->register_imsi(imsi, slice);
  radio_->on_attach(radio::S1apAttach{imsi, config_.ra_id, user_id});
  transport_->register_slice_endpoints(slice, ip,
                                       "192.168." + std::to_string(config_.ra_id) + "." +
                                           std::to_string(slice + 1));
  computing_->register_ip(ip, slice);
}

env::RaCapacity ResourceAutonomy::capacity() {
  return env::measure_capacity(*radio_, *transport_, *computing_);
}

void ResourceAutonomy::apply_faults(const FaultInjector& faults, std::size_t period) {
  radio_->set_cqi_blackout(faults.cqi_blackout(period, config_.ra_id));
  transport_->set_link_failure(faults.link_failure(period, config_.ra_id));
  computing_->set_slowdown(faults.compute_slowdown(period, config_.ra_id));
}

}  // namespace edgeslice::core
