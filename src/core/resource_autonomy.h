// A resource autonomy (RA): the set of network infrastructures managed by
// one orchestration agent (Sec. II) — an eNodeB, a transport path, and an
// edge server, each fronted by its resource manager middleware.
//
// ResourceAutonomy owns the three managers, translates an orchestration
// action into VR messages, and enforces it at runtime. The prototype
// defaults mirror Table II.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "compute/computing_manager.h"
#include "core/interfaces.h"
#include "env/service_model.h"
#include "radio/radio_manager.h"
#include "transport/transport_manager.h"

namespace edgeslice::core {

struct ResourceAutonomyConfig {
  std::size_t ra_id = 0;
  std::size_t slices = 2;
  radio::RadioManagerConfig radio;            // 5 MHz = 25 PRBs
  transport::TransportManagerConfig transport; // 80 Mbps, 6 switches
  compute::ComputingManagerConfig computing;   // 51200 CUDA threads
};

class ResourceAutonomy {
 public:
  ResourceAutonomy(const ResourceAutonomyConfig& config, Rng& rng);

  /// Enforce a slice-major orchestration action (fractions per resource).
  /// Over-subscribed resources are proportionally scaled, since the
  /// substrates cannot allocate more than 100%. Returns the VR messages
  /// dispatched to the managers.
  std::vector<VrMessage> apply(const std::vector<double>& action);

  /// Attach a user end to end: IMSI at the eNodeB, IP at the transport
  /// and computing managers.
  void attach_user(const std::string& imsi, const std::string& ip, std::size_t user_id,
                   std::size_t slice);

  /// Ground-truth capacity of this RA, measured through the managers.
  env::RaCapacity capacity();

  /// Propagate the injector's substrate faults for `period` onto the three
  /// managers (radio CQI blackout, transport link failure, GPU slowdown).
  /// With no active fault every hook is reset to healthy, so calling this
  /// each period both applies and clears conditions.
  void apply_faults(const FaultInjector& faults, std::size_t period);

  radio::RadioManager& radio() { return *radio_; }
  transport::TransportManager& transport() { return *transport_; }
  compute::ComputingManager& computing() { return *computing_; }
  std::size_t id() const { return config_.ra_id; }
  std::size_t slice_count() const { return config_.slices; }

 private:
  ResourceAutonomyConfig config_;
  std::unique_ptr<radio::RadioManager> radio_;
  std::unique_ptr<transport::TransportManager> transport_;
  std::unique_ptr<compute::ComputingManager> computing_;
};

/// Prototype RA configuration per Table II.
ResourceAutonomyConfig prototype_ra_config(std::size_t ra_id, std::size_t slices = 2);

}  // namespace edgeslice::core
