#include "core/message_bus.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/binio.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "obs/event_log.h"

namespace edgeslice::core {

namespace {

/// Flight-recorder entry for one message-plane happening.
void log_bus_event(obs::EventKind kind, std::size_t period, std::size_t ra,
                   double value = 0.0) {
  obs::Event event;
  event.kind = kind;
  event.period = period;
  event.ra = ra;
  event.value = value;
  obs::global_event_log().record(event);
}

}  // namespace

MessageBus::MessageBus(const FaultInjector* faults) : faults_(faults) {}

void MessageBus::post_report(std::size_t period, const RcMonitoringMessage& message) {
  ++stats_.rcm_sent;
  global_metrics().counter("bus.rcm_sent").add();
  const std::size_t ra = message.ra;
  if (faults_ && faults_->drop_rcm(period, ra)) {
    ++stats_.rcm_dropped;
    global_metrics().counter("bus.rcm_dropped").add();
    log_bus_event(obs::EventKind::RcmDropped, period, ra);
    ES_LOG(Debug) << "bus: RC-M report from RA " << ra << " dropped in period "
                  << period;
    return;
  }
  RcmEnvelope envelope;
  if (!free_.empty()) {
    envelope = std::move(free_.back());
    free_.pop_back();
  }
  envelope.seq = next_seq_++;
  envelope.sent_period = period;
  envelope.deliver_period = period;
  if (faults_) {
    const std::size_t delay = faults_->rcm_delay(period, ra);
    if (delay > 0) {
      envelope.deliver_period = period + delay;
      ++stats_.rcm_delayed;
      global_metrics().counter("bus.rcm_delayed").add();
      log_bus_event(obs::EventKind::RcmDelayed, period, ra,
                    static_cast<double>(delay));
    }
  }
  // Copy-assign (not move) so a recycled envelope's vector capacity is
  // reused — with enough envelopes warmed, posting never allocates.
  envelope.message.ra = message.ra;
  envelope.message.performance_sums = message.performance_sums;
  pending_.push_back(std::move(envelope));
}

std::vector<RcmEnvelope> MessageBus::collect_reports(std::size_t period) {
  std::vector<RcmEnvelope> due;
  collect_reports_into(period, due);
  return due;
}

void MessageBus::collect_reports_into(std::size_t period,
                                      std::vector<RcmEnvelope>& due) {
  due.clear();
  auto keep = pending_.begin();
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->deliver_period <= period) {
      due.push_back(std::move(*it));
    } else {
      *keep++ = std::move(*it);
    }
  }
  pending_.erase(keep, pending_.end());
  // In-place stable insertion sort by (deliver_period, seq) — the same
  // order the std::stable_sort it replaces produced, minus that sort's
  // temporary buffer. Envelopes are nearly in order already (posted in
  // seq order, only fault-delayed ones displaced), so this is ~linear.
  for (std::size_t i = 1; i < due.size(); ++i) {
    for (std::size_t j = i; j > 0; --j) {
      const bool out_of_order =
          due[j].deliver_period < due[j - 1].deliver_period ||
          (due[j].deliver_period == due[j - 1].deliver_period &&
           due[j].seq < due[j - 1].seq);
      if (!out_of_order) break;
      std::swap(due[j], due[j - 1]);
    }
  }
  stats_.rcm_delivered += due.size();
  global_metrics().counter("bus.rcm_delivered").add(due.size());
  // Envelope latency in periods (0 for same-period delivery): the delay
  // distribution the coordinator actually experienced.
  auto& latency = global_metrics().histogram("bus.rcm_latency_periods");
  for (const auto& envelope : due) {
    latency.observe(static_cast<double>(period - envelope.sent_period));
    log_bus_event(obs::EventKind::RcmDelivered, period, envelope.message.ra,
                  static_cast<double>(period - envelope.sent_period));
  }
  global_metrics().gauge("bus.in_flight").set(static_cast<double>(pending_.size()));
}

void MessageBus::recycle(std::vector<RcmEnvelope>& envelopes) {
  for (RcmEnvelope& envelope : envelopes) {
    free_.push_back(std::move(envelope));
  }
  envelopes.clear();
}

void MessageBus::save_state(std::ostream& out) const {
  write_u64(out, next_seq_);
  write_u64(out, stats_.rcm_sent);
  write_u64(out, stats_.rcm_dropped);
  write_u64(out, stats_.rcm_delayed);
  write_u64(out, stats_.rcm_delivered);
  write_u64(out, stats_.rcl_sent);
  write_u64(out, stats_.rcl_dropped);
  write_u64(out, pending_.size());
  for (const RcmEnvelope& envelope : pending_) {
    write_u64(out, envelope.seq);
    write_u64(out, envelope.sent_period);
    write_u64(out, envelope.deliver_period);
    write_u64(out, envelope.message.ra);
    write_f64_vector(out, envelope.message.performance_sums);
  }
}

void MessageBus::load_state(std::istream& in) {
  constexpr const char* kContext = "MessageBus::load_state";
  const std::uint64_t next_seq = read_u64(in, kContext);
  MessageBusStats stats;
  stats.rcm_sent = read_u64(in, kContext);
  stats.rcm_dropped = read_u64(in, kContext);
  stats.rcm_delayed = read_u64(in, kContext);
  stats.rcm_delivered = read_u64(in, kContext);
  stats.rcl_sent = read_u64(in, kContext);
  stats.rcl_dropped = read_u64(in, kContext);
  const std::uint64_t in_flight = read_u64(in, kContext);
  if (in_flight > (1ull << 24))
    throw std::runtime_error(std::string(kContext) + ": absurd in-flight count");
  std::vector<RcmEnvelope> pending;
  pending.reserve(static_cast<std::size_t>(in_flight));
  for (std::uint64_t i = 0; i < in_flight; ++i) {
    RcmEnvelope envelope;
    envelope.seq = read_u64(in, kContext);
    envelope.sent_period = static_cast<std::size_t>(read_u64(in, kContext));
    envelope.deliver_period = static_cast<std::size_t>(read_u64(in, kContext));
    envelope.message.ra = static_cast<std::size_t>(read_u64(in, kContext));
    envelope.message.performance_sums = read_f64_vector(in, kContext);
    if (envelope.seq >= next_seq)
      throw std::runtime_error(std::string(kContext) +
                               ": envelope seq beyond sequence counter");
    if (envelope.deliver_period < envelope.sent_period)
      throw std::runtime_error(std::string(kContext) + ": envelope delivered in the past");
    pending.push_back(std::move(envelope));
  }
  next_seq_ = next_seq;
  stats_ = stats;
  pending_ = std::move(pending);
}

bool MessageBus::deliver_coordination(std::size_t period, const RcLearningMessage& message) {
  ++stats_.rcl_sent;
  global_metrics().counter("bus.rcl_sent").add();
  if (faults_ && faults_->drop_rcl(period, message.ra)) {
    ++stats_.rcl_dropped;
    global_metrics().counter("bus.rcl_dropped").add();
    log_bus_event(obs::EventKind::RclDropped, period, message.ra);
    ES_LOG(Debug) << "bus: RC-L push to RA " << message.ra << " lost in period "
                  << period;
    return false;
  }
  if (transport_ != nullptr && !transport_->send_coordination(period, message)) {
    ++stats_.rcl_dropped;
    global_metrics().counter("bus.rcl_dropped").add();
    log_bus_event(obs::EventKind::RclDropped, period, message.ra);
    ES_LOG(Debug) << "bus: RC-L push to RA " << message.ra
                  << " undeliverable (worker down) in period " << period;
    return false;
  }
  return true;
}

}  // namespace edgeslice::core
