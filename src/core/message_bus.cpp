#include "core/message_bus.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "obs/event_log.h"

namespace edgeslice::core {

namespace {

/// Flight-recorder entry for one message-plane happening.
void log_bus_event(obs::EventKind kind, std::size_t period, std::size_t ra,
                   double value = 0.0) {
  obs::Event event;
  event.kind = kind;
  event.period = period;
  event.ra = ra;
  event.value = value;
  obs::global_event_log().record(event);
}

}  // namespace

MessageBus::MessageBus(const FaultInjector* faults) : faults_(faults) {}

void MessageBus::post_report(std::size_t period, RcMonitoringMessage message) {
  ++stats_.rcm_sent;
  global_metrics().counter("bus.rcm_sent").add();
  const std::size_t ra = message.ra;
  if (faults_ && faults_->drop_rcm(period, ra)) {
    ++stats_.rcm_dropped;
    global_metrics().counter("bus.rcm_dropped").add();
    log_bus_event(obs::EventKind::RcmDropped, period, ra);
    ES_LOG(Debug) << "bus: RC-M report from RA " << ra << " dropped in period "
                  << period;
    return;
  }
  RcmEnvelope envelope;
  envelope.seq = next_seq_++;
  envelope.sent_period = period;
  envelope.deliver_period = period;
  if (faults_) {
    const std::size_t delay = faults_->rcm_delay(period, ra);
    if (delay > 0) {
      envelope.deliver_period = period + delay;
      ++stats_.rcm_delayed;
      global_metrics().counter("bus.rcm_delayed").add();
      log_bus_event(obs::EventKind::RcmDelayed, period, ra,
                    static_cast<double>(delay));
    }
  }
  envelope.message = std::move(message);
  pending_.push_back(std::move(envelope));
}

std::vector<RcmEnvelope> MessageBus::collect_reports(std::size_t period) {
  std::vector<RcmEnvelope> due;
  auto keep = pending_.begin();
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->deliver_period <= period) {
      due.push_back(std::move(*it));
    } else {
      *keep++ = std::move(*it);
    }
  }
  pending_.erase(keep, pending_.end());
  std::stable_sort(due.begin(), due.end(), [](const RcmEnvelope& a, const RcmEnvelope& b) {
    if (a.deliver_period != b.deliver_period) return a.deliver_period < b.deliver_period;
    return a.seq < b.seq;
  });
  stats_.rcm_delivered += due.size();
  global_metrics().counter("bus.rcm_delivered").add(due.size());
  // Envelope latency in periods (0 for same-period delivery): the delay
  // distribution the coordinator actually experienced.
  auto& latency = global_metrics().histogram("bus.rcm_latency_periods");
  for (const auto& envelope : due) {
    latency.observe(static_cast<double>(period - envelope.sent_period));
    log_bus_event(obs::EventKind::RcmDelivered, period, envelope.message.ra,
                  static_cast<double>(period - envelope.sent_period));
  }
  global_metrics().gauge("bus.in_flight").set(static_cast<double>(pending_.size()));
  return due;
}

bool MessageBus::deliver_coordination(std::size_t period, const RcLearningMessage& message) {
  ++stats_.rcl_sent;
  global_metrics().counter("bus.rcl_sent").add();
  if (faults_ && faults_->drop_rcl(period, message.ra)) {
    ++stats_.rcl_dropped;
    global_metrics().counter("bus.rcl_dropped").add();
    log_bus_event(obs::EventKind::RclDropped, period, message.ra);
    ES_LOG(Debug) << "bus: RC-L push to RA " << message.ra << " lost in period "
                  << period;
    return false;
  }
  return true;
}

}  // namespace edgeslice::core
