#include "core/slice_manager.h"

#include <algorithm>
#include <stdexcept>

namespace edgeslice::core {

SliceManager::SliceManager(const SliceManagerConfig& config,
                           PerformanceCoordinator* coordinator, SystemMonitor* monitor)
    : config_(config), coordinator_(coordinator), monitor_(monitor) {
  if (config.max_slices == 0) throw std::invalid_argument("SliceManager: zero capacity");
  if (config.capacity.radio_bits_per_second <= 0.0 ||
      config.capacity.transport_bits_per_second <= 0.0 ||
      config.capacity.compute_work_per_second <= 0.0) {
    throw std::invalid_argument("SliceManager: non-positive reference capacity");
  }
}

double SliceManager::estimated_load(const env::AppProfile& profile) const {
  // Expected demand per second on each domain, as a fraction of capacity;
  // the dominant one is the admission metric (dominant-resource fairness
  // style, cf. the Halabian 2019 baseline discussed in Sec. VIII).
  const double rate = config_.expected_arrival_rate;
  const double radio =
      rate * profile.uplink_bits / config_.capacity.radio_bits_per_second;
  const double transport =
      rate * profile.uplink_bits / config_.capacity.transport_bits_per_second;
  const double compute =
      rate * profile.compute_work / config_.capacity.compute_work_per_second;
  return std::max({radio, transport, compute});
}

double SliceManager::admitted_load() const {
  double total = 0.0;
  for (const auto& s : slices_) {
    if (s.state == SliceState::Active || s.state == SliceState::Modified) {
      total += estimated_load(s.profile);
    }
  }
  return total;
}

std::size_t SliceManager::active_slices() const {
  return static_cast<std::size_t>(
      std::count_if(slices_.begin(), slices_.end(), [](const SliceDescriptor& s) {
        return s.state == SliceState::Active || s.state == SliceState::Modified;
      }));
}

AdmissionResult SliceManager::request_slice(const std::string& tenant,
                                            const env::AppProfile& profile,
                                            double u_min) {
  AdmissionResult result;
  if (active_slices() >= config_.max_slices) {
    result.reason = "slice capacity exhausted";
    return result;
  }
  const double load = estimated_load(profile);
  if (admitted_load() + load > config_.admission_load_limit) {
    result.reason = "admission budget exceeded (load " + std::to_string(load) + ")";
    return result;
  }
  SliceDescriptor descriptor;
  descriptor.slice_id = slices_.size();
  descriptor.tenant = tenant;
  descriptor.profile = profile;
  descriptor.u_min = u_min;
  descriptor.state = SliceState::Active;
  slices_.push_back(descriptor);

  if (coordinator_ != nullptr && descriptor.slice_id < coordinator_->config().slices) {
    coordinator_->apply_slice_request(
        SliceRequest{descriptor.slice_id, u_min, profile.name});
  }
  result.admitted = true;
  result.slice_id = descriptor.slice_id;
  return result;
}

SliceDescriptor& SliceManager::mutable_slice(std::size_t slice_id) {
  if (slice_id >= slices_.size()) throw std::out_of_range("SliceManager: bad slice id");
  return slices_[slice_id];
}

const SliceDescriptor& SliceManager::slice(std::size_t slice_id) const {
  if (slice_id >= slices_.size()) throw std::out_of_range("SliceManager: bad slice id");
  return slices_[slice_id];
}

void SliceManager::modify_sla(std::size_t slice_id, double u_min) {
  auto& descriptor = mutable_slice(slice_id);
  if (descriptor.state == SliceState::Terminated)
    throw std::logic_error("SliceManager: slice is terminated");
  descriptor.u_min = u_min;
  descriptor.state = SliceState::Modified;
  if (coordinator_ != nullptr && slice_id < coordinator_->config().slices) {
    coordinator_->apply_slice_request(
        SliceRequest{slice_id, u_min, descriptor.profile.name});
  }
}

void SliceManager::terminate(std::size_t slice_id) {
  auto& descriptor = mutable_slice(slice_id);
  descriptor.state = SliceState::Terminated;
}

void SliceManager::attach_user(std::size_t slice_id, const std::string& imsi,
                               const std::string& ip) {
  auto& descriptor = mutable_slice(slice_id);
  if (descriptor.state == SliceState::Terminated)
    throw std::logic_error("SliceManager: slice is terminated");
  if (monitor_ != nullptr) {
    monitor_->register_user(UserAssociation{imsi, ip, slice_id});
  }
  ++descriptor.user_count;
}

}  // namespace edgeslice::core
