// Slice lifecycle management — the SR (slice request) interface of
// Sec. V-D: "enable the slice tenants to request and configure their
// network slices. For example, slice tenants can make and modify their
// service-level agreements (SLAs) with network operator. The SLAs will be
// enforced during the resource orchestrations."
//
// The SliceManager is the operator-side counterpart: it admits tenant
// requests against a capacity budget, assigns slice ids, propagates SLAs
// to the performance coordinator, and registers the tenant's users with
// the system monitor's association database.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/coordinator.h"
#include "core/monitor.h"
#include "env/app_model.h"

namespace edgeslice::core {

enum class SliceState { Requested, Active, Modified, Terminated };

/// A tenant's slice as tracked by the operator.
struct SliceDescriptor {
  std::size_t slice_id = 0;
  std::string tenant;
  env::AppProfile profile;
  double u_min = -50.0;        // SLA (Eq. 2)
  SliceState state = SliceState::Requested;
  std::size_t user_count = 0;
};

/// Outcome of an admission decision.
struct AdmissionResult {
  bool admitted = false;
  std::optional<std::size_t> slice_id;
  std::string reason;
};

struct SliceManagerConfig {
  std::size_t max_slices = 8;
  /// Crude admission budget: the sum over active slices of their estimated
  /// dominant-resource load fraction must stay below this (per RA).
  double admission_load_limit = 1.0;
  /// Reference capacities used for the load estimate.
  env::RaCapacity capacity;
  double expected_arrival_rate = 10.0;  // tasks/s assumed per admitted slice
};

class SliceManager {
 public:
  SliceManager(const SliceManagerConfig& config, PerformanceCoordinator* coordinator,
               SystemMonitor* monitor);

  /// Tenant-facing: request a new slice. On admission the SLA is
  /// registered with the coordinator (if the slice id is within its
  /// configured range).
  AdmissionResult request_slice(const std::string& tenant, const env::AppProfile& profile,
                                double u_min);

  /// Tenant-facing: modify an active slice's SLA.
  void modify_sla(std::size_t slice_id, double u_min);

  /// Tenant-facing: terminate a slice, releasing its admission budget.
  void terminate(std::size_t slice_id);

  /// Attach one of the tenant's users (IMSI + IP) to the slice.
  void attach_user(std::size_t slice_id, const std::string& imsi, const std::string& ip);

  /// Estimated dominant-resource load fraction of one slice's expected
  /// traffic (the admission metric).
  double estimated_load(const env::AppProfile& profile) const;

  /// Total estimated load of all active slices.
  double admitted_load() const;

  const SliceDescriptor& slice(std::size_t slice_id) const;
  std::size_t active_slices() const;
  const std::vector<SliceDescriptor>& slices() const { return slices_; }

 private:
  SliceDescriptor& mutable_slice(std::size_t slice_id);

  SliceManagerConfig config_;
  PerformanceCoordinator* coordinator_;  // may be null (standalone admission)
  SystemMonitor* monitor_;               // may be null
  std::vector<SliceDescriptor> slices_;
};

}  // namespace edgeslice::core
