// The system monitor (Sec. V-D).
//
// Collects network state (traffic, performance, orchestration actions) per
// time interval into an in-memory dataset, maintains the user-slice
// association database (IMSI and IP keyed), and produces the RC-M reports
// the performance coordinator consumes.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/interfaces.h"
#include "env/environment.h"

namespace edgeslice::core {

/// One row of the monitoring dataset.
struct IntervalRecord {
  std::size_t period = 0;
  std::size_t interval = 0;  // global interval index
  std::size_t ra = 0;
  std::vector<double> queue_lengths;   // per slice
  std::vector<double> performance;     // U per slice
  std::vector<double> action;          // slice-major resource fractions
  double reward = 0.0;
};

/// User identity in the association database.
struct UserAssociation {
  std::string imsi;
  std::string ip;
  std::size_t slice = 0;
};

class SystemMonitor {
 public:
  SystemMonitor(std::size_t slices, std::size_t ras);

  /// --- Dataset --------------------------------------------------------------
  void record(std::size_t ra, std::size_t period, std::size_t interval,
              const env::StepResult& result, const std::vector<double>& action);
  const std::vector<IntervalRecord>& records() const { return records_; }
  void clear_records();

  /// Bound the row log: once more than `max_rows` rows are held, the
  /// oldest rows are evicted (in recording order). 0 — the default —
  /// retains everything. Eviction only trims the raw rows behind
  /// records()/write_csv and the interval series; the per-(ra, period)
  /// running sums feeding report() are kept for the full history, so
  /// RC-M reports stay exact on arbitrarily long runs.
  void set_retention_cap(std::size_t max_rows) { retention_cap_ = max_rows; }
  std::size_t retention_cap() const { return retention_cap_; }
  /// Rows evicted by the retention cap so far.
  std::size_t evicted_rows() const { return evicted_rows_; }

  /// Disable the per-interval row log entirely (default on). The RC-M
  /// running sums are maintained regardless, so report() stays exact;
  /// records()/write_csv and the interval series just see no rows. The
  /// city-scale bench runs with rows off: at hundreds of RAs the row log
  /// is the dominant allocator on the period hot path.
  void set_row_recording(bool enabled) { row_recording_ = enabled; }
  bool row_recording() const { return row_recording_; }

  /// Bound the per-(period, ra) RC-M sums to the most recent `periods`
  /// periods (0 — the default — retains all). Expired map nodes are
  /// recycled in place for new periods, so once warm the sums add no
  /// allocations. Retention must exceed the system's report-staleness
  /// window; report() on an evicted period returns zero sums.
  void set_period_sum_retention(std::size_t periods) { sum_retention_ = periods; }
  std::size_t period_sum_retention() const { return sum_retention_; }

  /// Export the dataset as CSV (one row per slice per record) for external
  /// analysis/plotting: period,interval,ra,slice,queue,performance,
  /// radio,transport,computing,reward.
  void write_csv(std::ostream& out) const;

  /// RC-M report: per-slice performance sums of one RA over one period.
  /// O(slices) — served from running sums maintained at record() time,
  /// never by rescanning the row log.
  RcMonitoringMessage report(std::size_t ra, std::size_t period) const;

  /// report() into a caller-owned message (vector resized in place).
  void report_into(std::size_t ra, std::size_t period, RcMonitoringMessage& msg) const;

  /// System performance (sum of U over slices and RAs) per global interval.
  std::vector<double> system_performance_series() const;

  /// Per-slice performance (summed over RAs) per global interval.
  std::vector<std::vector<double>> slice_performance_series() const;

  /// Mean fraction of resource `k` allocated to `slice` in RA `ra`,
  /// per global interval (Fig. 7's series).
  std::vector<double> resource_usage_series(std::size_t ra, std::size_t slice,
                                            std::size_t resource) const;

  /// --- Association database ---------------------------------------------------
  void register_user(const UserAssociation& user);
  std::size_t slice_of_imsi(const std::string& imsi) const;
  std::size_t slice_of_ip(const std::string& ip) const;
  std::size_t user_count() const { return users_.size(); }

  std::size_t slices() const { return slices_; }
  std::size_t ras() const { return ras_; }

 private:
  std::size_t slices_;
  std::size_t ras_;
  std::vector<IntervalRecord> records_;
  std::size_t retention_cap_ = 0;
  std::size_t evicted_rows_ = 0;
  bool row_recording_ = true;
  std::size_t sum_retention_ = 0;
  /// Incremental per-(period, ra) performance sums, updated by record()
  /// in arrival order — the same accumulation order a full-history scan
  /// would use, so report() results are bit-identical to the old scan.
  /// Keyed period-first so expired periods cluster at begin() and their
  /// nodes can be recycled under set_period_sum_retention().
  std::map<std::pair<std::size_t, std::size_t>, std::vector<double>> period_sums_;
  std::vector<UserAssociation> users_;
  std::map<std::string, std::size_t> imsi_index_;
  std::map<std::string, std::size_t> ip_index_;
};

}  // namespace edgeslice::core
