#include "common/fault.h"

#include <cmath>
#include <stdexcept>

namespace edgeslice {

namespace {

std::uint64_t decision_tag(FaultType type, std::size_t period, std::size_t ra) {
  // Distinct tags for distinct (type, period, ra); Rng::spawn mixes the tag
  // through SplitMix64, so structured tags still yield decorrelated streams.
  return (static_cast<std::uint64_t>(type) + 1) * 0x1000003ULL +
         static_cast<std::uint64_t>(period) * 0x100000001b3ULL +
         static_cast<std::uint64_t>(ra) * 0x9e3779b9ULL;
}

void validate_probability(double p, const char* name) {
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument(std::string("FaultPlan: ") + name +
                                " must be a probability in [0,1]");
}

}  // namespace

bool FaultPlan::empty() const {
  if (!events.empty()) return false;
  return rates.rcm_drop == 0.0 && rates.rcm_delay == 0.0 && rates.rcl_drop == 0.0 &&
         rates.ra_crash == 0.0 && rates.cqi_blackout == 0.0 &&
         rates.link_failure == 0.0 && rates.compute_slowdown == 0.0;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)), base_(plan_.seed) {
  validate_probability(plan_.rates.rcm_drop, "rcm_drop");
  validate_probability(plan_.rates.rcm_delay, "rcm_delay");
  validate_probability(plan_.rates.rcl_drop, "rcl_drop");
  validate_probability(plan_.rates.ra_crash, "ra_crash");
  validate_probability(plan_.rates.cqi_blackout, "cqi_blackout");
  validate_probability(plan_.rates.link_failure, "link_failure");
  validate_probability(plan_.rates.compute_slowdown, "compute_slowdown");
  if (plan_.rates.compute_slowdown_factor < 1.0)
    throw std::invalid_argument("FaultPlan: compute_slowdown_factor must be >= 1");
  for (const auto& event : plan_.events) {
    if (event.duration == 0)
      throw std::invalid_argument("FaultPlan: event duration must be >= 1");
    if (event.type == FaultType::ComputeSlowdown && event.magnitude < 1.0)
      throw std::invalid_argument("FaultPlan: slowdown magnitude must be >= 1");
    if (event.type == FaultType::RcmDelay && event.magnitude < 1.0)
      throw std::invalid_argument("FaultPlan: delay magnitude must be >= 1 period");
    if (event.type == FaultType::WorkerStall && event.magnitude < 1.0)
      throw std::invalid_argument("FaultPlan: stall magnitude must be >= 1 ms");
  }
}

const FaultEvent* FaultInjector::scheduled(FaultType type, std::size_t period,
                                           std::size_t ra) const {
  const FaultEvent* match = nullptr;
  for (const auto& event : plan_.events) {
    if (event.type != type || event.ra != ra) continue;
    if (period >= event.period && period < event.period + event.duration) match = &event;
  }
  return match;
}

bool FaultInjector::roll(FaultType type, std::size_t period, std::size_t ra,
                         double p) const {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  Rng stream = base_.spawn(decision_tag(type, period, ra));
  return stream.chance(p);
}

bool FaultInjector::rate_window_active(FaultType type, std::size_t period, std::size_t ra,
                                       double p, std::size_t duration_periods) const {
  if (p <= 0.0 || duration_periods == 0) return false;
  // A condition triggered at p0 covers [p0, p0 + duration); scan the
  // trailing window so the answer is stateless and order-independent.
  const std::size_t window = std::min(duration_periods, period + 1);
  for (std::size_t back = 0; back < window; ++back) {
    if (roll(type, period - back, ra, p)) return true;
  }
  return false;
}

bool FaultInjector::ra_crashed(std::size_t period, std::size_t ra) const {
  if (scheduled(FaultType::RaCrash, period, ra)) return true;
  // Process-real faults take the RA down for their whole window. In a
  // single process this IS the fault (pure bookkeeping); with workers the
  // supervisor applies the physical action at the window start
  // (process_fault) and restores the worker from its last period-boundary
  // state blob, which reproduces exactly this degradation pattern.
  if (scheduled(FaultType::WorkerKill, period, ra) ||
      scheduled(FaultType::WorkerStall, period, ra) ||
      scheduled(FaultType::SocketDrop, period, ra)) {
    return true;
  }
  return rate_window_active(FaultType::RaCrash, period, ra, plan_.rates.ra_crash,
                            plan_.rates.ra_crash_periods);
}

bool FaultInjector::drop_rcm(std::size_t period, std::size_t ra) const {
  if (scheduled(FaultType::RcmDrop, period, ra)) return true;
  return roll(FaultType::RcmDrop, period, ra, plan_.rates.rcm_drop);
}

std::size_t FaultInjector::rcm_delay(std::size_t period, std::size_t ra) const {
  if (const FaultEvent* event = scheduled(FaultType::RcmDelay, period, ra)) {
    return static_cast<std::size_t>(std::llround(event->magnitude));
  }
  if (roll(FaultType::RcmDelay, period, ra, plan_.rates.rcm_delay)) {
    return plan_.rates.rcm_delay_periods;
  }
  return 0;
}

bool FaultInjector::drop_rcl(std::size_t period, std::size_t ra) const {
  if (scheduled(FaultType::RclDrop, period, ra)) return true;
  return roll(FaultType::RclDrop, period, ra, plan_.rates.rcl_drop);
}

bool FaultInjector::cqi_blackout(std::size_t period, std::size_t ra) const {
  if (scheduled(FaultType::CqiBlackout, period, ra)) return true;
  return rate_window_active(FaultType::CqiBlackout, period, ra,
                            plan_.rates.cqi_blackout, plan_.rates.cqi_blackout_periods);
}

bool FaultInjector::link_failure(std::size_t period, std::size_t ra) const {
  if (scheduled(FaultType::LinkFailure, period, ra)) return true;
  return rate_window_active(FaultType::LinkFailure, period, ra,
                            plan_.rates.link_failure, plan_.rates.link_failure_periods);
}

ProcessFaultKind FaultInjector::process_fault(std::size_t period, std::size_t ra) const {
  // The physical action fires once, at the window start. scheduled()
  // returns a match for any period inside the window, so compare the
  // event's own start period against the query.
  if (const FaultEvent* e = scheduled(FaultType::WorkerKill, period, ra);
      e != nullptr && e->period == period) {
    return ProcessFaultKind::Kill;
  }
  if (const FaultEvent* e = scheduled(FaultType::WorkerStall, period, ra);
      e != nullptr && e->period == period) {
    return ProcessFaultKind::Stall;
  }
  if (const FaultEvent* e = scheduled(FaultType::SocketDrop, period, ra);
      e != nullptr && e->period == period) {
    return ProcessFaultKind::HalfClose;
  }
  return ProcessFaultKind::None;
}

std::size_t FaultInjector::process_fault_stall_ms(std::size_t period,
                                                  std::size_t ra) const {
  if (const FaultEvent* e = scheduled(FaultType::WorkerStall, period, ra);
      e != nullptr && e->period == period) {
    return static_cast<std::size_t>(std::llround(e->magnitude));
  }
  return 0;
}

double FaultInjector::compute_slowdown(std::size_t period, std::size_t ra) const {
  if (const FaultEvent* event = scheduled(FaultType::ComputeSlowdown, period, ra)) {
    return event->magnitude;
  }
  if (rate_window_active(FaultType::ComputeSlowdown, period, ra,
                         plan_.rates.compute_slowdown,
                         plan_.rates.compute_slowdown_periods)) {
    return plan_.rates.compute_slowdown_factor;
  }
  return 1.0;
}

}  // namespace edgeslice
