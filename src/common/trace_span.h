// Lightweight control-plane tracing: steady-clock spans with parent
// nesting and per-period aggregation.
//
// A span measures one timed region ("period/coordinate", "ddpg.train_batch").
// Nesting is tracked per thread: a span opened while another is active on
// the same thread records under "<parent-path>/<name>", so the exported
// tree mirrors the call structure without storing explicit span objects.
// Finished spans are aggregated immediately — per name overall and per
// (name, period) with a bounded period window — so memory is O(names *
// retained periods) regardless of run length; no raw span log is kept.
//
// Recording honours the global metrics switch (common/metrics.h): with
// metrics disabled a span neither reads the clock nor touches the tracer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace edgeslice {

/// Aggregated timings of one span name (overall or within one period).
struct SpanStats {
  std::size_t count = 0;
  double total_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  double mean_s() const { return count ? total_s / static_cast<double>(count) : 0.0; }
};

/// One (path, period) aggregate as shipped by the fleet telemetry plane:
/// a worker periodically exports the *delta* of each retained per-period
/// series since its last export, and the supervisor merges the deltas
/// into its own tracer (count/total add; min/max take the envelope).
struct SpanPeriodStats {
  std::string path;
  std::uint64_t period = 0;
  SpanStats stats;
};

class Tracer {
 public:
  /// RAII timed region. Records into the tracer on destruction (or on an
  /// explicit stop()); moves are not needed — open spans live on the stack.
  class Span {
   public:
    Span(Tracer* tracer, const std::string& name);
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Stop now and record; returns the elapsed seconds (0 if inert).
    double stop();
    /// The full parent path this span records under.
    const std::string& path() const { return path_; }

   private:
    Tracer* tracer_;  // null once stopped or when tracing is disabled
    std::string path_;
    double start_s_ = 0.0;
  };

  /// Open a span named `name` under the calling thread's current span.
  Span span(const std::string& name) { return Span(this, name); }

  /// The period label under which subsequent records aggregate.
  void set_period(std::size_t period);
  std::size_t period() const;

  /// Record a finished duration directly (no clock involved).
  void record(const std::string& path, double seconds);

  /// Merge a shipped (path, period) aggregate into this tracer: both the
  /// overall series and the per-period entry gain `delta.stats.count`
  /// samples totalling `total_s`, with min/max folded element-wise.
  /// Honours the metrics switch and the period retention window.
  void merge_period_stats(const SpanPeriodStats& delta);

  /// Every retained (path, period) aggregate, path-major then
  /// period-ascending (the telemetry shipper diffs consecutive exports).
  std::vector<SpanPeriodStats> export_period_stats() const;

  std::vector<std::string> names() const;
  SpanStats overall(const std::string& path) const;
  SpanStats for_period(const std::string& path, std::size_t period) const;
  /// Retained (period, stats) pairs of one span, oldest first.
  std::vector<std::pair<std::size_t, SpanStats>> periods(const std::string& path) const;

  /// How many distinct periods are retained per span name (oldest evicted
  /// first). The overall aggregate is unaffected by eviction. Default 256.
  void set_period_retention(std::size_t periods);

  /// JSON object {path: {"count":..., "total_s":..., ..., "periods":
  /// {"<period>": {...}}}}.
  void write_json(std::ostream& out) const;

  void clear();

 private:
  struct Series {
    SpanStats overall;
    std::map<std::size_t, SpanStats> per_period;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Series> series_;
  std::size_t period_ = 0;
  std::size_t retention_ = 256;
};

/// The process-global tracer the control plane records into.
Tracer& global_tracer();

/// Replace the process-global tracer with a fresh one (the old object is
/// leaked — its mutex may be unusable after fork()). Call from a freshly
/// forked, single-threaded child only.
void reset_global_tracer_for_fork();

}  // namespace edgeslice
