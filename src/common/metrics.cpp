#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/json.h"

namespace edgeslice {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Geometric bucket index for a magnitude m >= 0 (m > 0 expected).
std::size_t bucket_for(double m) {
  if (m <= Histogram::kMinAbs) return 0;
  const double idx = std::log(m / Histogram::kMinAbs) / std::log(Histogram::kGrowth);
  return std::min(Histogram::kBuckets - 1, static_cast<std::size_t>(idx));
}

/// Representative value of bucket b: geometric midpoint of its bounds.
double bucket_mid(std::size_t b) {
  const double lo = Histogram::kMinAbs * std::pow(Histogram::kGrowth, static_cast<double>(b));
  return lo * std::sqrt(Histogram::kGrowth);
}

/// A legal Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. Every other
/// character (the registry's dots, most notably) becomes '_'.
std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

}  // namespace

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool metrics_enabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }

void Counter::add(std::uint64_t n) {
  if (!metrics_enabled()) return;
  value_.fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(double v) {
  if (!metrics_enabled()) return;
  value_.store(v, std::memory_order_relaxed);
  written_.store(true, std::memory_order_release);
}

void Gauge::add(double delta) {
  if (!metrics_enabled()) return;
  double expected = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
  written_.store(true, std::memory_order_release);
}

double Gauge::value() const { return value_.load(std::memory_order_relaxed); }

void Histogram::observe(double x) {
  if (!metrics_enabled() || !std::isfinite(x)) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  stat_.add(x);
  total_ += x;
  if (x == 0.0) {
    ++zero_count_;
  } else if (x > 0.0) {
    ++positive_[bucket_for(x)];
  } else {
    ++negative_[bucket_for(-x)];
  }
}

std::size_t Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stat_.count();
}

double Histogram::mean() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stat_.mean();
}

double Histogram::min() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stat_.count() ? stat_.min() : 0.0;
}

double Histogram::max() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stat_.count() ? stat_.max() : 0.0;
}

double Histogram::total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

double Histogram::quantile(double q) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t n = stat_.count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile (1-based, nearest-rank method).
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  double value = stat_.max();
  bool found = false;
  // Walk buckets in ascending value order: negatives from large magnitude
  // down, then zero, then positives up.
  for (auto it = negative_.rbegin(); it != negative_.rend() && !found; ++it) {
    seen += it->second;
    if (seen >= rank) {
      value = -bucket_mid(it->first);
      found = true;
    }
  }
  if (!found) {
    seen += zero_count_;
    if (seen >= rank) {
      value = 0.0;
      found = true;
    }
  }
  for (auto it = positive_.begin(); it != positive_.end() && !found; ++it) {
    seen += it->second;
    if (seen >= rank) {
      value = bucket_mid(it->first);
      found = true;
    }
  }
  // Bucket midpoints can overshoot the true extremes; the exact observed
  // range is known, so clamp to it.
  return std::clamp(value, stat_.min(), stat_.max());
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, metric] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, metric] : gauges_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, metric] : histograms_) names.push_back(name);
  return names;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, metric] : counters_) {
    out << (first ? "\n    " : ",\n    ");
    write_json_escaped(out, name);
    out << ": " << metric->value();
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, metric] : gauges_) {
    out << (first ? "\n    " : ",\n    ");
    write_json_escaped(out, name);
    out << ": " << metric->value();
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, metric] : histograms_) {
    out << (first ? "\n    " : ",\n    ");
    write_json_escaped(out, name);
    out << ": {\"count\": " << metric->count() << ", \"mean\": " << metric->mean()
        << ", \"min\": " << metric->min() << ", \"max\": " << metric->max()
        << ", \"total\": " << metric->total() << ", \"p50\": " << metric->quantile(0.5)
        << ", \"p90\": " << metric->quantile(0.9)
        << ", \"p99\": " << metric->quantile(0.99) << "}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << "\n}";
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  out << "kind,name,field,value\n";
  for (const auto& [name, metric] : counters_) {
    out << "counter," << name << ",value," << metric->value() << "\n";
  }
  for (const auto& [name, metric] : gauges_) {
    out << "gauge," << name << ",value," << metric->value() << "\n";
  }
  for (const auto& [name, metric] : histograms_) {
    out << "histogram," << name << ",count," << metric->count() << "\n";
    out << "histogram," << name << ",mean," << metric->mean() << "\n";
    out << "histogram," << name << ",min," << metric->min() << "\n";
    out << "histogram," << name << ",max," << metric->max() << "\n";
    out << "histogram," << name << ",total," << metric->total() << "\n";
    out << "histogram," << name << ",p50," << metric->quantile(0.5) << "\n";
    out << "histogram," << name << ",p90," << metric->quantile(0.9) << "\n";
    out << "histogram," << name << ",p99," << metric->quantile(0.99) << "\n";
  }
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, metric] : counters_) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " counter\n";
    out << p << " " << metric->value() << "\n";
  }
  for (const auto& [name, metric] : gauges_) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " gauge\n";
    out << p << " " << metric->value() << "\n";
  }
  for (const auto& [name, metric] : histograms_) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " summary\n";
    out << p << "{quantile=\"0.5\"} " << metric->quantile(0.5) << "\n";
    out << p << "{quantile=\"0.9\"} " << metric->quantile(0.9) << "\n";
    out << p << "{quantile=\"0.99\"} " << metric->quantile(0.99) << "\n";
    out << p << "_sum " << metric->total() << "\n";
    out << p << "_count " << metric->count() << "\n";
  }
}

void MetricsRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace edgeslice
