#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/json.h"

namespace edgeslice {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Geometric bucket index for a magnitude m >= 0 (m > 0 expected).
std::size_t bucket_for(double m) {
  if (m <= Histogram::kMinAbs) return 0;
  const double idx = std::log(m / Histogram::kMinAbs) / std::log(Histogram::kGrowth);
  return std::min(Histogram::kBuckets - 1, static_cast<std::size_t>(idx));
}

/// Representative value of bucket b: geometric midpoint of its bounds.
double bucket_mid(std::size_t b) {
  const double lo = Histogram::kMinAbs * std::pow(Histogram::kGrowth, static_cast<double>(b));
  return lo * std::sqrt(Histogram::kGrowth);
}

/// A legal Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. Every other
/// character (the registry's dots, most notably) becomes '_'.
std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

/// Escape a label value per the Prometheus text format: backslash, quote,
/// and newline.
void append_label_value(std::string& out, const std::string& value) {
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
}

/// The label suffix with one more label appended (for summary quantiles):
/// "" + q -> {quantile="q"}, {a="b"} + q -> {a="b",quantile="q"}.
std::string suffix_with(const std::string& suffix, const char* key,
                        const char* value) {
  std::string extra;
  extra += key;
  extra += "=\"";
  extra += value;
  extra += "\"}";
  if (suffix.empty()) return "{" + extra;
  std::string out = suffix;
  out.pop_back();  // drop the closing '}'
  out += ",";
  out += extra;
  return out;
}

}  // namespace

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool metrics_enabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }

std::string encode_metric_labels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : sorted) {
    if (!first) out += ",";
    out += key;
    out += "=\"";
    append_label_value(out, value);
    out += "\"";
    first = false;
  }
  out += "}";
  return out;
}

void Counter::add(std::uint64_t n) {
  if (!metrics_enabled()) return;
  value_.fetch_add(n, std::memory_order_relaxed);
}

void Counter::set(std::uint64_t v) {
  if (!metrics_enabled()) return;
  value_.store(v, std::memory_order_relaxed);
}

void Gauge::set(double v) {
  if (!metrics_enabled()) return;
  value_.store(v, std::memory_order_relaxed);
  written_.store(true, std::memory_order_release);
}

void Gauge::add(double delta) {
  if (!metrics_enabled()) return;
  double expected = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
  written_.store(true, std::memory_order_release);
}

double Gauge::value() const { return value_.load(std::memory_order_relaxed); }

void merge_histogram_state(HistogramState& a, const HistogramState& b) {
  if (b.count == 0) return;
  if (a.count == 0) {
    a = b;
    return;
  }
  // Chan's parallel update of Welford's accumulators: exact to rounding,
  // independent of which side the samples arrived on.
  const double na = static_cast<double>(a.count);
  const double nb = static_cast<double>(b.count);
  const double delta = b.mean - a.mean;
  const double n = na + nb;
  a.m2 = a.m2 + b.m2 + delta * delta * na * nb / n;
  a.mean = a.mean + delta * nb / n;
  a.count += b.count;
  a.min = std::min(a.min, b.min);
  a.max = std::max(a.max, b.max);
  a.total += b.total;
  a.zero_count += b.zero_count;
  const auto merge_buckets =
      [](std::vector<std::pair<std::uint32_t, std::uint64_t>>& into,
         const std::vector<std::pair<std::uint32_t, std::uint64_t>>& from) {
        std::map<std::uint32_t, std::uint64_t> merged(into.begin(), into.end());
        for (const auto& [bucket, count] : from) merged[bucket] += count;
        into.assign(merged.begin(), merged.end());
      };
  merge_buckets(a.positive, b.positive);
  merge_buckets(a.negative, b.negative);
}

void Histogram::observe(double x) {
  if (!metrics_enabled() || !std::isfinite(x)) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  stat_.add(x);
  total_ += x;
  if (x == 0.0) {
    ++zero_count_;
  } else if (x > 0.0) {
    ++positive_[bucket_for(x)];
  } else {
    ++negative_[bucket_for(-x)];
  }
}

std::size_t Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stat_.count();
}

double Histogram::mean() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stat_.mean();
}

double Histogram::min() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stat_.count() ? stat_.min() : 0.0;
}

double Histogram::max() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stat_.count() ? stat_.max() : 0.0;
}

double Histogram::total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

double Histogram::quantile(double q) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t n = stat_.count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile (1-based, nearest-rank method).
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  double value = stat_.max();
  bool found = false;
  // Walk buckets in ascending value order: negatives from large magnitude
  // down, then zero, then positives up.
  for (auto it = negative_.rbegin(); it != negative_.rend() && !found; ++it) {
    seen += it->second;
    if (seen >= rank) {
      value = -bucket_mid(it->first);
      found = true;
    }
  }
  if (!found) {
    seen += zero_count_;
    if (seen >= rank) {
      value = 0.0;
      found = true;
    }
  }
  for (auto it = positive_.begin(); it != positive_.end() && !found; ++it) {
    seen += it->second;
    if (seen >= rank) {
      value = bucket_mid(it->first);
      found = true;
    }
  }
  // Bucket midpoints can overshoot the true extremes; the exact observed
  // range is known, so clamp to it.
  return std::clamp(value, stat_.min(), stat_.max());
}

HistogramState Histogram::state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  HistogramState s;
  s.count = stat_.count();
  s.mean = stat_.mean();
  s.m2 = stat_.m2();
  s.min = stat_.min();
  s.max = stat_.max();
  s.total = total_;
  s.zero_count = zero_count_;
  s.positive.reserve(positive_.size());
  for (const auto& [bucket, count] : positive_)
    s.positive.emplace_back(static_cast<std::uint32_t>(bucket), count);
  s.negative.reserve(negative_.size());
  for (const auto& [bucket, count] : negative_)
    s.negative.emplace_back(static_cast<std::uint32_t>(bucket), count);
  return s;
}

void Histogram::load_state(const HistogramState& s) {
  if (!metrics_enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  stat_.restore(s.count, s.mean, s.m2, s.min, s.max);
  total_ = s.total;
  zero_count_ = s.zero_count;
  positive_.clear();
  for (const auto& [bucket, count] : s.positive) positive_[bucket] = count;
  negative_.clear();
  for (const auto& [bucket, count] : s.negative) negative_[bucket] = count;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counter(name, {});
}

Counter& MetricsRegistry::counter(const std::string& name, const MetricLabels& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[Key(name, encode_metric_labels(labels))];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) { return gauge(name, {}); }

Gauge& MetricsRegistry::gauge(const std::string& name, const MetricLabels& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[Key(name, encode_metric_labels(labels))];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histogram(name, {});
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const MetricLabels& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[Key(name, encode_metric_labels(labels))];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

/// Display name of one store key: the metric name plus its label suffix.
std::string display_name(const std::pair<std::string, std::string>& key) {
  return key.second.empty() ? key.first : key.first + key.second;
}

}  // namespace

std::vector<std::string> MetricsRegistry::counter_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [key, metric] : counters_) names.push_back(display_name(key));
  return names;
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [key, metric] : gauges_) names.push_back(display_name(key));
  return names;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [key, metric] : histograms_) names.push_back(display_name(key));
  return names;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, metric] : counters_)
    snap.counters.emplace_back(display_name(key), metric->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, metric] : gauges_)
    snap.gauges.emplace_back(display_name(key), metric->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, metric] : histograms_)
    snap.histograms.emplace_back(display_name(key), metric->state());
  return snap;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [key, metric] : counters_) {
    out << (first ? "\n    " : ",\n    ");
    write_json_escaped(out, display_name(key));
    out << ": " << metric->value();
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [key, metric] : gauges_) {
    out << (first ? "\n    " : ",\n    ");
    write_json_escaped(out, display_name(key));
    out << ": " << metric->value();
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [key, metric] : histograms_) {
    out << (first ? "\n    " : ",\n    ");
    write_json_escaped(out, display_name(key));
    out << ": {\"count\": " << metric->count() << ", \"mean\": " << metric->mean()
        << ", \"min\": " << metric->min() << ", \"max\": " << metric->max()
        << ", \"total\": " << metric->total() << ", \"p50\": " << metric->quantile(0.5)
        << ", \"p90\": " << metric->quantile(0.9)
        << ", \"p99\": " << metric->quantile(0.99) << "}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << "\n}";
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  out << "kind,name,field,value\n";
  for (const auto& [key, metric] : counters_) {
    out << "counter," << display_name(key) << ",value," << metric->value() << "\n";
  }
  for (const auto& [key, metric] : gauges_) {
    out << "gauge," << display_name(key) << ",value," << metric->value() << "\n";
  }
  for (const auto& [key, metric] : histograms_) {
    const std::string name = display_name(key);
    out << "histogram," << name << ",count," << metric->count() << "\n";
    out << "histogram," << name << ",mean," << metric->mean() << "\n";
    out << "histogram," << name << ",min," << metric->min() << "\n";
    out << "histogram," << name << ",max," << metric->max() << "\n";
    out << "histogram," << name << ",total," << metric->total() << "\n";
    out << "histogram," << name << ",p50," << metric->quantile(0.5) << "\n";
    out << "histogram," << name << ",p90," << metric->quantile(0.9) << "\n";
    out << "histogram," << name << ",p99," << metric->quantile(0.99) << "\n";
  }
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  // The store is ordered by (name, label suffix), so every label variant
  // of one name is adjacent: emit the # TYPE line once per name.
  const char* last_type_name = nullptr;
  std::string last_typed;
  const auto type_line = [&](const std::string& name, const char* kind) {
    if (last_type_name == kind && last_typed == name) return;
    out << "# TYPE " << prometheus_name(name) << " " << kind << "\n";
    last_type_name = kind;
    last_typed = name;
  };
  for (const auto& [key, metric] : counters_) {
    type_line(key.first, "counter");
    out << prometheus_name(key.first) << key.second << " " << metric->value() << "\n";
  }
  for (const auto& [key, metric] : gauges_) {
    type_line(key.first, "gauge");
    out << prometheus_name(key.first) << key.second << " " << metric->value() << "\n";
  }
  for (const auto& [key, metric] : histograms_) {
    const std::string p = prometheus_name(key.first);
    type_line(key.first, "summary");
    out << p << suffix_with(key.second, "quantile", "0.5") << " "
        << metric->quantile(0.5) << "\n";
    out << p << suffix_with(key.second, "quantile", "0.9") << " "
        << metric->quantile(0.9) << "\n";
    out << p << suffix_with(key.second, "quantile", "0.99") << " "
        << metric->quantile(0.99) << "\n";
    out << p << "_sum" << key.second << " " << metric->total() << "\n";
    out << p << "_count" << key.second << " " << metric->count() << "\n";
  }
}

void MetricsRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {

/// Set by reset_global_metrics_for_fork() in forked children; wins over
/// the lazily constructed parent registry (whose mutex state did not
/// survive the fork).
std::atomic<MetricsRegistry*> g_metrics_override{nullptr};

}  // namespace

MetricsRegistry& global_metrics() {
  if (MetricsRegistry* fresh = g_metrics_override.load(std::memory_order_acquire))
    return *fresh;
  static MetricsRegistry registry;
  return registry;
}

void reset_global_metrics_for_fork() {
  // Leak on purpose: the previous object's mutex may be unusable and other
  // code may still hold references into it.
  g_metrics_override.store(new MetricsRegistry, std::memory_order_release);
}

}  // namespace edgeslice
