#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace edgeslice {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace edgeslice
