#include "common/thread_pool.h"

#include <algorithm>

namespace edgeslice {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;

  std::unique_lock<std::mutex> lock(mutex_);
  // Inline fallback: no workers, a single task, or a nested call from
  // inside a running batch (body_ already set).
  if (workers_.empty() || n == 1 || body_ != nullptr) {
    lock.unlock();
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  body_ = &body;
  next_ = 0;
  total_ = n;
  in_flight_ = 0;
  error_ = nullptr;
  work_cv_.notify_all();

  // The caller participates in its own batch.
  while (next_ < total_) {
    const std::size_t i = next_++;
    ++in_flight_;
    lock.unlock();
    std::exception_ptr thrown;
    try {
      body(i);
    } catch (...) {
      thrown = std::current_exception();
    }
    lock.lock();
    if (thrown && !error_) error_ = thrown;
    --in_flight_;
  }
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
  body_ = nullptr;
  if (error_) {
    std::exception_ptr rethrown = error_;
    error_ = nullptr;
    std::rethrow_exception(rethrown);
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock,
                  [this] { return stop_ || (body_ != nullptr && next_ < total_); });
    if (stop_) return;
    while (body_ != nullptr && next_ < total_) {
      const std::size_t i = next_++;
      ++in_flight_;
      const auto* body = body_;
      lock.unlock();
      std::exception_ptr thrown;
      try {
        (*body)(i);
      } catch (...) {
        thrown = std::current_exception();
      }
      lock.lock();
      if (thrown && !error_) error_ = thrown;
      --in_flight_;
      if (in_flight_ == 0 && next_ >= total_) done_cv_.notify_all();
    }
  }
}

}  // namespace edgeslice
