#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace edgeslice {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double sum(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(xs.begin(), xs.end());
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double ecdf_at(const std::vector<double>& xs, double threshold) {
  if (xs.empty()) return 0.0;
  const auto n = static_cast<double>(
      std::count_if(xs.begin(), xs.end(), [&](double x) { return x <= threshold; }));
  return n / static_cast<double>(xs.size());
}

std::vector<std::pair<double, double>> ecdf_points(std::vector<double> xs,
                                                   std::size_t points) {
  std::vector<std::pair<double, double>> out;
  if (xs.empty() || points == 0) return out;
  std::sort(xs.begin(), xs.end());
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i + 1) / static_cast<double>(points);
    const auto idx = std::min(
        xs.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(xs.size())) == 0
            ? 0
            : static_cast<std::size_t>(q * static_cast<double>(xs.size())) - 1);
    out.emplace_back(xs[idx], q);
  }
  return out;
}

void RunningStat::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Ema::add(double x) {
  if (!primed_) {
    value_ = x;
    primed_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
  return value_;
}

}  // namespace edgeslice
