// Seeded random number generation for reproducible experiments.
//
// Every stochastic component in the repository draws from an explicitly
// passed Rng so that a single seed reproduces an entire experiment
// bit-for-bit (DESIGN.md decision 4).
#pragma once

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace edgeslice {

/// A seeded random stream wrapping std::mt19937_64.
///
/// Rng is cheap to copy but is normally passed by reference so that
/// consumption of randomness advances a single stream. Use spawn() to
/// derive statistically independent child streams (e.g. one per
/// orchestration agent) from a parent.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Poisson-distributed count with the given mean.
  int poisson(double mean) {
    if (mean <= 0.0) return 0;
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Exponential inter-arrival time with the given rate (events per unit time).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::index: n must be > 0");
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Vector of iid uniforms.
  std::vector<double> uniforms(std::size_t n, double lo = 0.0, double hi = 1.0) {
    std::vector<double> v(n);
    for (auto& x : v) x = uniform(lo, hi);
    return v;
  }

  /// Vector of iid Gaussians.
  std::vector<double> normals(std::size_t n, double mean = 0.0, double stddev = 1.0) {
    std::vector<double> v(n);
    for (auto& x : v) x = normal(mean, stddev);
    return v;
  }

  /// Derive an independent child stream. Children with distinct tags (or
  /// consecutive calls) get distinct seeds derived by hashing.
  Rng spawn();

  /// Derive a deterministic child stream from a tag, independent of how
  /// much randomness the parent has consumed.
  Rng spawn(std::uint64_t tag) const;

  /// Capture the complete stream state — construction seed, spawn
  /// counter, and the mt19937_64 engine words — as a portable text blob
  /// (the engine's standard stream representation). deserialize() of the
  /// blob yields a stream that continues bit-identically to this one;
  /// the checkpoint subsystem (FORMATS.md "RNG stream blob") embeds it.
  std::string serialize() const;
  /// Inverse of serialize(). Throws std::runtime_error on a malformed blob.
  static Rng deserialize(const std::string& blob);

  std::uint64_t seed() const { return seed_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_ = 0;
  std::uint64_t spawn_count_ = 0;
};

}  // namespace edgeslice
