#include "common/rng.h"

namespace edgeslice {
namespace {

// SplitMix64 finalizer: decorrelates sequential seeds.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng Rng::spawn() {
  ++spawn_count_;
  return Rng(mix(seed_ ^ mix(spawn_count_)));
}

Rng Rng::spawn(std::uint64_t tag) const {
  return Rng(mix(seed_ ^ mix(tag + 0x51aceu)));
}

}  // namespace edgeslice
