#include "common/rng.h"

#include <sstream>

namespace edgeslice {
namespace {

// SplitMix64 finalizer: decorrelates sequential seeds.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng Rng::spawn() {
  ++spawn_count_;
  return Rng(mix(seed_ ^ mix(spawn_count_)));
}

Rng Rng::spawn(std::uint64_t tag) const {
  return Rng(mix(seed_ ^ mix(tag + 0x51aceu)));
}

std::string Rng::serialize() const {
  std::ostringstream out;
  out << seed_ << ' ' << spawn_count_ << ' ' << engine_;
  return out.str();
}

Rng Rng::deserialize(const std::string& blob) {
  std::istringstream in(blob);
  std::uint64_t seed = 0;
  std::uint64_t spawn_count = 0;
  in >> seed >> spawn_count;
  if (!in) throw std::runtime_error("Rng::deserialize: malformed state blob");
  Rng rng(seed);
  rng.spawn_count_ = spawn_count;
  in >> rng.engine_;
  if (!in) throw std::runtime_error("Rng::deserialize: malformed engine state");
  return rng;
}

}  // namespace edgeslice
