#include "common/arena.h"

#include <algorithm>
#include <cstdint>

namespace edgeslice {

namespace {

std::size_t align_up(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

MonotonicArena::MonotonicArena(std::size_t initial_capacity) {
  grow(std::max<std::size_t>(initial_capacity, 64));
}

MonotonicArena::Slab& MonotonicArena::grow(std::size_t min_bytes) {
  // Geometric growth over the total capacity, so N allocations of any
  // size pattern cost O(log N) slabs before reset() coalesces them.
  const std::size_t target = std::max(min_bytes, stats_.capacity_bytes);
  slabs_.emplace_back();
  slabs_.back().bytes.resize(target);
  current_ = slabs_.size() - 1;
  ++stats_.upstream_allocations;
  stats_.capacity_bytes += target;
  return slabs_.back();
}

void* MonotonicArena::allocate(std::size_t bytes, std::size_t align) {
  // Align the actual address, not the slab offset — the slab base is only
  // guaranteed malloc alignment, so over-aligned requests (e.g. 64-byte
  // cache lines) need the padding computed from the pointer value.
  Slab* slab = &slabs_[current_];
  auto base = reinterpret_cast<std::uintptr_t>(slab->bytes.data());
  std::size_t offset = align_up(base + slab->used, align) - base;
  // Zero-byte requests still get a unique in-slab pointer (bump by align).
  const std::size_t need = bytes == 0 ? align : bytes;
  if (offset + need > slab->bytes.size()) {
    slab = &grow(need + align);
    base = reinterpret_cast<std::uintptr_t>(slab->bytes.data());
    offset = align_up(base + slab->used, align) - base;
  }
  void* out = slab->bytes.data() + offset;
  const std::size_t new_used = offset + need;
  stats_.used_bytes += new_used - slab->used;
  slab->used = new_used;
  stats_.high_water_bytes = std::max(stats_.high_water_bytes, stats_.used_bytes);
  return out;
}

void MonotonicArena::reset() {
  ++stats_.resets;
  if (slabs_.size() > 1) {
    // The last cycle spilled: replace the slab chain with one slab large
    // enough for the whole high-water footprint (plus alignment slack per
    // former slab boundary), so subsequent cycles stay upstream-free.
    const std::size_t want =
        std::max(stats_.high_water_bytes + slabs_.size() * alignof(std::max_align_t),
                 stats_.capacity_bytes);
    slabs_.clear();
    stats_.capacity_bytes = 0;
    grow(want);
  }
  for (Slab& slab : slabs_) slab.used = 0;
  current_ = 0;
  stats_.used_bytes = 0;
}

}  // namespace edgeslice
