// Endian-explicit binary serialization primitives for on-disk state.
//
// Every multi-byte value is written little-endian regardless of host
// byte order, so a checkpoint taken on one machine restores on any
// other (FORMATS.md "Conventions"). Doubles are serialized as their
// IEEE-754 bit pattern — round-trips are exact, which is what the
// bit-identical-resume contract of the checkpoint subsystem rests on.
//
// Readers validate as they go: a truncated stream or an absurd length
// prefix throws std::runtime_error before any allocation larger than
// the declared budget, never UB (the corrupted-checkpoint tests drive
// these paths under ASan/UBSan).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace edgeslice {

// --- Writers ---------------------------------------------------------------

void write_u8(std::ostream& out, std::uint8_t v);
void write_u32(std::ostream& out, std::uint32_t v);
void write_u64(std::ostream& out, std::uint64_t v);
/// IEEE-754 bit pattern, little-endian (exact round-trip).
void write_f64(std::ostream& out, double v);
/// u64 length prefix + raw bytes.
void write_string(std::ostream& out, const std::string& s);
/// u64 element count + packed f64s.
void write_f64_vector(std::ostream& out, const std::vector<double>& v);

// --- Readers ---------------------------------------------------------------
//
// All readers throw std::runtime_error("<context>: truncated ...") on a
// short stream. `context` names the caller in the message so a corrupt
// file reports *where* it broke.

std::uint8_t read_u8(std::istream& in, const char* context);
std::uint32_t read_u32(std::istream& in, const char* context);
std::uint64_t read_u64(std::istream& in, const char* context);
double read_f64(std::istream& in, const char* context);
/// Rejects length prefixes above `max_bytes` before allocating.
std::string read_string(std::istream& in, const char* context,
                        std::uint64_t max_bytes = 1ull << 30);
/// Rejects element counts above `max_elements` before allocating.
std::vector<double> read_f64_vector(std::istream& in, const char* context,
                                    std::uint64_t max_elements = 1ull << 27);

// --- Integrity -------------------------------------------------------------

/// CRC-32 (IEEE 802.3 polynomial, reflected), as used by zip/png. The
/// checkpoint container stores one per section payload and one over the
/// file header.
std::uint32_t crc32(const void* data, std::size_t size);
std::uint32_t crc32(const std::string& bytes);

// --- Atomic file replacement ----------------------------------------------

/// Write `bytes` to "<path>.tmp" then rename over `path`, so a crash (or
/// a reader racing the writer) never observes a truncated file — the same
/// discipline as obs::write_observability_snapshot. Returns false when
/// the file cannot be written (the tmp file is removed best-effort).
bool atomic_write_file(const std::string& path, const std::string& bytes);

}  // namespace edgeslice
