#include "common/cli.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace edgeslice {

CliArgs::CliArgs(int argc, const char* const* argv, const std::vector<std::string>& known) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare flag
      }
    }
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      throw std::invalid_argument("unknown flag: --" + name);
    }
    values_[name] = value;
  }
}

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stod(it->second);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::int64_t CliArgs::get_int_env(const std::string& name, const std::string& env_var,
                                  std::int64_t fallback) const {
  if (has(name)) return get_int(name, fallback);
  if (const char* env = std::getenv(env_var.c_str())) return std::stoll(env);
  return fallback;
}

}  // namespace edgeslice
