#include "common/cli.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace edgeslice {

namespace {

/// All CLI/env errors exit the same way: one line on stderr naming the
/// offending flag or environment variable and its value, then a clean
/// non-zero exit — never an uncaught exception (a bench aborting with a
/// core dump over "--seed=abc" is a bug this module had).
[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(2);
}

/// Strict base-10 integer: the whole string must parse, so "12abc" is an
/// error instead of silently becoming 12, and out-of-range values are
/// reported rather than thrown. `source` names the flag/env var.
std::int64_t parse_int(const std::string& source, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    fail(source + ": expected an integer, got \"" + text + "\"");
  }
  if (errno == ERANGE) {
    fail(source + ": integer out of range: \"" + text + "\"");
  }
  return static_cast<std::int64_t>(value);
}

/// Strict double with the same whole-string contract.
double parse_double(const std::string& source, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    fail(source + ": expected a number, got \"" + text + "\"");
  }
  if (errno == ERANGE) {
    fail(source + ": number out of range: \"" + text + "\"");
  }
  return value;
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv, const std::vector<std::string>& known) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      fail("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare flag
      }
    }
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      fail("unknown flag: --" + name);
    }
    values_[name] = value;
  }
}

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : parse_int("flag --" + name, it->second);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : parse_double("flag --" + name, it->second);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::int64_t CliArgs::get_int_env(const std::string& name, const std::string& env_var,
                                  std::int64_t fallback) const {
  if (has(name)) return get_int(name, fallback);
  if (const char* env = std::getenv(env_var.c_str())) {
    return parse_int("environment variable " + env_var, env);
  }
  return fallback;
}

}  // namespace edgeslice
