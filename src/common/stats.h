// Descriptive statistics used by the benchmark harness and tests.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace edgeslice {

/// Arithmetic mean; 0 for an empty range.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 when fewer than 2 samples.
double stddev(const std::vector<double>& xs);

/// Sum of all elements.
double sum(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0, 100]. Throws on empty input.
double percentile(std::vector<double> xs, double p);

/// Empirical CDF evaluated at `threshold`: fraction of samples <= threshold.
double ecdf_at(const std::vector<double>& xs, double threshold);

/// Evenly spaced (value, cumulative probability) points of the empirical CDF,
/// suitable for printing a CDF series. Returns `points` pairs.
std::vector<std::pair<double, double>> ecdf_points(std::vector<double> xs,
                                                   std::size_t points = 20);

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Welford's second central moment sum (exposed for checkpointing).
  double m2() const { return m2_; }

  /// Restore a previously captured accumulator state verbatim, so a
  /// training run resumed from a checkpoint continues the same window
  /// statistics bit-identically. The caller supplies the raw fields as
  /// read back from count()/mean()/m2()/min()/max().
  void restore(std::size_t n, double mean_value, double m2_value, double min_value,
               double max_value) {
    n_ = n;
    mean_ = mean_value;
    m2_ = m2_value;
    min_ = min_value;
    max_ = max_value;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponential moving average with smoothing factor alpha in (0, 1].
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {}
  double add(double x);
  double value() const { return value_; }
  bool empty() const { return !primed_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

}  // namespace edgeslice
