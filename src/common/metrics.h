// Thread-safe metrics registry: counters, gauges, and bounded-memory
// streaming histograms.
//
// The observability substrate for the control plane (DESIGN.md Sec. 8).
// Every component records into the process-global registry under a
// hierarchical dotted name ("bus.rcm_dropped", "coordinator.solve_s");
// the bench harness exports the registry as JSON/CSV next to its
// figures. Recording is observation-only — nothing in the orchestration
// path reads a metric back — so results are bit-identical whether
// metrics are enabled or not.
//
// Memory is bounded by construction: counters and gauges are single
// words, and histograms keep a fixed set of logarithmic buckets plus a
// RunningStat (no sample reservoir), so arbitrarily long runs never grow
// the registry beyond the number of distinct metric names.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"

namespace edgeslice {

/// Process-global switch. When disabled, every record operation is a
/// no-op (a single relaxed atomic load) and spans do not read the clock.
/// Exporters still work on whatever was recorded while enabled.
void set_metrics_enabled(bool enabled);
bool metrics_enabled();

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1);
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (utilization, loss, occupancy).
class Gauge {
 public:
  void set(double v);
  void add(double delta);
  double value() const;
  bool written() const { return written_.load(std::memory_order_acquire); }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<bool> written_{false};
};

/// Streaming histogram over logarithmic buckets.
///
/// Observations land in geometric buckets spanning [kMinAbs, kMinAbs *
/// kGrowth^kBuckets) by absolute value, with a dedicated zero bucket and
/// a mirrored negative range, alongside a RunningStat for exact count /
/// mean / min / max. Quantiles are estimated from the bucket boundaries
/// (geometric midpoint), clamped to the observed range — a deliberate
/// accuracy-for-memory trade: resolution is ~13% of the value, memory is
/// O(kBuckets) forever.
class Histogram {
 public:
  static constexpr double kMinAbs = 1e-9;
  static constexpr double kGrowth = 1.3;
  static constexpr std::size_t kBuckets = 220;  // reaches ~2.6e16 * kMinAbs

  void observe(double x);

  std::size_t count() const;
  double mean() const;
  double min() const;
  double max() const;
  double total() const;
  /// Estimated q-quantile, q in [0, 1]. Returns 0 when empty.
  double quantile(double q) const;

 private:
  mutable std::mutex mutex_;
  RunningStat stat_;
  double total_ = 0.0;
  std::uint64_t zero_count_ = 0;
  // Sparse bucket maps keep an all-but-unused histogram tiny; the map can
  // never exceed kBuckets entries per sign.
  std::map<std::size_t, std::uint64_t> positive_;
  std::map<std::size_t, std::uint64_t> negative_;
};

/// Named metric store. Lookup creates on first use; returned references
/// stay valid for the registry's lifetime (metrics are never removed,
/// clear() only zeroes them).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, mean, min, max, total, p50, p90, p99}}}.
  void write_json(std::ostream& out) const;
  /// Flat CSV: kind,name,field,value (one row per exported scalar).
  void write_csv(std::ostream& out) const;
  /// Prometheus text exposition format (the /metrics HTTP payload).
  /// Dotted names are sanitized to legal Prometheus names ('.' and every
  /// other illegal character become '_'); histograms export as summaries:
  /// <name>{quantile="0.5|0.9|0.99"}, <name>_sum, <name>_count.
  void write_prometheus(std::ostream& out) const;

  /// Drop every metric (names included). Intended for tests.
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-global registry the control plane records into.
MetricsRegistry& global_metrics();

}  // namespace edgeslice
