// Thread-safe metrics registry: counters, gauges, and bounded-memory
// streaming histograms.
//
// The observability substrate for the control plane (DESIGN.md Sec. 8).
// Every component records into the process-global registry under a
// hierarchical dotted name ("bus.rcm_dropped", "coordinator.solve_s");
// the bench harness exports the registry as JSON/CSV next to its
// figures. Recording is observation-only — nothing in the orchestration
// path reads a metric back — so results are bit-identical whether
// metrics are enabled or not.
//
// Metrics may additionally carry a label set (Prometheus-style
// key="value" dimensions). The fleet telemetry plane uses one label,
// worker="<slot>", to keep every worker process's series distinguishable
// after the supervisor merges them into this registry (DESIGN.md
// "Fleet telemetry"); unlabeled metrics export exactly as before, so the
// label dimension is invisible until someone records with labels.
//
// Memory is bounded by construction: counters and gauges are single
// words, and histograms keep a fixed set of logarithmic buckets plus a
// RunningStat (no sample reservoir), so arbitrarily long runs never grow
// the registry beyond the number of distinct (name, labels) pairs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace edgeslice {

/// Process-global switch. When disabled, every record operation is a
/// no-op (a single relaxed atomic load) and spans do not read the clock.
/// Exporters still work on whatever was recorded while enabled.
void set_metrics_enabled(bool enabled);
bool metrics_enabled();

/// Label dimensions of one metric, e.g. {{"worker", "3"}}. Encoded
/// canonically (sorted by key) so lookup order never mints duplicates.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Canonical display/storage suffix of a label set: "" when empty,
/// otherwise "{k=\"v\",...}" with keys sorted and values escaped
/// (Prometheus label syntax, also used as the registry key suffix).
std::string encode_metric_labels(const MetricLabels& labels);

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1);
  /// Overwrite the count. For aggregation (a merged worker series is
  /// republished wholesale each snapshot), not for instrumentation.
  void set(std::uint64_t v);
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (utilization, loss, occupancy).
class Gauge {
 public:
  void set(double v);
  void add(double delta);
  double value() const;
  bool written() const { return written_.load(std::memory_order_acquire); }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<bool> written_{false};
};

/// Complete portable state of one Histogram: the RunningStat fields plus
/// the sparse bucket counts. Two states merge exactly — bucket-wise count
/// addition plus Chan's parallel-variance update — because every
/// histogram shares the same kMinAbs/kGrowth/kBuckets geometry. This is
/// what a worker ships in a TelemetrySnapshot frame and what the
/// supervisor-side aggregator folds per worker.
struct HistogramState {
  std::uint64_t count = 0;  // RunningStat n
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;
  double total = 0.0;
  std::uint64_t zero_count = 0;
  // Sparse (bucket index, count) pairs, ascending by bucket.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> positive;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> negative;
};

/// Merge `b` into `a`: bucket counts add element-wise, the moment
/// accumulators combine via Chan's parallel algorithm, min/max take the
/// envelope. Quantile estimates of the merged state match a histogram
/// fed the union of both sample streams exactly (same bucket counts,
/// same observed range).
void merge_histogram_state(HistogramState& a, const HistogramState& b);

/// Streaming histogram over logarithmic buckets.
///
/// Observations land in geometric buckets spanning [kMinAbs, kMinAbs *
/// kGrowth^kBuckets) by absolute value, with a dedicated zero bucket and
/// a mirrored negative range, alongside a RunningStat for exact count /
/// mean / min / max. Quantiles are estimated from the bucket boundaries
/// (geometric midpoint), clamped to the observed range — a deliberate
/// accuracy-for-memory trade: resolution is ~13% of the value, memory is
/// O(kBuckets) forever.
class Histogram {
 public:
  static constexpr double kMinAbs = 1e-9;
  static constexpr double kGrowth = 1.3;
  static constexpr std::size_t kBuckets = 220;  // reaches ~2.6e16 * kMinAbs

  void observe(double x);

  std::size_t count() const;
  double mean() const;
  double min() const;
  double max() const;
  double total() const;
  /// Estimated q-quantile, q in [0, 1]. Returns 0 when empty.
  double quantile(double q) const;

  /// Portable copy of the full state (for telemetry shipping / merging).
  HistogramState state() const;
  /// Replace the contents wholesale with `s` (the aggregation path;
  /// honours the global metrics switch like every other mutation).
  void load_state(const HistogramState& s);

 private:
  mutable std::mutex mutex_;
  RunningStat stat_;
  double total_ = 0.0;
  std::uint64_t zero_count_ = 0;
  // Sparse bucket maps keep an all-but-unused histogram tiny; the map can
  // never exceed kBuckets entries per sign.
  std::map<std::size_t, std::uint64_t> positive_;
  std::map<std::size_t, std::uint64_t> negative_;
};

/// Everything one registry holds, as plain values keyed by display name
/// (name + canonical label suffix). The worker-side telemetry shipper
/// serializes this; the supervisor-side aggregator consumes it.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramState>> histograms;
};

/// Named metric store. Lookup creates on first use; returned references
/// stay valid for the registry's lifetime (metrics are never removed,
/// clear() only drops them wholesale). The labeled overloads address the
/// (name, labels) pair; the unlabeled ones are the empty-label case.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Counter& counter(const std::string& name, const MetricLabels& labels);
  Gauge& gauge(const std::string& name);
  Gauge& gauge(const std::string& name, const MetricLabels& labels);
  Histogram& histogram(const std::string& name);
  Histogram& histogram(const std::string& name, const MetricLabels& labels);

  /// Display names (name + label suffix), sorted.
  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// Plain-value copy of everything (telemetry shipping).
  MetricsSnapshot snapshot() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, mean, min, max, total, p50, p90, p99}}}.
  void write_json(std::ostream& out) const;
  /// Flat CSV: kind,name,field,value (one row per exported scalar).
  void write_csv(std::ostream& out) const;
  /// Prometheus text exposition format (the /metrics HTTP payload).
  /// Dotted names are sanitized to legal Prometheus names ('.' and every
  /// other illegal character become '_'); label variants of one name
  /// share a single # TYPE line; histograms export as summaries:
  /// <name>{quantile="0.5|0.9|0.99"}, <name>_sum, <name>_count.
  void write_prometheus(std::ostream& out) const;

  /// Drop every metric (names included). Intended for tests.
  void clear();

 private:
  // Keyed (name, label suffix) so every label variant of one base name is
  // adjacent — write_prometheus groups them under one # TYPE line.
  using Key = std::pair<std::string, std::string>;
  template <typename M>
  using Store = std::map<Key, std::unique_ptr<M>>;

  mutable std::mutex mutex_;
  Store<Counter> counters_;
  Store<Gauge> gauges_;
  Store<Histogram> histograms_;
};

/// The process-global registry the control plane records into.
MetricsRegistry& global_metrics();

/// Replace the process-global registry with a fresh one (the old object
/// is leaked deliberately — its mutex may be held by a thread that did
/// not survive fork()). Call from a freshly forked, single-threaded
/// child before recording anything; never from a threaded process.
void reset_global_metrics_for_fork();

}  // namespace edgeslice
