#include "common/json.h"

#include <cstdio>
#include <ostream>

namespace edgeslice {

void write_json_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace edgeslice
