// Minimal leveled logging to stderr.
//
// The library itself logs nothing by default (level Warn); benches and
// examples raise the level for progress output.
#pragma once

#include <sstream>
#include <string>

namespace edgeslice {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

/// Stream-style log statement: LOG(Info) << "trained " << n << " steps";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::log_emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

namespace detail {

/// Swallows a LogLine in the enabled branch of ES_LOG. operator& binds
/// looser than operator<<, so the whole stream chain is evaluated first;
/// the ?: keeps ES_LOG a single expression (no dangling-else hazard).
struct LogVoidify {
  // const ref: binds both a bare temporary (no << at all) and the
  // LogLine& returned by a stream chain.
  void operator&(const LogLine&) {}
};

}  // namespace detail

}  // namespace edgeslice

/// Stream-style leveled log. Suppressed statements are short-circuited
/// before the LogLine exists: none of the streamed argument expressions
/// are evaluated and no ostringstream is constructed, so Debug logs in
/// hot loops cost one atomic load when the level is off.
#define ES_LOG(level)                                                      \
  (::edgeslice::LogLevel::level < ::edgeslice::log_level())                \
      ? (void)0                                                            \
      : ::edgeslice::detail::LogVoidify() &                                \
            ::edgeslice::LogLine(::edgeslice::LogLevel::level)
