// Minimal leveled logging to stderr.
//
// The library itself logs nothing by default (level Warn); benches and
// examples raise the level for progress output.
#pragma once

#include <sstream>
#include <string>

namespace edgeslice {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: LOG(Info) << "trained " << n << " steps";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::log_emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace edgeslice

#define ES_LOG(level) ::edgeslice::LogLine(::edgeslice::LogLevel::level)
