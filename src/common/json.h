// Minimal JSON string escaping shared by every exporter (metrics, span
// tracer, flight recorder). RFC 8259: quote, backslash, and every control
// character below 0x20 must be escaped — a metric name containing a tab
// or newline must never produce an unparseable document.
#pragma once

#include <iosfwd>
#include <string_view>

namespace edgeslice {

/// Write `s` as a double-quoted JSON string, escaping `"`, `\`, and all
/// control characters (short forms \n \t \r \b \f, \u00XX otherwise).
void write_json_escaped(std::ostream& out, std::string_view s);

}  // namespace edgeslice
