#include "common/trace_span.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <ostream>

#include "common/json.h"
#include "common/metrics.h"

namespace edgeslice {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Active span path of the calling thread ("" at top level). Spans push
/// their path here so children nest without a handle to the parent.
thread_local std::string t_current_path;

void merge(SpanStats& stats, double seconds) {
  if (stats.count == 0) {
    stats.min_s = stats.max_s = seconds;
  } else {
    stats.min_s = std::min(stats.min_s, seconds);
    stats.max_s = std::max(stats.max_s, seconds);
  }
  ++stats.count;
  stats.total_s += seconds;
}

}  // namespace

Tracer::Span::Span(Tracer* tracer, const std::string& name)
    : tracer_(metrics_enabled() ? tracer : nullptr) {
  if (tracer_ == nullptr) return;
  path_ = t_current_path.empty() ? name : t_current_path + "/" + name;
  t_current_path = path_;
  start_s_ = now_seconds();
}

double Tracer::Span::stop() {
  if (tracer_ == nullptr) return 0.0;
  const double elapsed = now_seconds() - start_s_;
  // Restore the parent path (everything before the last '/').
  const auto cut = path_.rfind('/');
  t_current_path = cut == std::string::npos ? std::string() : path_.substr(0, cut);
  tracer_->record(path_, elapsed);
  tracer_ = nullptr;
  return elapsed;
}

Tracer::Span::~Span() { stop(); }

void Tracer::set_period(std::size_t period) {
  const std::lock_guard<std::mutex> lock(mutex_);
  period_ = period;
}

std::size_t Tracer::period() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return period_;
}

void Tracer::record(const std::string& path, double seconds) {
  if (!metrics_enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& series = series_[path];
  merge(series.overall, seconds);
  merge(series.per_period[period_], seconds);
  while (series.per_period.size() > retention_) {
    series.per_period.erase(series.per_period.begin());
  }
}

void Tracer::merge_period_stats(const SpanPeriodStats& delta) {
  if (!metrics_enabled() || delta.stats.count == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& series = series_[delta.path];
  const auto fold = [&delta](SpanStats& into) {
    if (into.count == 0) {
      into.min_s = delta.stats.min_s;
      into.max_s = delta.stats.max_s;
    } else {
      into.min_s = std::min(into.min_s, delta.stats.min_s);
      into.max_s = std::max(into.max_s, delta.stats.max_s);
    }
    into.count += delta.stats.count;
    into.total_s += delta.stats.total_s;
  };
  fold(series.overall);
  fold(series.per_period[static_cast<std::size_t>(delta.period)]);
  while (series.per_period.size() > retention_) {
    series.per_period.erase(series.per_period.begin());
  }
}

std::vector<SpanPeriodStats> Tracer::export_period_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanPeriodStats> out;
  for (const auto& [name, series] : series_) {
    for (const auto& [period, stats] : series.per_period) {
      SpanPeriodStats entry;
      entry.path = name;
      entry.period = period;
      entry.stats = stats;
      out.push_back(std::move(entry));
    }
  }
  return out;
}

std::vector<std::string> Tracer::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, series] : series_) out.push_back(name);
  return out;
}

SpanStats Tracer::overall(const std::string& path) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(path);
  return it == series_.end() ? SpanStats{} : it->second.overall;
}

SpanStats Tracer::for_period(const std::string& path, std::size_t period) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(path);
  if (it == series_.end()) return {};
  const auto pit = it->second.per_period.find(period);
  return pit == it->second.per_period.end() ? SpanStats{} : pit->second;
}

std::vector<std::pair<std::size_t, SpanStats>> Tracer::periods(
    const std::string& path) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::size_t, SpanStats>> out;
  const auto it = series_.find(path);
  if (it == series_.end()) return out;
  out.reserve(it->second.per_period.size());
  for (const auto& [period, stats] : it->second.per_period) {
    out.emplace_back(period, stats);
  }
  return out;
}

void Tracer::set_period_retention(std::size_t periods) {
  const std::lock_guard<std::mutex> lock(mutex_);
  retention_ = std::max<std::size_t>(1, periods);
  for (auto& [name, series] : series_) {
    while (series.per_period.size() > retention_) {
      series.per_period.erase(series.per_period.begin());
    }
  }
}

namespace {

void write_stats_json(std::ostream& out, const SpanStats& stats) {
  out << "{\"count\": " << stats.count << ", \"total_s\": " << stats.total_s
      << ", \"mean_s\": " << stats.mean_s() << ", \"min_s\": " << stats.min_s
      << ", \"max_s\": " << stats.max_s;
}

}  // namespace

void Tracer::write_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  out << "{";
  bool first = true;
  for (const auto& [name, series] : series_) {
    out << (first ? "\n  " : ",\n  ");
    write_json_escaped(out, name);
    out << ": ";
    write_stats_json(out, series.overall);
    out << ", \"periods\": {";
    bool first_period = true;
    for (const auto& [period, stats] : series.per_period) {
      out << (first_period ? "" : ", ") << '"' << period << "\": ";
      write_stats_json(out, stats);
      out << "}";
      first_period = false;
    }
    out << "}}";
    first = false;
  }
  out << (first ? "}" : "\n}");
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  series_.clear();
  period_ = 0;
}

namespace {

/// Set by reset_global_tracer_for_fork() in forked children; wins over
/// the lazily constructed parent tracer.
std::atomic<Tracer*> g_tracer_override{nullptr};

}  // namespace

Tracer& global_tracer() {
  if (Tracer* fresh = g_tracer_override.load(std::memory_order_acquire)) return *fresh;
  static Tracer tracer;
  return tracer;
}

void reset_global_tracer_for_fork() {
  // Leak on purpose: the previous object's mutex may be unusable.
  g_tracer_override.store(new Tracer, std::memory_order_release);
}

}  // namespace edgeslice
