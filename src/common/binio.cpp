#include "common/binio.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace edgeslice {

namespace {

void write_le(std::ostream& out, std::uint64_t v, std::size_t bytes) {
  char buf[8];
  for (std::size_t i = 0; i < bytes; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xffu);
  }
  out.write(buf, static_cast<std::streamsize>(bytes));
}

std::uint64_t read_le(std::istream& in, std::size_t bytes, const char* context) {
  char buf[8];
  in.read(buf, static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    throw std::runtime_error(std::string(context) + ": truncated stream");
  }
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void write_u8(std::ostream& out, std::uint8_t v) { write_le(out, v, 1); }
void write_u32(std::ostream& out, std::uint32_t v) { write_le(out, v, 4); }
void write_u64(std::ostream& out, std::uint64_t v) { write_le(out, v, 8); }

void write_f64(std::ostream& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  write_le(out, bits, 8);
}

void write_string(std::ostream& out, const std::string& s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void write_f64_vector(std::ostream& out, const std::vector<double>& v) {
  write_u64(out, v.size());
  for (double x : v) write_f64(out, x);
}

std::uint8_t read_u8(std::istream& in, const char* context) {
  return static_cast<std::uint8_t>(read_le(in, 1, context));
}

std::uint32_t read_u32(std::istream& in, const char* context) {
  return static_cast<std::uint32_t>(read_le(in, 4, context));
}

std::uint64_t read_u64(std::istream& in, const char* context) {
  return read_le(in, 8, context);
}

double read_f64(std::istream& in, const char* context) {
  const std::uint64_t bits = read_le(in, 8, context);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string read_string(std::istream& in, const char* context, std::uint64_t max_bytes) {
  const std::uint64_t n = read_u64(in, context);
  if (n > max_bytes) {
    throw std::runtime_error(std::string(context) + ": string length " +
                             std::to_string(n) + " exceeds limit");
  }
  std::string s(static_cast<std::size_t>(n), '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (static_cast<std::uint64_t>(in.gcount()) != n) {
    throw std::runtime_error(std::string(context) + ": truncated string");
  }
  return s;
}

std::vector<double> read_f64_vector(std::istream& in, const char* context,
                                    std::uint64_t max_elements) {
  const std::uint64_t n = read_u64(in, context);
  if (n > max_elements) {
    throw std::runtime_error(std::string(context) + ": vector length " +
                             std::to_string(n) + " exceeds limit");
  }
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = read_f64(in, context);
  return v;
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::uint32_t crc32(const std::string& bytes) { return crc32(bytes.data(), bytes.size()); }

bool atomic_write_file(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace edgeslice
