// Tiny command-line flag parser for bench and example binaries.
//
// Flags are "--name value" or "--name=value". Values may also come from
// environment variables (used for EDGESLICE_TRAIN_STEPS-style overrides).
// Every parse error — unknown flag, positional argument, malformed or
// out-of-range numeric value (flag or env var) — prints one line naming
// the offender and its value to stderr and exits with status 2; numeric
// getters reject trailing garbage ("12abc" is an error, not 12).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace edgeslice {

class CliArgs {
 public:
  /// Parse argv. `known` lists accepted flag names (without the "--").
  CliArgs(int argc, const char* const* argv, const std::vector<std::string>& known);

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Integer from flag if present, else from environment variable, else fallback.
  std::int64_t get_int_env(const std::string& name, const std::string& env_var,
                           std::int64_t fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace edgeslice
