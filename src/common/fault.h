// Deterministic fault injection for chaos-testing the control plane.
//
// A FaultPlan declares what goes wrong and when: scheduled events (RA 3
// crashes at period 12 for 4 periods) and probabilistic rates (every RC-M
// report is dropped with p = 0.1). The FaultInjector answers point queries
// — "is RA j crashed at period p?" — statelessly: each decision draws from
// an RNG stream derived from (plan seed, fault type, period, RA), so a
// chaos run is bit-reproducible from the plan alone, query order and query
// count notwithstanding.
//
// Fault surface (mirrors the failure modes of the paper's prototype):
//   RaCrash          the orchestration agent + substrates of one RA go
//                    down: no actions, no traffic served, no RC-M reports;
//                    the RA rejoins cleanly when the outage ends
//   RcmDrop          one RA's RC-M monitoring report is lost in transit
//   RcmDelay         ... or arrives d periods late
//   RclDrop          the coordinator's RC-L message to one RA is lost; the
//                    agent keeps acting on its last-known coordination
//   CqiBlackout      the RA's radio link collapses (deep fade): zero
//                    radio service capacity while active
//   LinkFailure      the RAN <-> edge-server transport path is down
//   ComputeSlowdown  the edge GPU is degraded by a factor (thermal
//                    throttling, co-tenant interference)
//
// Process-real fault kinds (multi-process control plane, DESIGN.md
// "Process model & supervision"): when the RAs live in worker processes
// behind a WorkerSupervisor, these map onto *physical* failures — a real
// SIGKILL, a half-closed socket, a stalled read that trips the heartbeat
// deadline. Run in a single process they fold into the RaCrash
// bookkeeping (ra_crashed() is true for their whole window), so one plan
// produces bit-identical trajectories with and without workers:
//   WorkerKill       SIGKILL the worker process hosting the RA at the
//                    window start; the RA is down for `duration` periods
//                    and is restored from its last period-boundary state
//                    blob by the supervisor
//   WorkerStall      the worker hangs (stalled read) mid-exchange for
//                    `magnitude` milliseconds; the supervisor's heartbeat
//                    deadline declares it hung, kills and restores it
//   SocketDrop       the supervisor half-closes the worker's socket at
//                    the window start; the worker sees EOF and exits
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace edgeslice {

enum class FaultType {
  RaCrash,
  RcmDrop,
  RcmDelay,
  RclDrop,
  CqiBlackout,
  LinkFailure,
  ComputeSlowdown,
  WorkerKill,
  WorkerStall,
  SocketDrop,
};

/// The physical action a process-real fault demands of the supervisor at
/// the first period of its window (None everywhere else).
enum class ProcessFaultKind {
  None,
  Kill,       // SIGKILL the hosting worker
  Stall,      // command the worker to stall its read loop (magnitude = ms)
  HalfClose,  // shut down the supervisor side of the worker's socket
};

/// A scheduled fault: `type` afflicts RA `ra` for periods
/// [period, period + duration).
struct FaultEvent {
  FaultType type = FaultType::RcmDrop;
  std::size_t period = 0;
  std::size_t ra = 0;
  std::size_t duration = 1;
  /// ComputeSlowdown: service-time multiplier (>= 1). RcmDelay: delivery
  /// delay in periods (>= 1). Ignored by the other types.
  double magnitude = 1.0;
};

/// Per-period, per-RA probabilities of each fault type. A triggered
/// crash/blackout/failure/slowdown lasts `*_periods`; a triggered delay
/// holds the report for `rcm_delay_periods`.
struct FaultRates {
  double rcm_drop = 0.0;
  double rcm_delay = 0.0;
  std::size_t rcm_delay_periods = 1;
  double rcl_drop = 0.0;
  double ra_crash = 0.0;
  std::size_t ra_crash_periods = 1;
  double cqi_blackout = 0.0;
  std::size_t cqi_blackout_periods = 1;
  double link_failure = 0.0;
  std::size_t link_failure_periods = 1;
  double compute_slowdown = 0.0;
  std::size_t compute_slowdown_periods = 1;
  double compute_slowdown_factor = 2.0;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultEvent> events;
  FaultRates rates;

  /// True when the plan can never fire: no scheduled events, zero rates.
  bool empty() const;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Is RA `ra` down during `period` (agent and substrates)?
  bool ra_crashed(std::size_t period, std::size_t ra) const;

  /// Is the RC-M report RA `ra` sends at the end of `period` lost?
  bool drop_rcm(std::size_t period, std::size_t ra) const;

  /// Delivery delay (periods) of the RC-M report sent at `period`; 0 = on time.
  std::size_t rcm_delay(std::size_t period, std::size_t ra) const;

  /// Is the RC-L message to RA `ra` after `period`'s update lost?
  bool drop_rcl(std::size_t period, std::size_t ra) const;

  bool cqi_blackout(std::size_t period, std::size_t ra) const;
  bool link_failure(std::size_t period, std::size_t ra) const;

  /// Service-time multiplier for the RA's compute substrate (1 = healthy).
  double compute_slowdown(std::size_t period, std::size_t ra) const;

  /// The physical fault the supervisor must apply to RA `ra`'s worker at
  /// `period`, or None. Only the FIRST period of a scheduled
  /// WorkerKill/WorkerStall/SocketDrop window answers non-None (the
  /// physical action happens once; the remaining window periods are plain
  /// ra_crashed() bookkeeping while the supervisor restores the worker).
  /// Process faults are scheduled-events only — no probabilistic rates —
  /// so the physical action schedule is readable from the plan.
  ProcessFaultKind process_fault(std::size_t period, std::size_t ra) const;

  /// WorkerStall only: how long the worker is commanded to stall, in
  /// milliseconds (the event's magnitude; 0 for other kinds).
  std::size_t process_fault_stall_ms(std::size_t period, std::size_t ra) const;

  bool any_faults() const { return !plan_.empty(); }
  const FaultPlan& plan() const { return plan_; }

 private:
  /// Scheduled event of `type` covering (period, ra); returns the most
  /// recent match or nullptr.
  const FaultEvent* scheduled(FaultType type, std::size_t period, std::size_t ra) const;

  /// Deterministic Bernoulli for (type, period, ra): same plan, same answer.
  bool roll(FaultType type, std::size_t period, std::size_t ra, double p) const;

  /// Did a rate-triggered condition of `type` fire at some period p0 with
  /// p0 <= period < p0 + duration_periods?
  bool rate_window_active(FaultType type, std::size_t period, std::size_t ra, double p,
                          std::size_t duration_periods) const;

  FaultPlan plan_;
  Rng base_;
};

}  // namespace edgeslice
