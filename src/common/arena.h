// Monotonic scratch arena for per-period hot-path allocations.
//
// The city-scale period loop (hundreds of RAs x thousands of slices, see
// bench/city_scale.cpp) carves all of its transient buffers — crash masks,
// per-RA timing scratch, watchdog slice sums — out of one slab instead of
// hitting the global allocator per period. The arena is a bump pointer
// over geometrically grown slabs: allocate() never frees, reset() rewinds
// to empty while keeping the slabs, and after warm-up a steady-state
// period performs zero upstream (malloc) allocations — a property the
// city smoke test asserts through the stats() counters.
//
// Not thread-safe: one arena belongs to one control-plane loop. Only
// trivially-destructible types may be placed in it (nothing is destroyed
// on reset).
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace edgeslice {

class MonotonicArena {
 public:
  /// Observable allocator behaviour, for zero-steady-state-allocation
  /// assertions: `upstream_allocations` counts slab mallocs over the
  /// arena's lifetime and must stay flat once the loop is warm.
  struct Stats {
    std::size_t upstream_allocations = 0;  // slabs requested from malloc
    std::size_t capacity_bytes = 0;        // total slab capacity held
    std::size_t used_bytes = 0;            // bytes handed out since reset()
    std::size_t high_water_bytes = 0;      // max used_bytes over any cycle
    std::size_t resets = 0;                // reset() calls
  };

  explicit MonotonicArena(std::size_t initial_capacity = 4096);
  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (a power of two). Grows a
  /// new slab (one upstream allocation) when the current slabs are
  /// exhausted; never throws for bytes == 0 (returns a unique non-null
  /// pointer into the current slab).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// Typed array of `count` value-initialized elements. T must be
  /// trivially destructible — reset() runs no destructors.
  template <typename T>
  T* make_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "MonotonicArena holds trivially-destructible types only");
    T* data = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) new (data + i) T();
    return data;
  }

  /// Rewind to empty. Slabs are retained; if the last cycle spilled into
  /// more than one slab, they are coalesced into a single slab sized to
  /// the high-water mark so the next cycle is one-slab, zero-upstream.
  void reset();

  const Stats& stats() const { return stats_; }

 private:
  struct Slab {
    std::vector<std::uint8_t> bytes;
    std::size_t used = 0;
  };

  Slab& grow(std::size_t min_bytes);

  std::vector<Slab> slabs_;
  std::size_t current_ = 0;  // slab being bumped
  Stats stats_;
};

/// Minimal std::allocator over a MonotonicArena, for vectors of scratch
/// PODs whose lifetime is one period. deallocate() is a no-op (reset()
/// reclaims everything); propagates on copy so rebinding works.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(MonotonicArena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}

  MonotonicArena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  MonotonicArena* arena_;
};

}  // namespace edgeslice
