// A deterministic fixed-size thread pool (no work stealing).
//
// The pool exists to parallelize embarrassingly-parallel per-RA work:
// agent training jobs and the per-RA interval loop of the orchestration
// system. Determinism is a hard requirement there (DESIGN.md decision 4:
// one seed reproduces an experiment bit-for-bit), so the pool makes a
// deliberately weak scheduling promise — tasks are handed out in index
// order from a single mutex-protected counter, nothing is stolen or
// reordered — and the *callers* guarantee that tasks share no mutable
// state. Reductions over task results are then performed by the caller
// in a fixed index order, which makes the combined result independent of
// how tasks were interleaved across workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace edgeslice {

/// Fixed set of worker threads executing indexed task batches.
///
/// `threads` is the total concurrency including the calling thread:
/// ThreadPool(1) spawns no workers and runs every batch inline; for
/// threads = N the pool spawns N - 1 workers and the caller participates
/// in each batch. parallel_for() is not reentrant — a body that calls
/// parallel_for() on the same pool runs the nested batch inline.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the calling thread), >= 1.
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Run body(0) .. body(n-1), distributing indices over the pool, and
  /// block until all have finished. The first exception thrown by any
  /// task is rethrown here after the batch drains; the remaining tasks
  /// still run. With no workers (threads <= 1) the batch runs inline in
  /// index order.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// std::thread::hardware_concurrency() with a floor of 1.
  static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for a batch
  std::condition_variable done_cv_;   // caller waits for the batch to drain
  const std::function<void(std::size_t)>* body_ = nullptr;  // active batch
  std::size_t next_ = 0;       // next index to hand out
  std::size_t total_ = 0;      // batch size
  std::size_t in_flight_ = 0;  // indices handed out but not finished
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace edgeslice
