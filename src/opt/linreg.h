// Ordinary / ridge least squares via normal equations.
//
// Reproduces the scikit-learn LinearRegression used in the paper's
// simulated environment (Sec. VI-B) to interpolate slice service time
// between grid-searched orchestration actions.
#pragma once

#include <vector>

#include "nn/matrix.h"

namespace edgeslice::opt {

struct LinearModel {
  std::vector<double> coefficients;  // one per feature
  double intercept = 0.0;

  double predict(const std::vector<double>& x) const;
};

/// Fit y ≈ X * w + b by minimizing ||y - Xw - b||^2 + ridge * ||w||^2.
/// X: one row per sample. Throws if shapes disagree or X is empty.
/// A small default ridge keeps near-singular grid neighborhoods stable.
LinearModel fit_linear(const nn::Matrix& x, const std::vector<double>& y,
                       double ridge = 1e-8);

/// Solve the square linear system A * x = b by Gaussian elimination with
/// partial pivoting. Throws on singular A.
std::vector<double> solve_linear_system(nn::Matrix a, std::vector<double> b);

/// Coefficient of determination of a fitted model on (x, y).
double r_squared(const LinearModel& model, const nn::Matrix& x,
                 const std::vector<double>& y);

}  // namespace edgeslice::opt
