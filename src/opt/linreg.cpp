#include "opt/linreg.h"

#include <cmath>
#include <stdexcept>

#include "common/stats.h"

namespace edgeslice::opt {

double LinearModel::predict(const std::vector<double>& x) const {
  if (x.size() != coefficients.size())
    throw std::invalid_argument("LinearModel::predict: feature size mismatch");
  double y = intercept;
  for (std::size_t i = 0; i < x.size(); ++i) y += coefficients[i] * x[i];
  return y;
}

std::vector<double> solve_linear_system(nn::Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n)
    throw std::invalid_argument("solve_linear_system: shape mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    if (std::abs(a(pivot, col)) < 1e-12)
      throw std::runtime_error("solve_linear_system: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a(i, c) * x[c];
    x[i] = acc / a(i, i);
  }
  return x;
}

LinearModel fit_linear(const nn::Matrix& x, const std::vector<double>& y, double ridge) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n == 0 || y.size() != n) throw std::invalid_argument("fit_linear: shape mismatch");

  // Augment with a bias column: theta = [w; b], solve (A^T A + ridge I) theta = A^T y
  // (bias unregularized).
  nn::Matrix ata(d + 1, d + 1);
  std::vector<double> aty(d + 1, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i <= d; ++i) {
      const double xi = (i < d) ? x(r, i) : 1.0;
      aty[i] += xi * y[r];
      for (std::size_t j = 0; j <= d; ++j) {
        const double xj = (j < d) ? x(r, j) : 1.0;
        ata(i, j) += xi * xj;
      }
    }
  }
  for (std::size_t i = 0; i < d; ++i) ata(i, i) += ridge;
  // Keep the system non-singular even for degenerate neighborhoods.
  ata(d, d) += 1e-12;

  const auto theta = solve_linear_system(ata, aty);
  LinearModel model;
  model.coefficients.assign(theta.begin(), theta.begin() + static_cast<std::ptrdiff_t>(d));
  model.intercept = theta[d];
  return model;
}

double r_squared(const LinearModel& model, const nn::Matrix& x,
                 const std::vector<double>& y) {
  if (x.rows() != y.size() || y.empty()) throw std::invalid_argument("r_squared: shapes");
  const double y_mean = mean(y);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double pred = model.predict(x.row_vector(r));
    ss_res += (y[r] - pred) * (y[r] - pred);
    ss_tot += (y[r] - y_mean) * (y[r] - y_mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace edgeslice::opt
