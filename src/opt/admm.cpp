#include "opt/admm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edgeslice::opt {

double primal_residual_norm(const std::vector<double>& u_sums,
                            const std::vector<double>& z) {
  if (u_sums.size() != z.size())
    throw std::invalid_argument("primal_residual_norm: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    acc += (u_sums[i] - z[i]) * (u_sums[i] - z[i]);
  }
  return std::sqrt(acc);
}

double dual_residual_norm(const std::vector<double>& z_new,
                          const std::vector<double>& z_old, double rho) {
  if (z_new.size() != z_old.size())
    throw std::invalid_argument("dual_residual_norm: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < z_new.size(); ++i) {
    acc += (z_new[i] - z_old[i]) * (z_new[i] - z_old[i]);
  }
  return rho * std::sqrt(acc);
}

void update_scaled_duals(std::vector<double>& y, const std::vector<double>& u_sums,
                         const std::vector<double>& z) {
  if (y.size() != u_sums.size() || y.size() != z.size())
    throw std::invalid_argument("update_scaled_duals: size mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += u_sums[i] - z[i];
}

void AdmmMonitor::record(const AdmmResiduals& residuals, double scale, double dual_scale,
                         std::size_t dimension) {
  ++iterations_;
  history_.push_back(residuals);
  const double sqrt_n = std::sqrt(static_cast<double>(std::max<std::size_t>(dimension, 1)));
  const double eps_pri =
      sqrt_n * criteria_.absolute_tolerance + criteria_.relative_tolerance * scale;
  const double eps_dual =
      sqrt_n * criteria_.absolute_tolerance + criteria_.relative_tolerance * dual_scale;
  if (iterations_ >= criteria_.min_iterations && residuals.primal <= eps_pri &&
      residuals.dual <= eps_dual) {
    converged_ = true;
  }
}

}  // namespace edgeslice::opt
