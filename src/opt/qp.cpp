#include "opt/qp.h"

#include <cmath>
#include <stdexcept>

#include "opt/projection.h"

namespace edgeslice::opt {

QpResult solve_projection_qp(const std::vector<double>& c, double bound,
                             const QpConfig& config) {
  if (c.empty()) throw std::invalid_argument("solve_projection_qp: empty input");
  QpResult result;
  // Feasible start: the half-space projection itself.
  result.z = project_halfspace_sum_ge(c, bound);
  if (config.box_constrained) result.z = project_box(result.z, config.box_lo, config.box_hi);

  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    result.iterations = it + 1;
    // Gradient of ||c - z||^2 is 2 (z - c).
    std::vector<double> next(result.z.size());
    for (std::size_t i = 0; i < next.size(); ++i) {
      next[i] = result.z[i] - config.step_size * 2.0 * (result.z[i] - c[i]);
    }
    next = project_halfspace_sum_ge(next, bound);
    if (config.box_constrained) next = project_box(next, config.box_lo, config.box_hi);

    double delta = 0.0;
    for (std::size_t i = 0; i < next.size(); ++i) {
      delta += (next[i] - result.z[i]) * (next[i] - result.z[i]);
    }
    result.z = std::move(next);
    if (std::sqrt(delta) < config.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.objective = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    result.objective += (c[i] - result.z[i]) * (c[i] - result.z[i]);
  }
  return result;
}

}  // namespace edgeslice::opt
