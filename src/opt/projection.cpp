#include "opt/projection.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace edgeslice::opt {

std::vector<double> project_halfspace_sum_ge(const std::vector<double>& c, double bound) {
  std::vector<double> z;
  project_halfspace_sum_ge_into(c, bound, z);
  return z;
}

void project_halfspace_sum_ge_into(const std::vector<double>& c, double bound,
                                   std::vector<double>& z) {
  if (c.empty()) throw std::invalid_argument("project_halfspace_sum_ge: empty input");
  const double total = std::accumulate(c.begin(), c.end(), 0.0);
  z.assign(c.begin(), c.end());
  if (total >= bound) return;
  const double shift = (bound - total) / static_cast<double>(c.size());
  for (auto& v : z) v += shift;
}

std::vector<double> project_halfspace_sum_le(const std::vector<double>& c, double bound) {
  if (c.empty()) throw std::invalid_argument("project_halfspace_sum_le: empty input");
  const double total = std::accumulate(c.begin(), c.end(), 0.0);
  if (total <= bound) return c;
  const double shift = (total - bound) / static_cast<double>(c.size());
  std::vector<double> z = c;
  for (auto& v : z) v -= shift;
  return z;
}

std::vector<double> project_box(const std::vector<double>& c, double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("project_box: lo > hi");
  std::vector<double> z = c;
  for (auto& v : z) v = std::clamp(v, lo, hi);
  return z;
}

std::vector<double> project_simplex(const std::vector<double>& c, double total) {
  if (c.empty()) throw std::invalid_argument("project_simplex: empty input");
  if (total <= 0.0) throw std::invalid_argument("project_simplex: total must be > 0");
  std::vector<double> u = c;
  std::sort(u.begin(), u.end(), std::greater<>());
  double cumulative = 0.0;
  double theta = 0.0;
  std::size_t rho = 0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    cumulative += u[i];
    const double candidate = (cumulative - total) / static_cast<double>(i + 1);
    if (u[i] - candidate > 0.0) {
      rho = i + 1;
      theta = candidate;
    }
  }
  (void)rho;
  std::vector<double> z = c;
  for (auto& v : z) v = std::max(0.0, v - theta);
  return z;
}

}  // namespace edgeslice::opt
