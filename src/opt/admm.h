// ADMM bookkeeping for the performance coordinator.
//
// The paper (Sec. IV-A) splits problem P1 with ADMM: agents maximize the
// augmented Lagrangian over X (Eq. 8), the coordinator updates the auxiliary
// variables Z (Eq. 9) and scaled duals Y (Eq. 10). This module provides the
// generic residual/convergence machinery; the slicing-specific coordinator
// in src/core composes it with the projection solver.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace edgeslice::opt {

/// Norms of the ADMM primal and dual residuals after one iteration.
struct AdmmResiduals {
  double primal = 0.0;  // || U_sum - z ||_2 across all (i, j)
  double dual = 0.0;    // rho * || z_new - z_old ||_2
};

/// Primal residual for the slicing constraint (Eq. 4): r_ij = U_ij - z_ij.
double primal_residual_norm(const std::vector<double>& u_sums,
                            const std::vector<double>& z);

/// Dual residual: rho * || z_new - z_old ||_2.
double dual_residual_norm(const std::vector<double>& z_new,
                          const std::vector<double>& z_old, double rho);

/// Scaled dual update (Eq. 10): y <- y + (U_sum - z).
void update_scaled_duals(std::vector<double>& y, const std::vector<double>& u_sums,
                         const std::vector<double>& z);

struct AdmmStopCriteria {
  double absolute_tolerance = 1e-3;
  double relative_tolerance = 1e-3;
  std::size_t min_iterations = 2;
  std::size_t max_iterations = 200;
};

/// Tracks residual history and decides convergence per Boyd et al. 2011
/// Sec. 3.3 (eps_pri/eps_dual from absolute + relative tolerances).
class AdmmMonitor {
 public:
  explicit AdmmMonitor(AdmmStopCriteria criteria = {}) : criteria_(criteria) {}

  /// Record one iteration. `scale` is max(||U_sum||, ||z||), used for the
  /// relative part of the primal tolerance; `dual_scale` is ||rho * y||.
  void record(const AdmmResiduals& residuals, double scale, double dual_scale,
              std::size_t dimension);

  bool converged() const { return converged_; }
  bool exhausted() const { return iterations_ >= criteria_.max_iterations; }
  std::size_t iterations() const { return iterations_; }
  const std::vector<AdmmResiduals>& history() const { return history_; }

  /// Checkpoint restore: overwrite the iteration count, the (sticky)
  /// convergence flag, and the residual history verbatim. The stopping
  /// criteria are construction-time configuration and are not touched.
  void restore(std::size_t iterations, bool converged,
               std::vector<AdmmResiduals> history) {
    iterations_ = iterations;
    converged_ = converged;
    history_ = std::move(history);
  }

 private:
  AdmmStopCriteria criteria_;
  std::vector<AdmmResiduals> history_;
  std::size_t iterations_ = 0;
  bool converged_ = false;
};

}  // namespace edgeslice::opt
