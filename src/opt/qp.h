// Iterative solver for the coordinator's quadratic program.
//
// Solves   min_z  ||c - z||^2   s.t.  sum(z) >= bound   (optionally z in a box)
// by projected gradient descent. Exists to cross-validate the closed-form
// projection in opt/projection.h (DESIGN.md: CVXPY substitution) and to
// support variants with extra box constraints.
#pragma once

#include <vector>

namespace edgeslice::opt {

struct QpConfig {
  double step_size = 0.2;
  std::size_t max_iterations = 2000;
  double tolerance = 1e-9;  // stop when the iterate moves less than this
  bool box_constrained = false;
  double box_lo = 0.0;
  double box_hi = 1.0;
};

struct QpResult {
  std::vector<double> z;
  std::size_t iterations = 0;
  bool converged = false;
  double objective = 0.0;  // ||c - z||^2 at the solution
};

/// Minimize ||c - z||^2 subject to sum(z) >= bound (+ optional box).
QpResult solve_projection_qp(const std::vector<double>& c, double bound,
                             const QpConfig& config = {});

}  // namespace edgeslice::opt
