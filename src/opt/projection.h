// Euclidean projections used by the performance coordinator.
//
// Problem P2 in the paper (Eq. 11) decomposes per slice i into
//     min_z ||c - z||^2   s.t.  sum_j z_j >= b,
// whose solution is the projection of c onto a half-space — closed form.
// The coordinator uses this instead of a generic convex solver (the paper
// used CVXPY); opt/qp.h provides an iterative solver to cross-check.
#pragma once

#include <vector>

namespace edgeslice::opt {

/// Project c onto { z : sum(z) >= bound }. If c already satisfies the
/// constraint it is returned unchanged; otherwise the deficit is spread
/// equally across coordinates (the closed-form Euclidean projection).
std::vector<double> project_halfspace_sum_ge(const std::vector<double>& c, double bound);

/// project_halfspace_sum_ge() into a caller-owned buffer (resized to
/// c.size()), bit-identical — the coordinator's per-period solve reuses
/// one buffer and never allocates. `z` must not alias `c`.
void project_halfspace_sum_ge_into(const std::vector<double>& c, double bound,
                                   std::vector<double>& z);

/// Project c onto { z : sum(z) <= bound } (the mirror half-space).
std::vector<double> project_halfspace_sum_le(const std::vector<double>& c, double bound);

/// Clamp every coordinate into [lo, hi].
std::vector<double> project_box(const std::vector<double>& c, double lo, double hi);

/// Project c onto the scaled simplex { z >= 0 : sum(z) = total } using the
/// sorting algorithm of Held/Wolfe/Crowder. Used when normalizing actions
/// that over-subscribe a resource.
std::vector<double> project_simplex(const std::vector<double>& c, double total = 1.0);

}  // namespace edgeslice::opt
