#include "ipc/worker.h"

#include <unistd.h>

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/metrics.h"
#include "ipc/frame.h"
#include "ipc/wire.h"

namespace edgeslice::ipc {

namespace {

/// Stateful frame sender: per-connection monotonic seq.
class FrameSender {
 public:
  explicit FrameSender(int fd) : fd_(fd) {}

  bool send(FrameType type, std::uint32_t ra, std::string payload) {
    Frame frame;
    frame.type = type;
    frame.ra = ra;
    frame.seq = seq_++;
    frame.payload = std::move(payload);
    return write_frame(fd_, frame) == IoResult::Ok;
  }

 private:
  int fd_;
  std::uint64_t seq_ = 0;
};

std::string environment_blob(env::RaEnvironment& environment) {
  std::ostringstream out;
  environment.save_state(out);
  return out.str();
}

}  // namespace

int worker_main(int fd, const WorkerContext& context) {
  try {
    // The metrics registry mutex (and any observer thread holding it at
    // fork time) is not inherited in a usable state; the worker records
    // nothing — all accounting is supervisor-side.
    set_metrics_enabled(false);
    FrameSender sender(fd);
    std::uint64_t expected_seq = 0;

    // RA index -> slot in context.hosted (environments/policies share it).
    auto slot_of = [&context](std::uint32_t ra) -> std::size_t {
      for (std::size_t s = 0; s < context.hosted.size(); ++s) {
        if (context.hosted[s] == ra) return s;
      }
      throw std::runtime_error("worker: directive for RA " + std::to_string(ra) +
                               " this worker does not host");
    };

    HelloPayload hello;
    hello.worker_index = context.index;
    hello.hosted_ras = context.hosted;
    if (!sender.send(FrameType::Hello, kConnectionScope, encode_hello(hello)))
      return 1;

    for (;;) {
      Frame frame;
      const IoResult io = read_frame(fd, frame, /*deadline_ms=*/60000);
      if (io == IoResult::Deadline) continue;  // idle between periods
      if (io == IoResult::Closed) return 0;    // supervisor is gone
      if (io != IoResult::Ok) return 1;
      if (frame.seq != expected_seq) return 1;  // corrupt channel
      ++expected_seq;

      switch (frame.type) {
        case FrameType::RunPeriod: {
          const RunPeriodPayload run = decode_run_period(frame.payload);
          for (std::size_t entry = 0; entry < run.ras.size(); ++entry) {
            const std::uint32_t ra = run.ras[entry];
            const core::RaPeriodDirective& d = run.directives[entry];
            if (d.stall_ms > 0) {
              std::this_thread::sleep_for(std::chrono::milliseconds(d.stall_ms));
            }
            if (d.abort_run) _exit(1);  // chaos: die mid-exchange, no trace
            if (!d.run) continue;
            const std::size_t slot = slot_of(ra);
            env::RaEnvironment& environment = *context.environments[slot];
            core::RaPolicy& policy = *context.policies[slot];
            if (d.has_derate) environment.set_resource_derate(d.derate);
            TracePayload trace;
            trace.period = run.period;
            trace.trace.ran = true;
            const std::size_t intervals = environment.config().intervals_per_period;
            trace.trace.steps.reserve(intervals);
            trace.trace.actions.reserve(intervals);
            for (std::size_t t = 0; t < intervals; ++t) {
              std::vector<double> action = policy.decide(environment);
              env::StepResult step = environment.step(action);
              policy.feedback(step);
              trace.trace.steps.push_back(std::move(step));
              trace.trace.actions.push_back(std::move(action));
            }
            if (!sender.send(FrameType::Trace, ra, encode_trace(trace))) return 1;
            // The post-intervals blob rides along immediately: it is the
            // supervisor's crash-restore point for this RA.
            if (!sender.send(FrameType::EnvState, ra, environment_blob(environment)))
              return 1;
          }
          break;
        }
        case FrameType::Coordination: {
          const CoordinationPayload coordination = decode_coordination(frame.payload);
          context.environments[slot_of(frame.ra)]->set_coordination(
              coordination.z_minus_y);
          break;
        }
        case FrameType::Snapshot: {
          env::RaEnvironment& environment = *context.environments[slot_of(frame.ra)];
          if (!sender.send(FrameType::EnvState, frame.ra,
                           environment_blob(environment))) {
            return 1;
          }
          break;
        }
        case FrameType::Restore: {
          std::istringstream blob(frame.payload);
          context.environments[slot_of(frame.ra)]->load_state(blob);
          if (!sender.send(FrameType::Ack, frame.ra, encode_u64(0))) return 1;
          break;
        }
        case FrameType::Ping: {
          if (!sender.send(FrameType::Pong, kConnectionScope,
                           std::string(frame.payload))) {
            return 1;
          }
          break;
        }
        case FrameType::Shutdown:
          return 0;
        default:
          return 1;  // supervisor never sends the other types
      }
    }
  } catch (const std::exception&) {
    return 1;
  }
}

}  // namespace edgeslice::ipc
