#include "ipc/worker.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/metrics.h"
#include "common/trace_span.h"
#include "ipc/frame.h"
#include "ipc/wire.h"
#include "obs/event_log.h"

namespace edgeslice::ipc {

namespace {

/// Stateful frame sender: per-connection monotonic seq.
class FrameSender {
 public:
  explicit FrameSender(int fd) : fd_(fd) {}

  bool send(FrameType type, std::uint32_t ra, std::string payload) {
    Frame frame;
    frame.type = type;
    frame.ra = ra;
    frame.seq = seq_++;
    frame.payload = std::move(payload);
    return write_frame(fd_, frame) == IoResult::Ok;
  }

  /// The crash-flush hook needs the live counter to stamp its final
  /// frame with the next in-sequence seq (the assembler enforces strict
  /// monotonicity).
  std::uint64_t* seq_ptr() { return &seq_; }

 private:
  int fd_;
  std::uint64_t seq_ = 0;
};

std::string environment_blob(env::RaEnvironment& environment) {
  std::ostringstream out;
  environment.save_state(out);
  return out.str();
}

// --- Crash flush ----------------------------------------------------------
//
// When the worker dies on a signal or an uncaught exception, the
// obs::set_crash_flush_hook path below ships one final best-effort
// TelemetryEvents frame over the (possibly still open) supervisor
// socket: preallocated buffers, signal-safe frame encoder, raw write(2).
// If the worker died mid-send the supervisor sees a corrupt channel and
// records the TelemetryGap instead — both outcomes are accounted for.

constexpr std::size_t kCrashFlushEvents = 256;
/// 40-byte header + u64 count + per-event wire size (wire.cpp's
/// kEventWireSize = 65).
constexpr std::size_t kCrashFlushBufSize = 48 + kCrashFlushEvents * 65;

int g_crash_fd = -1;
std::uint64_t* g_crash_seq = nullptr;
obs::Event g_crash_events[kCrashFlushEvents];
char g_crash_buf[kCrashFlushBufSize];

void crash_flush() {
  if (g_crash_fd < 0 || g_crash_seq == nullptr) return;
  const std::size_t count =
      obs::global_event_log().copy_events(g_crash_events, kCrashFlushEvents);
  const std::size_t total = encode_telemetry_events_frame(
      g_crash_buf, sizeof(g_crash_buf), *g_crash_seq, g_crash_events, count);
  if (total == 0) return;
  std::size_t sent = 0;
  while (sent < total) {
    const ssize_t n = ::write(g_crash_fd, g_crash_buf + sent, total - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // supervisor gone or socket full: best effort is over
  }
}

}  // namespace

int worker_main(int fd, const WorkerContext& context) {
  try {
    // The parent's registry/tracer/event-log mutexes (and any observer
    // thread holding one at fork time) are not inherited in a usable
    // state; swap in fresh objects before the first record. The global
    // metrics switch itself is inherited, so a run with metrics disabled
    // stays silent in workers too.
    reset_global_metrics_for_fork();
    reset_global_tracer_for_fork();
    obs::reset_global_event_log_for_fork();
    FrameSender sender(fd);
    std::uint64_t expected_seq = 0;

    // RA index -> slot in context.hosted (environments/policies share it).
    auto slot_of = [&context](std::uint32_t ra) -> std::size_t {
      for (std::size_t s = 0; s < context.hosted.size(); ++s) {
        if (context.hosted[s] == ra) return s;
      }
      throw std::runtime_error("worker: directive for RA " + std::to_string(ra) +
                               " this worker does not host");
    };

    HelloPayload hello;
    hello.worker_index = context.index;
    hello.hosted_ras = context.hosted;
    if (!sender.send(FrameType::Hello, kConnectionScope, encode_hello(hello)))
      return 1;

    // First event in every incarnation's window: this process exists.
    // (The supervisor records its own WorkerSpawn too; the imported copy
    // is distinguishable by its origin-slot tag.)
    {
      obs::Event spawn;
      spawn.kind = obs::EventKind::WorkerSpawn;
      spawn.ra = static_cast<std::size_t>(context.index);
      spawn.value = static_cast<double>(::getpid());
      obs::global_event_log().record(spawn);
    }

    // Telemetry shipping state: cumulative metrics go wholesale; span
    // aggregates ship as deltas against this shadow of the last export;
    // events drain past a seq cursor.
    std::map<std::pair<std::string, std::uint64_t>, std::pair<std::size_t, double>>
        shipped_spans;
    std::uint64_t event_cursor = 0;
    std::uint64_t periods_since_ship = 0;
    std::uint64_t last_period = 0;
    bool crash_flush_armed = false;

    const auto ship_telemetry = [&](std::uint64_t period) -> bool {
      if (!metrics_enabled()) return true;
      TelemetrySnapshotPayload snap;
      snap.period = period;
      snap.metrics = global_metrics().snapshot();
      for (const SpanPeriodStats& cur : global_tracer().export_period_stats()) {
        auto& prev = shipped_spans[{cur.path, cur.period}];
        if (cur.stats.count <= prev.first) continue;
        SpanPeriodStats delta;
        delta.path = cur.path;
        delta.period = cur.period;
        delta.stats.count = cur.stats.count - prev.first;
        delta.stats.total_s = cur.stats.total_s - prev.second;
        // min/max cannot be diffed; ship the cumulative envelope (the
        // supervisor's envelope fold is idempotent under it).
        delta.stats.min_s = cur.stats.min_s;
        delta.stats.max_s = cur.stats.max_s;
        prev = {cur.stats.count, cur.stats.total_s};
        snap.spans.push_back(std::move(delta));
      }
      if (!sender.send(FrameType::TelemetrySnapshot, kConnectionScope,
                       encode_telemetry_snapshot(snap))) {
        return false;
      }
      TelemetryEventsPayload events;
      events.events = obs::global_event_log().snapshot_since(event_cursor);
      if (events.events.empty()) return true;
      event_cursor = events.events.back().seq + 1;
      return sender.send(FrameType::TelemetryEvents, kConnectionScope,
                         encode_telemetry_events(events));
    };

    for (;;) {
      Frame frame;
      const IoResult io = read_frame(fd, frame, /*deadline_ms=*/60000);
      if (io == IoResult::Deadline) continue;  // idle between periods
      if (io == IoResult::Closed) return 0;    // supervisor is gone
      if (io != IoResult::Ok) return 1;
      if (frame.seq != expected_seq) return 1;  // corrupt channel
      ++expected_seq;

      switch (frame.type) {
        case FrameType::RunPeriod: {
          const RunPeriodPayload run = decode_run_period(frame.payload);
          // Arm the crash flush the first time telemetry is requested:
          // from here on a fatal signal ships the event window before
          // the process dies.
          if (!crash_flush_armed && run.telemetry_every > 0 && metrics_enabled()) {
            g_crash_fd = fd;
            g_crash_seq = sender.seq_ptr();
            obs::set_crash_flush_hook(&crash_flush);
            crash_flush_armed = true;
          }
          last_period = run.period;
          global_tracer().set_period(run.period);
          obs::global_event_log().set_period(run.period);
          global_metrics().counter("worker.periods").add();
          for (std::size_t entry = 0; entry < run.ras.size(); ++entry) {
            const std::uint32_t ra = run.ras[entry];
            const core::RaPeriodDirective& d = run.directives[entry];
            if (d.stall_ms > 0) {
              std::this_thread::sleep_for(std::chrono::milliseconds(d.stall_ms));
            }
            if (d.abort_run) _exit(1);  // chaos: die mid-exchange, no trace
            if (!d.run) continue;
            const std::size_t slot = slot_of(ra);
            env::RaEnvironment& environment = *context.environments[slot];
            core::RaPolicy& policy = *context.policies[slot];
            if (d.has_derate) environment.set_resource_derate(d.derate);
            TracePayload trace;
            trace.period = run.period;
            trace.trace.ran = true;
            const std::size_t intervals = environment.config().intervals_per_period;
            trace.trace.steps.reserve(intervals);
            trace.trace.actions.reserve(intervals);
            {
              auto span = global_tracer().span("worker.ra_period");
              for (std::size_t t = 0; t < intervals; ++t) {
                std::vector<double> action = policy.decide(environment);
                env::StepResult step = environment.step(action);
                policy.feedback(step);
                trace.trace.steps.push_back(std::move(step));
                trace.trace.actions.push_back(std::move(action));
              }
              global_metrics().histogram("worker.ra_period_seconds").observe(span.stop());
              global_metrics().counter("worker.intervals").add(intervals);
            }
            if (!sender.send(FrameType::Trace, ra, encode_trace(trace))) return 1;
            // The post-intervals blob rides along immediately: it is the
            // supervisor's crash-restore point for this RA.
            if (!sender.send(FrameType::EnvState, ra, environment_blob(environment)))
              return 1;
          }
          if (run.telemetry_every > 0 && ++periods_since_ship >= run.telemetry_every) {
            periods_since_ship = 0;
            if (!ship_telemetry(run.period)) return 1;
          }
          break;
        }
        case FrameType::Coordination: {
          const CoordinationPayload coordination = decode_coordination(frame.payload);
          context.environments[slot_of(frame.ra)]->set_coordination(
              coordination.z_minus_y);
          break;
        }
        case FrameType::Snapshot: {
          env::RaEnvironment& environment = *context.environments[slot_of(frame.ra)];
          if (!sender.send(FrameType::EnvState, frame.ra,
                           environment_blob(environment))) {
            return 1;
          }
          break;
        }
        case FrameType::Restore: {
          std::istringstream blob(frame.payload);
          context.environments[slot_of(frame.ra)]->load_state(blob);
          if (!sender.send(FrameType::Ack, frame.ra, encode_u64(0))) return 1;
          break;
        }
        case FrameType::Ping: {
          if (!sender.send(FrameType::Pong, kConnectionScope,
                           std::string(frame.payload))) {
            return 1;
          }
          break;
        }
        case FrameType::Shutdown:
          // Final flush: whatever accumulated since the last cadence ship
          // reaches the supervisor before the clean exit. Disarm the
          // crash hook first-thing after — the fd is about to close.
          if (crash_flush_armed) {
            ship_telemetry(last_period);
            obs::set_crash_flush_hook(nullptr);
            g_crash_fd = -1;
            g_crash_seq = nullptr;
          }
          return 0;
        default:
          return 1;  // supervisor never sends the other types
      }
    }
  } catch (const std::exception&) {
    return 1;
  }
}

}  // namespace edgeslice::ipc
