// The RA worker process body.
//
// A worker is forked by the WorkerSupervisor right after system
// construction, inherits its hosted RAs' environments and policies, and
// from then on speaks only ESFR frames over its socketpair: the
// supervisor drives periods with RunPeriod, the worker answers with one
// Trace + one EnvState frame per hosted RA (in directive order), and the
// RC-L leg arrives as Coordination frames. Restore frames (crash
// recovery, checkpoint load) replace an environment's state wholesale
// and are Ack'd so the supervisor can sequence restores before the next
// period.
//
// The worker is deliberately dumb: no timers, no retries, no knowledge
// of faults beyond the chaos hooks in its directives (stall_ms sleeps,
// abort_run exits abruptly). All failure policy lives supervisor-side.
#pragma once

#include <cstdint>
#include <vector>

#include "core/policies.h"
#include "env/environment.h"

namespace edgeslice::ipc {

/// Everything a worker needs, inherited across fork(). `environments`
/// and `policies` are parallel to `hosted` (global RA indices, ascending).
struct WorkerContext {
  std::uint64_t index = 0;
  std::vector<std::uint32_t> hosted;
  std::vector<env::RaEnvironment*> environments;
  std::vector<core::RaPolicy*> policies;
};

/// Run the worker frame loop on `fd` until a Shutdown frame or EOF.
/// Returns the process exit status: 0 on clean shutdown or supervisor
/// EOF, nonzero on a protocol/runtime error. Call from the forked child
/// only, and _exit() with the result (no atexit handlers, no flushing
/// inherited buffers).
int worker_main(int fd, const WorkerContext& context);

}  // namespace edgeslice::ipc
