#include "ipc/supervisor.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <sstream>
#include <stdexcept>

#include "common/logging.h"
#include "common/metrics.h"
#include "ipc/wire.h"
#include "ipc/worker.h"
#include "obs/telemetry_server.h"

namespace edgeslice::ipc {

namespace {

void record_worker_event(obs::EventKind kind, std::size_t index, double value = 0.0) {
  obs::Event event;
  event.kind = kind;
  event.ra = index;
  event.value = value;
  obs::global_event_log().record(event);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw std::runtime_error("WorkerSupervisor: fcntl(O_NONBLOCK) failed");
}

}  // namespace

WorkerSupervisor::WorkerSupervisor(std::vector<env::RaEnvironment*> environments,
                                   std::vector<core::RaPolicy*> policies,
                                   SupervisorConfig config)
    : environments_(std::move(environments)),
      policies_(std::move(policies)),
      config_(config) {
  if (environments_.empty() || environments_.size() != policies_.size())
    throw std::invalid_argument("WorkerSupervisor: environments/policies mismatch");
  if (config_.workers == 0)
    throw std::invalid_argument("WorkerSupervisor: need at least one worker");
  config_.workers = std::min(config_.workers, environments_.size());
  workers_.resize(config_.workers);
  for (std::size_t j = 0; j < environments_.size(); ++j) {
    workers_[j % config_.workers].hosted.push_back(static_cast<std::uint32_t>(j));
  }
  blob_cache_.resize(environments_.size());
  coordination_cache_.resize(environments_.size());
  env_state_mark_.assign(environments_.size(), 0);
  ack_mark_.assign(environments_.size(), 0);
  aggregator_.reset(config_.workers);
}

WorkerSupervisor::~WorkerSupervisor() { stop(); }

void WorkerSupervisor::start() {
  if (started_) throw std::logic_error("WorkerSupervisor: start() called twice");
  // SIGPIPE process-wide: a worker dying mid-write must surface as EPIPE
  // on the supervisor's send path, never kill the coordinator.
  ::signal(SIGPIPE, SIG_IGN);
  // Initial restore points: the environments' state before anything ran.
  for (std::size_t j = 0; j < environments_.size(); ++j) {
    std::ostringstream blob;
    environments_[j]->save_state(blob);
    blob_cache_[j] = blob.str();
  }
  started_ = true;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!respawn(w)) {
      stop();
      throw std::runtime_error("WorkerSupervisor: worker " + std::to_string(w) +
                               " failed to start");
    }
  }
  publish_liveness();
}

void WorkerSupervisor::stop() {
  if (!started_) return;
  stopping_ = true;
  // Ask every live worker to exit cleanly; each answers with a final
  // telemetry flush before closing its end.
  bool any_live = false;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    Worker& worker = workers_[w];
    if (worker.alive && worker.fd >= 0) {
      SendOptions quick = config_.send;
      quick.deadline_ms = 200;
      Frame frame;
      frame.type = FrameType::Shutdown;
      frame.seq = worker.send_seq++;
      if (write_frame(worker.fd, frame, quick) == IoResult::Ok) any_live = true;
    }
  }
  if (any_live) {
    // Pump until every worker's final TelemetrySnapshot/TelemetryEvents
    // pair has been merged and its socket has closed (EOF), with a
    // bounded wait so a wedged worker cannot stall shutdown.
    pump([&] { return alive_count() == 0; }, /*deadline_ms=*/1000);
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    Worker& worker = workers_[w];
    if (worker.fd >= 0) {
      if (loop_.has(worker.fd)) loop_.remove(worker.fd);
      ::close(worker.fd);
      worker.fd = -1;
    }
    if (worker.pid > 0) {
      ::kill(worker.pid, SIGKILL);
      int status = 0;
      ::waitpid(worker.pid, &status, 0);
      worker.pid = -1;
    }
    worker.alive = false;
  }
  started_ = false;
  stopping_ = false;
  obs::set_worker_liveness(0, 0);
}

void WorkerSupervisor::spawn(std::size_t index) {
  Worker& worker = workers_[index];
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw std::runtime_error("WorkerSupervisor: socketpair failed");
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw std::runtime_error("WorkerSupervisor: fork failed");
  }
  if (pid == 0) {
    // Child: drop every inherited supervisor-side fd (other workers'
    // sockets included — a child holding a sibling's socket open would
    // defeat the supervisor's EOF-based death detection).
    ::close(fds[0]);
    for (const Worker& other : workers_) {
      if (other.fd >= 0) ::close(other.fd);
    }
    WorkerContext context;
    context.index = index;
    context.hosted = worker.hosted;
    for (std::uint32_t ra : worker.hosted) {
      context.environments.push_back(environments_[ra]);
      context.policies.push_back(policies_[ra]);
    }
    _exit(worker_main(fds[1], context));
  }
  ::close(fds[1]);
  set_nonblocking(fds[0]);
  worker.pid = pid;
  worker.fd = fds[0];
  worker.send_seq = 0;
  worker.hello_seen = false;
  worker.inbox.clear();
  worker.alive = true;
  loop_.add(
      worker.fd,
      [this, index](int /*fd*/, Frame&& frame) { on_frame(index, std::move(frame)); },
      [this, index](int /*fd*/, IoResult) {
        // EOF / protocol corruption: the worker is gone.
        declare_dead(index, obs::EventKind::WorkerExit);
      });
  record_worker_event(obs::EventKind::WorkerSpawn, index, static_cast<double>(pid));
  if (metrics_enabled()) global_metrics().counter("ipc.worker_spawns").add();
}

void WorkerSupervisor::declare_dead(std::size_t index, obs::EventKind kind) {
  Worker& worker = workers_[index];
  const bool was_alive = worker.alive;
  worker.alive = false;
  if (worker.fd >= 0) {
    if (loop_.has(worker.fd)) loop_.remove(worker.fd);
    ::close(worker.fd);
    worker.fd = -1;
  }
  if (worker.pid > 0) {
    ::kill(worker.pid, SIGKILL);  // harmless if already dead
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
    worker.pid = -1;
  }
  if (was_alive) {
    // Fold the dead incarnation's telemetry into the slot base. During
    // stop() the death is a clean shutdown (final flush already pumped
    // in); anywhere else the slot's event window may have a hole, which
    // the aggregator marks with a TelemetryGap event.
    aggregator_.on_worker_lost(index, /*clean=*/stopping_);
    if (!stopping_) {
      record_worker_event(kind, index);
      if (metrics_enabled()) global_metrics().counter("ipc.worker_deaths").add();
      ES_LOG(Warn) << "worker " << index << " down ("
                   << obs::event_kind_name(kind) << ")";
    }
  }
}

bool WorkerSupervisor::respawn(std::size_t index) {
  Worker& worker = workers_[index];
  if (worker.failed) return false;
  declare_dead(index, obs::EventKind::WorkerExit);  // ensure fully torn down
  try {
    spawn(index);
  } catch (const std::exception& e) {
    ES_LOG(Error) << "worker respawn failed: " << e.what();
    return false;
  }
  // Hello, then restore every hosted RA from the cached state.
  const bool hello = pump([&] { return worker.hello_seen || !worker.alive; },
                          config_.io_deadline_ms) &&
                     worker.alive && worker.hello_seen;
  if (!hello) {
    declare_dead(index, obs::EventKind::WorkerHung);
    return false;
  }
  try {
    restore_hosted(index);
  } catch (const std::exception& e) {
    ES_LOG(Error) << "worker restore failed: " << e.what();
    declare_dead(index, obs::EventKind::WorkerExit);
    return false;
  }
  return true;
}

void WorkerSupervisor::restore_hosted(std::size_t index) {
  Worker& worker = workers_[index];
  for (std::uint32_t ra : worker.hosted) {
    const std::uint64_t mark = ack_mark_[ra];
    if (!send_to(index, FrameType::Restore, ra, std::string(blob_cache_[ra])))
      throw std::runtime_error("restore send failed");
    if (!pump([&] { return ack_mark_[ra] != mark || !worker.alive; },
              config_.io_deadline_ms) ||
        !worker.alive) {
      throw std::runtime_error("restore not acknowledged");
    }
    // Replay the last delivered coordination vector: blob (post-intervals)
    // + replay reconstructs the exact post-coordination state, because
    // set_coordination only stores the vector.
    if (coordination_cache_[ra].has_value()) {
      CoordinationPayload payload;
      payload.z_minus_y = *coordination_cache_[ra];
      if (!send_to(index, FrameType::Coordination, ra,
                   encode_coordination(payload))) {
        throw std::runtime_error("coordination replay failed");
      }
    }
    record_worker_event(obs::EventKind::WorkerRestore, ra);
  }
}

bool WorkerSupervisor::send_to(std::size_t index, FrameType type, std::uint32_t ra,
                               std::string payload) {
  Worker& worker = workers_[index];
  if (!worker.alive || worker.fd < 0) return false;
  Frame frame;
  frame.type = type;
  frame.ra = ra;
  frame.seq = worker.send_seq++;
  frame.payload = std::move(payload);
  const IoResult io = write_frame(worker.fd, frame, config_.send);
  if (io == IoResult::Ok) return true;
  declare_dead(index, io == IoResult::Deadline ? obs::EventKind::WorkerHung
                                               : obs::EventKind::WorkerExit);
  return false;
}

void WorkerSupervisor::on_frame(std::size_t index, Frame&& frame) {
  Worker& worker = workers_[index];
  switch (frame.type) {
    case FrameType::Hello: {
      const HelloPayload hello = decode_hello(frame.payload);
      worker.hello_seen =
          hello.worker_index == index && hello.hosted_ras == worker.hosted;
      break;
    }
    case FrameType::Trace: {
      if (!collecting_ || frame.ra >= environments_.size()) break;
      const TracePayload payload = decode_trace(frame.payload);
      if (payload.period != collect_period_) break;  // stale
      (*collect_traces_)[frame.ra] = std::move(payload.trace);
      collect_have_trace_[frame.ra] = true;
      break;
    }
    case FrameType::EnvState: {
      if (frame.ra >= environments_.size()) break;
      blob_cache_[frame.ra] = std::move(frame.payload);
      ++env_state_mark_[frame.ra];
      if (collecting_) collect_have_blob_[frame.ra] = true;
      break;
    }
    case FrameType::Ack: {
      if (frame.ra < environments_.size()) ++ack_mark_[frame.ra];
      break;
    }
    case FrameType::TelemetrySnapshot: {
      if (!metrics_enabled()) break;
      const TelemetrySnapshotPayload payload =
          decode_telemetry_snapshot(frame.payload);
      aggregator_.on_metrics(index, payload.metrics);
      aggregator_.on_spans(index, payload.spans);
      break;
    }
    case FrameType::TelemetryEvents: {
      if (!metrics_enabled()) break;
      const TelemetryEventsPayload payload = decode_telemetry_events(frame.payload);
      aggregator_.on_events(index, payload.events);
      break;
    }
    case FrameType::Pong:
      break;
    default:
      worker.inbox.push_back(std::move(frame));
      break;
  }
}

bool WorkerSupervisor::pump(const std::function<bool()>& done, int deadline_ms) {
  return loop_.run_until(done, deadline_ms);
}

std::size_t WorkerSupervisor::alive_count() const {
  std::size_t alive = 0;
  for (const Worker& worker : workers_) {
    if (worker.alive) ++alive;
  }
  return alive;
}

void WorkerSupervisor::publish_liveness() {
  obs::set_worker_liveness(alive_count(), workers_.size());
  if (metrics_enabled()) {
    global_metrics().gauge("ipc.workers_alive").set(static_cast<double>(alive_count()));
    global_metrics().gauge("ipc.workers_total").set(static_cast<double>(workers_.size()));
  }
  // The /fleet.json table: supervisor-owned process facts plus the
  // aggregator's telemetry bookkeeping.
  std::vector<obs::FleetWorkerStatus> fleet(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    obs::FleetWorkerStatus& status = fleet[w];
    status.slot = w;
    status.alive = workers_[w].alive;
    status.pid = static_cast<long>(workers_[w].pid);
    status.restarts = workers_[w].restarts;
    status.ras.assign(workers_[w].hosted.begin(), workers_[w].hosted.end());
    status.snapshots = aggregator_.snapshots_merged(w);
    status.events = aggregator_.events_imported(w);
    status.last_snapshot_ts_s = aggregator_.last_snapshot_ts_s(w);
  }
  obs::set_fleet_status(std::move(fleet));
}

std::vector<core::RaPeriodTrace> WorkerSupervisor::run_intervals(
    std::size_t period, const std::vector<core::RaPeriodDirective>& directives) {
  if (!started_) throw std::logic_error("WorkerSupervisor: not started");
  if (directives.size() != environments_.size())
    throw std::invalid_argument("WorkerSupervisor: directive count mismatch");

  // Planned process faults fire at the period boundary: apply the
  // physical action to the hosting worker, then respawn + restore ALL its
  // hosted RAs immediately — co-hosted RAs have not run this period yet,
  // so they lose nothing and trajectories stay worker-count independent.
  std::vector<bool> fault_handled(workers_.size(), false);
  for (std::size_t j = 0; j < directives.size(); ++j) {
    const ProcessFaultKind fault = directives[j].fault;
    if (fault != ProcessFaultKind::Kill && fault != ProcessFaultKind::HalfClose)
      continue;
    const std::size_t w = worker_of(j);
    if (fault_handled[w]) continue;
    fault_handled[w] = true;
    Worker& worker = workers_[w];
    if (worker.alive) {
      if (fault == ProcessFaultKind::HalfClose && worker.fd >= 0) {
        // Half-close: the worker sees EOF on its next read and exits;
        // declare_dead reaps it either way.
        ::shutdown(worker.fd, SHUT_RDWR);
      }
      declare_dead(w, fault == ProcessFaultKind::Kill ? obs::EventKind::WorkerKill
                                                      : obs::EventKind::WorkerExit);
    }
    // Planned faults restore immediately and do not count against the
    // unplanned restart-storm budget.
    ++workers_[w].restarts;
    respawn(w);
  }

  std::vector<core::RaPeriodTrace> traces(environments_.size());
  collect_traces_ = &traces;
  collect_period_ = period;
  collect_have_trace_.assign(environments_.size(), false);
  collect_have_blob_.assign(environments_.size(), false);
  collecting_ = true;

  // Dispatch one RunPeriod frame per live worker.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    Worker& worker = workers_[w];
    if (!worker.alive) continue;
    RunPeriodPayload payload;
    payload.period = period;
    payload.telemetry_every = metrics_enabled() ? config_.telemetry_every : 0;
    for (std::uint32_t ra : worker.hosted) {
      payload.ras.push_back(ra);
      payload.directives.push_back(directives[ra]);
    }
    send_to(w, FrameType::RunPeriod, kConnectionScope, encode_run_period(payload));
  }

  // A trace is expected from every directed RA whose worker survived
  // dispatch; a worker death (EOF) removes its pending RAs from the wait.
  auto outstanding = [&]() -> bool {
    for (std::size_t j = 0; j < directives.size(); ++j) {
      if (!directives[j].run) continue;
      if (!workers_[worker_of(j)].alive) continue;
      if (!collect_have_trace_[j] || !collect_have_blob_[j]) return true;
    }
    return false;
  };
  const bool complete = pump([&] { return !outstanding(); }, config_.trace_deadline_ms);
  if (!complete) {
    // Stragglers past the deadline are hung: kill them. Their restore is
    // end_period's job (unplanned path, backoff-capped).
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!workers_[w].alive) continue;
      bool pending = false;
      for (std::uint32_t ra : workers_[w].hosted) {
        if (directives[ra].run &&
            (!collect_have_trace_[ra] || !collect_have_blob_[ra])) {
          pending = true;
        }
      }
      if (pending) declare_dead(w, obs::EventKind::WorkerHung);
    }
  }
  collecting_ = false;
  collect_traces_ = nullptr;

  // An RA whose trace arrived but whose state blob did not cannot be
  // treated as having run: its restore point would be stale. Degrade it.
  for (std::size_t j = 0; j < traces.size(); ++j) {
    if (traces[j].ran && !collect_have_blob_[j]) traces[j] = core::RaPeriodTrace{};
  }
  publish_liveness();
  return traces;
}

bool WorkerSupervisor::send_coordination(std::size_t /*period*/,
                                         const core::RcLearningMessage& message) {
  const std::size_t ra = message.ra;
  if (ra >= environments_.size()) return false;
  const std::size_t w = worker_of(ra);
  if (!workers_[w].alive) return false;
  CoordinationPayload payload;
  payload.z_minus_y = message.z_minus_y;
  if (!send_to(w, FrameType::Coordination, static_cast<std::uint32_t>(ra),
               encode_coordination(payload))) {
    return false;
  }
  coordination_cache_[ra] = message.z_minus_y;
  return true;
}

void WorkerSupervisor::end_period(std::size_t /*period*/) {
  const std::int64_t now = now_ms();
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    Worker& worker = workers_[w];
    if (worker.alive) {
      // A full healthy period clears the storm budget.
      worker.restart_attempts = 0;
      worker.backoff_ms = config_.restart_backoff_initial_ms;
      continue;
    }
    if (worker.failed || now < worker.next_restart_ms) continue;
    ++worker.restart_attempts;
    if (worker.restart_attempts > config_.max_restart_attempts) {
      worker.failed = true;
      ES_LOG(Error) << "worker " << w
                    << " exceeded max restart attempts; leaving it down";
      continue;
    }
    worker.backoff_ms = worker.backoff_ms <= 0
                            ? config_.restart_backoff_initial_ms
                            : std::min(worker.backoff_ms * 2,
                                       config_.restart_backoff_max_ms);
    worker.next_restart_ms = now + worker.backoff_ms;
    ++worker.restarts;
    respawn(w);
  }
  publish_liveness();
}

std::string WorkerSupervisor::environment_state(std::size_t ra) {
  if (ra >= environments_.size())
    throw std::invalid_argument("WorkerSupervisor: bad RA index");
  const std::size_t w = worker_of(ra);
  Worker& worker = workers_[w];
  if (!worker.alive && !worker.failed) respawn(w);
  if (!worker.alive)
    throw std::runtime_error("WorkerSupervisor: RA " + std::to_string(ra) +
                             "'s worker is down; no fresh state available");
  const std::uint64_t mark = env_state_mark_[ra];
  if (!send_to(w, FrameType::Snapshot, static_cast<std::uint32_t>(ra), ""))
    throw std::runtime_error("WorkerSupervisor: snapshot request failed");
  if (!pump([&] { return env_state_mark_[ra] != mark || !worker.alive; },
            config_.io_deadline_ms) ||
      !worker.alive) {
    declare_dead(w, obs::EventKind::WorkerHung);
    throw std::runtime_error("WorkerSupervisor: snapshot of RA " +
                             std::to_string(ra) + " timed out");
  }
  return blob_cache_[ra];
}

void WorkerSupervisor::restore_environment(std::size_t ra, const std::string& blob) {
  if (ra >= environments_.size())
    throw std::invalid_argument("WorkerSupervisor: bad RA index");
  const std::size_t w = worker_of(ra);
  Worker& worker = workers_[w];
  blob_cache_[ra] = blob;
  // The blob is authoritative post-coordination state (a checkpoint
  // section); replaying an older vector on top would regress it.
  coordination_cache_[ra].reset();
  if (!worker.alive && !worker.failed) {
    // respawn() pushes the fresh blob_cache_ to every hosted RA.
    if (!respawn(w))
      throw std::runtime_error("WorkerSupervisor: restore respawn failed");
    return;
  }
  if (!worker.alive)
    throw std::runtime_error("WorkerSupervisor: RA " + std::to_string(ra) +
                             "'s worker is permanently failed");
  const std::uint64_t mark = ack_mark_[ra];
  if (!send_to(w, FrameType::Restore, static_cast<std::uint32_t>(ra),
               std::string(blob))) {
    throw std::runtime_error("WorkerSupervisor: restore send failed");
  }
  if (!pump([&] { return ack_mark_[ra] != mark || !worker.alive; },
            config_.io_deadline_ms) ||
      !worker.alive) {
    throw std::runtime_error("WorkerSupervisor: restore of RA " +
                             std::to_string(ra) + " not acknowledged");
  }
}

}  // namespace edgeslice::ipc
