#include "ipc/event_loop.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>

namespace edgeslice::ipc {

namespace {

std::uint32_t stored_payload_crc(const char* header) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<std::uint8_t>(header[32 + i]);
  return v;
}

}  // namespace

std::vector<Frame> FrameAssembler::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
  std::vector<Frame> frames;
  for (;;) {
    if (buffer_.size() < kFrameHeaderSize) break;
    Frame frame;
    std::uint64_t payload_len = 0;
    decode_frame_header(buffer_.data(), frame, payload_len);  // throws
    if (buffer_.size() < kFrameHeaderSize + payload_len) break;
    frame.payload = buffer_.substr(kFrameHeaderSize,
                                   static_cast<std::size_t>(payload_len));
    verify_frame_payload(stored_payload_crc(buffer_.data()), frame.payload);
    if (frame.seq != next_seq_) {
      throw std::runtime_error("ipc frame: seq break (expected " +
                               std::to_string(next_seq_) + ", got " +
                               std::to_string(frame.seq) + ")");
    }
    ++next_seq_;
    buffer_.erase(0, kFrameHeaderSize + static_cast<std::size_t>(payload_len));
    frames.push_back(std::move(frame));
  }
  return frames;
}

void PollLoop::add(int fd, FrameHandler on_frame, CloseHandler on_close) {
  if (find(fd) != nullptr)
    throw std::invalid_argument("PollLoop: fd already registered");
  Connection connection;
  connection.fd = fd;
  connection.on_frame = std::move(on_frame);
  connection.on_close = std::move(on_close);
  connections_.push_back(std::move(connection));
}

void PollLoop::remove(int fd) {
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(),
                     [fd](const Connection& c) { return c.fd == fd; }),
      connections_.end());
}

bool PollLoop::has(int fd) const {
  for (const Connection& c : connections_) {
    if (c.fd == fd) return true;
  }
  return false;
}

void PollLoop::add_listener(int fd, AcceptHandler on_accept) {
  for (const Listener& l : listeners_) {
    if (l.fd == fd) throw std::invalid_argument("PollLoop: listener already registered");
  }
  Listener listener;
  listener.fd = fd;
  listener.on_accept = std::move(on_accept);
  listeners_.push_back(std::move(listener));
}

void PollLoop::remove_listener(int fd) {
  listeners_.erase(
      std::remove_if(listeners_.begin(), listeners_.end(),
                     [fd](const Listener& l) { return l.fd == fd; }),
      listeners_.end());
}

PollLoop::Connection* PollLoop::find(int fd) {
  for (Connection& c : connections_) {
    if (c.fd == fd) return &c;
  }
  return nullptr;
}

bool PollLoop::run_until(const std::function<bool()>& done, int deadline_ms) {
  const std::int64_t deadline = now_ms() + deadline_ms;
  char chunk[65536];
  while (!done()) {
    const std::int64_t remaining = deadline - now_ms();
    if (remaining <= 0) return false;
    // With no listener, an empty connection set can never satisfy done();
    // a listener keeps the loop alive waiting for its first accept.
    if (connections_.empty() && listeners_.empty()) return false;

    std::vector<pollfd> pfds;
    pfds.reserve(listeners_.size() + connections_.size());
    const std::size_t listener_count = listeners_.size();
    for (const Listener& l : listeners_) pfds.push_back({l.fd, POLLIN, 0});
    for (const Connection& c : connections_) pfds.push_back({c.fd, POLLIN, 0});
    const int slice = static_cast<int>(remaining > 100 ? 100 : remaining);
    const int ready = ::poll(pfds.data(), pfds.size(), slice);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("PollLoop: poll failed");
    }
    if (ready == 0) continue;

    // Listeners first: a freshly accepted connection's first bytes are
    // picked up by the next poll round.
    for (std::size_t i = 0; i < listener_count; ++i) {
      if ((pfds[i].revents & POLLIN) == 0) continue;
      bool still_registered = false;
      AcceptHandler on_accept;
      for (const Listener& l : listeners_) {
        if (l.fd == pfds[i].fd) {
          still_registered = true;
          on_accept = l.on_accept;
          break;
        }
      }
      if (!still_registered) continue;
      for (;;) {
        const int client = ::accept4(pfds[i].fd, nullptr, nullptr, SOCK_NONBLOCK);
        if (client < 0) {
          if (errno == EINTR) continue;
          break;  // EAGAIN (drained) or a transient accept error
        }
        on_accept(client);
      }
    }

    // Service by fd, re-looking each one up: a handler may remove any
    // connection (even the one being serviced) while we iterate.
    for (std::size_t i = listener_count; i < pfds.size(); ++i) {
      const pollfd& pfd = pfds[i];
      if (pfd.revents == 0) continue;
      Connection* connection = find(pfd.fd);
      if (connection == nullptr) continue;
      bool closed = false;
      IoResult reason = IoResult::Closed;
      std::vector<Frame> frames;
      if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        // Drain everything available now; EOF/error after data still
        // delivers the data first.
        for (;;) {
          const ssize_t n = ::read(pfd.fd, chunk, sizeof(chunk));
          if (n > 0) {
            try {
              std::vector<Frame> batch =
                  connection->assembler.feed(chunk, static_cast<std::size_t>(n));
              frames.insert(frames.end(),
                            std::make_move_iterator(batch.begin()),
                            std::make_move_iterator(batch.end()));
            } catch (const std::exception&) {
              closed = true;
              reason = IoResult::Error;  // protocol violation: corrupt channel
              break;
            }
            continue;
          }
          if (n == 0) {
            closed = true;
            reason = IoResult::Closed;
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          closed = true;
          reason = errno == ECONNRESET ? IoResult::Closed : IoResult::Error;
          break;
        }
      }
      const FrameHandler on_frame = connection->on_frame;
      const CloseHandler on_close = connection->on_close;
      const int fd = pfd.fd;
      for (Frame& frame : frames) {
        if (!has(fd)) break;  // a handler removed this connection
        on_frame(fd, std::move(frame));
      }
      if (closed && has(fd)) {
        remove(fd);
        on_close(fd, reason);
      }
    }
  }
  return true;
}

}  // namespace edgeslice::ipc
