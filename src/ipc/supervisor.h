// The supervised control plane over RA worker processes.
//
// WorkerSupervisor forks `workers` processes (round-robin RA assignment,
// RA j -> worker j % N), drives them through the core::RaTransport
// interface, and owns every piece of failure policy (DESIGN.md "Process
// model & supervision"):
//
//  * per-send deadlines with bounded exponential backoff (SendOptions);
//  * a per-period trace deadline — a worker that has not delivered its
//    traces in time is declared hung, SIGKILLed, and restarted;
//  * crash restore from cached state: the supervisor keeps, per RA, the
//    last post-intervals environment blob (shipped by the worker with
//    every trace) plus the last successfully delivered coordination
//    vector. Restoring a fresh worker replays blob-then-coordination,
//    which reconstructs the exact post-coordination state because
//    set_coordination only stores the vector;
//  * restart-storm capping: consecutive unplanned restarts back off
//    exponentially and stop at max_restart_attempts — a permanently
//    failing worker stays down and its RAs column-freeze, bounding the
//    blast radius instead of fork-bombing the host;
//  * planned process faults (FaultInjector::process_fault) are applied at
//    the period boundary: SIGKILL or half-close, then an immediate
//    respawn + restore of every hosted RA, so the plan's ra_crashed()
//    bookkeeping — which single-process runs use directly — matches what
//    physically happened and trajectories stay bit-identical for any
//    worker count.
//
// start() forks; call it before creating any threads (thread pools,
// telemetry) so the children are single-threaded images. Later respawns
// fork from a possibly-threaded parent; workers therefore disable
// metrics and touch no parent locks.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/policies.h"
#include "core/ra_transport.h"
#include "env/environment.h"
#include "ipc/event_loop.h"
#include "ipc/frame.h"
#include "obs/aggregator.h"
#include "obs/event_log.h"

namespace edgeslice::ipc {

struct SupervisorConfig {
  /// Worker process count; RAs are assigned round-robin (RA j hosted by
  /// worker j % workers).
  std::size_t workers = 2;
  /// How long one period's trace collection may take before stragglers
  /// are declared hung and killed.
  int trace_deadline_ms = 30000;
  /// Deadline for small control exchanges (hello, snapshot, restore ack).
  int io_deadline_ms = 10000;
  /// Unplanned-restart backoff: first retry after `initial`, doubling to
  /// `max`; after `max_restart_attempts` consecutive failures the worker
  /// is permanently failed (its RAs stay frozen).
  int restart_backoff_initial_ms = 10;
  int restart_backoff_max_ms = 2000;
  int max_restart_attempts = 5;
  /// Workers ship a TelemetrySnapshot/TelemetryEvents pair every N
  /// periods (plus a final flush on clean shutdown). 0 disables the
  /// fleet telemetry plane entirely.
  std::uint64_t telemetry_every = 1;
  /// Per-frame send policy (deadline + in-call backoff).
  SendOptions send;
};

class WorkerSupervisor final : public core::RaTransport {
 public:
  /// `environments` / `policies` are indexed by RA and must outlive the
  /// supervisor. The parent-side objects are used only (a) to capture the
  /// initial state blobs before the first fork and (b) inside the forked
  /// children; the parent never steps them.
  WorkerSupervisor(std::vector<env::RaEnvironment*> environments,
                   std::vector<core::RaPolicy*> policies,
                   SupervisorConfig config = {});
  ~WorkerSupervisor() override;
  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  /// Capture initial blobs and fork all workers. Call exactly once,
  /// before any threads exist in this process. Throws on fork/socket
  /// failure.
  void start();
  /// Shut every worker down (Shutdown frame, then SIGKILL + reap).
  /// Idempotent; the destructor calls it.
  void stop();
  bool started() const { return started_; }

  // core::RaTransport
  std::size_t ra_count() const override { return environments_.size(); }
  std::vector<core::RaPeriodTrace> run_intervals(
      std::size_t period,
      const std::vector<core::RaPeriodDirective>& directives) override;
  bool send_coordination(std::size_t period,
                         const core::RcLearningMessage& message) override;
  void end_period(std::size_t period) override;
  std::string environment_state(std::size_t ra) override;
  void restore_environment(std::size_t ra, const std::string& blob) override;

  // Introspection (tests, benches, health reporting).
  std::size_t worker_count() const { return workers_.size(); }
  std::size_t worker_of(std::size_t ra) const { return ra % workers_.size(); }
  bool worker_alive(std::size_t worker) const { return workers_[worker].alive; }
  bool worker_failed(std::size_t worker) const { return workers_[worker].failed; }
  pid_t worker_pid(std::size_t worker) const { return workers_[worker].pid; }
  std::size_t restart_count(std::size_t worker) const {
    return workers_[worker].restarts;
  }
  /// The fleet telemetry merger (tests poke at its bookkeeping).
  const obs::TelemetryAggregator& aggregator() const { return aggregator_; }

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    std::uint64_t send_seq = 0;
    std::vector<std::uint32_t> hosted;  // global RA ids, ascending
    bool alive = false;
    bool failed = false;  // restart-storm cap tripped: stays down
    bool hello_seen = false;
    int restart_attempts = 0;  // consecutive unplanned restarts
    std::size_t restarts = 0;  // lifetime restarts (introspection)
    int backoff_ms = 0;
    std::int64_t next_restart_ms = 0;  // earliest allowed unplanned respawn
    std::deque<Frame> inbox;           // frames not consumed by a handler
  };

  void spawn(std::size_t worker);
  /// Restore every hosted RA of a freshly spawned worker from the cached
  /// blobs (+ coordination replay). Throws on failure.
  void restore_hosted(std::size_t worker);
  /// Tear a worker down: deregister, close, SIGKILL, reap. Records
  /// `kind` in the flight recorder. Safe on an already-dead worker.
  void declare_dead(std::size_t worker, obs::EventKind kind);
  /// spawn + hello + restore_hosted; returns false (worker left dead) on
  /// any failure.
  bool respawn(std::size_t worker);
  bool send_to(std::size_t worker, FrameType type, std::uint32_t ra,
               std::string payload);
  void on_frame(std::size_t worker, Frame&& frame);
  /// Pump the loop until `done` or deadline; never throws on worker
  /// failure (deaths surface through alive flags).
  bool pump(const std::function<bool()>& done, int deadline_ms);
  void publish_liveness();
  std::size_t alive_count() const;

  std::vector<env::RaEnvironment*> environments_;
  std::vector<core::RaPolicy*> policies_;
  SupervisorConfig config_;
  std::vector<Worker> workers_;
  PollLoop loop_;
  obs::TelemetryAggregator aggregator_;
  bool started_ = false;
  /// True inside stop(): deaths there are clean shutdowns, not gaps.
  bool stopping_ = false;

  // Per-RA restore caches (see header comment).
  std::vector<std::string> blob_cache_;
  std::vector<std::optional<std::vector<double>>> coordination_cache_;
  // Receipt marks, bumped by on_frame; exchanges wait for a change.
  std::vector<std::uint64_t> env_state_mark_;
  std::vector<std::uint64_t> ack_mark_;

  // Active trace collection (run_intervals).
  std::size_t collect_period_ = 0;
  bool collecting_ = false;
  std::vector<core::RaPeriodTrace>* collect_traces_ = nullptr;
  std::vector<bool> collect_have_trace_;
  std::vector<bool> collect_have_blob_;
};

}  // namespace edgeslice::ipc
