// Frame payload codecs (FORMATS.md "ESFR wire frame", payload tables).
//
// Every payload is binio-serialized (little-endian, doubles as IEEE-754
// bit patterns) so a trace that crosses the wire is byte-for-byte the
// data an in-process run would have produced. EnvState / Snapshot /
// Restore payloads are NOT defined here: their bodies are existing ESCK
// Environment section payloads carried verbatim (or empty, for the
// Snapshot request) — see src/ckpt/format.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace_span.h"
#include "core/ra_transport.h"
#include "obs/event_log.h"

namespace edgeslice::ipc {

/// Hello (worker -> supervisor): who am I, whom do I host.
struct HelloPayload {
  std::uint64_t worker_index = 0;
  std::vector<std::uint32_t> hosted_ras;
};

/// RunPeriod (supervisor -> worker): directives for the worker's hosted
/// RAs, in ascending RA order. RAs absent from the list are not run.
struct RunPeriodPayload {
  std::uint64_t period = 0;
  /// Ship a TelemetrySnapshot/TelemetryEvents pair back every N periods
  /// (0 disables worker telemetry entirely).
  std::uint64_t telemetry_every = 1;
  std::vector<std::uint32_t> ras;
  std::vector<core::RaPeriodDirective> directives;  // parallel to `ras`
};

/// Trace (worker -> supervisor): one RA's completed period.
struct TracePayload {
  std::uint64_t period = 0;
  core::RaPeriodTrace trace;
};

/// Coordination (supervisor -> worker): RC-L vector for one RA.
struct CoordinationPayload {
  std::uint64_t period = 0;
  std::vector<double> z_minus_y;
};

std::string encode_hello(const HelloPayload& payload);
HelloPayload decode_hello(const std::string& bytes);

std::string encode_run_period(const RunPeriodPayload& payload);
RunPeriodPayload decode_run_period(const std::string& bytes);

std::string encode_trace(const TracePayload& payload);
TracePayload decode_trace(const std::string& bytes);

std::string encode_coordination(const CoordinationPayload& payload);
CoordinationPayload decode_coordination(const std::string& bytes);

/// Ack / Ping / Pong payloads: a single u64.
std::string encode_u64(std::uint64_t value);
std::uint64_t decode_u64(const std::string& bytes, const char* context);

/// TelemetrySnapshot (worker -> supervisor): the worker's full cumulative
/// metrics registry plus the per-(path, period) span-aggregate deltas
/// since its previous snapshot. Cumulative metrics make the frame
/// idempotent — the aggregator republishes, never adds twice.
struct TelemetrySnapshotPayload {
  std::uint64_t period = 0;
  MetricsSnapshot metrics;
  std::vector<SpanPeriodStats> spans;
};

/// TelemetryEvents (worker -> supervisor): flight-recorder events drained
/// since the previous ship (seq-cursor based), origin timestamps intact.
struct TelemetryEventsPayload {
  std::vector<obs::Event> events;
};

std::string encode_telemetry_snapshot(const TelemetrySnapshotPayload& payload);
TelemetrySnapshotPayload decode_telemetry_snapshot(const std::string& bytes);

std::string encode_telemetry_events(const TelemetryEventsPayload& payload);
TelemetryEventsPayload decode_telemetry_events(const std::string& bytes);

/// Async-signal-safe encoder of one complete TelemetryEvents FRAME
/// (header + payload) into a caller-owned buffer: no allocation, no
/// locks, no iostreams — the worker's crash-flush hook builds its final
/// best-effort frame with this. Returns the number of bytes written, or
/// 0 when `cap` cannot hold all `count` events.
std::size_t encode_telemetry_events_frame(char* buf, std::size_t cap,
                                          std::uint64_t seq,
                                          const obs::Event* events,
                                          std::size_t count);

}  // namespace edgeslice::ipc
