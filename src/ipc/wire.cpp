#include "ipc/wire.h"

#include <sstream>
#include <stdexcept>

#include "common/binio.h"

namespace edgeslice::ipc {

namespace {

void write_step(std::ostream& out, const env::StepResult& step) {
  write_f64_vector(out, step.state);
  write_f64_vector(out, step.next_state);
  write_f64(out, step.reward);
  write_f64_vector(out, step.performance);
  write_f64_vector(out, step.queue_lengths);
  write_f64_vector(out, step.service_rates);
  write_f64(out, step.constraint_violation);
}

env::StepResult read_step(std::istream& in) {
  env::StepResult step;
  step.state = read_f64_vector(in, "trace step state");
  step.next_state = read_f64_vector(in, "trace step next_state");
  step.reward = read_f64(in, "trace step reward");
  step.performance = read_f64_vector(in, "trace step performance");
  step.queue_lengths = read_f64_vector(in, "trace step queue_lengths");
  step.service_rates = read_f64_vector(in, "trace step service_rates");
  step.constraint_violation = read_f64(in, "trace step constraint_violation");
  return step;
}

}  // namespace

std::string encode_hello(const HelloPayload& payload) {
  std::ostringstream out;
  write_u64(out, payload.worker_index);
  write_u64(out, payload.hosted_ras.size());
  for (std::uint32_t ra : payload.hosted_ras) write_u32(out, ra);
  return out.str();
}

HelloPayload decode_hello(const std::string& bytes) {
  std::istringstream in(bytes);
  HelloPayload payload;
  payload.worker_index = read_u64(in, "hello worker_index");
  const std::uint64_t count = read_u64(in, "hello hosted count");
  payload.hosted_ras.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i)
    payload.hosted_ras.push_back(read_u32(in, "hello hosted ra"));
  return payload;
}

std::string encode_run_period(const RunPeriodPayload& payload) {
  if (payload.ras.size() != payload.directives.size())
    throw std::invalid_argument("run_period payload: ras/directives mismatch");
  std::ostringstream out;
  write_u64(out, payload.period);
  write_u64(out, payload.ras.size());
  for (std::size_t i = 0; i < payload.ras.size(); ++i) {
    const core::RaPeriodDirective& d = payload.directives[i];
    write_u32(out, payload.ras[i]);
    write_u8(out, d.run ? 1 : 0);
    write_u8(out, d.has_derate ? 1 : 0);
    for (double v : d.derate) write_f64(out, v);
    write_u32(out, d.stall_ms);
    // d.fault is supervisor-side (physical kill/half-close) and never
    // crosses the wire; abort_run does — it is the worker's own chaos
    // action.
    write_u8(out, d.abort_run ? 1 : 0);
  }
  return out.str();
}

RunPeriodPayload decode_run_period(const std::string& bytes) {
  std::istringstream in(bytes);
  RunPeriodPayload payload;
  payload.period = read_u64(in, "run_period period");
  const std::uint64_t count = read_u64(in, "run_period entry count");
  payload.ras.reserve(count);
  payload.directives.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    payload.ras.push_back(read_u32(in, "run_period ra"));
    core::RaPeriodDirective d;
    d.run = read_u8(in, "run_period run flag") != 0;
    d.has_derate = read_u8(in, "run_period derate flag") != 0;
    for (double& v : d.derate) v = read_f64(in, "run_period derate");
    d.stall_ms = read_u32(in, "run_period stall_ms");
    d.abort_run = read_u8(in, "run_period abort flag") != 0;
    payload.directives.push_back(d);
  }
  return payload;
}

std::string encode_trace(const TracePayload& payload) {
  std::ostringstream out;
  write_u64(out, payload.period);
  write_u8(out, payload.trace.ran ? 1 : 0);
  write_u64(out, payload.trace.steps.size());
  for (const env::StepResult& step : payload.trace.steps) write_step(out, step);
  write_u64(out, payload.trace.actions.size());
  for (const std::vector<double>& action : payload.trace.actions)
    write_f64_vector(out, action);
  return out.str();
}

TracePayload decode_trace(const std::string& bytes) {
  std::istringstream in(bytes);
  TracePayload payload;
  payload.period = read_u64(in, "trace period");
  payload.trace.ran = read_u8(in, "trace ran flag") != 0;
  const std::uint64_t steps = read_u64(in, "trace step count");
  payload.trace.steps.reserve(steps);
  for (std::uint64_t i = 0; i < steps; ++i)
    payload.trace.steps.push_back(read_step(in));
  const std::uint64_t actions = read_u64(in, "trace action count");
  payload.trace.actions.reserve(actions);
  for (std::uint64_t i = 0; i < actions; ++i)
    payload.trace.actions.push_back(read_f64_vector(in, "trace action"));
  return payload;
}

std::string encode_coordination(const CoordinationPayload& payload) {
  std::ostringstream out;
  write_u64(out, payload.period);
  write_f64_vector(out, payload.z_minus_y);
  return out.str();
}

CoordinationPayload decode_coordination(const std::string& bytes) {
  std::istringstream in(bytes);
  CoordinationPayload payload;
  payload.period = read_u64(in, "coordination period");
  payload.z_minus_y = read_f64_vector(in, "coordination vector");
  return payload;
}

std::string encode_u64(std::uint64_t value) {
  std::ostringstream out;
  write_u64(out, value);
  return out.str();
}

std::uint64_t decode_u64(const std::string& bytes, const char* context) {
  std::istringstream in(bytes);
  return read_u64(in, context);
}

}  // namespace edgeslice::ipc
