#include "ipc/wire.h"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "common/binio.h"
#include "ipc/frame.h"

namespace edgeslice::ipc {

namespace {

void write_step(std::ostream& out, const env::StepResult& step) {
  write_f64_vector(out, step.state);
  write_f64_vector(out, step.next_state);
  write_f64(out, step.reward);
  write_f64_vector(out, step.performance);
  write_f64_vector(out, step.queue_lengths);
  write_f64_vector(out, step.service_rates);
  write_f64(out, step.constraint_violation);
}

env::StepResult read_step(std::istream& in) {
  env::StepResult step;
  step.state = read_f64_vector(in, "trace step state");
  step.next_state = read_f64_vector(in, "trace step next_state");
  step.reward = read_f64(in, "trace step reward");
  step.performance = read_f64_vector(in, "trace step performance");
  step.queue_lengths = read_f64_vector(in, "trace step queue_lengths");
  step.service_rates = read_f64_vector(in, "trace step service_rates");
  step.constraint_violation = read_f64(in, "trace step constraint_violation");
  return step;
}

}  // namespace

std::string encode_hello(const HelloPayload& payload) {
  std::ostringstream out;
  write_u64(out, payload.worker_index);
  write_u64(out, payload.hosted_ras.size());
  for (std::uint32_t ra : payload.hosted_ras) write_u32(out, ra);
  return out.str();
}

HelloPayload decode_hello(const std::string& bytes) {
  std::istringstream in(bytes);
  HelloPayload payload;
  payload.worker_index = read_u64(in, "hello worker_index");
  const std::uint64_t count = read_u64(in, "hello hosted count");
  payload.hosted_ras.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i)
    payload.hosted_ras.push_back(read_u32(in, "hello hosted ra"));
  return payload;
}

std::string encode_run_period(const RunPeriodPayload& payload) {
  if (payload.ras.size() != payload.directives.size())
    throw std::invalid_argument("run_period payload: ras/directives mismatch");
  std::ostringstream out;
  write_u64(out, payload.period);
  write_u64(out, payload.telemetry_every);
  write_u64(out, payload.ras.size());
  for (std::size_t i = 0; i < payload.ras.size(); ++i) {
    const core::RaPeriodDirective& d = payload.directives[i];
    write_u32(out, payload.ras[i]);
    write_u8(out, d.run ? 1 : 0);
    write_u8(out, d.has_derate ? 1 : 0);
    for (double v : d.derate) write_f64(out, v);
    write_u32(out, d.stall_ms);
    // d.fault is supervisor-side (physical kill/half-close) and never
    // crosses the wire; abort_run does — it is the worker's own chaos
    // action.
    write_u8(out, d.abort_run ? 1 : 0);
  }
  return out.str();
}

RunPeriodPayload decode_run_period(const std::string& bytes) {
  std::istringstream in(bytes);
  RunPeriodPayload payload;
  payload.period = read_u64(in, "run_period period");
  payload.telemetry_every = read_u64(in, "run_period telemetry_every");
  const std::uint64_t count = read_u64(in, "run_period entry count");
  payload.ras.reserve(count);
  payload.directives.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    payload.ras.push_back(read_u32(in, "run_period ra"));
    core::RaPeriodDirective d;
    d.run = read_u8(in, "run_period run flag") != 0;
    d.has_derate = read_u8(in, "run_period derate flag") != 0;
    for (double& v : d.derate) v = read_f64(in, "run_period derate");
    d.stall_ms = read_u32(in, "run_period stall_ms");
    d.abort_run = read_u8(in, "run_period abort flag") != 0;
    payload.directives.push_back(d);
  }
  return payload;
}

std::string encode_trace(const TracePayload& payload) {
  std::ostringstream out;
  write_u64(out, payload.period);
  write_u8(out, payload.trace.ran ? 1 : 0);
  write_u64(out, payload.trace.steps.size());
  for (const env::StepResult& step : payload.trace.steps) write_step(out, step);
  write_u64(out, payload.trace.actions.size());
  for (const std::vector<double>& action : payload.trace.actions)
    write_f64_vector(out, action);
  return out.str();
}

TracePayload decode_trace(const std::string& bytes) {
  std::istringstream in(bytes);
  TracePayload payload;
  payload.period = read_u64(in, "trace period");
  payload.trace.ran = read_u8(in, "trace ran flag") != 0;
  const std::uint64_t steps = read_u64(in, "trace step count");
  payload.trace.steps.reserve(steps);
  for (std::uint64_t i = 0; i < steps; ++i)
    payload.trace.steps.push_back(read_step(in));
  const std::uint64_t actions = read_u64(in, "trace action count");
  payload.trace.actions.reserve(actions);
  for (std::uint64_t i = 0; i < actions; ++i)
    payload.trace.actions.push_back(read_f64_vector(in, "trace action"));
  return payload;
}

std::string encode_coordination(const CoordinationPayload& payload) {
  std::ostringstream out;
  write_u64(out, payload.period);
  write_f64_vector(out, payload.z_minus_y);
  return out.str();
}

CoordinationPayload decode_coordination(const std::string& bytes) {
  std::istringstream in(bytes);
  CoordinationPayload payload;
  payload.period = read_u64(in, "coordination period");
  payload.z_minus_y = read_f64_vector(in, "coordination vector");
  return payload;
}

std::string encode_u64(std::uint64_t value) {
  std::ostringstream out;
  write_u64(out, value);
  return out.str();
}

std::uint64_t decode_u64(const std::string& bytes, const char* context) {
  std::istringstream in(bytes);
  return read_u64(in, context);
}

namespace {

void write_histogram_state(std::ostream& out, const HistogramState& s) {
  write_u64(out, s.count);
  write_f64(out, s.mean);
  write_f64(out, s.m2);
  write_f64(out, s.min);
  write_f64(out, s.max);
  write_f64(out, s.total);
  write_u64(out, s.zero_count);
  write_u64(out, s.positive.size());
  for (const auto& [bucket, count] : s.positive) {
    write_u32(out, bucket);
    write_u64(out, count);
  }
  write_u64(out, s.negative.size());
  for (const auto& [bucket, count] : s.negative) {
    write_u32(out, bucket);
    write_u64(out, count);
  }
}

HistogramState read_histogram_state(std::istream& in) {
  HistogramState s;
  s.count = read_u64(in, "telemetry hist count");
  s.mean = read_f64(in, "telemetry hist mean");
  s.m2 = read_f64(in, "telemetry hist m2");
  s.min = read_f64(in, "telemetry hist min");
  s.max = read_f64(in, "telemetry hist max");
  s.total = read_f64(in, "telemetry hist total");
  s.zero_count = read_u64(in, "telemetry hist zero_count");
  const std::uint64_t positive = read_u64(in, "telemetry hist positive count");
  s.positive.reserve(positive);
  for (std::uint64_t i = 0; i < positive; ++i) {
    const std::uint32_t bucket = read_u32(in, "telemetry hist bucket");
    s.positive.emplace_back(bucket, read_u64(in, "telemetry hist bucket count"));
  }
  const std::uint64_t negative = read_u64(in, "telemetry hist negative count");
  s.negative.reserve(negative);
  for (std::uint64_t i = 0; i < negative; ++i) {
    const std::uint32_t bucket = read_u32(in, "telemetry hist bucket");
    s.negative.emplace_back(bucket, read_u64(in, "telemetry hist bucket count"));
  }
  return s;
}

}  // namespace

std::string encode_telemetry_snapshot(const TelemetrySnapshotPayload& payload) {
  std::ostringstream out;
  write_u64(out, payload.period);
  write_u64(out, payload.metrics.counters.size());
  for (const auto& [name, value] : payload.metrics.counters) {
    write_string(out, name);
    write_u64(out, value);
  }
  write_u64(out, payload.metrics.gauges.size());
  for (const auto& [name, value] : payload.metrics.gauges) {
    write_string(out, name);
    write_f64(out, value);
  }
  write_u64(out, payload.metrics.histograms.size());
  for (const auto& [name, state] : payload.metrics.histograms) {
    write_string(out, name);
    write_histogram_state(out, state);
  }
  write_u64(out, payload.spans.size());
  for (const SpanPeriodStats& span : payload.spans) {
    write_string(out, span.path);
    write_u64(out, span.period);
    write_u64(out, span.stats.count);
    write_f64(out, span.stats.total_s);
    write_f64(out, span.stats.min_s);
    write_f64(out, span.stats.max_s);
  }
  return out.str();
}

TelemetrySnapshotPayload decode_telemetry_snapshot(const std::string& bytes) {
  std::istringstream in(bytes);
  TelemetrySnapshotPayload payload;
  payload.period = read_u64(in, "telemetry period");
  const std::uint64_t counters = read_u64(in, "telemetry counter count");
  payload.metrics.counters.reserve(counters);
  for (std::uint64_t i = 0; i < counters; ++i) {
    std::string name = read_string(in, "telemetry counter name");
    payload.metrics.counters.emplace_back(std::move(name),
                                          read_u64(in, "telemetry counter value"));
  }
  const std::uint64_t gauges = read_u64(in, "telemetry gauge count");
  payload.metrics.gauges.reserve(gauges);
  for (std::uint64_t i = 0; i < gauges; ++i) {
    std::string name = read_string(in, "telemetry gauge name");
    payload.metrics.gauges.emplace_back(std::move(name),
                                        read_f64(in, "telemetry gauge value"));
  }
  const std::uint64_t histograms = read_u64(in, "telemetry histogram count");
  payload.metrics.histograms.reserve(histograms);
  for (std::uint64_t i = 0; i < histograms; ++i) {
    std::string name = read_string(in, "telemetry histogram name");
    payload.metrics.histograms.emplace_back(std::move(name), read_histogram_state(in));
  }
  const std::uint64_t spans = read_u64(in, "telemetry span count");
  payload.spans.reserve(spans);
  for (std::uint64_t i = 0; i < spans; ++i) {
    SpanPeriodStats span;
    span.path = read_string(in, "telemetry span path");
    span.period = read_u64(in, "telemetry span period");
    span.stats.count = read_u64(in, "telemetry span stat count");
    span.stats.total_s = read_f64(in, "telemetry span total");
    span.stats.min_s = read_f64(in, "telemetry span min");
    span.stats.max_s = read_f64(in, "telemetry span max");
    payload.spans.push_back(std::move(span));
  }
  return payload;
}

std::string encode_telemetry_events(const TelemetryEventsPayload& payload) {
  std::ostringstream out;
  write_u64(out, payload.events.size());
  for (const obs::Event& e : payload.events) {
    write_u64(out, e.seq);
    write_f64(out, e.ts_s);
    write_u64(out, static_cast<std::uint64_t>(e.period));
    write_u64(out, static_cast<std::uint64_t>(e.interval));
    write_u64(out, static_cast<std::uint64_t>(e.ra));
    write_u64(out, static_cast<std::uint64_t>(e.slice));
    write_u64(out, static_cast<std::uint64_t>(e.worker));
    write_u8(out, static_cast<std::uint8_t>(e.kind));
    write_f64(out, e.value);
  }
  return out.str();
}

TelemetryEventsPayload decode_telemetry_events(const std::string& bytes) {
  std::istringstream in(bytes);
  TelemetryEventsPayload payload;
  const std::uint64_t count = read_u64(in, "telemetry event count");
  payload.events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    obs::Event e;
    e.seq = read_u64(in, "telemetry event seq");
    e.ts_s = read_f64(in, "telemetry event ts");
    e.period = static_cast<std::size_t>(read_u64(in, "telemetry event period"));
    e.interval = static_cast<std::size_t>(read_u64(in, "telemetry event interval"));
    e.ra = static_cast<std::size_t>(read_u64(in, "telemetry event ra"));
    e.slice = static_cast<std::size_t>(read_u64(in, "telemetry event slice"));
    e.worker = static_cast<std::size_t>(read_u64(in, "telemetry event worker"));
    e.kind = static_cast<obs::EventKind>(read_u8(in, "telemetry event kind"));
    e.value = read_f64(in, "telemetry event value");
    payload.events.push_back(e);
  }
  return payload;
}

namespace {

// Raw little-endian putters for the signal-safe frame encoder: identical
// byte layout to binio's stream writers, no iostreams involved.
std::size_t put_u32le(char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  return 4;
}

std::size_t put_u64le(char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  return 8;
}

std::size_t put_f64le(char* p, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return put_u64le(p, bits);
}

/// Bytes one event occupies in a TelemetryEvents payload.
constexpr std::size_t kEventWireSize = 6 * 8 + 1 + 2 * 8;

}  // namespace

std::size_t encode_telemetry_events_frame(char* buf, std::size_t cap,
                                          std::uint64_t seq,
                                          const obs::Event* events,
                                          std::size_t count) {
  const std::size_t payload_size = 8 + count * kEventWireSize;
  const std::size_t total = kFrameHeaderSize + payload_size;
  if (total > cap) return 0;
  char* p = buf + kFrameHeaderSize;
  p += put_u64le(p, count);
  for (std::size_t i = 0; i < count; ++i) {
    const obs::Event& e = events[i];
    p += put_u64le(p, e.seq);
    p += put_f64le(p, e.ts_s);
    p += put_u64le(p, static_cast<std::uint64_t>(e.period));
    p += put_u64le(p, static_cast<std::uint64_t>(e.interval));
    p += put_u64le(p, static_cast<std::uint64_t>(e.ra));
    p += put_u64le(p, static_cast<std::uint64_t>(e.slice));
    p += put_u64le(p, static_cast<std::uint64_t>(e.worker));
    *p++ = static_cast<char>(e.kind);
    p += put_f64le(p, e.value);
  }
  char* h = buf;
  std::memcpy(h, kFrameMagic, 4);
  put_u32le(h + 4, kFrameFormatVersion);
  put_u32le(h + 8, static_cast<std::uint32_t>(FrameType::TelemetryEvents));
  put_u32le(h + 12, kConnectionScope);
  put_u64le(h + 16, seq);
  put_u64le(h + 24, payload_size);
  put_u32le(h + 32, crc32(buf + kFrameHeaderSize, payload_size));
  put_u32le(h + 36, crc32(h, 36));
  return total;
}

}  // namespace edgeslice::ipc
