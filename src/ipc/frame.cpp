#include "ipc/frame.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "common/binio.h"
#include "common/metrics.h"

namespace edgeslice::ipc {

namespace {

void put_u32(char* p, std::uint32_t v) {
  p[0] = static_cast<char>(v & 0xFF);
  p[1] = static_cast<char>((v >> 8) & 0xFF);
  p[2] = static_cast<char>((v >> 16) & 0xFF);
  p[3] = static_cast<char>((v >> 24) & 0xFF);
}

void put_u64(char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}

/// send(2) with MSG_NOSIGNAL when the fd is a socket, falling back to
/// write(2) for pipes/files (ENOTSOCK). SIGPIPE is additionally ignored
/// process-wide by the supervisor, so either path is EPIPE, not death.
ssize_t write_some(int fd, const char* data, std::size_t size) {
  const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
  if (n < 0 && errno == ENOTSOCK) return ::write(fd, data, size);
  return n;
}

}  // namespace

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::Hello: return "hello";
    case FrameType::RunPeriod: return "run_period";
    case FrameType::Trace: return "trace";
    case FrameType::EnvState: return "env_state";
    case FrameType::Coordination: return "coordination";
    case FrameType::Ping: return "ping";
    case FrameType::Pong: return "pong";
    case FrameType::Snapshot: return "snapshot";
    case FrameType::Restore: return "restore";
    case FrameType::Ack: return "ack";
    case FrameType::Shutdown: return "shutdown";
    case FrameType::TelemetrySnapshot: return "telemetry_snapshot";
    case FrameType::TelemetryEvents: return "telemetry_events";
    case FrameType::DecideRequest: return "decide_request";
    case FrameType::DecideResponse: return "decide_response";
    case FrameType::ServeStatus: return "serve_status";
  }
  return "unknown";
}

const char* io_result_name(IoResult result) {
  switch (result) {
    case IoResult::Ok: return "ok";
    case IoResult::Deadline: return "deadline";
    case IoResult::Closed: return "closed";
    case IoResult::Error: return "error";
  }
  return "unknown";
}

std::string encode_frame(const Frame& frame) {
  std::string out(kFrameHeaderSize + frame.payload.size(), '\0');
  char* h = out.data();
  std::memcpy(h, kFrameMagic, 4);
  put_u32(h + 4, kFrameFormatVersion);
  put_u32(h + 8, static_cast<std::uint32_t>(frame.type));
  put_u32(h + 12, frame.ra);
  put_u64(h + 16, frame.seq);
  put_u64(h + 24, frame.payload.size());
  put_u32(h + 32, crc32(frame.payload));
  put_u32(h + 36, crc32(h, 36));
  std::memcpy(out.data() + kFrameHeaderSize, frame.payload.data(),
              frame.payload.size());
  return out;
}

void decode_frame_header(const char* bytes, Frame& out, std::uint64_t& payload_len) {
  if (std::memcmp(bytes, kFrameMagic, 4) != 0)
    throw std::runtime_error("ipc frame: bad magic");
  const std::uint32_t header_crc = get_u32(bytes + 36);
  if (crc32(bytes, 36) != header_crc)
    throw std::runtime_error("ipc frame: header CRC mismatch");
  const std::uint32_t version = get_u32(bytes + 4);
  if (version != kFrameFormatVersion)
    throw std::runtime_error("ipc frame: unsupported version " +
                             std::to_string(version));
  out.type = static_cast<FrameType>(get_u32(bytes + 8));
  out.ra = get_u32(bytes + 12);
  out.seq = get_u64(bytes + 16);
  payload_len = get_u64(bytes + 24);
  if (payload_len > kMaxFramePayload)
    throw std::runtime_error("ipc frame: absurd payload length " +
                             std::to_string(payload_len));
}

void verify_frame_payload(std::uint32_t expected_crc, const std::string& payload) {
  if (crc32(payload) != expected_crc)
    throw std::runtime_error("ipc frame: payload CRC mismatch");
}

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

IoResult write_frame(int fd, const Frame& frame, const SendOptions& options) {
  const std::string bytes = encode_frame(frame);
  const std::int64_t deadline = now_ms() + options.deadline_ms;
  std::size_t sent = 0;
  int attempts = 0;
  int backoff_ms = options.backoff_initial_ms;
  // Workers run with metrics disabled (the registry mutex is not
  // fork-safe against the parent's observer threads); guard every touch.
  const bool counted = metrics_enabled();
  while (sent < bytes.size()) {
    const ssize_t n = write_some(fd, bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // never consumes an attempt
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) return IoResult::Closed;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return IoResult::Error;
    // Socket buffer full (or a zero-byte write): bounded retry with
    // exponential backoff, waiting poll-side for writability.
    if (++attempts >= options.max_attempts) return IoResult::Deadline;
    if (counted) global_metrics().counter("ipc.send_retries").add();
    const std::int64_t remaining = deadline - now_ms();
    if (remaining <= 0) return IoResult::Deadline;
    pollfd pfd{fd, POLLOUT, 0};
    const int wait =
        static_cast<int>(remaining < backoff_ms ? remaining : backoff_ms);
    const int ready = ::poll(&pfd, 1, wait);
    if (ready < 0 && errno != EINTR) return IoResult::Error;
    if (ready > 0 && (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
        (pfd.revents & POLLOUT) == 0) {
      return IoResult::Closed;
    }
    backoff_ms = backoff_ms * 2 < options.backoff_max_ms ? backoff_ms * 2
                                                         : options.backoff_max_ms;
  }
  if (counted) {
    global_metrics().counter("ipc.frames_sent").add();
    global_metrics().counter("ipc.bytes_sent").add(bytes.size());
  }
  return IoResult::Ok;
}

namespace {

/// Read exactly `size` bytes with a wall-clock deadline; EINTR-safe.
/// Returns Ok, Deadline, Closed (EOF mid-buffer counts as Closed), Error.
IoResult read_exact(int fd, char* data, std::size_t size, std::int64_t deadline) {
  std::size_t got = 0;
  while (got < size) {
    const std::int64_t remaining = deadline - now_ms();
    if (remaining <= 0) return IoResult::Deadline;
    pollfd pfd{fd, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(remaining > 1000 ? 1000 : remaining));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoResult::Error;
    }
    if (ready == 0) continue;  // poll slice elapsed; re-check the deadline
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return IoResult::Closed;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == ECONNRESET) return IoResult::Closed;
    return IoResult::Error;
  }
  return IoResult::Ok;
}

}  // namespace

IoResult read_frame(int fd, Frame& out, int deadline_ms) {
  char header[kFrameHeaderSize];
  const std::int64_t header_deadline = now_ms() + deadline_ms;
  const IoResult head = read_exact(fd, header, kFrameHeaderSize, header_deadline);
  if (head != IoResult::Ok) return head;
  std::uint64_t payload_len = 0;
  decode_frame_header(header, out, payload_len);  // throws on corruption
  const std::uint32_t payload_crc = get_u32(header + 32);
  out.payload.assign(static_cast<std::size_t>(payload_len), '\0');
  if (payload_len > 0) {
    const IoResult body = read_exact(fd, out.payload.data(),
                                     static_cast<std::size_t>(payload_len),
                                     now_ms() + deadline_ms);
    // A peer that died or stalled mid-frame can never resynchronize.
    if (body != IoResult::Ok) return body == IoResult::Deadline ? body : IoResult::Closed;
  }
  verify_frame_payload(payload_crc, out.payload);  // throws on corruption
  if (metrics_enabled()) {
    global_metrics().counter("ipc.frames_received").add();
    global_metrics().counter("ipc.bytes_received").add(kFrameHeaderSize +
                                                       out.payload.size());
  }
  return IoResult::Ok;
}

}  // namespace edgeslice::ipc
