// A small poll(2)-based event loop multiplexing the supervisor's worker
// sockets.
//
// Each registered fd gets a FrameAssembler that turns the fd's byte
// stream back into validated frames (partial reads are buffered across
// poll rounds; both CRCs and strict seq monotonicity are enforced before
// a frame is surfaced). The loop is deliberately single-threaded and
// deadline-driven: run_until() pumps all fds until the caller's
// predicate is satisfied or the deadline passes, which is exactly the
// "collect traces from every worker, declare stragglers hung" shape the
// supervisor needs — a stalled worker costs the deadline, never a
// blocked control plane.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ipc/frame.h"

namespace edgeslice::ipc {

/// Incremental frame reassembly for one connection's byte stream.
/// feed() throws std::runtime_error on any protocol violation (bad
/// magic/CRC/version, absurd length, seq break) — the connection is
/// corrupt and must be torn down.
class FrameAssembler {
 public:
  /// Append raw bytes; returns every frame completed by them, in order.
  std::vector<Frame> feed(const char* data, std::size_t size);

  /// Bytes buffered waiting for the rest of a frame.
  std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  std::uint64_t next_seq_ = 0;
};

class PollLoop {
 public:
  using FrameHandler = std::function<void(int fd, Frame&& frame)>;
  /// Invoked once when the connection ends: Closed on EOF, Error on a
  /// read error or protocol violation. The fd is already removed from
  /// the loop when the handler runs (the caller owns closing it).
  using CloseHandler = std::function<void(int fd, IoResult reason)>;
  /// Invoked once per accepted connection. The new fd is already
  /// non-blocking; the handler decides whether to add() it to the loop
  /// (and owns closing it if not).
  using AcceptHandler = std::function<void(int fd)>;

  void add(int fd, FrameHandler on_frame, CloseHandler on_close);
  void remove(int fd);
  bool has(int fd) const;
  std::size_t size() const { return connections_.size(); }

  /// Register a listening socket: while the loop runs, readiness on it
  /// accepts every pending connection (accept4 with SOCK_NONBLOCK) and
  /// hands each new fd to `on_accept`. The policy-serve daemon is the
  /// consumer; the supervisor's fixed socketpair fan-in never needs one.
  void add_listener(int fd, AcceptHandler on_accept);
  void remove_listener(int fd);

  /// Pump all registered fds until `done()` returns true or `deadline_ms`
  /// elapses. Returns true when the predicate was satisfied, false on
  /// deadline. Handlers run inline and may call remove() (including for
  /// the fd currently being serviced).
  bool run_until(const std::function<bool()>& done, int deadline_ms);

 private:
  struct Connection {
    int fd = -1;
    FrameAssembler assembler;
    FrameHandler on_frame;
    CloseHandler on_close;
  };
  struct Listener {
    int fd = -1;
    AcceptHandler on_accept;
  };

  Connection* find(int fd);

  std::vector<Connection> connections_;
  std::vector<Listener> listeners_;
};

}  // namespace edgeslice::ipc
