// The ESFR wire frame — the unit of coordinator <-> worker traffic
// (FORMATS.md "ESFR wire frame").
//
// Layout (all integers little-endian, like every on-disk format here):
//
//   offset size field
//   0      4    magic 'E' 'S' 'F' 'R'
//   4      4    u32 version (kFrameFormatVersion)
//   8      4    u32 type (FrameType)
//   12     4    u32 ra (RA index the frame addresses; kConnectionScope
//               for connection-scoped frames)
//   16     8    u64 seq (per-connection send counter, 0, 1, 2, ...)
//   24     8    u64 payload_len
//   32     4    u32 payload_crc (CRC-32 of the payload bytes)
//   36     4    u32 header_crc (CRC-32 of bytes [0, 36))
//   40     -    payload
//
// Payloads are either empty, small binio-serialized structures (wire.h),
// or existing ESCK section blobs verbatim (an EnvState payload's body IS
// an Environment section payload — FORMATS.md cross-links the field
// tables instead of duplicating them). Both CRCs must verify and seq must
// be exactly the previous frame's seq + 1; any violation means the
// channel is corrupt and the connection is torn down, never parsed past.
//
// I/O helpers speak POSIX fds (the supervisor's socketpairs): reads and
// writes are deadline-bounded, EINTR-safe, and handle partial transfers;
// writes additionally retry with bounded exponential backoff while the
// socket buffer is full (a stalled peer surfaces as a SendDeadline
// failure, not a blocked control plane).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace edgeslice::ipc {

inline constexpr char kFrameMagic[4] = {'E', 'S', 'F', 'R'};

/// Wire frame format version. Bump on ANY change to the header layout or
/// a frame payload, and update FORMATS.md in the same commit (the
/// docs-check test cross-checks the two).
inline constexpr std::uint32_t kFrameFormatVersion = 3;

inline constexpr std::size_t kFrameHeaderSize = 40;

/// `ra` value for frames that address the connection, not one RA.
inline constexpr std::uint32_t kConnectionScope = 0xFFFFFFFFu;

/// Hostile-peer cap, checked before any allocation.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 28;  // 256 MiB

/// Frame types. Codes are part of the wire format: never renumber, only
/// append.
enum class FrameType : std::uint32_t {
  Hello = 1,       // worker -> sup on start: u64 worker index, u64 hosted RA count
  RunPeriod = 2,   // sup -> worker: period directives for its hosted RAs
  Trace = 3,       // worker -> sup: one RA's per-interval steps + actions
  EnvState = 4,    // worker -> sup: one RA's environment blob (ESCK payload)
  Coordination = 5,  // sup -> worker: RC-L z - y vector for one RA
  Ping = 6,        // either direction: u64 nonce
  Pong = 7,        // reply: the same nonce
  Snapshot = 8,    // sup -> worker: request a fresh EnvState for one RA
  Restore = 9,     // sup -> worker: load this blob into one RA's environment
  Ack = 10,        // worker -> sup: Restore applied (u64 code, 0 = ok)
  Shutdown = 11,   // sup -> worker: exit cleanly
  TelemetrySnapshot = 12,  // worker -> sup: cumulative metrics + span deltas
  TelemetryEvents = 13,    // worker -> sup: drained flight-recorder events
  // Policy-serving plane (src/serve/): the same envelope carries
  // allocation-decision traffic between policy-serve and its clients.
  DecideRequest = 14,   // client -> serve: u64 request_id + observation vector
  DecideResponse = 15,  // serve -> client: u64 request_id + u32 status + action
  ServeStatus = 16,     // client -> serve: empty request; reply carries stats
};

const char* frame_type_name(FrameType type);

struct Frame {
  FrameType type = FrameType::Ping;
  std::uint32_t ra = kConnectionScope;
  std::uint64_t seq = 0;
  std::string payload;
};

/// Encode header + payload into one contiguous buffer.
std::string encode_frame(const Frame& frame);

/// Decode and fully validate a frame header (40 bytes). Returns the
/// declared payload length via `payload_len`. Throws std::runtime_error
/// on bad magic/version/CRC or an absurd length — the caller must treat
/// the connection as corrupt.
void decode_frame_header(const char* bytes, Frame& out, std::uint64_t& payload_len);

/// Verify a received payload against the header's CRC; throws
/// std::runtime_error on mismatch.
void verify_frame_payload(std::uint32_t expected_crc, const std::string& payload);

// --- Deadline-bounded fd I/O ----------------------------------------------

/// Retry/backoff policy for frame sends. A send attempts the write,
/// polling for writability up to `deadline_ms` total; every EAGAIN round
/// waits poll-side with exponential backoff from `backoff_initial_ms`
/// (doubling, capped at `backoff_max_ms`) and at most `max_attempts`
/// rounds. EINTR never consumes an attempt.
struct SendOptions {
  int deadline_ms = 10000;
  int max_attempts = 8;
  int backoff_initial_ms = 1;
  int backoff_max_ms = 1000;
};

enum class IoResult {
  Ok,
  Deadline,  // peer did not drain (send) or produce (read) in time
  Closed,    // EOF / EPIPE / ECONNRESET: the peer is gone
  Error,     // any other errno
};

const char* io_result_name(IoResult result);

/// Write one whole frame to `fd` (blocking or non-blocking fd) under
/// `options`. Partial writes are resumed; EINTR is retried; SIGPIPE is
/// never raised (writes go through send(MSG_NOSIGNAL) for sockets).
IoResult write_frame(int fd, const Frame& frame, const SendOptions& options = {});

/// Read one whole frame from `fd`, waiting at most `deadline_ms` for the
/// FIRST byte and then at most `deadline_ms` more for the remainder.
/// Returns Ok and fills `out` on success; Closed on clean EOF before any
/// byte; Deadline when the peer stalls mid-frame. Throws
/// std::runtime_error (connection corrupt) on CRC/magic/length
/// violations.
IoResult read_frame(int fd, Frame& out, int deadline_ms);

/// Monotonic clock in milliseconds (steady_clock based) for deadline
/// arithmetic shared by the event loop and the supervisor.
std::int64_t now_ms();

}  // namespace edgeslice::ipc
