#include "obs/aggregator.h"

#include <chrono>
#include <sstream>
#include <utility>

namespace edgeslice::obs {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Split a registry display name ("name" or "name{k=\"v\",...}") back
/// into its base name and decoded labels — the exact inverse of
/// encode_metric_labels for suffixes the registry itself produced.
/// Returns false on anything malformed; the caller then treats the whole
/// display name as label-free rather than dropping the series.
bool split_display_name(const std::string& display, std::string& base,
                        MetricLabels& labels) {
  labels.clear();
  const std::size_t brace = display.find('{');
  if (brace == std::string::npos) {
    base = display;
    return true;
  }
  base = display.substr(0, brace);
  if (display.back() != '}') return false;
  std::size_t i = brace + 1;
  const std::size_t end = display.size() - 1;
  while (i < end) {
    const std::size_t eq = display.find('=', i);
    if (eq == std::string::npos || eq >= end || eq + 1 >= end ||
        display[eq + 1] != '"') {
      return false;
    }
    std::string key = display.substr(i, eq - i);
    std::string value;
    std::size_t j = eq + 2;
    for (; j < end; ++j) {
      const char c = display[j];
      if (c == '\\') {
        if (j + 1 >= end) return false;
        const char escaped = display[++j];
        value.push_back(escaped == 'n' ? '\n' : escaped);
      } else if (c == '"') {
        break;
      } else {
        value.push_back(c);
      }
    }
    if (j >= end || display[j] != '"') return false;
    labels.emplace_back(std::move(key), std::move(value));
    i = j + 1;
    if (i < end) {
      if (display[i] != ',') return false;
      ++i;
    }
  }
  return true;
}

/// The (base, labels-with-worker) address a shipped series lands under.
void worker_address(const std::string& display, std::size_t slot,
                    std::string& base, MetricLabels& labels) {
  if (!split_display_name(display, base, labels)) {
    base = display;
    labels.clear();
  }
  labels.emplace_back("worker", std::to_string(slot));
}

}  // namespace

void TelemetryAggregator::reset(std::size_t slots) {
  const std::lock_guard<std::mutex> lock(mutex_);
  slots_.assign(slots, SlotState{});
}

std::size_t TelemetryAggregator::slots() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

void TelemetryAggregator::on_metrics(std::size_t slot, const MetricsSnapshot& snapshot) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (slot >= slots_.size()) return;
  SlotState& state = slots_[slot];
  state.last = snapshot;
  ++state.snapshots;
  state.last_snapshot_ts_s = now_seconds();
  publish(slot);
}

void TelemetryAggregator::publish(std::size_t slot) {
  SlotState& state = slots_[slot];
  MetricsRegistry& registry = global_metrics();
  std::string base_name;
  MetricLabels labels;
  for (const auto& [display, value] : state.last.counters) {
    worker_address(display, slot, base_name, labels);
    std::uint64_t total = value;
    const auto it = state.counter_base.find(display);
    if (it != state.counter_base.end()) total += it->second;
    registry.counter(base_name, labels).set(total);
  }
  for (const auto& [display, value] : state.last.gauges) {
    worker_address(display, slot, base_name, labels);
    registry.gauge(base_name, labels).set(value);
  }
  for (const auto& [display, shipped] : state.last.histograms) {
    worker_address(display, slot, base_name, labels);
    HistogramState merged;
    const auto it = state.histogram_base.find(display);
    if (it != state.histogram_base.end()) merged = it->second;
    merge_histogram_state(merged, shipped);
    registry.histogram(base_name, labels).load_state(merged);
  }
}

void TelemetryAggregator::on_spans(std::size_t slot,
                                   const std::vector<SpanPeriodStats>& deltas) {
  (void)slot;  // spans aggregate fleet-wide; the tracer has no label axis
  Tracer& tracer = global_tracer();
  for (const SpanPeriodStats& delta : deltas) tracer.merge_period_stats(delta);
}

void TelemetryAggregator::on_events(std::size_t slot, const std::vector<Event>& events) {
  EventLog& log = global_event_log();
  for (Event e : events) {
    e.worker = slot;
    log.record_imported(e);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (slot < slots_.size()) slots_[slot].events += events.size();
}

void TelemetryAggregator::on_worker_lost(std::size_t slot, bool clean) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (slot >= slots_.size()) return;
  SlotState& state = slots_[slot];
  // Fold the dead incarnation's final cumulative values into the base so
  // the respawn's from-zero series stack on top instead of rewinding the
  // labeled exports.
  for (const auto& [display, value] : state.last.counters) {
    state.counter_base[display] += value;
  }
  for (const auto& [display, shipped] : state.last.histograms) {
    merge_histogram_state(state.histogram_base[display], shipped);
  }
  state.last = MetricsSnapshot{};
  if (!clean) {
    Event gap;
    gap.kind = EventKind::TelemetryGap;
    gap.worker = slot;
    gap.value = static_cast<double>(state.snapshots);
    global_event_log().record(gap);
  }
}

std::uint64_t TelemetryAggregator::snapshots_merged(std::size_t slot) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slot < slots_.size() ? slots_[slot].snapshots : 0;
}

std::uint64_t TelemetryAggregator::events_imported(std::size_t slot) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slot < slots_.size() ? slots_[slot].events : 0;
}

double TelemetryAggregator::last_snapshot_ts_s(std::size_t slot) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slot < slots_.size() ? slots_[slot].last_snapshot_ts_s : -1.0;
}

namespace {

std::mutex g_fleet_mutex;
std::vector<FleetWorkerStatus> g_fleet;

}  // namespace

void set_fleet_status(std::vector<FleetWorkerStatus> workers) {
  const std::lock_guard<std::mutex> lock(g_fleet_mutex);
  g_fleet = std::move(workers);
}

std::string fleet_status_json() {
  std::vector<FleetWorkerStatus> fleet;
  {
    const std::lock_guard<std::mutex> lock(g_fleet_mutex);
    fleet = g_fleet;
  }
  const double now = now_seconds();
  std::size_t alive = 0;
  for (const FleetWorkerStatus& w : fleet) alive += w.alive ? 1 : 0;
  std::ostringstream out;
  out << "{\"total\": " << fleet.size() << ", \"alive\": " << alive
      << ", \"workers\": [";
  bool first = true;
  for (const FleetWorkerStatus& w : fleet) {
    out << (first ? "\n  " : ",\n  ");
    out << "{\"slot\": " << w.slot << ", \"alive\": " << (w.alive ? "true" : "false")
        << ", \"pid\": " << w.pid << ", \"restarts\": " << w.restarts
        << ", \"ras\": [";
    for (std::size_t i = 0; i < w.ras.size(); ++i) {
      out << (i == 0 ? "" : ", ") << w.ras[i];
    }
    out << "], \"snapshots\": " << w.snapshots << ", \"events\": " << w.events
        << ", \"last_snapshot_age_s\": ";
    if (w.last_snapshot_ts_s < 0.0) {
      out << "null";
    } else {
      out << (now - w.last_snapshot_ts_s < 0.0 ? 0.0 : now - w.last_snapshot_ts_s);
    }
    out << "}";
    first = false;
  }
  out << (first ? "]}" : "\n]}");
  out << "\n";
  return out.str();
}

}  // namespace edgeslice::obs
