// Flight recorder: a fixed-capacity, lock-light ring buffer of structured
// control-plane events.
//
// Every noteworthy control-plane happening — a dropped RC-M report, a
// frozen coordinator column, an injected fault, an SLA violation, a
// validation checkpoint — is appended as one small fixed-size Event. The
// ring keeps the most recent `capacity` events forever, so when something
// goes wrong (a crash under the chaos harness, a stalled training run)
// the *window of events leading up to it* is recoverable: on demand as
// JSONL, automatically from a std::terminate / fatal-signal handler, and
// over HTTP via the telemetry server.
//
// Concurrency: writers are lock-free (one fetch_add to claim a ticket,
// per-slot seqlock publication; a writer waits only when it laps another
// writer still publishing the same slot). Readers take a consistent
// snapshot without blocking writers: torn slots are detected by the slot
// sequence and skipped. All slot fields are atomics accessed relaxed
// between the seqlock fences, so the protocol is data-race-free (clean
// under TSan by construction, not by suppression).
//
// Recording honours the global metrics switch (common/metrics.h): with
// metrics disabled an append neither reads the clock nor touches the
// ring, so orchestration results are bit-identical with the recorder on
// or off.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace edgeslice::obs {

/// What happened. Names (event_kind_name) are the JSONL/HTTP vocabulary.
enum class EventKind : std::uint8_t {
  RcmDropped,        // bus: RC-M report lost in transit
  RcmDelayed,        // bus: RC-M report held back (value = delay periods)
  RcmDelivered,      // bus: RC-M report reached the coordinator (value = latency)
  RclDropped,        // bus: RC-L push to an RA lost
  CoordinatorReject, // coordinator refused an update (value = RejectCause)
  ColumnsFrozen,     // masked update ran with frozen columns (value = count)
  FaultRaCrash,      // injector: RA down this period
  FaultCqiBlackout,  // injector: radio link collapsed
  FaultLinkFailure,  // injector: transport path down
  FaultComputeSlowdown,  // injector: GPU degraded (value = slowdown factor)
  ValidationCheckpoint,  // training: policy validated (interval = step, value = score)
  SlaViolation,      // watchdog: slice below its SLO (value = shortfall)
  CheckpointSaved,   // ckpt: container written to disk (value = bytes)
  CheckpointLoaded,  // ckpt: container restored from disk (value = bytes)
  WorkerSpawn,       // supervisor: worker process forked (ra = worker index, value = pid)
  WorkerExit,        // supervisor: worker died unexpectedly (ra = worker index)
  WorkerKill,        // supervisor: worker SIGKILLed (ra = worker index)
  WorkerHung,        // supervisor: worker missed a trace/io deadline (ra = worker index)
  WorkerRestore,     // supervisor: RA state restored into a fresh worker (ra = RA index)
  TelemetryGap,      // aggregator: a worker died with possibly-unflushed
                     // telemetry — its event window has a hole here
                     // (worker = slot, value = snapshots merged before the gap)
};

/// Stable numeric codes for CoordinatorReject's `value` field, mirroring
/// the coordinator.reject.<cause> counter names.
enum class RejectCause : std::uint8_t {
  Shape = 0,
  NonFinite = 1,
  MaskSize = 2,
  ReportCount = 3,
  MalformedReport = 4,
  DuplicateReport = 5,
};

const char* event_kind_name(EventKind kind);
/// True for the kinds that represent an injected fault taking effect
/// (bus losses/delays and the four substrate fault kinds).
bool event_kind_is_fault(EventKind kind);

/// One flight-recorder entry. Fields the writer does not know are left at
/// kNone and exported as JSON null.
struct Event {
  static constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

  std::uint64_t seq = 0;   // assigned by the log: global append order
  double ts_s = 0.0;       // assigned by the log: steady-clock seconds
  std::size_t period = kNone;
  std::size_t interval = kNone;
  std::size_t ra = kNone;
  std::size_t slice = kNone;
  /// Origin worker slot once the supervisor imports a worker's drained
  /// events (kNone for events recorded in this process). steady_clock's
  /// epoch is shared across fork, so imported ts_s values stay comparable.
  std::size_t worker = kNone;
  EventKind kind = EventKind::RcmDropped;
  double value = 0.0;
};

class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit EventLog(std::size_t capacity = kDefaultCapacity);

  /// Resize the ring, dropping its contents. NOT safe against concurrent
  /// writers — call at startup or between runs (tests).
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  /// The period label record() stamps onto events whose writer left
  /// `period` at kNone (the coordinator and the trainer do not know the
  /// running period; the system sets this alongside the tracer's).
  void set_period(std::size_t period);
  std::size_t current_period() const;

  /// Append one event. seq and ts_s are assigned here; a kNone period is
  /// replaced by current_period(). No-op with metrics disabled.
  void record(Event e);

  /// Append an event shipped from another process: ts_s, period, and
  /// worker are preserved verbatim (the origin already stamped them); only
  /// seq is reassigned into this log's order. No-op with metrics disabled.
  void record_imported(Event e);

  /// Total events ever recorded (including those the ring has dropped).
  std::uint64_t recorded() const;

  /// Consistent copy of the retained window, oldest first. Slots a lapping
  /// writer is mid-publication on are skipped, never torn.
  std::vector<Event> snapshot() const;

  /// snapshot() filtered to events with seq >= min_seq (the telemetry
  /// shipper's drain cursor).
  std::vector<Event> snapshot_since(std::uint64_t min_seq) const;

  /// Non-allocating snapshot into a caller-owned buffer (crash-flush
  /// paths): copies up to `cap` retained events, oldest first, skipping
  /// unpublished slots. Returns the number copied. Unlike snapshot(), a
  /// torn slot may surface with stale fields — crash context beats
  /// strictness, exactly like dump_fd.
  std::size_t copy_events(Event* out, std::size_t cap) const;

  /// snapshot() as JSON Lines, one event object per line.
  void write_jsonl(std::ostream& out) const;
  /// snapshot() as one JSON array (the /events.json HTTP payload).
  void write_json_array(std::ostream& out) const;

  /// Best-effort raw dump to a file descriptor for crash paths: no
  /// allocation, no iostreams — snprintf into a stack buffer and write(2)
  /// per event. Unpublished slots are skipped; a torn slot may surface
  /// with stale fields (crash context beats strictness). Returns the
  /// number of events written.
  int dump_fd(int fd) const;

  /// Drop every retained event (seq numbering continues). Tests only;
  /// not safe against concurrent writers.
  void clear();

 private:
  /// Seqlock slot. `state` counts 2*generation while idle/published and
  /// 2*generation+1 while a writer is publishing generation `generation`;
  /// the payload fields are plain atomics accessed relaxed between the
  /// seqlock fences.
  struct Slot {
    std::atomic<std::uint64_t> state{0};
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> ts_bits{0};  // bit_cast of the double
    std::atomic<std::size_t> period{Event::kNone};
    std::atomic<std::size_t> interval{Event::kNone};
    std::atomic<std::size_t> ra{Event::kNone};
    std::atomic<std::size_t> slice{Event::kNone};
    std::atomic<std::size_t> worker{Event::kNone};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<std::uint64_t> value_bits{0};
  };

  /// Shared append body of record()/record_imported(): claim a ticket,
  /// publish `e` (whose seq is assigned here) under the slot seqlock.
  void publish(Event e);

  /// Read slot payload relaxed into `out` (no validity check).
  static void load_slot(const Slot& slot, Event& out);

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::size_t> period_{Event::kNone};
};

/// The process-global flight recorder the control plane records into.
EventLog& global_event_log();

/// Replace the process-global log with a fresh (empty) one; the old
/// object is leaked deliberately. Call from a freshly forked,
/// single-threaded child only — a worker process must not publish the
/// supervisor's inherited ring back as its own telemetry.
void reset_global_event_log_for_fork();

/// Install (or, with an empty path, remove) a std::terminate handler and
/// fatal-signal handlers (SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL) that
/// dump the global event log as JSONL to `path` before the process dies.
/// The path is copied into static storage; the handlers allocate nothing.
void set_crash_dump_path(const std::string& path);
std::string crash_dump_path();

/// Register a hook the terminate/fatal-signal handlers run before the
/// JSONL dump — the worker telemetry plane flushes its event window to
/// the supervisor here. The hook must be async-signal-safe (no locks, no
/// allocation). nullptr removes it. Installing a hook installs the
/// handlers even when no crash-dump path is configured.
void set_crash_flush_hook(void (*hook)());

}  // namespace edgeslice::obs
