#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace_span.h"
#include "obs/aggregator.h"
#include "obs/event_log.h"

namespace edgeslice::obs {

namespace {

// Worker-process liveness published by the supervisor; /healthz degrades
// when workers are down. total == 0 means "no worker plane" (single
// process) and reads as healthy.
std::atomic<std::size_t> g_workers_alive{0};
std::atomic<std::size_t> g_workers_total{0};

}  // namespace

void set_worker_liveness(std::size_t alive, std::size_t total) {
  g_workers_alive.store(alive, std::memory_order_relaxed);
  g_workers_total.store(total, std::memory_order_relaxed);
}

WorkerLiveness worker_liveness() {
  // Read total first: a concurrent shrink to 0/0 (supervisor stop) can
  // then only surface as healthy, never as a phantom degradation.
  WorkerLiveness liveness;
  liveness.total = g_workers_total.load(std::memory_order_relaxed);
  liveness.alive = g_workers_alive.load(std::memory_order_relaxed);
  return liveness;
}

TelemetryServer::TelemetryServer(TelemetryServerConfig config)
    : config_(std::move(config)) {}

TelemetryServer::~TelemetryServer() { stop(); }

bool TelemetryServer::start() {
  if (running()) return true;
  // A peer that disconnects mid-response must surface as EPIPE from
  // send(2), never kill the process. send() already passes MSG_NOSIGNAL;
  // this covers any future write path too.
  ::signal(SIGPIPE, SIG_IGN);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    ES_LOG(Warn) << "telemetry: socket() failed: " << std::strerror(errno);
    return false;
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ES_LOG(Warn) << "telemetry: bad bind address " << config_.bind_address;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 8) < 0) {
    ES_LOG(Warn) << "telemetry: cannot listen on " << config_.bind_address << ":"
                 << config_.port << ": " << std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = config_.port;
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  ES_LOG(Info) << "telemetry: serving /metrics /events.json /spans.json "
                  "/fleet.json /healthz on "
               << config_.bind_address << ":" << port_;
  return true;
}

void TelemetryServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TelemetryServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout (stop-flag check) or transient error
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_client(client);
    ::close(client);
  }
}

namespace {

/// First request line up to CRLF, split into method and path. Reads at
/// most 4 KiB; telemetry requests carry no interesting headers or body.
/// A malformed line yields {"", ""}.
struct RequestLine {
  std::string method;
  std::string path;
};

RequestLine read_request_line(int fd) {
  char buf[4096];
  std::size_t used = 0;
  while (used < sizeof(buf) - 1) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/1000);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) break;
    const ssize_t n = ::recv(fd, buf + used, sizeof(buf) - 1 - used, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    used += static_cast<std::size_t>(n);
    buf[used] = '\0';
    if (std::strstr(buf, "\r\n") != nullptr || std::strchr(buf, '\n') != nullptr) break;
  }
  buf[used] = '\0';
  // Parse "METHOD SP path SP ..." — anything malformed yields {"", ""}.
  const char* sp1 = std::strchr(buf, ' ');
  if (sp1 == nullptr) return {};
  const char* sp2 = std::strchr(sp1 + 1, ' ');
  if (sp2 == nullptr) return {};
  RequestLine line;
  line.method.assign(buf, static_cast<std::size_t>(sp1 - buf));
  line.path.assign(sp1 + 1, static_cast<std::size_t>(sp2 - (sp1 + 1)));
  return line;
}

/// Every response — success or error — goes through here, so the status
/// line (HTTP/1.0), Content-Type, Content-Length, and Connection: close
/// are uniform across all paths. `extra_headers`, when non-null, is
/// appended verbatim and must end with CRLF (e.g. "Allow: GET\r\n").
void send_response(int fd, int status, const char* reason, const char* content_type,
                   const std::string& body, const char* extra_headers = nullptr) {
  std::ostringstream head;
  head << "HTTP/1.0 " << status << " " << reason << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n";
  if (extra_headers != nullptr) head << extra_headers;
  head << "Connection: close\r\n\r\n";
  const std::string header = head.str();
  // Returns false when the client is gone; EINTR and short writes are
  // retried (large /metrics bodies routinely exceed one send on a
  // loopback socket with a small buffer), with a bounded wait for the
  // peer to drain.
  const auto send_all = [fd](const char* data, std::size_t size) -> bool {
    std::size_t sent = 0;
    while (sent < size) {
      const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{fd, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, /*timeout_ms=*/1000);
        if (ready < 0 && errno == EINTR) continue;
        if (ready <= 0) return false;  // stalled client: drop it
        continue;
      }
      return false;  // EPIPE / ECONNRESET / anything else: client is gone
    }
    return true;
  };
  if (send_all(header.data(), header.size())) send_all(body.data(), body.size());
}

}  // namespace

void TelemetryServer::handle_client(int client_fd) {
  const RequestLine request = read_request_line(client_fd);
  const std::string& path = request.path;
  global_metrics().counter("telemetry.requests").add();
  if (request.method.empty() && path.empty()) {
    send_response(client_fd, 400, "Bad Request", "text/plain", "bad request\n");
    return;
  }
  if (request.method != "GET") {
    send_response(client_fd, 405, "Method Not Allowed", "text/plain",
                  "method not allowed\n", "Allow: GET\r\n");
    return;
  }
  if (path == "/metrics") {
    std::ostringstream body;
    global_metrics().write_prometheus(body);
    send_response(client_fd, 200, "OK", "text/plain; version=0.0.4", body.str());
  } else if (path == "/events.json") {
    std::ostringstream body;
    global_event_log().write_json_array(body);
    body << "\n";
    send_response(client_fd, 200, "OK", "application/json", body.str());
  } else if (path == "/spans.json") {
    std::ostringstream body;
    global_tracer().write_json(body);
    body << "\n";
    send_response(client_fd, 200, "OK", "application/json", body.str());
  } else if (path == "/fleet.json") {
    send_response(client_fd, 200, "OK", "application/json", fleet_status_json());
  } else if (path == "/healthz") {
    const WorkerLiveness liveness = worker_liveness();
    if (liveness.total > 0 && liveness.alive < liveness.total) {
      std::ostringstream body;
      body << "degraded: " << liveness.alive << "/" << liveness.total
           << " workers alive\n";
      send_response(client_fd, 503, "Service Unavailable", "text/plain", body.str());
    } else {
      send_response(client_fd, 200, "OK", "text/plain", "ok\n");
    }
  } else {
    send_response(client_fd, 404, "Not Found", "text/plain", "not found\n");
  }
}

bool write_observability_snapshot(const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    out << "{\n\"metrics\": ";
    global_metrics().write_json(out);
    out << ",\n\"spans\": ";
    global_tracer().write_json(out);
    out << ",\n\"events\": ";
    global_event_log().write_json_array(out);
    out << "\n}\n";
    out.flush();
    if (!out) return false;
  }
  // Atomic replace: a reader (or a crash between these lines) sees either
  // the previous complete snapshot or the new one, never a truncation.
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

RollingSnapshotWriter::RollingSnapshotWriter(std::string path,
                                             std::uint64_t interval_periods,
                                             unsigned poll_ms)
    : path_(std::move(path)),
      interval_(interval_periods == 0 ? 1 : interval_periods),
      poll_ms_(poll_ms == 0 ? 1 : poll_ms) {
  thread_ = std::thread([this] { loop(); });
}

RollingSnapshotWriter::~RollingSnapshotWriter() { stop(); }

void RollingSnapshotWriter::stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  // Final snapshot so the file reflects the end of the run even when the
  // last interval boundary was never crossed.
  if (write_observability_snapshot(path_)) {
    writes_.fetch_add(1, std::memory_order_relaxed);
  }
}

void RollingSnapshotWriter::loop() {
  std::uint64_t last_dumped = global_metrics().counter("system.periods").value();
  while (!stop_.load(std::memory_order_acquire)) {
    struct timespec ts{static_cast<time_t>(poll_ms_ / 1000),
                       static_cast<long>(poll_ms_ % 1000) * 1000000L};
    ::nanosleep(&ts, nullptr);
    const std::uint64_t periods = global_metrics().counter("system.periods").value();
    if (periods >= last_dumped + interval_) {
      if (write_observability_snapshot(path_)) {
        writes_.fetch_add(1, std::memory_order_relaxed);
      }
      last_dumped = periods;
    }
  }
}

}  // namespace edgeslice::obs
