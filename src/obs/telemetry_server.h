// Live telemetry exposition for long-running benches and deployments.
//
// Two pieces, both strictly observation-only (they read the process-global
// registry / tracer / flight recorder and never write back):
//
//  * TelemetryServer — a deliberately tiny single-threaded POSIX-socket
//    HTTP/1.0 server bound to localhost, serving
//        /metrics      Prometheus text format (MetricsRegistry::write_prometheus)
//        /events.json  flight-recorder window as a JSON array
//        /spans.json   span tracer aggregates (Tracer::write_json)
//        /fleet.json   per-worker fleet status (obs/aggregator.h)
//        /healthz      200 "ok" liveness probe
//    Every response (success or error, including 405 for non-GET with an
//    Allow header) carries Content-Type, Content-Length, and Connection:
//    close. One background thread accepts and answers one connection at a time;
//    responses are built under the exporters' own locks, so a scrape can
//    run while the orchestrator is mid-period. Off by default; benches
//    enable it with --telemetry-port / EDGESLICE_TELEMETRY_PORT.
//
//  * RollingSnapshotWriter — rewrites a JSON observability snapshot
//    (metrics + spans + events) every N orchestration periods during a
//    long run, atomically (write <path>.tmp, then rename), so a crash
//    mid-run leaves the previous complete snapshot instead of nothing —
//    and never a truncated file. Benches enable it with
//    --metrics-interval.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>

namespace edgeslice::obs {

/// Worker-process liveness as published by the multi-process control
/// plane's supervisor. total == 0 means the run has no worker plane
/// (single-process) and /healthz reads healthy.
struct WorkerLiveness {
  std::size_t alive = 0;
  std::size_t total = 0;
};

/// Publish worker liveness (ipc::WorkerSupervisor calls this after every
/// spawn/death/period). Thread-safe; /healthz answers 503 "degraded"
/// while alive < total.
void set_worker_liveness(std::size_t alive, std::size_t total);
WorkerLiveness worker_liveness();

struct TelemetryServerConfig {
  /// TCP port to listen on; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Loopback only by default: telemetry is unauthenticated.
  std::string bind_address = "127.0.0.1";
};

class TelemetryServer {
 public:
  explicit TelemetryServer(TelemetryServerConfig config = {});
  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Bind + listen + spawn the serving thread. Returns false (with a log
  /// line) when the socket cannot be bound; the process carries on
  /// without telemetry rather than dying.
  bool start();
  /// Stop the serving thread and close the socket (idempotent).
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The actually bound port (resolves config port 0).
  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();
  void handle_client(int client_fd);

  TelemetryServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Write one combined observability snapshot — {"metrics": ..., "spans":
/// ..., "events": [...]} — to `path` atomically: the document is written
/// to "<path>.tmp" and renamed over `path` only once complete. Returns
/// false when the file cannot be written.
bool write_observability_snapshot(const std::string& path);

class RollingSnapshotWriter {
 public:
  /// Rewrite `path` (atomically) whenever the global "system.periods"
  /// counter has advanced by at least `interval_periods` since the last
  /// write, polling every `poll_ms`. Starts its thread immediately.
  RollingSnapshotWriter(std::string path, std::uint64_t interval_periods,
                        unsigned poll_ms = 200);
  ~RollingSnapshotWriter();
  RollingSnapshotWriter(const RollingSnapshotWriter&) = delete;
  RollingSnapshotWriter& operator=(const RollingSnapshotWriter&) = delete;

  /// Stop the thread; writes one final snapshot if anything advanced.
  void stop();
  std::uint64_t snapshots_written() const { return writes_.load(std::memory_order_relaxed); }

 private:
  void loop();

  std::string path_;
  std::uint64_t interval_;
  unsigned poll_ms_;
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace edgeslice::obs
