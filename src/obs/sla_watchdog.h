// SLA watchdog: first-class tracking of per-slice SLO compliance.
//
// The paper's slicing contract (Eq. 2) is a floor on network-wide
// per-slice performance per period: sum_j sum_t U_{i,j,t} >= U_i^min.
// The coordinator *enforces* that constraint through the ADMM projection;
// nothing in the seed repo *observed* whether the realized performance
// actually met it. The watchdog closes that gap: fed once per period with
// the per-slice performance sums the SystemMonitor already maintains
// incrementally (monitor.report(ra, period), summed over RAs), it keeps
// per-slice violation counters, a violation-rate gauge, and an EWMA
// anomaly score, publishes them to the metrics registry, and emits an
// `sla.violation` flight-recorder event per violating (period, slice).
//
// Observation-only: the watchdog never feeds back into orchestration, so
// results are bit-identical with or without it attached.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace edgeslice::obs {

/// The contract of one slice. `u_min` follows the coordinator's per-slice
/// SLA (Eq. 2): minimum network-wide performance sum per period. Our
/// performance functions fold throughput/latency into U (DESIGN.md Sec.
/// 2), so a throughput floor or latency ceiling both surface as a U floor.
struct SloSpec {
  double u_min = -50.0;  // paper default (Sec. VII)
  std::string name;      // optional label for exported metric names
};

struct SlaWatchdogConfig {
  /// Smoothing factor of the per-slice EWMA anomaly score in (0, 1].
  double anomaly_alpha = 0.2;
};

class SlaWatchdog {
 public:
  explicit SlaWatchdog(std::vector<SloSpec> specs, SlaWatchdogConfig config = {});

  /// Convenience: one spec per slice from the coordinator's u_min vector.
  static SlaWatchdog from_u_min(const std::vector<double>& u_min,
                                SlaWatchdogConfig config = {});

  /// Evaluate one finished period. `slice_performance[i]` is the
  /// network-wide performance sum of slice i over the period (what
  /// SystemMonitor::report provides per RA, summed over RAs). Updates
  /// counters/gauges/anomaly scores and emits sla.violation events.
  void evaluate(std::size_t period, const std::vector<double>& slice_performance);

  /// As above, with RA attribution: `worst_ra[i]` is the RA contributing
  /// least to slice i this period (the first place to look, stamped into
  /// the violation event's `ra` field). Empty worst_ra means unknown
  /// (events carry ra = kNone, exported as null).
  void evaluate(std::size_t period, const std::vector<double>& slice_performance,
                const std::vector<std::size_t>& worst_ra);

  std::size_t slice_count() const { return specs_.size(); }
  const SloSpec& spec(std::size_t slice) const { return specs_[slice]; }

  std::size_t periods_evaluated() const { return periods_evaluated_; }
  std::size_t violations(std::size_t slice) const { return violations_[slice]; }
  std::size_t total_violations() const;
  /// Fraction of evaluated periods in which `slice` violated its SLO.
  double violation_rate(std::size_t slice) const;
  /// EWMA of the normalized shortfall max(0, u_min - u) / max(1, |u_min|):
  /// 0 while healthy, rises toward the (normalized) violation depth under
  /// sustained breach, decays geometrically after recovery.
  double anomaly_score(std::size_t slice) const { return anomaly_[slice]; }

  void reset();

 private:
  std::string metric_suffix(std::size_t slice) const;

  std::vector<SloSpec> specs_;
  SlaWatchdogConfig config_;
  std::size_t periods_evaluated_ = 0;
  std::vector<std::size_t> violations_;
  std::vector<double> anomaly_;
};

}  // namespace edgeslice::obs
