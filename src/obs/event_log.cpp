#include "obs/event_log.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <ostream>

#include "common/json.h"
#include "common/metrics.h"

namespace edgeslice::obs {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::RcmDropped: return "rcm.dropped";
    case EventKind::RcmDelayed: return "rcm.delayed";
    case EventKind::RcmDelivered: return "rcm.delivered";
    case EventKind::RclDropped: return "rcl.dropped";
    case EventKind::CoordinatorReject: return "coordinator.reject";
    case EventKind::ColumnsFrozen: return "coordinator.columns_frozen";
    case EventKind::FaultRaCrash: return "fault.ra_crash";
    case EventKind::FaultCqiBlackout: return "fault.cqi_blackout";
    case EventKind::FaultLinkFailure: return "fault.link_failure";
    case EventKind::FaultComputeSlowdown: return "fault.compute_slowdown";
    case EventKind::ValidationCheckpoint: return "train.validation";
    case EventKind::SlaViolation: return "sla.violation";
    case EventKind::CheckpointSaved: return "ckpt.saved";
    case EventKind::CheckpointLoaded: return "ckpt.loaded";
    case EventKind::WorkerSpawn: return "worker.spawn";
    case EventKind::WorkerExit: return "worker.exit";
    case EventKind::WorkerKill: return "worker.kill";
    case EventKind::WorkerHung: return "worker.hung";
    case EventKind::WorkerRestore: return "worker.restore";
    case EventKind::TelemetryGap: return "telemetry.gap";
  }
  return "?";
}

bool event_kind_is_fault(EventKind kind) {
  switch (kind) {
    case EventKind::RcmDropped:
    case EventKind::RcmDelayed:
    case EventKind::RclDropped:
    case EventKind::FaultRaCrash:
    case EventKind::FaultCqiBlackout:
    case EventKind::FaultLinkFailure:
    case EventKind::FaultComputeSlowdown:
      return true;
    default:
      return false;
  }
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void EventLog::set_capacity(std::size_t capacity) {
  capacity_ = capacity == 0 ? 1 : capacity;
  slots_ = std::make_unique<Slot[]>(capacity_);
  next_.store(0, std::memory_order_relaxed);
}

void EventLog::set_period(std::size_t period) {
  period_.store(period, std::memory_order_relaxed);
}

std::size_t EventLog::current_period() const {
  return period_.load(std::memory_order_relaxed);
}

void EventLog::record(Event e) {
  if (!metrics_enabled()) return;
  e.ts_s = now_seconds();
  if (e.period == Event::kNone) e.period = current_period();
  publish(e);
}

void EventLog::record_imported(Event e) {
  if (!metrics_enabled()) return;
  // ts_s / period / worker arrive stamped by the origin process.
  publish(e);
}

void EventLog::publish(Event e) {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  e.seq = ticket;
  const std::uint64_t generation = ticket / capacity_;
  Slot& slot = slots_[ticket % capacity_];

  // Claim the slot: published state of the previous generation is 2g, the
  // in-progress state of ours is 2g + 1. A writer lapped mid-publication
  // holds the slot at 2g - 1; spin until it publishes.
  std::uint64_t expected = 2 * generation;
  while (!slot.state.compare_exchange_weak(expected, 2 * generation + 1,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
    expected = 2 * generation;
  }
  std::atomic_thread_fence(std::memory_order_release);
  slot.seq.store(e.seq, std::memory_order_relaxed);
  slot.ts_bits.store(std::bit_cast<std::uint64_t>(e.ts_s), std::memory_order_relaxed);
  slot.period.store(e.period, std::memory_order_relaxed);
  slot.interval.store(e.interval, std::memory_order_relaxed);
  slot.ra.store(e.ra, std::memory_order_relaxed);
  slot.slice.store(e.slice, std::memory_order_relaxed);
  slot.worker.store(e.worker, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(e.kind), std::memory_order_relaxed);
  slot.value_bits.store(std::bit_cast<std::uint64_t>(e.value), std::memory_order_relaxed);
  slot.state.store(2 * generation + 2, std::memory_order_release);
}

std::uint64_t EventLog::recorded() const {
  return next_.load(std::memory_order_relaxed);
}

void EventLog::load_slot(const Slot& slot, Event& out) {
  out.seq = slot.seq.load(std::memory_order_relaxed);
  out.ts_s = std::bit_cast<double>(slot.ts_bits.load(std::memory_order_relaxed));
  out.period = slot.period.load(std::memory_order_relaxed);
  out.interval = slot.interval.load(std::memory_order_relaxed);
  out.ra = slot.ra.load(std::memory_order_relaxed);
  out.slice = slot.slice.load(std::memory_order_relaxed);
  out.worker = slot.worker.load(std::memory_order_relaxed);
  out.kind = static_cast<EventKind>(slot.kind.load(std::memory_order_relaxed));
  out.value = std::bit_cast<double>(slot.value_bits.load(std::memory_order_relaxed));
}

std::vector<Event> EventLog::snapshot() const {
  std::vector<Event> out;
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t ticket = begin; ticket < end; ++ticket) {
    const std::uint64_t published = 2 * (ticket / capacity_) + 2;
    const Slot& slot = slots_[ticket % capacity_];
    // Seqlock read: valid iff the state is `published` both before and
    // after the payload copy (the acquire fence orders the relaxed loads
    // before the revalidation). A slot still being published, or already
    // overwritten by a lapping writer, fails the check and is skipped.
    Event event;
    bool valid = false;
    for (int attempt = 0; attempt < 4 && !valid; ++attempt) {
      if (slot.state.load(std::memory_order_acquire) != published) break;
      load_slot(slot, event);
      std::atomic_thread_fence(std::memory_order_acquire);
      valid = slot.state.load(std::memory_order_relaxed) == published;
    }
    if (valid) out.push_back(event);
  }
  return out;
}

std::vector<Event> EventLog::snapshot_since(std::uint64_t min_seq) const {
  std::vector<Event> out = snapshot();
  out.erase(std::remove_if(out.begin(), out.end(),
                           [min_seq](const Event& e) { return e.seq < min_seq; }),
            out.end());
  return out;
}

std::size_t EventLog::copy_events(Event* out, std::size_t cap) const {
  std::size_t copied = 0;
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  for (std::uint64_t ticket = begin; ticket < end && copied < cap; ++ticket) {
    const Slot& slot = slots_[ticket % capacity_];
    // Skip slots a writer had claimed but not published when we crashed.
    if (slot.state.load(std::memory_order_acquire) % 2 != 0) continue;
    load_slot(slot, out[copied]);
    ++copied;
  }
  return copied;
}

namespace {

void write_event_json(std::ostream& out, const Event& e) {
  const auto field = [&out](const char* name, std::size_t v, bool comma = true) {
    out << '"' << name << "\": ";
    if (v == Event::kNone) {
      out << "null";
    } else {
      out << v;
    }
    if (comma) out << ", ";
  };
  out << "{\"seq\": " << e.seq << ", \"ts_s\": " << e.ts_s << ", ";
  field("period", e.period);
  field("interval", e.interval);
  field("ra", e.ra);
  field("slice", e.slice);
  field("worker", e.worker);
  out << "\"kind\": ";
  write_json_escaped(out, event_kind_name(e.kind));
  out << ", \"value\": " << e.value << "}";
}

}  // namespace

void EventLog::write_jsonl(std::ostream& out) const {
  for (const Event& e : snapshot()) {
    write_event_json(out, e);
    out << "\n";
  }
}

void EventLog::write_json_array(std::ostream& out) const {
  out << "[";
  bool first = true;
  for (const Event& e : snapshot()) {
    out << (first ? "\n" : ",\n");
    write_event_json(out, e);
    first = false;
  }
  out << (first ? "]" : "\n]");
}

namespace {

/// snprintf one size_t-or-null field into `buf + off`.
int format_field(char* buf, std::size_t size, int off, const char* name,
                 std::size_t v, const char* suffix) {
  if (v == Event::kNone) {
    return std::snprintf(buf + off, size - static_cast<std::size_t>(off),
                         "\"%s\": null%s", name, suffix);
  }
  return std::snprintf(buf + off, size - static_cast<std::size_t>(off),
                       "\"%s\": %llu%s", name,
                       static_cast<unsigned long long>(v), suffix);
}

}  // namespace

int EventLog::dump_fd(int fd) const {
  int written = 0;
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  for (std::uint64_t ticket = begin; ticket < end; ++ticket) {
    const Slot& slot = slots_[ticket % capacity_];
    // Skip slots a writer had claimed but not published when we crashed.
    if (slot.state.load(std::memory_order_acquire) % 2 != 0) continue;
    Event e;
    load_slot(slot, e);
    char buf[512];
    int off = std::snprintf(buf, sizeof(buf), "{\"seq\": %llu, \"ts_s\": %.6f, ",
                            static_cast<unsigned long long>(e.seq), e.ts_s);
    off += format_field(buf, sizeof(buf), off, "period", e.period, ", ");
    off += format_field(buf, sizeof(buf), off, "interval", e.interval, ", ");
    off += format_field(buf, sizeof(buf), off, "ra", e.ra, ", ");
    off += format_field(buf, sizeof(buf), off, "slice", e.slice, ", ");
    off += format_field(buf, sizeof(buf), off, "worker", e.worker, ", ");
    off += std::snprintf(buf + off, sizeof(buf) - static_cast<std::size_t>(off),
                         "\"kind\": \"%s\", \"value\": %g}\n",
                         event_kind_name(e.kind), e.value);
    if (off <= 0 || static_cast<std::size_t>(off) >= sizeof(buf)) continue;
    ssize_t n = ::write(fd, buf, static_cast<std::size_t>(off));
    (void)n;
    ++written;
  }
  return written;
}

void EventLog::clear() {
  const std::size_t cap = capacity_;
  slots_ = std::make_unique<Slot[]>(cap);
  next_.store(0, std::memory_order_relaxed);
}

namespace {

/// Set by reset_global_event_log_for_fork() in forked children; wins over
/// the lazily constructed parent log.
std::atomic<EventLog*> g_event_log_override{nullptr};

}  // namespace

EventLog& global_event_log() {
  if (EventLog* fresh = g_event_log_override.load(std::memory_order_acquire))
    return *fresh;
  static EventLog log;
  return log;
}

void reset_global_event_log_for_fork() {
  // Leak on purpose: inherited readers may still hold references.
  g_event_log_override.store(new EventLog, std::memory_order_release);
}

// --- Crash dump ------------------------------------------------------------

namespace {

/// Fixed storage: signal handlers must not allocate.
char g_crash_dump_path[1024] = {0};
std::atomic<void (*)()> g_crash_flush_hook{nullptr};
std::terminate_handler g_previous_terminate = nullptr;
bool g_handlers_installed = false;

/// Best-effort crash sequence: the flush hook first (a dying worker ships
/// its event window to the supervisor while the socket may still be
/// open), then the JSONL dump to the configured path.
void crash_dump() {
  if (void (*hook)() = g_crash_flush_hook.load(std::memory_order_acquire)) hook();
  if (g_crash_dump_path[0] == '\0') return;
  const int fd = ::open(g_crash_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  global_event_log().dump_fd(fd);
  ::close(fd);
}

[[noreturn]] void terminate_with_dump() {
  crash_dump();
  if (g_previous_terminate != nullptr && g_previous_terminate != terminate_with_dump) {
    g_previous_terminate();
  }
  std::abort();
}

void fatal_signal_handler(int signum) {
  crash_dump();
  // Restore the default disposition and re-raise so the process still dies
  // with the original signal (exit status preserved for wait()ing parents).
  ::signal(signum, SIG_DFL);
  ::raise(signum);
}

constexpr int kFatalSignals[] = {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL};

void install_crash_handlers() {
  if (g_handlers_installed) return;
  g_previous_terminate = std::set_terminate(terminate_with_dump);
  for (int s : kFatalSignals) {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = fatal_signal_handler;
    sigemptyset(&action.sa_mask);
    ::sigaction(s, &action, nullptr);
  }
  g_handlers_installed = true;
}

void remove_crash_handlers_if_idle() {
  // Keep the handlers while either consumer (dump path / flush hook) is
  // configured.
  if (!g_handlers_installed) return;
  if (g_crash_dump_path[0] != '\0') return;
  if (g_crash_flush_hook.load(std::memory_order_acquire) != nullptr) return;
  for (int s : kFatalSignals) ::signal(s, SIG_DFL);
  std::set_terminate(g_previous_terminate);
  g_handlers_installed = false;
}

}  // namespace

void set_crash_dump_path(const std::string& path) {
  // Touch the singleton now: the handlers must never be the first thing to
  // construct it.
  global_event_log();
  std::snprintf(g_crash_dump_path, sizeof(g_crash_dump_path), "%s", path.c_str());
  if (path.empty()) {
    remove_crash_handlers_if_idle();
    return;
  }
  install_crash_handlers();
}

std::string crash_dump_path() { return g_crash_dump_path; }

void set_crash_flush_hook(void (*hook)()) {
  global_event_log();
  g_crash_flush_hook.store(hook, std::memory_order_release);
  if (hook == nullptr) {
    remove_crash_handlers_if_idle();
    return;
  }
  install_crash_handlers();
}

}  // namespace edgeslice::obs
