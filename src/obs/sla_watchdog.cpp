#include "obs/sla_watchdog.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/metrics.h"
#include "obs/event_log.h"

namespace edgeslice::obs {

SlaWatchdog::SlaWatchdog(std::vector<SloSpec> specs, SlaWatchdogConfig config)
    : specs_(std::move(specs)), config_(config) {
  if (specs_.empty()) throw std::invalid_argument("SlaWatchdog: no slices");
  if (!(config_.anomaly_alpha > 0.0) || config_.anomaly_alpha > 1.0)
    throw std::invalid_argument("SlaWatchdog: anomaly_alpha must be in (0, 1]");
  violations_.assign(specs_.size(), 0);
  anomaly_.assign(specs_.size(), 0.0);
}

SlaWatchdog SlaWatchdog::from_u_min(const std::vector<double>& u_min,
                                    SlaWatchdogConfig config) {
  std::vector<SloSpec> specs;
  specs.reserve(u_min.size());
  for (double u : u_min) specs.push_back(SloSpec{u, ""});
  return SlaWatchdog(std::move(specs), config);
}

std::string SlaWatchdog::metric_suffix(std::size_t slice) const {
  return specs_[slice].name.empty() ? "slice" + std::to_string(slice)
                                    : specs_[slice].name;
}

void SlaWatchdog::evaluate(std::size_t period,
                           const std::vector<double>& slice_performance) {
  evaluate(period, slice_performance, {});
}

void SlaWatchdog::evaluate(std::size_t period,
                           const std::vector<double>& slice_performance,
                           const std::vector<std::size_t>& worst_ra) {
  if (slice_performance.size() != specs_.size())
    throw std::invalid_argument("SlaWatchdog: slice count mismatch");
  if (!worst_ra.empty() && worst_ra.size() != specs_.size())
    throw std::invalid_argument("SlaWatchdog: worst_ra count mismatch");
  ++periods_evaluated_;
  auto& metrics = global_metrics();
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const double u = slice_performance[i];
    const double u_min = specs_[i].u_min;
    // Same tolerance the coordinator's sla_satisfied() uses.
    const bool violated = u < u_min - 1e-9;
    const double shortfall = std::max(0.0, u_min - u);
    const double normalized = shortfall / std::max(1.0, std::abs(u_min));
    anomaly_[i] += config_.anomaly_alpha * (normalized - anomaly_[i]);
    const std::string suffix = metric_suffix(i);
    if (violated) {
      ++violations_[i];
      metrics.counter("sla.violations").add();
      metrics.counter("sla.violations." + suffix).add();
      Event event;
      event.kind = EventKind::SlaViolation;
      event.period = period;
      event.slice = i;
      if (!worst_ra.empty()) event.ra = worst_ra[i];
      event.value = shortfall;
      global_event_log().record(event);
    }
    metrics.gauge("sla.violation_rate." + suffix).set(violation_rate(i));
    metrics.gauge("sla.anomaly." + suffix).set(anomaly_[i]);
    metrics.gauge("sla.margin." + suffix).set(u - u_min);
  }
}

std::size_t SlaWatchdog::total_violations() const {
  std::size_t total = 0;
  for (std::size_t v : violations_) total += v;
  return total;
}

double SlaWatchdog::violation_rate(std::size_t slice) const {
  if (periods_evaluated_ == 0) return 0.0;
  return static_cast<double>(violations_[slice]) /
         static_cast<double>(periods_evaluated_);
}

void SlaWatchdog::reset() {
  periods_evaluated_ = 0;
  std::fill(violations_.begin(), violations_.end(), 0);
  std::fill(anomaly_.begin(), anomaly_.end(), 0.0);
}

}  // namespace edgeslice::obs
