// Supervisor-side fleet telemetry aggregation (DESIGN.md "Fleet
// telemetry").
//
// Each worker process periodically ships its observability state over the
// ESFR channel: a full cumulative MetricsSnapshot, the per-(path, period)
// span-aggregate deltas since its last export, and its freshly recorded
// flight-recorder events. The TelemetryAggregator folds those into the
// supervisor's process-global registry / tracer / event log so the
// existing exposition surfaces (/metrics, /spans.json, /events.json, the
// rolling snapshot writer) show the whole fleet:
//
//  * metrics land under a worker="<slot>" label — every worker's series
//    stays distinguishable, and the supervisor's own unlabeled series are
//    untouched;
//  * snapshots are cumulative and therefore idempotent: re-merging the
//    same snapshot republishes the same values. A respawned worker
//    restarts its registry from zero, so the aggregator keeps a per-slot
//    *base* (the final state of every dead incarnation, folded on
//    on_worker_lost) and publishes base (+) current;
//  * span deltas merge into the global tracer per (path, period) — a
//    fleet-wide aggregate view (Tracer has no label dimension);
//  * events import verbatim (origin timestamps preserved) tagged with the
//    origin slot in Event::worker.
//
// Everything here is observation-only and runs on the supervisor's pump
// thread; none of it touches the deterministic orchestration path, so
// trajectory digests are bit-identical with aggregation on or off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace_span.h"
#include "obs/event_log.h"

namespace edgeslice::obs {

class TelemetryAggregator {
 public:
  /// Size (or resize) the per-slot state, dropping everything held.
  void reset(std::size_t slots);
  std::size_t slots() const;

  /// Merge one worker's cumulative metrics snapshot: every series is
  /// republished into the global registry under a worker="<slot>" label,
  /// with the slot's dead-incarnation base folded in (counters add,
  /// gauges last-wins, histograms merge bucket-wise).
  void on_metrics(std::size_t slot, const MetricsSnapshot& snapshot);

  /// Merge shipped span-aggregate deltas into the global tracer.
  void on_spans(std::size_t slot, const std::vector<SpanPeriodStats>& deltas);

  /// Import drained worker events into the global event log, tagged with
  /// the origin slot.
  void on_events(std::size_t slot, const std::vector<Event>& events);

  /// The slot's worker died: fold its last cumulative snapshot into the
  /// slot base so the respawned incarnation's from-zero counts stack on
  /// top. An unclean death (no final flush arrived) additionally records
  /// a TelemetryGap event marking the hole in the slot's event window.
  void on_worker_lost(std::size_t slot, bool clean);

  /// Telemetry bookkeeping for /fleet.json.
  std::uint64_t snapshots_merged(std::size_t slot) const;
  std::uint64_t events_imported(std::size_t slot) const;
  /// Steady-clock seconds of the slot's most recent snapshot merge, or a
  /// negative value when none has arrived yet.
  double last_snapshot_ts_s(std::size_t slot) const;

 private:
  struct SlotState {
    /// Folded final values of dead incarnations, keyed by display name.
    std::map<std::string, std::uint64_t> counter_base;
    std::map<std::string, HistogramState> histogram_base;
    /// Most recent cumulative snapshot of the live incarnation.
    MetricsSnapshot last;
    std::uint64_t snapshots = 0;
    std::uint64_t events = 0;
    double last_snapshot_ts_s = -1.0;
  };

  /// Publish base (+) cumulative for one slot (mutex_ held).
  void publish(std::size_t slot);

  mutable std::mutex mutex_;
  std::vector<SlotState> slots_;
};

/// One row of /fleet.json, composed by the supervisor (which owns
/// liveness, pids, restart counts, and the RA assignment) from its own
/// state plus the aggregator's bookkeeping.
struct FleetWorkerStatus {
  std::size_t slot = 0;
  bool alive = false;
  long pid = -1;
  std::uint64_t restarts = 0;
  std::vector<std::size_t> ras;
  std::uint64_t snapshots = 0;
  std::uint64_t events = 0;
  /// Steady-clock seconds of the last merged snapshot (<0: never); the
  /// JSON renderer converts this to an age at request time.
  double last_snapshot_ts_s = -1.0;
};

/// Publish the fleet table the telemetry server serves as /fleet.json.
/// Thread-safe; an empty vector (the default) renders as a no-worker
/// fleet.
void set_fleet_status(std::vector<FleetWorkerStatus> workers);

/// Render /fleet.json: {"total": N, "alive": M, "workers": [...]} with
/// per-worker last_snapshot_age_s computed against the current clock
/// (null when no snapshot ever arrived).
std::string fleet_status_json();

}  // namespace edgeslice::obs
