// Umbrella header: the full EdgeSlice public API.
//
// Individual modules can be included directly; this header is a
// convenience for applications that use the whole stack.
#pragma once

#include "common/cli.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"

#include "nn/mlp.h"

#include "opt/admm.h"
#include "opt/linreg.h"
#include "opt/projection.h"
#include "opt/qp.h"

#include "rl/agent.h"
#include "rl/ddpg.h"
#include "rl/frozen.h"
#include "rl/ppo.h"
#include "rl/sac.h"
#include "rl/trpo.h"
#include "rl/vpg.h"

#include "trace/arrivals.h"
#include "trace/trace.h"

#include "radio/radio_manager.h"
#include "transport/transport_manager.h"
#include "compute/computing_manager.h"

#include "env/app_model.h"
#include "env/environment.h"
#include "env/perf.h"
#include "env/service_model.h"

#include "core/coordinator.h"
#include "core/monitor.h"
#include "core/policies.h"
#include "core/resource_autonomy.h"
#include "core/slice_manager.h"
#include "core/system.h"
#include "core/training.h"
