#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace edgeslice::serve {

ServeClient ServeClient::connect(const std::string& host, std::uint16_t port,
                                 int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("serve client: socket() failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("serve client: bad host " + host);
  }
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error(std::string("serve client: connect failed: ") +
                             std::strerror(saved));
  }
  // Decision requests are small and latency-bound: never wait to coalesce.
  int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  ServeClient client;
  client.fd_ = fd;
  return client;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      out_seq_(other.out_seq_),
      assembler_(std::move(other.assembler_)),
      decisions_(std::move(other.decisions_)),
      others_(std::move(other.others_)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    out_seq_ = other.out_seq_;
    assembler_ = std::move(other.assembler_);
    decisions_ = std::move(other.decisions_);
    others_ = std::move(other.others_);
  }
  return *this;
}

void ServeClient::send_frame(ipc::FrameType type, std::string payload) {
  ipc::Frame frame;
  frame.type = type;
  frame.ra = ipc::kConnectionScope;
  frame.seq = out_seq_++;
  frame.payload = std::move(payload);
  const ipc::IoResult result = ipc::write_frame(fd_, frame);
  if (result != ipc::IoResult::Ok) {
    throw std::runtime_error(std::string("serve client: send failed: ") +
                             ipc::io_result_name(result));
  }
}

void ServeClient::send_decide(std::uint64_t request_id,
                              const std::vector<double>& observation) {
  DecideRequestPayload request;
  request.request_id = request_id;
  request.observation = observation;
  send_frame(ipc::FrameType::DecideRequest, encode_decide_request(request));
}

void ServeClient::send_raw(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve client: raw send failed: ") +
                               std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool ServeClient::pump(int deadline_ms) {
  const std::int64_t deadline = ipc::now_ms() + deadline_ms;
  char chunk[65536];
  bool got_any = false;
  for (;;) {
    const std::int64_t remaining = deadline - ipc::now_ms();
    pollfd pfd{fd_, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, remaining > 0 ? static_cast<int>(remaining) : 0);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("serve client: poll failed");
    }
    if (ready == 0) return got_any;
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n == 0) throw std::runtime_error("serve client: server closed connection");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw std::runtime_error(std::string("serve client: read failed: ") +
                               std::strerror(errno));
    }
    // FrameAssembler throws on any protocol violation — the client is as
    // strict about the server's bytes as the server is about the client's.
    for (ipc::Frame& frame : assembler_.feed(chunk, static_cast<std::size_t>(n))) {
      if (frame.type == ipc::FrameType::DecideResponse) {
        decisions_.push_back(decode_decide_response(frame.payload));
      } else {
        others_.push_back(std::move(frame));
      }
      got_any = true;
    }
    if (got_any) return true;
  }
}

std::vector<DecideResponsePayload> ServeClient::poll_decisions(int deadline_ms) {
  pump(deadline_ms);
  std::vector<DecideResponsePayload> out(decisions_.begin(), decisions_.end());
  decisions_.clear();
  return out;
}

std::optional<ipc::Frame> ServeClient::take_other(ipc::FrameType type) {
  for (auto it = others_.begin(); it != others_.end(); ++it) {
    if (it->type == type) {
      ipc::Frame frame = std::move(*it);
      others_.erase(it);
      return frame;
    }
  }
  return std::nullopt;
}

DecideResponsePayload ServeClient::decide(std::uint64_t request_id,
                                          const std::vector<double>& observation,
                                          int timeout_ms) {
  send_decide(request_id, observation);
  const std::int64_t deadline = ipc::now_ms() + timeout_ms;
  for (;;) {
    for (auto it = decisions_.begin(); it != decisions_.end(); ++it) {
      if (it->request_id == request_id) {
        DecideResponsePayload response = std::move(*it);
        decisions_.erase(it);
        return response;
      }
    }
    const std::int64_t remaining = deadline - ipc::now_ms();
    if (remaining <= 0) throw std::runtime_error("serve client: decide timed out");
    pump(static_cast<int>(remaining));
  }
}

ServeStatusPayload ServeClient::status(int timeout_ms) {
  send_frame(ipc::FrameType::ServeStatus, std::string());
  const std::int64_t deadline = ipc::now_ms() + timeout_ms;
  for (;;) {
    if (auto frame = take_other(ipc::FrameType::ServeStatus)) {
      return decode_serve_status(frame->payload);
    }
    const std::int64_t remaining = deadline - ipc::now_ms();
    if (remaining <= 0) throw std::runtime_error("serve client: status timed out");
    pump(static_cast<int>(remaining));
  }
}

std::string ServeClient::ping(const std::string& payload, int timeout_ms) {
  send_frame(ipc::FrameType::Ping, payload);
  const std::int64_t deadline = ipc::now_ms() + timeout_ms;
  for (;;) {
    if (auto frame = take_other(ipc::FrameType::Pong)) return frame->payload;
    const std::int64_t remaining = deadline - ipc::now_ms();
    if (remaining <= 0) throw std::runtime_error("serve client: ping timed out");
    pump(static_cast<int>(remaining));
  }
}

}  // namespace edgeslice::serve
