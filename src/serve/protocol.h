// Policy-serving payload codecs (FORMATS.md Sec. 7.3, serve payloads).
//
// The policy-serve daemon answers allocation-decision requests over the
// existing ESFR framed protocol (src/ipc/frame.h): three append-only
// frame types — DecideRequest, DecideResponse, ServeStatus — carry the
// payloads below. Everything is binio-serialized (little-endian, doubles
// as exact IEEE-754 bit patterns), so a decision that crosses the wire
// is byte-for-byte the vector Agent::act would have returned in-process.
//
// Decoders are strict both ways: a truncated payload throws (read_* fail
// on short reads) and so do trailing bytes — a serve payload is exactly
// its specified fields, nothing more. Hostile length prefixes are capped
// before allocation (kMaxObservationDim).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace edgeslice::serve {

/// Decision status codes, deliberately HTTP-shaped so an operator reading
/// a shed counter or a log line needs no translation table.
inline constexpr std::uint32_t kDecideOk = 0;
inline constexpr std::uint32_t kDecideBadRequest = 400;  // wrong observation dim
inline constexpr std::uint32_t kDecideShed = 429;        // admission control

const char* decide_status_name(std::uint32_t status);

/// Hostile-input cap on a request's observation length, checked before
/// any allocation. Real observations are tens of doubles (state Eq. 13).
inline constexpr std::uint64_t kMaxObservationDim = 1u << 20;

/// DecideRequest (client -> serve): one observation to decide on.
/// `request_id` is opaque to the server and echoed back verbatim —
/// clients use it to match in-flight requests to responses.
struct DecideRequestPayload {
  std::uint64_t request_id = 0;
  std::vector<double> observation;
};

/// DecideResponse (serve -> client). `action` is the policy's allocation
/// vector when `status` == kDecideOk and empty otherwise.
struct DecideResponsePayload {
  std::uint64_t request_id = 0;
  std::uint32_t status = kDecideOk;
  std::vector<double> action;
};

/// ServeStatus (serve -> client, answering an empty ServeStatus request):
/// the daemon's identity and live serving stats.
struct ServeStatusPayload {
  std::string policy_digest;  // 16 lowercase hex chars (agent-cache address)
  std::uint64_t state_dim = 0;
  std::uint64_t action_dim = 0;
  std::uint64_t batch_max = 0;
  std::uint64_t queue_limit = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t decided = 0;   // DecideResponse(kDecideOk) sent, lifetime
  std::uint64_t shed = 0;      // kDecideShed sent
  std::uint64_t rejected = 0;  // kDecideBadRequest sent
  /// Decision-latency quantiles (enqueue -> response encode) from the
  /// serve.decision_seconds histogram; 0 while metrics are disabled.
  double p50_decision_seconds = 0.0;
  double p99_decision_seconds = 0.0;
};

std::string encode_decide_request(const DecideRequestPayload& payload);
DecideRequestPayload decode_decide_request(const std::string& bytes);

std::string encode_decide_response(const DecideResponsePayload& payload);
DecideResponsePayload decode_decide_response(const std::string& bytes);

std::string encode_serve_status(const ServeStatusPayload& payload);
ServeStatusPayload decode_serve_status(const std::string& bytes);

}  // namespace edgeslice::serve
