#include "serve/protocol.h"

#include <sstream>
#include <stdexcept>

#include "common/binio.h"

namespace edgeslice::serve {

namespace {

/// Serve payloads are closed records: anything after the last field is
/// corruption, not extensibility (append a new frame type instead).
void require_exhausted(std::istream& in, const char* context) {
  if (in.peek() != std::istream::traits_type::eof()) {
    throw std::runtime_error(std::string(context) + ": trailing bytes");
  }
}

}  // namespace

const char* decide_status_name(std::uint32_t status) {
  switch (status) {
    case kDecideOk: return "ok";
    case kDecideBadRequest: return "bad_request";
    case kDecideShed: return "shed";
  }
  return "unknown";
}

std::string encode_decide_request(const DecideRequestPayload& payload) {
  std::ostringstream out;
  write_u64(out, payload.request_id);
  write_f64_vector(out, payload.observation);
  return out.str();
}

DecideRequestPayload decode_decide_request(const std::string& bytes) {
  std::istringstream in(bytes);
  DecideRequestPayload payload;
  payload.request_id = read_u64(in, "decide_request request_id");
  payload.observation =
      read_f64_vector(in, "decide_request observation", kMaxObservationDim);
  require_exhausted(in, "decide_request");
  return payload;
}

std::string encode_decide_response(const DecideResponsePayload& payload) {
  std::ostringstream out;
  write_u64(out, payload.request_id);
  write_u32(out, payload.status);
  write_f64_vector(out, payload.action);
  return out.str();
}

DecideResponsePayload decode_decide_response(const std::string& bytes) {
  std::istringstream in(bytes);
  DecideResponsePayload payload;
  payload.request_id = read_u64(in, "decide_response request_id");
  payload.status = read_u32(in, "decide_response status");
  payload.action =
      read_f64_vector(in, "decide_response action", kMaxObservationDim);
  require_exhausted(in, "decide_response");
  return payload;
}

std::string encode_serve_status(const ServeStatusPayload& payload) {
  std::ostringstream out;
  write_string(out, payload.policy_digest);
  write_u64(out, payload.state_dim);
  write_u64(out, payload.action_dim);
  write_u64(out, payload.batch_max);
  write_u64(out, payload.queue_limit);
  write_u64(out, payload.queue_depth);
  write_u64(out, payload.decided);
  write_u64(out, payload.shed);
  write_u64(out, payload.rejected);
  write_f64(out, payload.p50_decision_seconds);
  write_f64(out, payload.p99_decision_seconds);
  return out.str();
}

ServeStatusPayload decode_serve_status(const std::string& bytes) {
  std::istringstream in(bytes);
  ServeStatusPayload payload;
  payload.policy_digest = read_string(in, "serve_status policy_digest", 1u << 10);
  payload.state_dim = read_u64(in, "serve_status state_dim");
  payload.action_dim = read_u64(in, "serve_status action_dim");
  payload.batch_max = read_u64(in, "serve_status batch_max");
  payload.queue_limit = read_u64(in, "serve_status queue_limit");
  payload.queue_depth = read_u64(in, "serve_status queue_depth");
  payload.decided = read_u64(in, "serve_status decided");
  payload.shed = read_u64(in, "serve_status shed");
  payload.rejected = read_u64(in, "serve_status rejected");
  payload.p50_decision_seconds = read_f64(in, "serve_status p50");
  payload.p99_decision_seconds = read_f64(in, "serve_status p99");
  require_exhausted(in, "serve_status");
  return payload;
}

}  // namespace edgeslice::serve
