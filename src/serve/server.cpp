#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace_span.h"
#include "ipc/event_loop.h"
#include "ipc/frame.h"
#include "rl/batched_actor.h"
#include "serve/protocol.h"

namespace edgeslice::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

PolicyServer::PolicyServer(nn::Mlp policy, PolicyServerConfig config)
    : policy_(std::move(policy)), config_(std::move(config)) {}

PolicyServer::~PolicyServer() { stop(); }

bool PolicyServer::start() {
  if (running()) return true;
  // A client that disconnects with responses in flight must surface as
  // EPIPE from send(2), never kill the process.
  ::signal(SIGPIPE, SIG_IGN);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    ES_LOG(Warn) << "serve: socket() failed: " << std::strerror(errno);
    return false;
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ES_LOG(Warn) << "serve: bad bind address " << config_.bind_address;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 256) < 0) {
    ES_LOG(Warn) << "serve: cannot listen on " << config_.bind_address << ":"
                 << config_.port << ": " << std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  // PollLoop drains a ready listener with accept4 until EAGAIN — a
  // blocking listener fd would park the serve thread in the second accept.
  const int listen_flags = ::fcntl(listen_fd_, F_GETFL, 0);
  ::fcntl(listen_fd_, F_SETFL, listen_flags | O_NONBLOCK);
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = config_.port;
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void PolicyServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

ServeCounters PolicyServer::counters() const {
  ServeCounters counters;
  counters.requests = requests_.load(std::memory_order_relaxed);
  counters.decided = decided_.load(std::memory_order_relaxed);
  counters.shed = shed_.load(std::memory_order_relaxed);
  counters.rejected = rejected_.load(std::memory_order_relaxed);
  counters.ticks = ticks_.load(std::memory_order_relaxed);
  counters.accepted = accepted_.load(std::memory_order_relaxed);
  counters.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return counters;
}

void PolicyServer::serve_loop() {
  // One pending decision: who asked, what they asked, when it entered
  // the queue (the decision-latency clock starts at admission).
  struct Pending {
    int fd = -1;
    std::uint64_t request_id = 0;
    std::vector<double> observation;
    std::chrono::steady_clock::time_point enqueued;
  };
  struct Client {
    std::uint64_t out_seq = 0;
  };

  ipc::PollLoop loop;
  std::map<int, Client> clients;
  std::deque<Pending> queue;
  rl::BatchedActor actor(policy_);
  MetricsRegistry& metrics = global_metrics();
  ipc::SendOptions send_options;
  send_options.deadline_ms = 2000;  // a stalled client costs 2 s, not the plane

  const auto close_client = [&](int fd) {
    clients.erase(fd);
    if (loop.has(fd)) loop.remove(fd);
    ::close(fd);
    metrics.gauge("serve.connections").set(static_cast<double>(clients.size()));
  };

  // Send one frame; on failure the client is gone — tear it down (its
  // queued requests are dropped at response time).
  const auto send_frame = [&](int fd, ipc::FrameType type, std::string payload) {
    auto it = clients.find(fd);
    if (it == clients.end()) return;
    ipc::Frame frame;
    frame.type = type;
    frame.ra = ipc::kConnectionScope;
    frame.seq = it->second.out_seq++;
    frame.payload = std::move(payload);
    if (ipc::write_frame(fd, frame, send_options) != ipc::IoResult::Ok) {
      close_client(fd);
    }
  };

  const auto answer = [&](int fd, std::uint64_t request_id, std::uint32_t status,
                          std::vector<double> action = {}) {
    DecideResponsePayload response;
    response.request_id = request_id;
    response.status = status;
    response.action = std::move(action);
    send_frame(fd, ipc::FrameType::DecideResponse, encode_decide_response(response));
  };

  const auto handle_frame = [&](int fd, ipc::Frame&& frame) {
    switch (frame.type) {
      case ipc::FrameType::DecideRequest: {
        DecideRequestPayload request = decode_decide_request(frame.payload);
        requests_.fetch_add(1, std::memory_order_relaxed);
        metrics.counter("serve.requests").add();
        if (request.observation.size() != policy_.in_dim()) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          metrics.counter("serve.bad_request").add();
          answer(fd, request.request_id, kDecideBadRequest);
          break;
        }
        if (queue.size() >= config_.queue_limit) {
          shed_.fetch_add(1, std::memory_order_relaxed);
          metrics.counter("serve.shed").add();
          answer(fd, request.request_id, kDecideShed);
          break;
        }
        Pending pending;
        pending.fd = fd;
        pending.request_id = request.request_id;
        pending.observation = std::move(request.observation);
        pending.enqueued = std::chrono::steady_clock::now();
        queue.push_back(std::move(pending));
        metrics.gauge("serve.queue_depth").set(static_cast<double>(queue.size()));
        break;
      }
      case ipc::FrameType::ServeStatus: {
        ServeStatusPayload status;
        status.policy_digest = config_.policy_digest;
        status.state_dim = policy_.in_dim();
        status.action_dim = policy_.out_dim();
        status.batch_max = config_.batch_max;
        status.queue_limit = config_.queue_limit;
        status.queue_depth = queue.size();
        status.decided = decided_.load(std::memory_order_relaxed);
        status.shed = shed_.load(std::memory_order_relaxed);
        status.rejected = rejected_.load(std::memory_order_relaxed);
        const Histogram& latency = metrics.histogram("serve.decision_seconds");
        status.p50_decision_seconds = latency.quantile(0.5);
        status.p99_decision_seconds = latency.quantile(0.99);
        send_frame(fd, ipc::FrameType::ServeStatus, encode_serve_status(status));
        break;
      }
      case ipc::FrameType::Ping:
        send_frame(fd, ipc::FrameType::Pong, std::string(frame.payload));
        break;
      default:
        // Clients have no business sending anything else.
        throw std::runtime_error(std::string("serve: unexpected frame type ") +
                                 ipc::frame_type_name(frame.type));
    }
  };

  loop.add_listener(listen_fd_, [&](int fd) {
    accepted_.fetch_add(1, std::memory_order_relaxed);
    metrics.counter("serve.accepted").add();
    clients.emplace(fd, Client{});
    metrics.gauge("serve.connections").set(static_cast<double>(clients.size()));
    loop.add(
        fd,
        [&](int client_fd, ipc::Frame&& frame) {
          // A frame that parses as a frame but not as a serve payload is
          // a protocol violation: tear down this connection only.
          try {
            handle_frame(client_fd, std::move(frame));
          } catch (const std::exception& error) {
            protocol_errors_.fetch_add(1, std::memory_order_relaxed);
            metrics.counter("serve.protocol_errors").add();
            ES_LOG(Warn) << "serve: " << error.what();
            close_client(client_fd);
          }
        },
        [&](int client_fd, ipc::IoResult reason) {
          if (reason == ipc::IoResult::Error) {
            protocol_errors_.fetch_add(1, std::memory_order_relaxed);
            metrics.counter("serve.protocol_errors").add();
          }
          clients.erase(client_fd);
          ::close(client_fd);
          metrics.gauge("serve.connections").set(static_cast<double>(clients.size()));
        });
  });

  while (!stop_.load(std::memory_order_acquire)) {
    loop.run_until(
        [&] { return stop_.load(std::memory_order_acquire) || !queue.empty(); },
        config_.poll_ms);
    if (queue.empty()) continue;

    // One batched forward pass per tick: every queued request up to
    // batch_max rides the same GEMMs.
    const std::size_t rows =
        queue.size() < config_.batch_max ? queue.size() : config_.batch_max;
    actor.begin(rows);
    for (std::size_t row = 0; row < rows; ++row) {
      actor.set_state(row, queue[row].observation);
    }
    {
      auto span = global_tracer().span("serve.tick");
      actor.infer();
      span.stop();
    }
    ticks_.fetch_add(1, std::memory_order_relaxed);
    metrics.counter("serve.ticks").add();
    metrics.histogram("serve.batch_rows").observe(static_cast<double>(rows));
    for (std::size_t row = 0; row < rows; ++row) {
      Pending& pending = queue[row];
      if (clients.find(pending.fd) == clients.end()) continue;  // client left
      // Count before the response leaves: a client that has its answer
      // must never read a ServeStatus/counters() that predates it.
      decided_.fetch_add(1, std::memory_order_relaxed);
      metrics.counter("serve.decisions").add();
      metrics.histogram("serve.decision_seconds").observe(seconds_since(pending.enqueued));
      answer(pending.fd, pending.request_id, kDecideOk, actor.action(row));
    }
    queue.erase(queue.begin(), queue.begin() + static_cast<std::ptrdiff_t>(rows));
    metrics.gauge("serve.queue_depth").set(static_cast<double>(queue.size()));
  }

  loop.remove_listener(listen_fd_);
  std::vector<int> open;
  open.reserve(clients.size());
  for (const auto& [fd, client] : clients) open.push_back(fd);
  for (int fd : open) close_client(fd);
}

}  // namespace edgeslice::serve
