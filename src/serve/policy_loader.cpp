#include "serve/policy_loader.h"

#include <sstream>
#include <stdexcept>

#include "ckpt/agent_cache.h"
#include "ckpt/container.h"

namespace edgeslice::serve {

namespace {

LoadedPolicy from_reader(const ckpt::CheckpointReader& reader) {
  const std::string& blob = reader.require(ckpt::SectionKind::Policy);
  std::istringstream in(blob);
  LoadedPolicy loaded{nn::Mlp::load_binary(in), std::string(), reader.fingerprint()};
  loaded.digest = ckpt::fingerprint_digest(loaded.fingerprint);
  return loaded;
}

}  // namespace

LoadedPolicy load_policy_by_digest(const std::string& cache_dir,
                                   const std::string& digest) {
  const std::string path = cache_dir + "/" + digest + ".ckpt";
  const ckpt::CheckpointReader reader = ckpt::CheckpointReader::from_file(path);
  const std::string actual = ckpt::fingerprint_digest(reader.fingerprint());
  if (actual != digest) {
    throw std::runtime_error("serve: cache entry " + path +
                             " holds a policy for digest " + actual +
                             " (requested " + digest + ")");
  }
  return from_reader(reader);
}

LoadedPolicy load_policy_file(const std::string& path) {
  return from_reader(ckpt::CheckpointReader::from_file(path));
}

}  // namespace edgeslice::serve
