// The policy-serving daemon core: decisions as a service (DESIGN.md
// "Policy-serving plane").
//
// PolicyServer turns a trained policy network (an agent-cache entry, see
// src/ckpt/agent_cache.h) into a request/response service speaking the
// ESFR framed protocol over localhost TCP: clients send DecideRequest
// frames carrying an observation, the server answers DecideResponse
// frames carrying the policy's allocation vector. One single-threaded
// poll(2) event loop (src/ipc/event_loop.h, the supervisor's) multiplexes
// every client; concurrent requests are folded through the cross-agent
// BatchedActor path (src/rl/batched_actor.h) — one GEMM per layer per
// tick for however many requests arrived, not one forward pass each.
//
// Admission control is a bounded queue: when the backlog reaches
// queue_limit, new requests are shed immediately with a 429-style
// DecideResponse instead of growing the tail latency — an overloaded
// server degrades by answering "try later" fast, never by answering
// everything slowly.
//
// Determinism gate (tested across GEMM backends): the served action for
// observation x is bit-identical to Agent::act(x, explore=false) on the
// same network, whatever the batch composition — BatchedActor's per-row
// contract (row r of an m-row product equals the 1-row product) makes
// batching an observation-neutral execution detail here exactly as it is
// in the period loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "nn/mlp.h"

namespace edgeslice::serve {

struct PolicyServerConfig {
  /// TCP port to listen on; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Loopback only by default: the protocol is unauthenticated.
  std::string bind_address = "127.0.0.1";
  /// Most requests folded into one batched forward pass per tick.
  std::size_t batch_max = 64;
  /// Admission SLO: requests arriving while queue_depth >= queue_limit
  /// are shed with kDecideShed. 0 sheds everything (drain mode).
  std::size_t queue_limit = 1024;
  /// Reported in ServeStatus (the agent-cache address the policy came
  /// from); purely informational.
  std::string policy_digest;
  /// Idle poll slice in milliseconds (latency floor when a request
  /// arrives while the loop is parked).
  int poll_ms = 20;
};

/// Lifetime serving counters, readable from any thread.
struct ServeCounters {
  std::uint64_t requests = 0;      // DecideRequests received
  std::uint64_t decided = 0;       // answered kDecideOk
  std::uint64_t shed = 0;          // answered kDecideShed
  std::uint64_t rejected = 0;      // answered kDecideBadRequest
  std::uint64_t ticks = 0;         // batched forward passes run
  std::uint64_t accepted = 0;      // connections accepted
  std::uint64_t protocol_errors = 0;  // connections torn down on bad frames
};

class PolicyServer {
 public:
  /// `policy` is the deterministic actor network to serve (its plain
  /// forward pass IS the decision — rl::FrozenActor semantics).
  PolicyServer(nn::Mlp policy, PolicyServerConfig config = {});
  ~PolicyServer();
  PolicyServer(const PolicyServer&) = delete;
  PolicyServer& operator=(const PolicyServer&) = delete;

  /// Bind + listen + spawn the serving thread. Returns false (with a log
  /// line) when the socket cannot be bound.
  bool start();
  /// Stop the serving thread, close every client and the socket
  /// (idempotent).
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The actually bound port (resolves config port 0).
  std::uint16_t port() const { return port_; }

  ServeCounters counters() const;
  const nn::Mlp& policy() const { return policy_; }
  const PolicyServerConfig& config() const { return config_; }

 private:
  void serve_loop();

  nn::Mlp policy_;
  PolicyServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> decided_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
};

}  // namespace edgeslice::serve
