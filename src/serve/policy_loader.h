// Loading a servable policy out of the agent cache (or a bare file).
//
// The agent cache (src/ckpt/agent_cache.h) addresses entries by the
// FNV-1a digest of their configuration fingerprint; policy-serve is
// pointed at an entry by that digest ("serve the policy at address X"),
// so loading here re-verifies the address: the digest of the stored
// fingerprint must equal the requested digest, or the file is not the
// entry it claims to be (hand-renamed, truncated rename, collision).
#pragma once

#include <string>

#include "nn/mlp.h"

namespace edgeslice::serve {

/// A policy ready to serve, plus the provenance ServeStatus reports.
struct LoadedPolicy {
  nn::Mlp policy;
  std::string digest;       // 16 lowercase hex chars
  std::string fingerprint;  // canonical configuration text from the entry
};

/// Load "<cache_dir>/<digest>.ckpt" and validate it end to end (ESCK
/// container CRCs, digest-of-fingerprint match, Policy section present).
/// Throws std::runtime_error naming any failure.
LoadedPolicy load_policy_by_digest(const std::string& cache_dir,
                                   const std::string& digest);

/// Load a policy from an explicit ESCK file (any name); the digest is
/// computed from the stored fingerprint. Throws on any invalidity.
LoadedPolicy load_policy_file(const std::string& path);

}  // namespace edgeslice::serve
