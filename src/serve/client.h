// Client side of the policy-serving protocol.
//
// ServeClient is the reference client the load generator
// (bench/serve_load.cpp) and the serve tests are built on: one blocking
// TCP connection speaking ESFR frames, with non-blocking sends
// (send_decide fires and returns — open-loop load generation must never
// stall on the server) and a poll(2)-driven drain for whatever responses
// have arrived. Blocking conveniences (decide, status, ping) wrap the
// same machinery for request/response callers.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "ipc/event_loop.h"
#include "ipc/frame.h"
#include "serve/protocol.h"

namespace edgeslice::serve {

class ServeClient {
 public:
  /// Connect to a policy-serve daemon. Throws std::runtime_error when the
  /// connection cannot be established within `timeout_ms`.
  static ServeClient connect(const std::string& host, std::uint16_t port,
                             int timeout_ms = 5000);
  ~ServeClient();
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  int fd() const { return fd_; }

  /// Fire one DecideRequest (does not wait for the response). Throws on
  /// I/O failure.
  void send_decide(std::uint64_t request_id, const std::vector<double>& observation);

  /// Drain DecideResponses that arrive within `deadline_ms` (0 polls once
  /// without waiting). Non-decision frames picked up along the way are
  /// buffered for status()/ping(). Throws on protocol violation or EOF.
  std::vector<DecideResponsePayload> poll_decisions(int deadline_ms);

  /// Blocking round trips. Each throws std::runtime_error on timeout,
  /// EOF, or protocol violation. decide() buffers non-matching decisions
  /// (an open-loop sender mixing decide() in would reorder), so it
  /// composes with poll_decisions().
  DecideResponsePayload decide(std::uint64_t request_id,
                               const std::vector<double>& observation,
                               int timeout_ms = 5000);
  ServeStatusPayload status(int timeout_ms = 5000);
  std::string ping(const std::string& payload, int timeout_ms = 5000);

  /// Escape hatch for hostile-input tests: write raw bytes to the socket.
  void send_raw(const std::string& bytes);
  /// Escape hatch: send an arbitrary frame with the connection's next seq.
  void send_frame(ipc::FrameType type, std::string payload);

 private:
  ServeClient() = default;
  /// Read until `deadline_ms`, routing frames into the decision/other
  /// buffers; returns false on deadline, throws on EOF/violation.
  bool pump(int deadline_ms);
  std::optional<ipc::Frame> take_other(ipc::FrameType type);

  int fd_ = -1;
  std::uint64_t out_seq_ = 0;
  ipc::FrameAssembler assembler_;
  std::deque<DecideResponsePayload> decisions_;
  std::deque<ipc::Frame> others_;  // ServeStatus / Pong replies
};

}  // namespace edgeslice::serve
