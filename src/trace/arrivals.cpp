#include "trace/arrivals.h"

#include <stdexcept>

namespace edgeslice::trace {

PoissonArrivals::PoissonArrivals(double rate) : rate_(rate) {
  if (rate < 0.0) throw std::invalid_argument("PoissonArrivals: negative rate");
}

std::size_t PoissonArrivals::next(Rng& rng) {
  return static_cast<std::size_t>(rng.poisson(rate_));
}

void PoissonArrivals::set_rate(double rate) {
  if (rate < 0.0) throw std::invalid_argument("PoissonArrivals: negative rate");
  rate_ = rate;
}

ProfileArrivals::ProfileArrivals(std::vector<double> profile, double scale)
    : profile_(std::move(profile)), scale_(scale) {
  if (profile_.empty()) throw std::invalid_argument("ProfileArrivals: empty profile");
  for (double v : profile_) {
    if (v < 0.0) throw std::invalid_argument("ProfileArrivals: negative profile entry");
  }
}

std::size_t ProfileArrivals::next(std::size_t t, Rng& rng) {
  return static_cast<std::size_t>(rng.poisson(mean_at(t)));
}

double ProfileArrivals::mean_at(std::size_t t) const {
  return scale_ * profile_[t % profile_.size()];
}

}  // namespace edgeslice::trace
