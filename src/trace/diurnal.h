// Diurnal activity profile of mobile network traffic.
//
// The paper drives its simulations with the Telecom Italia Big Data
// Challenge trace over the Province of Trento (Dec 2013, 10-minute bins):
// per-cell counts of calls, SMS and Internet traffic, of which the paper
// uses the "average calling traffic in 24 hours under different geographic
// areas" (Sec. VII-D). That dataset is not redistributable, so this module
// synthesizes activity curves with the same well-documented structure:
// a deep night trough, a morning ramp, a midday peak, and a stronger
// evening peak, modulated per cell.
#pragma once

#include "common/rng.h"

namespace edgeslice::trace {

/// Parameters of a two-peak diurnal curve. Defaults approximate the average
/// weekday calling profile reported for the Telecom Italia dataset.
struct DiurnalShape {
  double night_floor = 0.08;    // relative activity at ~4 AM
  double morning_peak = 0.85;   // relative height of the ~11 AM peak
  double morning_hour = 11.0;
  double morning_width = 2.6;   // Gaussian width in hours
  double evening_peak = 1.0;    // relative height of the ~19 PM peak
  double evening_hour = 19.0;
  double evening_width = 3.0;
};

/// Relative activity (0..~1) at `hour` in [0, 24).
double diurnal_activity(double hour, const DiurnalShape& shape = {});

/// Per-cell modulation of the shared diurnal shape. Cells differ in overall
/// scale (log-normal, heavy-tailed like real cell loads) and in peak-hour
/// offsets (residential cells peak later than business cells).
struct CellProfile {
  double scale = 1.0;       // multiplicative activity scale
  double phase_hours = 0.0; // shift of the whole curve
  DiurnalShape shape;
};

/// Draw a random cell profile.
CellProfile sample_cell_profile(Rng& rng);

/// Activity of a cell at `hour`, combining shape, phase and scale.
double cell_activity(const CellProfile& cell, double hour);

}  // namespace edgeslice::trace
