#include "trace/csv.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace edgeslice::trace {

namespace {

constexpr const char* kHeader = "cell_id,interval,calls,sms,internet";

std::vector<std::string> split_csv_row(const std::string& line) {
  std::vector<std::string> fields;
  std::stringstream stream(line);
  std::string field;
  while (std::getline(stream, field, ',')) fields.push_back(field);
  return fields;
}

/// Normalize one raw line: drop the trailing '\r' a CRLF-encoded file
/// leaves behind std::getline, and (first line only) a UTF-8 BOM.
void strip_line_ending(std::string& line, bool first_line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (first_line && line.size() >= 3 && line[0] == '\xEF' && line[1] == '\xBB' &&
      line[2] == '\xBF') {
    line.erase(0, 3);
  }
}

double parse_number(const std::string& field, std::size_t line_number) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(field, &consumed);
    if (consumed != field.size()) throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("read_trace_csv: bad numeric field '" + field +
                             "' on line " + std::to_string(line_number));
  }
}

}  // namespace

void write_trace_csv(std::ostream& out, const std::vector<TraceEntry>& entries) {
  out << kHeader << "\n";
  for (const auto& e : entries) {
    out << e.cell_id << "," << e.interval << "," << e.calls << "," << e.sms << ","
        << e.internet << "\n";
  }
}

std::vector<TraceEntry> read_trace_csv(std::istream& in) {
  std::string line;
  const bool have_header = static_cast<bool>(std::getline(in, line));
  if (have_header) strip_line_ending(line, /*first_line=*/true);
  if (!have_header || line != kHeader) {
    throw std::runtime_error("read_trace_csv: expected header '" + std::string(kHeader) +
                             "'");
  }
  std::vector<TraceEntry> entries;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    strip_line_ending(line, /*first_line=*/false);
    if (line.empty()) continue;
    const auto fields = split_csv_row(line);
    if (fields.size() != 5) {
      throw std::runtime_error("read_trace_csv: expected 5 fields on line " +
                               std::to_string(line_number));
    }
    TraceEntry e;
    e.cell_id = static_cast<std::size_t>(parse_number(fields[0], line_number));
    e.interval = static_cast<std::size_t>(parse_number(fields[1], line_number));
    e.calls = parse_number(fields[2], line_number);
    e.sms = parse_number(fields[3], line_number);
    e.internet = parse_number(fields[4], line_number);
    entries.push_back(e);
  }
  return entries;
}

std::vector<double> daily_call_profile(const std::vector<TraceEntry>& entries,
                                       std::size_t cell_id, std::size_t bins,
                                       std::size_t intervals_per_day) {
  if (bins == 0 || intervals_per_day == 0)
    throw std::invalid_argument("daily_call_profile: zero bins");
  std::vector<double> acc(bins, 0.0);
  std::vector<std::size_t> counts(bins, 0);
  for (const auto& e : entries) {
    if (e.cell_id != cell_id) continue;
    const std::size_t bin_of_day = e.interval % intervals_per_day;
    const std::size_t out_bin = bin_of_day * bins / intervals_per_day;
    acc[out_bin] += e.calls;
    ++counts[out_bin];
  }
  for (std::size_t b = 0; b < bins; ++b) {
    if (counts[b] > 0) acc[b] /= static_cast<double>(counts[b]);
  }
  return acc;
}

}  // namespace edgeslice::trace
