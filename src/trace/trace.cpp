#include "trace/trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edgeslice::trace {

TraceDataset::TraceDataset(const TraceConfig& config, Rng& rng) : config_(config) {
  if (config.cells == 0 || config.days == 0 || config.intervals_per_day == 0)
    throw std::invalid_argument("TraceDataset: degenerate config");
  profiles_.reserve(config.cells);
  for (std::size_t c = 0; c < config.cells; ++c) {
    profiles_.push_back(sample_cell_profile(rng));
  }
  entries_.reserve(config.cells * config.days * config.intervals_per_day);
  const double hours_per_bin = 24.0 / static_cast<double>(config.intervals_per_day);
  for (std::size_t day = 0; day < config.days; ++day) {
    for (std::size_t bin = 0; bin < config.intervals_per_day; ++bin) {
      const double hour = static_cast<double>(bin) * hours_per_bin;
      for (std::size_t c = 0; c < config.cells; ++c) {
        const double activity = cell_activity(profiles_[c], hour);
        const double jitter = rng.lognormal(0.0, config.noise);
        TraceEntry e;
        e.cell_id = c;
        e.interval = day * config.intervals_per_day + bin;
        e.calls = static_cast<double>(
            rng.poisson(config.mean_calls_per_interval * activity * jitter));
        // SMS and Internet activity follow the same diurnal shape with
        // different volumes; only calls are consumed by the simulation.
        e.sms = static_cast<double>(
            rng.poisson(0.4 * config.mean_calls_per_interval * activity * jitter));
        e.internet = static_cast<double>(
            rng.poisson(3.0 * config.mean_calls_per_interval * activity * jitter));
        entries_.push_back(e);
      }
    }
  }
}

std::vector<double> TraceDataset::average_daily_calls(std::size_t cell_id,
                                                      std::size_t bins) const {
  if (cell_id >= config_.cells) throw std::out_of_range("TraceDataset: bad cell id");
  if (bins == 0) throw std::invalid_argument("TraceDataset: bins must be > 0");
  std::vector<double> acc(bins, 0.0);
  std::vector<std::size_t> counts(bins, 0);
  for (const auto& e : entries_) {
    if (e.cell_id != cell_id) continue;
    const std::size_t bin_of_day = e.interval % config_.intervals_per_day;
    const std::size_t out_bin = bin_of_day * bins / config_.intervals_per_day;
    acc[out_bin] += e.calls;
    ++counts[out_bin];
  }
  for (std::size_t b = 0; b < bins; ++b) {
    if (counts[b] > 0) acc[b] /= static_cast<double>(counts[b]);
  }
  return acc;
}

std::vector<double> TraceDataset::normalized_daily_profile(std::size_t cell_id,
                                                           std::size_t bins,
                                                           double peak) const {
  auto profile = average_daily_calls(cell_id, bins);
  const double max_value = *std::max_element(profile.begin(), profile.end());
  if (max_value <= 0.0) return profile;
  for (auto& v : profile) v = v / max_value * peak;
  return profile;
}

}  // namespace edgeslice::trace
