// Synthetic Telecom-Italia-style traffic trace.
//
// Mirrors the schema the paper uses (Sec. VII-D): per grid cell and
// 10-minute interval, counts of calls / SMS / Internet activity. The
// simulation consumes the 24-hour average calling activity per cell,
// exactly how the paper consumes the real trace.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "trace/diurnal.h"

namespace edgeslice::trace {

/// One record in the (synthetic) activity dataset.
struct TraceEntry {
  std::size_t cell_id = 0;
  std::size_t interval = 0;  // 10-minute bin index from the start of the trace
  double calls = 0.0;
  double sms = 0.0;
  double internet = 0.0;
};

struct TraceConfig {
  std::size_t cells = 16;
  std::size_t days = 7;
  std::size_t intervals_per_day = 144;  // 10-minute bins, as in the dataset
  double mean_calls_per_interval = 50.0;
  double noise = 0.15;  // multiplicative lognormal jitter per bin
};

/// A generated dataset plus its per-cell ground-truth profiles.
class TraceDataset {
 public:
  TraceDataset(const TraceConfig& config, Rng& rng);

  const std::vector<TraceEntry>& entries() const { return entries_; }
  const TraceConfig& config() const { return config_; }
  std::size_t cell_count() const { return config_.cells; }

  /// Average calling activity over 24 hours for one cell: `bins` values
  /// covering [0, 24) hours, averaged across days (what the paper extracts
  /// from the Trentino trace to drive slice traffic).
  std::vector<double> average_daily_calls(std::size_t cell_id, std::size_t bins = 24) const;

  /// Same but normalized so the busiest bin equals `peak` (used to map
  /// activity onto slice arrival rates).
  std::vector<double> normalized_daily_profile(std::size_t cell_id, std::size_t bins = 24,
                                               double peak = 1.0) const;

 private:
  TraceConfig config_;
  std::vector<CellProfile> profiles_;
  std::vector<TraceEntry> entries_;
};

}  // namespace edgeslice::trace
