// CSV import/export for traffic traces.
//
// The synthetic trace generator mirrors the Telecom Italia dataset's
// content; this module provides the file format so a real trace export
// (or any external per-cell activity data) can drive the simulation
// instead. Schema: header `cell_id,interval,calls,sms,internet`, one row
// per (cell, 10-minute bin).
#pragma once

#include <iosfwd>
#include <vector>

#include "trace/trace.h"

namespace edgeslice::trace {

/// Write entries as CSV (with header).
void write_trace_csv(std::ostream& out, const std::vector<TraceEntry>& entries);

/// Parse a CSV trace. Throws std::runtime_error on malformed input
/// (wrong header, non-numeric fields, short rows).
std::vector<TraceEntry> read_trace_csv(std::istream& in);

/// Average 24-hour calling profile per cell from raw entries — the same
/// reduction TraceDataset::average_daily_calls performs, usable on
/// externally loaded data. `intervals_per_day` is the trace's native bin
/// count per day (144 for 10-minute bins).
std::vector<double> daily_call_profile(const std::vector<TraceEntry>& entries,
                                       std::size_t cell_id, std::size_t bins = 24,
                                       std::size_t intervals_per_day = 144);

}  // namespace edgeslice::trace
