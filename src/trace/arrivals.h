// Task arrival processes for slice service queues.
//
// Prototype experiments use a Poisson process with average rate 10 per
// interval (Sec. VII-C); simulations scale a diurnal trace profile into
// the Poisson mean per interval (Sec. VII-D).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace edgeslice::trace {

/// Stationary Poisson arrivals: `rate` expected tasks per interval.
class PoissonArrivals {
 public:
  explicit PoissonArrivals(double rate);
  std::size_t next(Rng& rng);
  double rate() const { return rate_; }
  void set_rate(double rate);

 private:
  double rate_;
};

/// Non-stationary arrivals following a cyclic profile of per-interval
/// means (e.g. a 24-entry diurnal profile scaled to a peak rate).
class ProfileArrivals {
 public:
  ProfileArrivals(std::vector<double> profile, double scale = 1.0);

  /// Arrivals for interval `t` (profile wraps around).
  std::size_t next(std::size_t t, Rng& rng);
  double mean_at(std::size_t t) const;
  std::size_t period() const { return profile_.size(); }

 private:
  std::vector<double> profile_;
  double scale_;
};

}  // namespace edgeslice::trace
