#include "trace/diurnal.h"

#include <cmath>

namespace edgeslice::trace {

namespace {

/// Periodic (wrap-around) Gaussian bump centred at `centre` hours.
double bump(double hour, double centre, double width) {
  double d = std::fmod(std::abs(hour - centre), 24.0);
  if (d > 12.0) d = 24.0 - d;
  return std::exp(-0.5 * (d / width) * (d / width));
}

}  // namespace

double diurnal_activity(double hour, const DiurnalShape& shape) {
  const double value = shape.night_floor +
                       shape.morning_peak * bump(hour, shape.morning_hour, shape.morning_width) +
                       shape.evening_peak * bump(hour, shape.evening_hour, shape.evening_width);
  // Normalize so the curve's maximum is ~1 when peaks don't overlap heavily.
  const double peak = shape.night_floor + shape.evening_peak +
                      shape.morning_peak * bump(shape.evening_hour, shape.morning_hour,
                                                shape.morning_width);
  return value / peak;
}

CellProfile sample_cell_profile(Rng& rng) {
  CellProfile cell;
  // Log-normal scale: median 1, heavy tail (busy downtown cells).
  cell.scale = rng.lognormal(0.0, 0.6);
  // Residential vs business phase shift: +-1.5 h.
  cell.phase_hours = rng.normal(0.0, 1.5);
  // Mild per-cell variation of the peak mix.
  cell.shape.morning_peak = 0.85 + rng.normal(0.0, 0.1);
  cell.shape.evening_peak = 1.0 + rng.normal(0.0, 0.1);
  if (cell.shape.morning_peak < 0.2) cell.shape.morning_peak = 0.2;
  if (cell.shape.evening_peak < 0.2) cell.shape.evening_peak = 0.2;
  return cell;
}

double cell_activity(const CellProfile& cell, double hour) {
  double h = std::fmod(hour - cell.phase_hours, 24.0);
  if (h < 0.0) h += 24.0;
  return cell.scale * diurnal_activity(h, cell.shape);
}

}  // namespace edgeslice::trace
