// Per-user wireless channel quality model.
//
// Each attached user reports a CQI that evolves as a bounded random walk,
// approximating slow fading around a user-specific mean (distance to the
// eNodeB). The USRP/smartphone link of the prototype is reduced to this
// CQI process — the only radio input the MAC scheduler consumes.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "radio/lte.h"

namespace edgeslice::radio {

class ChannelModel {
 public:
  /// `mean_cqi` anchors the walk; `volatility` is the per-step probability
  /// of a CQI change.
  ChannelModel(std::size_t mean_cqi, double volatility = 0.3);

  /// Advance one step and return the current CQI in [1, 15].
  std::size_t step(Rng& rng);

  std::size_t cqi() const { return cqi_; }

 private:
  std::size_t mean_cqi_;
  double volatility_;
  std::size_t cqi_;
};

}  // namespace edgeslice::radio
