// Radio resource manager — the VR-R middleware of Sec. V-A.
//
// Bridges the orchestration agent's virtual-resource (VR) view — "slice i
// gets fraction x of the radio bandwidth" — to PRB quotas enforced by the
// slice-aware MAC scheduler. User/slice association is learned from
// simulated S1AP attach messages carrying the user's IMSI, exactly the
// extraction point the paper uses (eNB -> MME S1AP), requiring no
// modification on the user side.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "radio/channel.h"
#include "radio/scheduler.h"

namespace edgeslice::radio {

/// Simulated S1AP Initial UE Message, as sent from eNodeB to MME.
struct S1apAttach {
  std::string imsi;
  std::size_t enb_id = 0;
  std::size_t user_id = 0;  // RNTI-like local identifier
};

struct RadioManagerConfig {
  double bandwidth_mhz = 5.0;  // prototype: 5 MHz = 25 PRBs per eNodeB
  std::size_t slices = 2;
};

class RadioManager {
 public:
  RadioManager(const RadioManagerConfig& config, Rng& rng);

  /// --- VR-R interface (called by the orchestration agent) ---------------
  /// Set slice i's share of the radio bandwidth (fraction in [0,1]).
  /// Shares are quantized to whole PRBs.
  void set_slice_share(std::size_t slice, double fraction);
  /// Current PRB quota of a slice.
  std::size_t slice_prbs(std::size_t slice) const;

  /// --- Attach / association (S1AP path) ---------------------------------
  /// Process an attach; the IMSI -> slice mapping must already be known
  /// (registered by the system monitor / slice request interface).
  void register_imsi(const std::string& imsi, std::size_t slice);
  void on_attach(const S1apAttach& message, std::size_t mean_cqi = 9);
  std::size_t user_count() const { return users_.size(); }
  std::size_t slice_of_user(std::size_t user_id) const;

  /// --- Data path ---------------------------------------------------------
  /// Add downlink traffic for a user (bits buffered at the eNodeB).
  void enqueue_bits(std::size_t user_id, double bits);
  double user_backlog(std::size_t user_id) const;

  /// Run `ttis` scheduling rounds (1 TTI = 1 ms); channel models advance
  /// each TTI. Returns per-slice served bits.
  std::vector<double> run(std::size_t ttis, Rng& rng);

  /// Analytic per-interval capacity of a slice in bits for `seconds`,
  /// assuming saturated demand at CQI `cqi` — used by the grid-search
  /// dataset generator where per-TTI simulation would be wasteful.
  double slice_capacity_bits(std::size_t slice, double seconds, std::size_t cqi = 9) const;

  /// --- Fault hook ---------------------------------------------------------
  /// CQI blackout (deep fade): while active, no transport blocks decode —
  /// scheduling rounds serve zero bits and capacity reads zero. Channel
  /// models keep advancing so the RNG stream is unperturbed by the fault.
  void set_cqi_blackout(bool active) { blackout_ = active; }
  bool cqi_blackout() const { return blackout_; }

  std::size_t total_prbs() const { return scheduler_.total_prbs(); }
  std::size_t slice_count() const { return slice_share_.size(); }

 private:
  struct UserState {
    std::size_t slice = 0;
    ChannelModel channel;
    double backlog_bits = 0.0;
  };

  RadioManagerConfig config_;
  bool blackout_ = false;
  std::vector<double> slice_share_;
  SliceAwareScheduler scheduler_;
  std::map<std::string, std::size_t> imsi_to_slice_;
  std::map<std::size_t, UserState> users_;
};

}  // namespace edgeslice::radio
