#include "radio/scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "radio/lte.h"

namespace edgeslice::radio {

SliceAwareScheduler::SliceAwareScheduler(std::size_t total_prbs,
                                         std::vector<std::size_t> slice_prb_quota)
    : total_prbs_(total_prbs), quota_(std::move(slice_prb_quota)) {
  if (total_prbs == 0) throw std::invalid_argument("SliceAwareScheduler: zero PRBs");
}

void SliceAwareScheduler::set_quotas(std::vector<std::size_t> slice_prb_quota) {
  quota_ = std::move(slice_prb_quota);
}

TtiSchedule SliceAwareScheduler::schedule(const std::vector<UserDemand>& users) {
  TtiSchedule out;
  out.slice_served_bits.assign(quota_.size(), 0.0);

  std::size_t next_prb = 0;
  for (std::size_t slice = 0; slice < quota_.size(); ++slice) {
    // Truncate over-subscribed quotas against the remaining grid: slices
    // are mapped to consecutive PRB ranges in slice-id order.
    std::size_t remaining = std::min(quota_[slice], total_prbs_ - next_prb);
    if (remaining == 0) continue;  // slice holds no radio resources: skip its users

    // Gather this slice's users with pending data, rotating the start
    // index for fairness across TTIs.
    std::vector<const UserDemand*> slice_users;
    for (const auto& u : users) {
      if (u.slice_id == slice && u.backlog_bits > 0.0) slice_users.push_back(&u);
    }
    if (slice_users.empty()) continue;
    const std::size_t start = round_robin_offset_ % slice_users.size();

    for (std::size_t n = 0; n < slice_users.size() && remaining > 0; ++n) {
      const UserDemand& u = *slice_users[(start + n) % slice_users.size()];
      const double bits_per_prb = tbs_bits(1, u.cqi);
      const auto wanted =
          static_cast<std::size_t>(std::ceil(u.backlog_bits / bits_per_prb));
      const std::size_t granted = std::min(wanted, remaining);
      if (granted == 0) continue;
      UserGrant grant;
      grant.user_id = u.user_id;
      grant.slice_id = slice;
      grant.first_prb = next_prb;
      grant.prbs = granted;
      grant.bits = std::min(u.backlog_bits, tbs_bits(granted, u.cqi));
      out.grants.push_back(grant);
      out.slice_served_bits[slice] += grant.bits;
      next_prb += granted;
      remaining -= granted;
    }
  }
  out.prbs_used = next_prb;
  ++round_robin_offset_;
  return out;
}

}  // namespace edgeslice::radio
