// Slice-aware MAC-layer user scheduler.
//
// Implements the paper's new scheduling method (Sec. V-A): the total PRBs
// a slice may use come from the orchestration agent; inside a slice, users
// are scheduled *consecutively* and their radio resources are mapped to
// PRBs in PUSCH/PDSCH. Users whose slice holds no radio resources are not
// scheduled at all — the behaviour vanilla OAI does not support.
#pragma once

#include <cstddef>
#include <vector>

namespace edgeslice::radio {

/// One user's scheduling input for a TTI.
struct UserDemand {
  std::size_t user_id = 0;
  std::size_t slice_id = 0;
  std::size_t cqi = 7;
  double backlog_bits = 0.0;  // data waiting in the user's RLC queue
};

/// One user's grant for a TTI.
struct UserGrant {
  std::size_t user_id = 0;
  std::size_t slice_id = 0;
  std::size_t first_prb = 0;   // consecutive mapping: [first_prb, first_prb + prbs)
  std::size_t prbs = 0;
  double bits = 0.0;           // transport block size actually granted
};

/// Result of scheduling one TTI.
struct TtiSchedule {
  std::vector<UserGrant> grants;
  std::vector<double> slice_served_bits;  // indexed by slice id
  std::size_t prbs_used = 0;
};

class SliceAwareScheduler {
 public:
  /// `slice_prb_quota[i]` = PRBs slice i may occupy this TTI; the sum may
  /// not exceed `total_prbs` (excess quotas are truncated in PRB order).
  SliceAwareScheduler(std::size_t total_prbs, std::vector<std::size_t> slice_prb_quota);

  /// Schedule one TTI. Users are served in round-robin order within their
  /// slice; grants are consecutive PRB ranges; a user receives at most the
  /// PRBs needed for its backlog at its CQI.
  TtiSchedule schedule(const std::vector<UserDemand>& users);

  const std::vector<std::size_t>& quotas() const { return quota_; }
  void set_quotas(std::vector<std::size_t> slice_prb_quota);
  std::size_t total_prbs() const { return total_prbs_; }

 private:
  std::size_t total_prbs_;
  std::vector<std::size_t> quota_;
  std::size_t round_robin_offset_ = 0;
};

}  // namespace edgeslice::radio
