// LTE physical-layer constants and rate tables.
//
// Stands in for the OpenAirInterface eNodeB of the prototype (Table II:
// 5 MHz carriers = 25 PRBs on Band 7 / Band 38). The numbers follow
// 3GPP TS 36.213: CQI indices 1..15 map to modulation-and-coding spectral
// efficiencies; a PRB is 12 subcarriers x 0.5 ms slot.
#pragma once

#include <cstddef>

namespace edgeslice::radio {

inline constexpr std::size_t kMinCqi = 1;
inline constexpr std::size_t kMaxCqi = 15;

/// Spectral efficiency (information bits per resource element) for a CQI
/// index, per TS 36.213 Table 7.2.3-1. Index 0 is invalid (out of range).
double cqi_efficiency(std::size_t cqi);

/// Number of physical resource blocks for a channel bandwidth in MHz
/// (1.4 -> 6, 3 -> 15, 5 -> 25, 10 -> 50, 15 -> 75, 20 -> 100).
std::size_t prbs_for_bandwidth_mhz(double mhz);

/// Resource elements available for the shared data channel per PRB per
/// 1 ms TTI: 12 subcarriers x 14 OFDM symbols, minus ~25% control/pilot
/// overhead (PDCCH, CRS, PBCH amortized).
inline constexpr double kDataResourceElementsPerPrbPerTti = 12.0 * 14.0 * 0.75;

/// Transport block size in bits for `prbs` PRBs at CQI `cqi` in one TTI.
double tbs_bits(std::size_t prbs, std::size_t cqi);

/// Peak PDSCH throughput in Mbit/s for a full grant of `prbs` at `cqi`
/// (1000 TTIs per second).
double peak_throughput_mbps(std::size_t prbs, std::size_t cqi);

}  // namespace edgeslice::radio
