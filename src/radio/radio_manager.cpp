#include "radio/radio_manager.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/metrics.h"
#include "radio/lte.h"

namespace edgeslice::radio {

namespace {

std::vector<std::size_t> quotas_from_shares(const std::vector<double>& shares,
                                            std::size_t total_prbs) {
  std::vector<std::size_t> quotas(shares.size());
  for (std::size_t i = 0; i < shares.size(); ++i) {
    quotas[i] = static_cast<std::size_t>(
        std::floor(shares[i] * static_cast<double>(total_prbs) + 1e-9));
  }
  return quotas;
}

}  // namespace

RadioManager::RadioManager(const RadioManagerConfig& config, Rng& rng)
    : config_(config),
      slice_share_(config.slices, 0.0),
      scheduler_(prbs_for_bandwidth_mhz(config.bandwidth_mhz),
                 std::vector<std::size_t>(config.slices, 0)) {
  (void)rng;
  if (config.slices == 0) throw std::invalid_argument("RadioManager: zero slices");
}

void RadioManager::set_slice_share(std::size_t slice, double fraction) {
  if (slice >= slice_share_.size()) throw std::out_of_range("RadioManager: bad slice");
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("RadioManager: share must be in [0,1]");
  slice_share_[slice] = fraction;
  const auto quotas = quotas_from_shares(slice_share_, scheduler_.total_prbs());
  scheduler_.set_quotas(quotas);
  // Fraction of the cell's PRBs currently granted to slices (RAs share
  // the gauge: it tracks the most recent reconfiguration system-wide).
  const auto granted = std::accumulate(quotas.begin(), quotas.end(), std::size_t{0});
  global_metrics().gauge("radio.prb_utilization")
      .set(static_cast<double>(granted) /
           static_cast<double>(std::max<std::size_t>(1, scheduler_.total_prbs())));
}

std::size_t RadioManager::slice_prbs(std::size_t slice) const {
  if (slice >= slice_share_.size()) throw std::out_of_range("RadioManager: bad slice");
  return quotas_from_shares(slice_share_, scheduler_.total_prbs())[slice];
}

void RadioManager::register_imsi(const std::string& imsi, std::size_t slice) {
  if (slice >= slice_share_.size()) throw std::out_of_range("RadioManager: bad slice");
  imsi_to_slice_[imsi] = slice;
}

void RadioManager::on_attach(const S1apAttach& message, std::size_t mean_cqi) {
  const auto it = imsi_to_slice_.find(message.imsi);
  if (it == imsi_to_slice_.end())
    throw std::invalid_argument("RadioManager: unknown IMSI " + message.imsi);
  users_.emplace(message.user_id,
                 UserState{it->second, ChannelModel(mean_cqi), 0.0});
}

std::size_t RadioManager::slice_of_user(std::size_t user_id) const {
  const auto it = users_.find(user_id);
  if (it == users_.end()) throw std::out_of_range("RadioManager: unknown user");
  return it->second.slice;
}

void RadioManager::enqueue_bits(std::size_t user_id, double bits) {
  const auto it = users_.find(user_id);
  if (it == users_.end()) throw std::out_of_range("RadioManager: unknown user");
  if (bits < 0.0) throw std::invalid_argument("RadioManager: negative bits");
  it->second.backlog_bits += bits;
}

double RadioManager::user_backlog(std::size_t user_id) const {
  const auto it = users_.find(user_id);
  if (it == users_.end()) throw std::out_of_range("RadioManager: unknown user");
  return it->second.backlog_bits;
}

std::vector<double> RadioManager::run(std::size_t ttis, Rng& rng) {
  std::vector<double> served(slice_share_.size(), 0.0);
  for (std::size_t t = 0; t < ttis; ++t) {
    std::vector<UserDemand> demands;
    demands.reserve(users_.size());
    for (auto& [id, user] : users_) {
      user.channel.step(rng);
      if (blackout_ || user.backlog_bits <= 0.0) continue;
      demands.push_back(UserDemand{id, user.slice, user.channel.cqi(), user.backlog_bits});
    }
    if (demands.empty()) continue;
    const TtiSchedule schedule = scheduler_.schedule(demands);
    for (const auto& grant : schedule.grants) {
      auto& user = users_.at(grant.user_id);
      user.backlog_bits = std::max(0.0, user.backlog_bits - grant.bits);
    }
    for (std::size_t s = 0; s < served.size(); ++s) {
      served[s] += schedule.slice_served_bits[s];
    }
  }
  return served;
}

double RadioManager::slice_capacity_bits(std::size_t slice, double seconds,
                                         std::size_t cqi) const {
  if (blackout_) return 0.0;
  const std::size_t prbs = slice_prbs(slice);
  return tbs_bits(prbs, cqi) * seconds * 1000.0;  // 1000 TTIs per second
}

}  // namespace edgeslice::radio
