#include "radio/channel.h"

#include <algorithm>
#include <stdexcept>

namespace edgeslice::radio {

ChannelModel::ChannelModel(std::size_t mean_cqi, double volatility)
    : mean_cqi_(mean_cqi), volatility_(volatility), cqi_(mean_cqi) {
  if (mean_cqi < kMinCqi || mean_cqi > kMaxCqi)
    throw std::invalid_argument("ChannelModel: mean CQI out of range");
  if (volatility < 0.0 || volatility > 1.0)
    throw std::invalid_argument("ChannelModel: volatility in [0,1]");
}

std::size_t ChannelModel::step(Rng& rng) {
  if (rng.chance(volatility_)) {
    // Drift toward the mean with probability proportional to displacement.
    const double pull = static_cast<double>(mean_cqi_) - static_cast<double>(cqi_);
    int delta;
    if (pull > 0.0 && rng.chance(0.5 + 0.1 * pull)) {
      delta = 1;
    } else if (pull < 0.0 && rng.chance(0.5 - 0.1 * pull)) {
      delta = -1;
    } else {
      delta = rng.chance(0.5) ? 1 : -1;
    }
    const auto next = static_cast<std::ptrdiff_t>(cqi_) + delta;
    cqi_ = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
        next, static_cast<std::ptrdiff_t>(kMinCqi), static_cast<std::ptrdiff_t>(kMaxCqi)));
  }
  return cqi_;
}

}  // namespace edgeslice::radio
