#include "radio/lte.h"

#include <array>
#include <stdexcept>

namespace edgeslice::radio {

double cqi_efficiency(std::size_t cqi) {
  // TS 36.213 Table 7.2.3-1 (4-bit CQI, QPSK..64QAM).
  static constexpr std::array<double, 16> kEfficiency = {
      0.0,     // 0: out of range
      0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758,  // QPSK
      1.4766, 1.9141, 2.4063,                           // 16QAM
      2.7305, 3.3223, 3.9023, 4.5234, 5.1152, 5.5547,   // 64QAM
  };
  if (cqi < kMinCqi || cqi > kMaxCqi) throw std::out_of_range("cqi_efficiency: CQI 1..15");
  return kEfficiency[cqi];
}

std::size_t prbs_for_bandwidth_mhz(double mhz) {
  if (mhz == 1.4) return 6;
  if (mhz == 3.0) return 15;
  if (mhz == 5.0) return 25;
  if (mhz == 10.0) return 50;
  if (mhz == 15.0) return 75;
  if (mhz == 20.0) return 100;
  throw std::invalid_argument("prbs_for_bandwidth_mhz: unsupported LTE bandwidth");
}

double tbs_bits(std::size_t prbs, std::size_t cqi) {
  return static_cast<double>(prbs) * kDataResourceElementsPerPrbPerTti * cqi_efficiency(cqi);
}

double peak_throughput_mbps(std::size_t prbs, std::size_t cqi) {
  return tbs_bits(prbs, cqi) * 1000.0 / 1e6;
}

}  // namespace edgeslice::radio
