// SDN controller (OpenDayLight stand-in) with hitless reconfiguration.
//
// The OpenFlow protocol supports user bandwidth modification with meters,
// but a meter's rate cannot be changed in place: the meter and its attached
// flows must be deleted and re-created, breaking the network during the
// deletion-creation interval (Sec. V-B). EdgeSlice's transport manager
// hides that gap by staging a complete parallel configuration (new meters
// and higher-priority flows) and releasing the old one only after the new
// one is live. Both strategies are implemented so the design point is
// measurable (bench/ablation_transport_reconfig).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "transport/switch.h"

namespace edgeslice::transport {

enum class ReconfigStrategy {
  NaiveDeleteRecreate,  // vanilla: delete meter+flows, then re-add (outage)
  ParallelHitless,      // EdgeSlice: stage new config, then release old
};

/// A slice's bandwidth program on one path: one meter + one flow per switch.
struct SliceProgram {
  std::size_t slice = 0;
  std::string src_ip;  // users of the slice (source match)
  std::string dst_ip;  // edge server of the RA
  double rate_mbps = 0.0;
};

struct ReconfigReport {
  std::size_t flow_mods = 0;
  std::size_t meter_mods = 0;
  double outage_seconds = 0.0;  // data-plane blackout caused by this change
};

struct ControllerConfig {
  /// Duration of the data-plane gap per switch for the naive strategy.
  /// OpenFlow barrier + flow_mod round trips are on the order of tens of
  /// milliseconds on hardware switches.
  double deletion_creation_gap_s = 0.05;
};

class SdnController {
 public:
  /// The controller manages an ordered path of switches between the RAN
  /// and the edge servers (the prototype's 6-switch transport network).
  SdnController(std::vector<OpenFlowSwitch*> path, ControllerConfig config = {});

  /// --- Northbound (RESTful) API -------------------------------------------
  /// Install or update a slice's bandwidth program on the whole path.
  ReconfigReport apply(const SliceProgram& program, ReconfigStrategy strategy);

  /// Offered-load test: push `mbps` from src to dst through the path and
  /// return the end-to-end forwarded rate (min across switches).
  double end_to_end_rate(const std::string& src_ip, const std::string& dst_ip,
                         double mbps) const;

  /// Total data-plane outage accumulated by naive reconfigurations.
  double total_outage_seconds() const { return total_outage_s_; }
  std::size_t path_length() const { return path_.size(); }

 private:
  MeterId meter_id_for(std::size_t slice, std::size_t generation) const;
  FlowId flow_id_for(std::size_t slice, std::size_t generation) const;

  std::vector<OpenFlowSwitch*> path_;
  ControllerConfig config_;
  /// Per-slice configuration generation (flips between 0/1 for parallel
  /// configs; increments monotonically for id derivation).
  std::vector<std::size_t> generation_;
  std::vector<bool> installed_;
  double total_outage_s_ = 0.0;
};

}  // namespace edgeslice::transport
