#include "transport/transport_manager.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/metrics.h"

namespace edgeslice::transport {

namespace {

std::vector<OpenFlowSwitch*> raw_path(
    const std::vector<std::unique_ptr<OpenFlowSwitch>>& switches) {
  std::vector<OpenFlowSwitch*> path;
  path.reserve(switches.size());
  for (const auto& sw : switches) path.push_back(sw.get());
  return path;
}

std::vector<std::unique_ptr<OpenFlowSwitch>> make_switches(std::size_t n) {
  std::vector<std::unique_ptr<OpenFlowSwitch>> switches;
  switches.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switches.push_back(std::make_unique<OpenFlowSwitch>("of:" + std::to_string(i + 1)));
  }
  return switches;
}

}  // namespace

TransportManager::TransportManager(const TransportManagerConfig& config)
    : config_(config),
      switches_(make_switches(config.switches)),
      controller_(raw_path(switches_), config.controller),
      shares_(config.slices, 0.0),
      endpoints_(config.slices),
      pending_outage_s_(config.slices, 0.0) {
  if (config.slices == 0) throw std::invalid_argument("TransportManager: zero slices");
  // Default endpoints: slice i's users are 10.0.<i>.0/24, server 192.168.0.<i>.
  for (std::size_t i = 0; i < config.slices; ++i) {
    endpoints_[i] = {"10.0." + std::to_string(i) + ".1",
                     "192.168.0." + std::to_string(i + 1)};
  }
}

void TransportManager::register_slice_endpoints(std::size_t slice, const std::string& src_ip,
                                                const std::string& dst_ip) {
  if (slice >= endpoints_.size()) throw std::out_of_range("TransportManager: bad slice");
  endpoints_[slice] = {src_ip, dst_ip};
}

ReconfigReport TransportManager::set_slice_share(std::size_t slice, double fraction) {
  if (slice >= shares_.size()) throw std::out_of_range("TransportManager: bad slice");
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("TransportManager: share must be in [0,1]");
  shares_[slice] = fraction;
  SliceProgram program;
  program.slice = slice;
  program.src_ip = endpoints_[slice].first;
  program.dst_ip = endpoints_[slice].second;
  program.rate_mbps = fraction * config_.link_capacity_mbps;
  const ReconfigReport report = controller_.apply(program, config_.strategy);
  pending_outage_s_[slice] += report.outage_seconds;
  // Fraction of the RAN <-> edge link currently metered out to slices.
  global_metrics().gauge("transport.rate_utilization")
      .set(std::accumulate(shares_.begin(), shares_.end(), 0.0));
  global_metrics().counter("transport.reconfigurations").add();
  if (report.outage_seconds > 0.0) {
    global_metrics().histogram("transport.reconfig_outage_s").observe(report.outage_seconds);
  }
  return report;
}

double TransportManager::slice_rate_mbps(std::size_t slice) const {
  if (slice >= shares_.size()) throw std::out_of_range("TransportManager: bad slice");
  return shares_[slice] * config_.link_capacity_mbps;
}

double TransportManager::slice_capacity_bits(std::size_t slice, double seconds) {
  if (slice >= shares_.size()) throw std::out_of_range("TransportManager: bad slice");
  if (seconds < 0.0) throw std::invalid_argument("TransportManager: negative duration");
  const double outage = std::min(pending_outage_s_[slice], seconds);
  pending_outage_s_[slice] -= outage;
  if (link_failed_) return 0.0;
  const double effective_seconds = seconds - outage;
  return slice_rate_mbps(slice) * 1e6 * effective_seconds;
}

double TransportManager::offered_load_rate(std::size_t slice, double mbps) const {
  if (slice >= shares_.size()) throw std::out_of_range("TransportManager: bad slice");
  return controller_.end_to_end_rate(endpoints_[slice].first, endpoints_[slice].second, mbps);
}

}  // namespace edgeslice::transport
