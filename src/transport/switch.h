// OpenFlow 1.3 switch model: flow tables and rate-limiting meters.
//
// Stands in for the six Ruckus OpenFlow switches of the prototype
// (Table II). Only the features the transport manager exercises are
// modeled: flow entries matching on source/destination IP, meters with a
// drop band, and the crucial operational constraint the paper works
// around — changing a meter's rate requires deleting and re-adding the
// meter and its attached flows, during which matched traffic is dropped
// (the "deletion-creation interval", Sec. V-B).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace edgeslice::transport {

using MeterId = std::uint32_t;
using FlowId = std::uint64_t;

struct Meter {
  MeterId id = 0;
  double rate_mbps = 0.0;  // drop band threshold
};

struct FlowEntry {
  FlowId id = 0;
  std::string src_ip;   // empty = wildcard
  std::string dst_ip;   // empty = wildcard
  std::optional<MeterId> meter;
  int priority = 0;
};

/// Outcome of pushing traffic through the switch for a simulated tick.
struct ForwardResult {
  double forwarded_mbps = 0.0;
  double dropped_mbps = 0.0;
  bool matched = false;
};

class OpenFlowSwitch {
 public:
  explicit OpenFlowSwitch(std::string datapath_id) : datapath_id_(std::move(datapath_id)) {}

  const std::string& datapath_id() const { return datapath_id_; }

  /// --- Southbound API (OpenFlow) -----------------------------------------
  void add_meter(const Meter& meter);
  void delete_meter(MeterId id);  // also detaches it from flows; throws if attached
  bool has_meter(MeterId id) const;
  double meter_rate(MeterId id) const;

  void add_flow(const FlowEntry& flow);
  void delete_flow(FlowId id);
  bool has_flow(FlowId id) const;
  std::size_t flow_count() const { return flows_.size(); }
  std::size_t meter_count() const { return meters_.size(); }

  /// --- Data plane ----------------------------------------------------------
  /// Offer `mbps` of traffic from src to dst for one tick. The highest-
  /// priority matching flow forwards it, rate-limited by its meter; with no
  /// matching flow the traffic is dropped (OpenFlow table-miss drop).
  ForwardResult forward(const std::string& src_ip, const std::string& dst_ip,
                        double mbps) const;

 private:
  std::string datapath_id_;
  std::map<MeterId, Meter> meters_;
  std::map<FlowId, FlowEntry> flows_;
};

}  // namespace edgeslice::transport
