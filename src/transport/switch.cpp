#include "transport/switch.h"

#include <algorithm>
#include <stdexcept>

namespace edgeslice::transport {

void OpenFlowSwitch::add_meter(const Meter& meter) {
  if (meters_.count(meter.id)) throw std::invalid_argument("add_meter: duplicate meter id");
  if (meter.rate_mbps < 0.0) throw std::invalid_argument("add_meter: negative rate");
  meters_[meter.id] = meter;
}

void OpenFlowSwitch::delete_meter(MeterId id) {
  if (!meters_.count(id)) throw std::invalid_argument("delete_meter: unknown meter");
  for (const auto& [fid, flow] : flows_) {
    if (flow.meter && *flow.meter == id) {
      throw std::logic_error("delete_meter: meter still attached to flow " +
                             std::to_string(fid));
    }
  }
  meters_.erase(id);
}

bool OpenFlowSwitch::has_meter(MeterId id) const { return meters_.count(id) > 0; }

double OpenFlowSwitch::meter_rate(MeterId id) const {
  const auto it = meters_.find(id);
  if (it == meters_.end()) throw std::invalid_argument("meter_rate: unknown meter");
  return it->second.rate_mbps;
}

void OpenFlowSwitch::add_flow(const FlowEntry& flow) {
  if (flows_.count(flow.id)) throw std::invalid_argument("add_flow: duplicate flow id");
  if (flow.meter && !meters_.count(*flow.meter))
    throw std::invalid_argument("add_flow: references unknown meter");
  flows_[flow.id] = flow;
}

void OpenFlowSwitch::delete_flow(FlowId id) {
  if (!flows_.erase(id)) throw std::invalid_argument("delete_flow: unknown flow");
}

bool OpenFlowSwitch::has_flow(FlowId id) const { return flows_.count(id) > 0; }

ForwardResult OpenFlowSwitch::forward(const std::string& src_ip, const std::string& dst_ip,
                                      double mbps) const {
  const FlowEntry* best = nullptr;
  for (const auto& [id, flow] : flows_) {
    const bool src_ok = flow.src_ip.empty() || flow.src_ip == src_ip;
    const bool dst_ok = flow.dst_ip.empty() || flow.dst_ip == dst_ip;
    if (src_ok && dst_ok && (best == nullptr || flow.priority > best->priority)) {
      best = &flow;
    }
  }
  ForwardResult result;
  if (best == nullptr) {
    result.dropped_mbps = mbps;  // table miss
    return result;
  }
  result.matched = true;
  double limit = mbps;
  if (best->meter) limit = std::min(limit, meters_.at(*best->meter).rate_mbps);
  result.forwarded_mbps = limit;
  result.dropped_mbps = mbps - limit;
  return result;
}

}  // namespace edgeslice::transport
