// Transport resource manager — the VR-T middleware of Sec. V-B.
//
// Maps the orchestration agent's virtual-resource fractions onto per-slice
// meter rates on the RAN <-> edge-server link (prototype: 80 Mbps total)
// and programs the switch path through the SDN controller using the
// hitless parallel-configuration strategy. User/slice association in the
// transport network is by source/destination IP address.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "transport/controller.h"
#include "transport/switch.h"

namespace edgeslice::transport {

struct TransportManagerConfig {
  double link_capacity_mbps = 80.0;  // prototype: 80 Mbps eNB <-> edge server
  std::size_t slices = 2;
  std::size_t switches = 6;          // prototype: 6 OpenFlow switches
  ReconfigStrategy strategy = ReconfigStrategy::ParallelHitless;
  ControllerConfig controller;
};

class TransportManager {
 public:
  explicit TransportManager(const TransportManagerConfig& config);

  /// --- VR-T interface -----------------------------------------------------
  /// Set slice i's share of the link (fraction in [0,1]); reprograms the
  /// whole switch path.
  ReconfigReport set_slice_share(std::size_t slice, double fraction);
  double slice_rate_mbps(std::size_t slice) const;

  /// Register the IP endpoints identifying a slice's traffic.
  void register_slice_endpoints(std::size_t slice, const std::string& src_ip,
                                const std::string& dst_ip);

  /// --- Data path ------------------------------------------------------------
  /// Bits deliverable for a slice over `seconds`, given its meter rate and
  /// any naive-reconfiguration outage incurred since the last call.
  double slice_capacity_bits(std::size_t slice, double seconds);

  /// End-to-end forwarded rate for an offered load (diagnostics).
  double offered_load_rate(std::size_t slice, double mbps) const;

  /// --- Fault hook ---------------------------------------------------------
  /// RAN <-> edge-server link failure: while active no slice can move
  /// bits, regardless of meter configuration. Reconfiguration state and
  /// pending outage accounting are preserved across the failure.
  void set_link_failure(bool active) { link_failed_ = active; }
  bool link_failed() const { return link_failed_; }

  double total_outage_seconds() const { return controller_.total_outage_seconds(); }
  std::size_t slice_count() const { return shares_.size(); }
  const SdnController& controller() const { return controller_; }

 private:
  TransportManagerConfig config_;
  bool link_failed_ = false;
  std::vector<std::unique_ptr<OpenFlowSwitch>> switches_;
  SdnController controller_;
  std::vector<double> shares_;
  std::vector<std::pair<std::string, std::string>> endpoints_;
  std::vector<double> pending_outage_s_;  // consumed by slice_capacity_bits
};

}  // namespace edgeslice::transport
