#include "transport/controller.h"

#include <algorithm>
#include <stdexcept>

namespace edgeslice::transport {

SdnController::SdnController(std::vector<OpenFlowSwitch*> path, ControllerConfig config)
    : path_(std::move(path)), config_(config) {
  if (path_.empty()) throw std::invalid_argument("SdnController: empty path");
  for (auto* sw : path_) {
    if (sw == nullptr) throw std::invalid_argument("SdnController: null switch");
  }
}

MeterId SdnController::meter_id_for(std::size_t slice, std::size_t generation) const {
  return static_cast<MeterId>(1000 + slice * 2 + (generation % 2));
}

FlowId SdnController::flow_id_for(std::size_t slice, std::size_t generation) const {
  return static_cast<FlowId>(5000 + slice * 2 + (generation % 2));
}

ReconfigReport SdnController::apply(const SliceProgram& program,
                                    ReconfigStrategy strategy) {
  if (program.slice >= generation_.size()) {
    generation_.resize(program.slice + 1, 0);
    installed_.resize(program.slice + 1, false);
  }
  ReconfigReport report;
  const std::size_t old_gen = generation_[program.slice];
  const std::size_t new_gen = old_gen + 1;
  const bool was_installed = installed_[program.slice];

  if (strategy == ReconfigStrategy::NaiveDeleteRecreate) {
    for (auto* sw : path_) {
      if (was_installed) {
        // Flows must go before their meter can be deleted.
        sw->delete_flow(flow_id_for(program.slice, old_gen));
        sw->delete_meter(meter_id_for(program.slice, old_gen));
        report.flow_mods++;
        report.meter_mods++;
        // The slice has no forwarding state during this window.
        report.outage_seconds += config_.deletion_creation_gap_s;
      }
      sw->add_meter(Meter{meter_id_for(program.slice, new_gen), program.rate_mbps});
      FlowEntry flow;
      flow.id = flow_id_for(program.slice, new_gen);
      flow.src_ip = program.src_ip;
      flow.dst_ip = program.dst_ip;
      flow.meter = meter_id_for(program.slice, new_gen);
      flow.priority = 10;
      sw->add_flow(flow);
      report.flow_mods++;
      report.meter_mods++;
    }
  } else {
    // ParallelHitless: stage the complete new configuration first, at a
    // higher priority so it wins matches the moment it is installed...
    for (auto* sw : path_) {
      sw->add_meter(Meter{meter_id_for(program.slice, new_gen), program.rate_mbps});
      FlowEntry flow;
      flow.id = flow_id_for(program.slice, new_gen);
      flow.src_ip = program.src_ip;
      flow.dst_ip = program.dst_ip;
      flow.meter = meter_id_for(program.slice, new_gen);
      flow.priority = 10 + static_cast<int>(new_gen % 2);
      sw->add_flow(flow);
      report.flow_mods++;
      report.meter_mods++;
    }
    // ...then release the old configuration: the deletion-creation interval
    // is hidden because the parallel config is already forwarding.
    if (was_installed) {
      for (auto* sw : path_) {
        sw->delete_flow(flow_id_for(program.slice, old_gen));
        sw->delete_meter(meter_id_for(program.slice, old_gen));
        report.flow_mods++;
        report.meter_mods++;
      }
    }
  }

  generation_[program.slice] = new_gen;
  installed_[program.slice] = true;
  total_outage_s_ += report.outage_seconds;
  return report;
}

double SdnController::end_to_end_rate(const std::string& src_ip, const std::string& dst_ip,
                                      double mbps) const {
  double rate = mbps;
  for (const auto* sw : path_) {
    rate = sw->forward(src_ip, dst_ip, rate).forwarded_mbps;
  }
  return rate;
}

}  // namespace edgeslice::transport
