// Soft Actor-Critic (Haarnoja et al., 2018), fixed-temperature variant.
//
// Twin Q-critics with target copies, a stochastic Gaussian policy trained
// by the reparameterization trick, and an entropy bonus weighted by a fixed
// temperature alpha. Compared against DDPG in Fig. 10(b).
#pragma once

#include "nn/mlp.h"
#include "rl/agent.h"
#include "rl/gaussian_policy.h"
#include "rl/replay_buffer.h"

namespace edgeslice::rl {

struct SacConfig {
  AgentConfig base;
  std::size_t replay_capacity = 100000;
  std::size_t batch_size = 512;
  std::size_t warmup = 512;
  std::size_t train_every = 1;
  double tau = 0.005;
  double alpha = 0.05;  // entropy temperature
  double initial_log_std = -0.7;
};

class Sac final : public Agent {
 public:
  Sac(const SacConfig& config, Rng& rng);

  std::vector<double> act(const std::vector<double>& state, bool explore) override;
  void observe(const std::vector<double>& state, const std::vector<double>& action,
               double reward, const std::vector<double>& next_state, bool done) override;

  std::string name() const override { return "SAC"; }
  std::size_t state_dim() const override { return config_.base.state_dim; }
  std::size_t action_dim() const override { return config_.base.action_dim; }
  std::size_t update_count() const override { return updates_; }
  const nn::Mlp* policy_network() const override { return &policy_.mean_net(); }

 private:
  void train_batch();

  SacConfig config_;
  Rng rng_;
  GaussianPolicy policy_;
  nn::Mlp q1_;
  nn::Mlp q2_;
  nn::Mlp q1_target_;
  nn::Mlp q2_target_;
  nn::Adam policy_optimizer_;
  nn::Adam q1_optimizer_;
  nn::Adam q2_optimizer_;
  ReplayBuffer replay_;
  std::size_t observed_ = 0;
  std::size_t updates_ = 0;
};

}  // namespace edgeslice::rl
