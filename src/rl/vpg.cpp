#include "rl/vpg.h"

namespace edgeslice::rl {

Vpg::Vpg(const VpgConfig& config, Rng& rng)
    : config_(config),
      rng_(rng.spawn()),
      policy_(config.base.state_dim, config.base.action_dim, config.base.hidden,
              config.base.hidden_layers, rng_),
      value_net_({config.base.state_dim, config.base.hidden, config.base.hidden, 1},
                 nn::Activation::LeakyRelu, nn::Activation::Identity, rng_),
      policy_optimizer_(nn::AdamConfig{.learning_rate = config.base.actor_lr}),
      value_optimizer_(nn::AdamConfig{.learning_rate = config.value_lr}),
      rollout_(config.horizon, config.base.state_dim, config.base.action_dim) {
  policy_.attach_to(policy_optimizer_);
  value_net_.attach_to(value_optimizer_);
}

std::vector<double> Vpg::act(const std::vector<double>& state, bool explore) {
  return explore ? policy_.sample(state, rng_) : policy_.mean_action(state);
}

void Vpg::observe(const std::vector<double>& state, const std::vector<double>& action,
                  double reward, const std::vector<double>& next_state, bool done) {
  const double value = value_net_.infer_vector(state)[0];
  const double log_prob = policy_.log_prob(state, action);
  rollout_.push(state, action, reward, value, log_prob, done);
  if (rollout_.full()) update(next_state, done);
}

void Vpg::update(const std::vector<double>& last_next_state, bool last_done) {
  const double bootstrap = last_done ? 0.0 : value_net_.infer_vector(last_next_state)[0];
  rollout_.finish(bootstrap, config_.base.gamma, config_.gae_lambda);

  const std::size_t n = rollout_.size();
  // Single policy-gradient step: descend -E[ A * log pi(a|s) ].
  std::vector<double> coeffs(n);
  for (std::size_t b = 0; b < n; ++b) {
    coeffs[b] = -rollout_.advantages()[b] / static_cast<double>(n);
  }
  policy_.zero_grad();
  policy_.accumulate_logprob_gradient(rollout_.states(), rollout_.actions(), coeffs);
  policy_optimizer_.step();

  // Several epochs of value regression.
  for (std::size_t epoch = 0; epoch < config_.value_epochs; ++epoch) {
    const nn::Matrix v = value_net_.forward(rollout_.states());
    nn::Matrix v_grad(n, 1);
    for (std::size_t b = 0; b < n; ++b) {
      v_grad(b, 0) = 2.0 * (v(b, 0) - rollout_.returns()[b]) / static_cast<double>(n);
    }
    value_net_.backward(v_grad);
    value_optimizer_.step();
  }
  rollout_.clear();
  ++updates_;
}

}  // namespace edgeslice::rl
