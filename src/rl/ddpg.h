// Deep Deterministic Policy Gradient (Lillicrap et al., 2015).
//
// This is the training technique EdgeSlice uses for its orchestration
// agents (Sec. IV-B.2 and Fig. 3): a deterministic actor mu(s|theta_mu)
// with sigmoid outputs, a Q-critic pi(s,a|theta_pi), slowly-tracking
// target copies of both, an experience replay memory, and decaying
// Gaussian exploration noise.
#pragma once

#include <optional>

#include "nn/mlp.h"
#include "rl/agent.h"
#include "rl/noise.h"
#include "rl/replay_buffer.h"

namespace edgeslice::rl {

struct DdpgConfig {
  AgentConfig base;
  std::size_t replay_capacity = 100000;
  std::size_t batch_size = 512;   // paper: 512
  std::size_t warmup = 512;       // transitions collected before learning
  std::size_t train_every = 1;    // gradient update per N observes
  double tau = 0.005;             // target network soft-update rate
  double noise_sigma = 1.0;       // paper: noise starts from N(0,1)
  double noise_decay = 0.9999;    // paper: decays with factor 0.9999/step
  double noise_min = 0.01;
  /// Inverting gradients (Hausknecht & Stone 2016): scale the actor's
  /// action gradient by the remaining headroom toward the action bound, so
  /// the sigmoid head cannot saturate irrecoverably at 0/1.
  bool inverting_gradients = true;
};

class Ddpg final : public Agent {
 public:
  Ddpg(const DdpgConfig& config, Rng& rng);

  std::vector<double> act(const std::vector<double>& state, bool explore) override;
  void observe(const std::vector<double>& state, const std::vector<double>& action,
               double reward, const std::vector<double>& next_state, bool done) override;

  std::string name() const override { return "DDPG"; }
  std::size_t state_dim() const override { return config_.base.state_dim; }
  std::size_t action_dim() const override { return config_.base.action_dim; }
  std::size_t update_count() const override { return updates_; }
  const nn::Mlp* policy_network() const override { return &actor_; }
  const nn::Mlp* inference_actor() const override { return &actor_; }

  /// Mean-squared Bellman error of the most recent critic update (Eq. 16).
  double last_critic_loss() const { return last_critic_loss_; }
  /// Mean Q estimate of the most recent actor update.
  double last_actor_objective() const { return last_actor_objective_; }
  double exploration_sigma() const { return noise_.sigma(); }
  const ReplayBuffer& replay() const { return replay_; }

  nn::Mlp& actor() { return actor_; }
  nn::Mlp& critic() { return critic_; }

  /// Serialize the COMPLETE training state — actor/critic plus both
  /// target networks, both Adam moment sets, the replay buffer, the
  /// exploration-sigma schedule position, the agent's private Rng stream,
  /// and the observe/update counters — as the "DDPG agent blob" of
  /// FORMATS.md. An agent restored via load_checkpoint() continues
  /// training bit-identically to one that never stopped.
  void save_checkpoint(std::ostream& out) const;
  /// Restore into this agent. The agent must have been constructed with
  /// the same dimensions/architecture (parameters are restored in place
  /// so the optimizers' tensor attachments stay valid); a mismatch or a
  /// corrupt stream throws without partially applying state.
  void load_checkpoint(std::istream& in);

 private:
  void train_batch();

  DdpgConfig config_;
  Rng rng_;
  nn::Mlp actor_;
  nn::Mlp critic_;
  nn::Mlp actor_target_;
  nn::Mlp critic_target_;
  nn::Adam actor_optimizer_;
  nn::Adam critic_optimizer_;
  ReplayBuffer replay_;
  DecayingGaussianNoise noise_;
  std::size_t observed_ = 0;
  std::size_t updates_ = 0;
  double last_critic_loss_ = 0.0;
  double last_actor_objective_ = 0.0;
};

}  // namespace edgeslice::rl
