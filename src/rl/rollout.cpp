#include "rl/rollout.h"

#include <cmath>
#include <stdexcept>

#include "common/stats.h"

namespace edgeslice::rl {

RolloutBuffer::RolloutBuffer(std::size_t capacity, std::size_t state_dim,
                             std::size_t action_dim)
    : capacity_(capacity),
      states_(capacity, state_dim),
      actions_(capacity, action_dim) {
  if (capacity == 0) throw std::invalid_argument("RolloutBuffer: capacity must be > 0");
  rewards_.reserve(capacity);
  values_.reserve(capacity);
  log_probs_.reserve(capacity);
  dones_.reserve(capacity);
}

void RolloutBuffer::push(const std::vector<double>& state,
                         const std::vector<double>& action, double reward, double value,
                         double log_prob, bool done) {
  if (full()) throw std::logic_error("RolloutBuffer::push: buffer full");
  states_.set_row(size_, state);
  actions_.set_row(size_, action);
  rewards_.push_back(reward);
  values_.push_back(value);
  log_probs_.push_back(log_prob);
  dones_.push_back(done);
  ++size_;
}

void RolloutBuffer::clear() {
  size_ = 0;
  rewards_.clear();
  values_.clear();
  log_probs_.clear();
  dones_.clear();
  advantages_.clear();
  returns_.clear();
}

void RolloutBuffer::finish(double bootstrap, double gamma, double lambda, bool normalize) {
  advantages_.assign(size_, 0.0);
  returns_.assign(size_, 0.0);
  double gae = 0.0;
  double next_value = bootstrap;
  for (std::size_t i = size_; i-- > 0;) {
    const double not_done = dones_[i] ? 0.0 : 1.0;
    const double delta = rewards_[i] + gamma * next_value * not_done - values_[i];
    gae = delta + gamma * lambda * not_done * gae;
    advantages_[i] = gae;
    returns_[i] = advantages_[i] + values_[i];
    next_value = values_[i];
  }
  if (normalize && size_ > 1) {
    const double m = mean(advantages_);
    const double s = stddev(advantages_);
    if (s > 1e-8) {
      for (auto& a : advantages_) a = (a - m) / s;
    } else {
      for (auto& a : advantages_) a -= m;
    }
  }
}

}  // namespace edgeslice::rl
