// Trust Region Policy Optimization (Schulman et al., 2015).
//
// Natural-gradient policy update: conjugate gradient on the Fisher
// information (KL Hessian) with a backtracking line search enforcing the
// KL trust region. Fisher-vector products are computed by a finite
// difference of the analytic KL gradient, which is exact in the limit and
// avoids double backprop. Compared against DDPG in Fig. 10(b).
#pragma once

#include "nn/mlp.h"
#include "rl/agent.h"
#include "rl/gaussian_policy.h"
#include "rl/rollout.h"

namespace edgeslice::rl {

struct TrpoConfig {
  AgentConfig base;
  std::size_t horizon = 256;
  double gae_lambda = 0.97;
  double max_kl = 0.01;
  std::size_t cg_iterations = 10;
  double cg_damping = 0.1;
  double fd_epsilon = 1e-5;      // finite-difference step for Fisher-vector products
  double backtrack_ratio = 0.8;
  std::size_t backtrack_steps = 10;
  double value_lr = 1e-3;
  std::size_t value_epochs = 5;
};

class Trpo final : public Agent {
 public:
  Trpo(const TrpoConfig& config, Rng& rng);

  std::vector<double> act(const std::vector<double>& state, bool explore) override;
  void observe(const std::vector<double>& state, const std::vector<double>& action,
               double reward, const std::vector<double>& next_state, bool done) override;

  std::string name() const override { return "TRPO"; }
  std::size_t state_dim() const override { return config_.base.state_dim; }
  std::size_t action_dim() const override { return config_.base.action_dim; }
  std::size_t update_count() const override { return updates_; }
  const nn::Mlp* policy_network() const override { return &policy_.mean_net(); }

  /// KL divergence accepted by the most recent line search (diagnostics).
  double last_kl() const { return last_kl_; }

 private:
  void update(const std::vector<double>& last_next_state, bool last_done);
  /// Fisher-vector product around the current parameters.
  std::vector<double> fisher_vector_product(const std::vector<double>& v,
                                            const nn::Matrix& old_means,
                                            const std::vector<double>& old_log_std);
  /// Mean surrogate E[ratio * A] over the rollout.
  double surrogate(const std::vector<double>& old_log_probs) const;

  TrpoConfig config_;
  Rng rng_;
  GaussianPolicy policy_;
  nn::Mlp value_net_;
  nn::Adam value_optimizer_;
  RolloutBuffer rollout_;
  std::size_t updates_ = 0;
  double last_kl_ = 0.0;
};

}  // namespace edgeslice::rl
