// Diagonal-Gaussian stochastic policy shared by PPO / TRPO / VPG / SAC.
//
// The mean is an MLP with a sigmoid head (actions live in (0,1), matching
// the DDPG actor); the log standard deviation is a state-independent
// learnable vector. Sampled actions are clipped to [0,1]; log-probabilities
// are computed for the unclipped Gaussian, the standard pragmatic treatment
// for box-bounded continuous control.
#pragma once

#include <vector>

#include "common/rng.h"
#include "nn/mlp.h"

namespace edgeslice::rl {

class GaussianPolicy {
 public:
  GaussianPolicy(std::size_t state_dim, std::size_t action_dim, std::size_t hidden,
                 std::size_t hidden_layers, Rng& rng, double initial_log_std = -0.5);

  std::size_t state_dim() const { return mean_net_.in_dim(); }
  std::size_t action_dim() const { return mean_net_.out_dim(); }

  /// Deterministic (mean) action.
  std::vector<double> mean_action(const std::vector<double>& state) const;
  /// Sample an action, clipped to [0,1].
  std::vector<double> sample(const std::vector<double>& state, Rng& rng) const;

  /// Log-density of `action` under the (unclipped) Gaussian at `state`.
  double log_prob(const std::vector<double>& state, const std::vector<double>& action) const;

  nn::Matrix mean_batch(const nn::Matrix& states) const { return mean_net_.infer(states); }
  std::vector<double> log_prob_batch(const nn::Matrix& states,
                                     const nn::Matrix& actions) const;
  /// Log-prob per sample given precomputed means (avoids a second forward).
  std::vector<double> log_prob_given_means(const nn::Matrix& means,
                                           const nn::Matrix& actions) const;

  /// Accumulate the gradient of  sum_b coeff[b] * log pi(a_b | s_b)  into the
  /// mean network's parameter gradients and the log-std gradient. The caller
  /// chooses coefficient signs (negative advantage / batch size for descent
  /// on a policy-gradient loss). Runs a cached forward internally.
  void accumulate_logprob_gradient(const nn::Matrix& states, const nn::Matrix& actions,
                                   const std::vector<double>& coefficients);

  /// Add an externally computed gradient vector to the log-std gradient
  /// buffer (used by SAC's reparameterized update).
  void add_log_std_gradient(const std::vector<double>& grad);

  /// Add `coefficient` * d(entropy)/d(log_std) to the log-std gradient
  /// (entropy of a diagonal Gaussian is sum(log_std) + const, so the
  /// derivative is 1 per dimension).
  void accumulate_entropy_gradient(double coefficient);

  /// Policy entropy (state-independent for this family).
  double entropy() const;

  /// Analytic KL(old || this) averaged over states, where `old_means` are the
  /// old policy's means on the same states and `old_log_std` its log-stds.
  double mean_kl(const nn::Matrix& old_means, const std::vector<double>& old_log_std,
                 const nn::Matrix& states) const;

  /// Accumulate the gradient of mean_kl w.r.t. this policy's parameters.
  void accumulate_kl_gradient(const nn::Matrix& old_means,
                              const std::vector<double>& old_log_std,
                              const nn::Matrix& states);

  void attach_to(nn::Adam& optimizer);
  void zero_grad();

  /// Flattened parameters = mean-net parameters ++ log-std (TRPO).
  std::vector<double> flat_parameters() const;
  void set_flat_parameters(const std::vector<double>& theta);
  std::vector<double> flat_gradients() const;
  std::size_t parameter_count() const;

  nn::Mlp& mean_net() { return mean_net_; }
  const nn::Mlp& mean_net() const { return mean_net_; }
  std::vector<double> log_std() const { return log_std_.row_vector(0); }
  void set_log_std(const std::vector<double>& v);

 private:
  nn::Mlp mean_net_;
  nn::Matrix log_std_;       // 1 x A
  nn::Matrix log_std_grad_;  // 1 x A
};

}  // namespace edgeslice::rl
