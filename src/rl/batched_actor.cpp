#include "rl/batched_actor.h"

#include <stdexcept>

namespace edgeslice::rl {

BatchedActor::BatchedActor(const nn::Mlp& network) : network_(&network) {}

void BatchedActor::begin(std::size_t rows) {
  if (states_.rows() != rows || states_.cols() != network_->in_dim()) {
    states_ = nn::Matrix(rows, network_->in_dim());
  }
}

void BatchedActor::set_state(std::size_t row, const std::vector<double>& state) {
  states_.set_row(row, state);  // throws on row/size mismatch
}

void BatchedActor::infer() { network_->infer_into(states_, workspace_); }

std::vector<double> BatchedActor::action(std::size_t row) const {
  std::vector<double> out;
  action_into(row, out);
  return out;
}

void BatchedActor::action_into(std::size_t row, std::vector<double>& out) const {
  if (workspace_.empty() || row >= workspace_.back().rows())
    throw std::out_of_range("BatchedActor::action: no such row (call infer() first)");
  const nn::Matrix& output = workspace_.back();
  out.resize(output.cols());
  for (std::size_t c = 0; c < output.cols(); ++c) out[c] = output(row, c);
}

}  // namespace edgeslice::rl
