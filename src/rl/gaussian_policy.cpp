#include "rl/gaussian_policy.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace edgeslice::rl {

namespace {

std::vector<std::size_t> layer_sizes(std::size_t in, std::size_t hidden,
                                     std::size_t hidden_layers, std::size_t out) {
  std::vector<std::size_t> sizes{in};
  sizes.insert(sizes.end(), hidden_layers, hidden);
  sizes.push_back(out);
  return sizes;
}

constexpr double kHalfLog2Pi = 0.9189385332046727;  // 0.5 * log(2*pi)

}  // namespace

GaussianPolicy::GaussianPolicy(std::size_t state_dim, std::size_t action_dim,
                               std::size_t hidden, std::size_t hidden_layers, Rng& rng,
                               double initial_log_std)
    : mean_net_(layer_sizes(state_dim, hidden, hidden_layers, action_dim),
                nn::Activation::LeakyRelu, nn::Activation::Sigmoid, rng),
      log_std_(1, action_dim, initial_log_std),
      log_std_grad_(1, action_dim) {}

std::vector<double> GaussianPolicy::mean_action(const std::vector<double>& state) const {
  return mean_net_.infer_vector(state);
}

std::vector<double> GaussianPolicy::sample(const std::vector<double>& state,
                                           Rng& rng) const {
  auto action = mean_net_.infer_vector(state);
  for (std::size_t k = 0; k < action.size(); ++k) {
    action[k] = std::clamp(action[k] + std::exp(log_std_(0, k)) * rng.normal(), 0.0, 1.0);
  }
  return action;
}

double GaussianPolicy::log_prob(const std::vector<double>& state,
                                const std::vector<double>& action) const {
  const auto mu = mean_net_.infer_vector(state);
  double logp = 0.0;
  for (std::size_t k = 0; k < mu.size(); ++k) {
    const double sigma = std::exp(log_std_(0, k));
    const double z = (action[k] - mu[k]) / sigma;
    logp += -0.5 * z * z - log_std_(0, k) - kHalfLog2Pi;
  }
  return logp;
}

std::vector<double> GaussianPolicy::log_prob_batch(const nn::Matrix& states,
                                                   const nn::Matrix& actions) const {
  return log_prob_given_means(mean_net_.infer(states), actions);
}

std::vector<double> GaussianPolicy::log_prob_given_means(const nn::Matrix& means,
                                                         const nn::Matrix& actions) const {
  if (means.rows() != actions.rows() || means.cols() != actions.cols())
    throw std::invalid_argument("GaussianPolicy: means/actions shape mismatch");
  std::vector<double> out(means.rows(), 0.0);
  for (std::size_t b = 0; b < means.rows(); ++b) {
    for (std::size_t k = 0; k < means.cols(); ++k) {
      const double sigma = std::exp(log_std_(0, k));
      const double z = (actions(b, k) - means(b, k)) / sigma;
      out[b] += -0.5 * z * z - log_std_(0, k) - kHalfLog2Pi;
    }
  }
  return out;
}

void GaussianPolicy::accumulate_logprob_gradient(const nn::Matrix& states,
                                                 const nn::Matrix& actions,
                                                 const std::vector<double>& coefficients) {
  if (coefficients.size() != states.rows())
    throw std::invalid_argument("GaussianPolicy: coefficient count mismatch");
  const nn::Matrix means = mean_net_.forward(states);
  nn::Matrix mean_grad(means.rows(), means.cols());
  for (std::size_t b = 0; b < means.rows(); ++b) {
    for (std::size_t k = 0; k < means.cols(); ++k) {
      const double sigma = std::exp(log_std_(0, k));
      const double diff = actions(b, k) - means(b, k);
      // d logp / d mu = (a - mu) / sigma^2
      mean_grad(b, k) = coefficients[b] * diff / (sigma * sigma);
      // d logp / d log_std = (a - mu)^2 / sigma^2 - 1
      log_std_grad_(0, k) += coefficients[b] * (diff * diff / (sigma * sigma) - 1.0);
    }
  }
  mean_net_.backward(mean_grad);
}

void GaussianPolicy::add_log_std_gradient(const std::vector<double>& grad) {
  if (grad.size() != log_std_grad_.cols())
    throw std::invalid_argument("GaussianPolicy::add_log_std_gradient: size mismatch");
  for (std::size_t k = 0; k < grad.size(); ++k) log_std_grad_(0, k) += grad[k];
}

void GaussianPolicy::accumulate_entropy_gradient(double coefficient) {
  for (std::size_t k = 0; k < log_std_grad_.cols(); ++k) {
    log_std_grad_(0, k) += coefficient;
  }
}

double GaussianPolicy::entropy() const {
  double h = 0.0;
  for (std::size_t k = 0; k < log_std_.cols(); ++k) {
    h += log_std_(0, k) + 0.5 + kHalfLog2Pi;
  }
  return h;
}

double GaussianPolicy::mean_kl(const nn::Matrix& old_means,
                               const std::vector<double>& old_log_std,
                               const nn::Matrix& states) const {
  const nn::Matrix means = mean_net_.infer(states);
  double kl = 0.0;
  for (std::size_t b = 0; b < means.rows(); ++b) {
    for (std::size_t k = 0; k < means.cols(); ++k) {
      const double ls_new = log_std_(0, k);
      const double ls_old = old_log_std[k];
      const double var_new = std::exp(2.0 * ls_new);
      const double var_old = std::exp(2.0 * ls_old);
      const double dmu = old_means(b, k) - means(b, k);
      kl += ls_new - ls_old + (var_old + dmu * dmu) / (2.0 * var_new) - 0.5;
    }
  }
  return kl / static_cast<double>(means.rows());
}

void GaussianPolicy::accumulate_kl_gradient(const nn::Matrix& old_means,
                                            const std::vector<double>& old_log_std,
                                            const nn::Matrix& states) {
  const nn::Matrix means = mean_net_.forward(states);
  const double inv_n = 1.0 / static_cast<double>(means.rows());
  nn::Matrix mean_grad(means.rows(), means.cols());
  for (std::size_t b = 0; b < means.rows(); ++b) {
    for (std::size_t k = 0; k < means.cols(); ++k) {
      const double ls_new = log_std_(0, k);
      const double ls_old = old_log_std[k];
      const double var_new = std::exp(2.0 * ls_new);
      const double var_old = std::exp(2.0 * ls_old);
      const double dmu = means(b, k) - old_means(b, k);
      // d KL / d mu_new = (mu_new - mu_old) / var_new
      mean_grad(b, k) = inv_n * dmu / var_new;
      // d KL / d ls_new = 1 - (var_old + dmu^2) / var_new
      log_std_grad_(0, k) += inv_n * (1.0 - (var_old + dmu * dmu) / var_new);
    }
  }
  mean_net_.backward(mean_grad);
}

void GaussianPolicy::attach_to(nn::Adam& optimizer) {
  mean_net_.attach_to(optimizer);
  optimizer.attach(&log_std_, &log_std_grad_);
}

void GaussianPolicy::zero_grad() {
  mean_net_.zero_grad();
  log_std_grad_.fill(0.0);
}

std::vector<double> GaussianPolicy::flat_parameters() const {
  auto theta = mean_net_.flat_parameters();
  const auto& ls = log_std_.data();
  theta.insert(theta.end(), ls.begin(), ls.end());
  return theta;
}

void GaussianPolicy::set_flat_parameters(const std::vector<double>& theta) {
  const std::size_t net_params = mean_net_.parameter_count();
  if (theta.size() != net_params + log_std_.size())
    throw std::invalid_argument("GaussianPolicy::set_flat_parameters: size mismatch");
  mean_net_.set_flat_parameters(
      {theta.begin(), theta.begin() + static_cast<std::ptrdiff_t>(net_params)});
  std::copy(theta.begin() + static_cast<std::ptrdiff_t>(net_params), theta.end(),
            log_std_.data().begin());
}

std::vector<double> GaussianPolicy::flat_gradients() const {
  auto g = mean_net_.flat_gradients();
  const auto& ls = log_std_grad_.data();
  g.insert(g.end(), ls.begin(), ls.end());
  return g;
}

std::size_t GaussianPolicy::parameter_count() const {
  return mean_net_.parameter_count() + log_std_.size();
}

void GaussianPolicy::set_log_std(const std::vector<double>& v) {
  if (v.size() != log_std_.cols())
    throw std::invalid_argument("GaussianPolicy::set_log_std: size mismatch");
  for (std::size_t k = 0; k < v.size(); ++k) log_std_(0, k) = v[k];
}

}  // namespace edgeslice::rl
