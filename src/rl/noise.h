// Exploration noise processes.
//
// The paper adds decaying Gaussian noise to actions during training:
// starting from N(0,1) and decaying by factor 0.9999 per update step
// (Sec. VI-A). An Ornstein-Uhlenbeck process is provided as the classic
// DDPG alternative for ablations.
#pragma once

#include <vector>

#include "common/rng.h"

namespace edgeslice::rl {

class DecayingGaussianNoise {
 public:
  DecayingGaussianNoise(std::size_t dim, double initial_sigma = 1.0,
                        double decay = 0.9999, double min_sigma = 0.0)
      : dim_(dim), sigma_(initial_sigma), decay_(decay), min_sigma_(min_sigma) {}

  /// Sample a noise vector and decay sigma.
  std::vector<double> sample(Rng& rng);

  double sigma() const { return sigma_; }
  void reset(double sigma) { sigma_ = sigma; }

 private:
  std::size_t dim_;
  double sigma_;
  double decay_;
  double min_sigma_;
};

class OrnsteinUhlenbeckNoise {
 public:
  OrnsteinUhlenbeckNoise(std::size_t dim, double theta = 0.15, double sigma = 0.2,
                         double dt = 1.0)
      : state_(dim, 0.0), theta_(theta), sigma_(sigma), dt_(dt) {}

  std::vector<double> sample(Rng& rng);
  void reset();

 private:
  std::vector<double> state_;
  double theta_;
  double sigma_;
  double dt_;
};

}  // namespace edgeslice::rl
