#include "rl/ppo.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace edgeslice::rl {

namespace {

nn::Matrix gather_rows(const nn::Matrix& m, const std::vector<std::size_t>& idx) {
  nn::Matrix out(idx.size(), m.cols());
  for (std::size_t r = 0; r < idx.size(); ++r) out.set_row(r, m.row_vector(idx[r]));
  return out;
}

}  // namespace

Ppo::Ppo(const PpoConfig& config, Rng& rng)
    : config_(config),
      rng_(rng.spawn()),
      policy_(config.base.state_dim, config.base.action_dim, config.base.hidden,
              config.base.hidden_layers, rng_),
      value_net_({config.base.state_dim, config.base.hidden, config.base.hidden, 1},
                 nn::Activation::LeakyRelu, nn::Activation::Identity, rng_),
      policy_optimizer_(nn::AdamConfig{.learning_rate = config.base.actor_lr}),
      value_optimizer_(nn::AdamConfig{.learning_rate = config.value_lr}),
      rollout_(config.horizon, config.base.state_dim, config.base.action_dim) {
  policy_.attach_to(policy_optimizer_);
  value_net_.attach_to(value_optimizer_);
}

std::vector<double> Ppo::act(const std::vector<double>& state, bool explore) {
  return explore ? policy_.sample(state, rng_) : policy_.mean_action(state);
}

void Ppo::observe(const std::vector<double>& state, const std::vector<double>& action,
                  double reward, const std::vector<double>& next_state, bool done) {
  const double value = value_net_.infer_vector(state)[0];
  const double log_prob = policy_.log_prob(state, action);
  rollout_.push(state, action, reward, value, log_prob, done);
  if (rollout_.full()) update(next_state, done);
}

void Ppo::update(const std::vector<double>& last_next_state, bool last_done) {
  const double bootstrap = last_done ? 0.0 : value_net_.infer_vector(last_next_state)[0];
  rollout_.finish(bootstrap, config_.base.gamma, config_.gae_lambda);

  const std::size_t n = rollout_.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // Shuffle sample order each epoch.
    for (std::size_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng_.index(i)]);

    for (std::size_t start = 0; start < n; start += config_.minibatch) {
      const std::size_t end = std::min(start + config_.minibatch, n);
      std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                   order.begin() + static_cast<std::ptrdiff_t>(end));
      const std::size_t m = idx.size();
      const nn::Matrix states = gather_rows(rollout_.states(), idx);
      const nn::Matrix actions = gather_rows(rollout_.actions(), idx);

      // --- Clipped surrogate policy step.
      const auto logp_new = policy_.log_prob_batch(states, actions);
      std::vector<double> coeffs(m, 0.0);
      for (std::size_t b = 0; b < m; ++b) {
        const double adv = rollout_.advantages()[idx[b]];
        const double ratio = std::exp(logp_new[b] - rollout_.log_probs()[idx[b]]);
        const bool clipped = (adv >= 0.0 && ratio > 1.0 + config_.clip) ||
                             (adv < 0.0 && ratio < 1.0 - config_.clip);
        // Descent on -surrogate: d(-min(...))/dlogp = -ratio*adv when unclipped.
        if (!clipped) coeffs[b] = -ratio * adv / static_cast<double>(m);
      }
      policy_.zero_grad();
      policy_.accumulate_logprob_gradient(states, actions, coeffs);
      policy_.accumulate_entropy_gradient(-config_.entropy_coef);
      policy_optimizer_.step();

      // --- Value regression toward returns.
      const nn::Matrix v = value_net_.forward(states);
      nn::Matrix v_grad(m, 1);
      for (std::size_t b = 0; b < m; ++b) {
        v_grad(b, 0) = 2.0 * (v(b, 0) - rollout_.returns()[idx[b]]) / static_cast<double>(m);
      }
      value_net_.backward(v_grad);
      value_optimizer_.step();
    }
  }
  rollout_.clear();
  ++updates_;
}

}  // namespace edgeslice::rl
