#include "rl/frozen.h"

namespace edgeslice::rl {

FrozenActor::FrozenActor(nn::Mlp actor, std::string name)
    : actor_(std::move(actor)), name_(std::move(name)) {}

std::vector<double> FrozenActor::act(const std::vector<double>& state, bool explore) {
  (void)explore;  // a frozen policy never explores
  return actor_.infer_vector(state);
}

void FrozenActor::observe(const std::vector<double>&, const std::vector<double>&, double,
                          const std::vector<double>&, bool) {
  // Deployment mode: nothing to learn.
}

}  // namespace edgeslice::rl
