// Deployment-mode agent: a frozen policy network.
//
// Wraps a trained actor (or policy mean) network as an Agent that only
// infers — observe() is a no-op and exploration is disabled. Used to
// deploy a policy trained elsewhere (or loaded from disk via Mlp::load)
// into orchestration agents without carrying the training machinery.
#pragma once

#include "nn/mlp.h"
#include "rl/agent.h"

namespace edgeslice::rl {

class FrozenActor final : public Agent {
 public:
  explicit FrozenActor(nn::Mlp actor, std::string name = "Frozen");

  std::vector<double> act(const std::vector<double>& state, bool explore) override;
  void observe(const std::vector<double>& state, const std::vector<double>& action,
               double reward, const std::vector<double>& next_state, bool done) override;

  std::string name() const override { return name_; }
  std::size_t state_dim() const override { return actor_.in_dim(); }
  std::size_t action_dim() const override { return actor_.out_dim(); }
  std::size_t update_count() const override { return 0; }
  const nn::Mlp* policy_network() const override { return &actor_; }
  const nn::Mlp* inference_actor() const override { return &actor_; }

  const nn::Mlp& actor() const { return actor_; }

 private:
  nn::Mlp actor_;
  std::string name_;
};

}  // namespace edgeslice::rl
