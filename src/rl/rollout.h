// On-policy rollout storage with Generalized Advantage Estimation.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/matrix.h"

namespace edgeslice::rl {

/// One on-policy trajectory segment; filled step by step, then finished
/// with a bootstrap value to produce advantages and returns-to-go.
class RolloutBuffer {
 public:
  RolloutBuffer(std::size_t capacity, std::size_t state_dim, std::size_t action_dim);

  void push(const std::vector<double>& state, const std::vector<double>& action,
            double reward, double value, double log_prob, bool done);

  bool full() const { return size_ >= capacity_; }
  std::size_t size() const { return size_; }
  void clear();

  /// Compute GAE(lambda) advantages and discounted returns. `bootstrap`
  /// is V(s_T) of the state following the last stored transition (0 if the
  /// segment ended in a terminal state). Advantages are normalized to zero
  /// mean / unit std when `normalize` is set.
  void finish(double bootstrap, double gamma, double lambda, bool normalize = true);

  const nn::Matrix& states() const { return states_; }
  const nn::Matrix& actions() const { return actions_; }
  const std::vector<double>& rewards() const { return rewards_; }
  const std::vector<double>& values() const { return values_; }
  const std::vector<double>& log_probs() const { return log_probs_; }
  const std::vector<double>& advantages() const { return advantages_; }
  const std::vector<double>& returns() const { return returns_; }

 private:
  std::size_t capacity_;
  std::size_t size_ = 0;
  nn::Matrix states_;
  nn::Matrix actions_;
  std::vector<double> rewards_;
  std::vector<double> values_;
  std::vector<double> log_probs_;
  std::vector<bool> dones_;
  std::vector<double> advantages_;
  std::vector<double> returns_;
};

}  // namespace edgeslice::rl
