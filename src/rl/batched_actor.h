// Cross-agent batched inference over a shared actor network.
//
// In deployment every RA runs the same frozen actor (one trained policy
// deployed network-wide), so an interval's A exploitation actions are A
// independent 1-row forward passes through one network. BatchedActor
// packs those observations row-wise into a single matrix and runs ONE
// forward pass — one GEMM per layer for the whole fleet instead of one
// per agent — which is where small-matrix inference actually loses its
// time (per-call overhead and k-dim loop startup, not FLOPs).
//
// Bit-identity: under both GEMM backends (see nn/gemm.h) row r of an
// m-row product is bit-identical to the 1-row product of row r, and the
// bias broadcast and activations are elementwise per row, so
// action(r) == network.infer_vector(state_r) bit for bit, for any batch
// size and any row order. Batching is therefore an observation-neutral
// execution detail, exactly like thread pools and worker processes.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/matrix.h"
#include "nn/mlp.h"

namespace edgeslice::rl {

class BatchedActor {
 public:
  /// `network` is non-owning and must outlive the BatchedActor.
  explicit BatchedActor(const nn::Mlp& network);

  /// Start a batch of `rows` pending observations. The state buffer is
  /// reused across begin() calls of the same size (no allocation on the
  /// steady-state path).
  void begin(std::size_t rows);

  /// Fill row `row` with an observation (size must be in_dim()).
  void set_state(std::size_t row, const std::vector<double>& state);

  /// One forward pass for the whole batch.
  void infer();

  /// Row `row` of the last infer() — bit-identical to
  /// network.infer_vector(state_row).
  std::vector<double> action(std::size_t row) const;

  /// action() into a caller-owned buffer (resized to out_dim), so the
  /// steady-state period loop extracts actions without allocating.
  void action_into(std::size_t row, std::vector<double>& out) const;

  const nn::Mlp& network() const { return *network_; }
  std::size_t rows() const { return states_.rows(); }

 private:
  const nn::Mlp* network_;
  nn::Matrix states_;
  /// Per-layer forward buffers for Mlp::infer_into — the steady state
  /// (same batch size every interval) runs allocation-free.
  std::vector<nn::Matrix> workspace_;
};

}  // namespace edgeslice::rl
