#include "rl/trpo.h"

#include <cmath>

namespace edgeslice::rl {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

std::vector<double> axpy(double alpha, const std::vector<double>& x,
                         const std::vector<double>& y) {
  std::vector<double> out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = alpha * x[i] + y[i];
  return out;
}

}  // namespace

Trpo::Trpo(const TrpoConfig& config, Rng& rng)
    : config_(config),
      rng_(rng.spawn()),
      policy_(config.base.state_dim, config.base.action_dim, config.base.hidden,
              config.base.hidden_layers, rng_),
      value_net_({config.base.state_dim, config.base.hidden, config.base.hidden, 1},
                 nn::Activation::LeakyRelu, nn::Activation::Identity, rng_),
      value_optimizer_(nn::AdamConfig{.learning_rate = config.value_lr}),
      rollout_(config.horizon, config.base.state_dim, config.base.action_dim) {
  value_net_.attach_to(value_optimizer_);
}

std::vector<double> Trpo::act(const std::vector<double>& state, bool explore) {
  return explore ? policy_.sample(state, rng_) : policy_.mean_action(state);
}

void Trpo::observe(const std::vector<double>& state, const std::vector<double>& action,
                   double reward, const std::vector<double>& next_state, bool done) {
  const double value = value_net_.infer_vector(state)[0];
  const double log_prob = policy_.log_prob(state, action);
  rollout_.push(state, action, reward, value, log_prob, done);
  if (rollout_.full()) update(next_state, done);
}

double Trpo::surrogate(const std::vector<double>& old_log_probs) const {
  const auto logp = policy_.log_prob_batch(rollout_.states(), rollout_.actions());
  double acc = 0.0;
  for (std::size_t b = 0; b < logp.size(); ++b) {
    acc += std::exp(logp[b] - old_log_probs[b]) * rollout_.advantages()[b];
  }
  return acc / static_cast<double>(logp.size());
}

std::vector<double> Trpo::fisher_vector_product(const std::vector<double>& v,
                                                const nn::Matrix& old_means,
                                                const std::vector<double>& old_log_std) {
  // grad KL vanishes at theta_old, so H v ~= grad KL(theta_old + eps v) / eps.
  const auto theta = policy_.flat_parameters();
  auto theta_shift = theta;
  for (std::size_t i = 0; i < theta.size(); ++i) theta_shift[i] += config_.fd_epsilon * v[i];
  policy_.set_flat_parameters(theta_shift);
  policy_.zero_grad();
  policy_.accumulate_kl_gradient(old_means, old_log_std, rollout_.states());
  auto hv = policy_.flat_gradients();
  policy_.set_flat_parameters(theta);
  policy_.zero_grad();
  for (std::size_t i = 0; i < hv.size(); ++i) {
    hv[i] = hv[i] / config_.fd_epsilon + config_.cg_damping * v[i];
  }
  return hv;
}

void Trpo::update(const std::vector<double>& last_next_state, bool last_done) {
  const double bootstrap = last_done ? 0.0 : value_net_.infer_vector(last_next_state)[0];
  rollout_.finish(bootstrap, config_.base.gamma, config_.gae_lambda);
  const std::size_t n = rollout_.size();

  const nn::Matrix old_means = policy_.mean_batch(rollout_.states());
  const std::vector<double> old_log_std = policy_.log_std();
  const std::vector<double> old_log_probs =
      policy_.log_prob_given_means(old_means, rollout_.actions());

  // Policy gradient of the surrogate (ascent direction).
  std::vector<double> coeffs(n);
  for (std::size_t b = 0; b < n; ++b) {
    coeffs[b] = rollout_.advantages()[b] / static_cast<double>(n);
  }
  policy_.zero_grad();
  policy_.accumulate_logprob_gradient(rollout_.states(), rollout_.actions(), coeffs);
  const std::vector<double> g = policy_.flat_gradients();
  policy_.zero_grad();

  // Conjugate gradient for x = H^-1 g.
  std::vector<double> x(g.size(), 0.0);
  std::vector<double> r = g;
  std::vector<double> p = g;
  double rs_old = dot(r, r);
  if (rs_old < 1e-12) {
    rollout_.clear();
    ++updates_;
    return;
  }
  for (std::size_t it = 0; it < config_.cg_iterations; ++it) {
    const auto hp = fisher_vector_product(p, old_means, old_log_std);
    const double alpha = rs_old / std::max(dot(p, hp), 1e-12);
    x = axpy(alpha, p, x);
    r = axpy(-alpha, hp, r);
    const double rs_new = dot(r, r);
    if (rs_new < 1e-10) break;
    p = axpy(rs_new / rs_old, p, r);
    rs_old = rs_new;
  }

  // Scale to the trust-region boundary.
  const auto hx = fisher_vector_product(x, old_means, old_log_std);
  const double xhx = std::max(dot(x, hx), 1e-12);
  const double step_scale = std::sqrt(2.0 * config_.max_kl / xhx);

  // Backtracking line search: require KL within region and surrogate gain.
  const auto theta_old = policy_.flat_parameters();
  const double surrogate_old = surrogate(old_log_probs);
  double scale = step_scale;
  bool accepted = false;
  for (std::size_t step = 0; step < config_.backtrack_steps; ++step) {
    auto theta_new = theta_old;
    for (std::size_t i = 0; i < theta_new.size(); ++i) theta_new[i] += scale * x[i];
    policy_.set_flat_parameters(theta_new);
    const double kl = policy_.mean_kl(old_means, old_log_std, rollout_.states());
    const double improvement = surrogate(old_log_probs) - surrogate_old;
    if (kl <= 1.5 * config_.max_kl && improvement > 0.0) {
      accepted = true;
      last_kl_ = kl;
      break;
    }
    scale *= config_.backtrack_ratio;
  }
  if (!accepted) {
    policy_.set_flat_parameters(theta_old);
    last_kl_ = 0.0;
  }

  // Value regression.
  for (std::size_t epoch = 0; epoch < config_.value_epochs; ++epoch) {
    const nn::Matrix v = value_net_.forward(rollout_.states());
    nn::Matrix v_grad(n, 1);
    for (std::size_t b = 0; b < n; ++b) {
      v_grad(b, 0) = 2.0 * (v(b, 0) - rollout_.returns()[b]) / static_cast<double>(n);
    }
    value_net_.backward(v_grad);
    value_optimizer_.step();
  }
  rollout_.clear();
  ++updates_;
}

}  // namespace edgeslice::rl
