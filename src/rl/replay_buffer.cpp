#include "rl/replay_buffer.h"

#include <stdexcept>

namespace edgeslice::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("ReplayBuffer: capacity must be > 0");
  storage_.reserve(capacity);
}

void ReplayBuffer::push(Transition transition) {
  if (storage_.size() < capacity_) {
    storage_.push_back(std::move(transition));
  } else {
    storage_[next_] = std::move(transition);
  }
  next_ = (next_ + 1) % capacity_;
}

Batch ReplayBuffer::sample(std::size_t batch_size, Rng& rng) const {
  if (storage_.empty()) throw std::logic_error("ReplayBuffer::sample: buffer empty");
  const std::size_t state_dim = storage_.front().state.size();
  const std::size_t action_dim = storage_.front().action.size();
  Batch batch;
  batch.states = nn::Matrix(batch_size, state_dim);
  batch.actions = nn::Matrix(batch_size, action_dim);
  batch.next_states = nn::Matrix(batch_size, state_dim);
  batch.rewards.resize(batch_size);
  batch.done.resize(batch_size);
  for (std::size_t b = 0; b < batch_size; ++b) {
    const Transition& t = storage_[rng.index(storage_.size())];
    batch.states.set_row(b, t.state);
    batch.actions.set_row(b, t.action);
    batch.next_states.set_row(b, t.next_state);
    batch.rewards[b] = t.reward;
    batch.done[b] = t.done;
  }
  return batch;
}

}  // namespace edgeslice::rl
