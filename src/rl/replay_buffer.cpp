#include "rl/replay_buffer.h"

#include <stdexcept>

namespace edgeslice::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("ReplayBuffer: capacity must be > 0");
  storage_.reserve(capacity);
}

void ReplayBuffer::push(Transition transition) {
  if (storage_.size() < capacity_) {
    storage_.push_back(std::move(transition));
  } else {
    storage_[next_] = std::move(transition);
  }
  next_ = (next_ + 1) % capacity_;
}

Batch ReplayBuffer::sample(std::size_t batch_size, Rng& rng) const {
  if (batch_size == 0)
    throw std::invalid_argument("ReplayBuffer::sample: batch_size must be > 0");
  if (storage_.empty()) throw std::logic_error("ReplayBuffer::sample: buffer empty");
  // Clamp instead of silently padding a short buffer with duplicates:
  // requesting at least the whole buffer returns each transition exactly
  // once (in a seeded random order), never a with-replacement resample.
  const std::size_t rows = std::min(batch_size, storage_.size());
  const bool without_replacement = rows == storage_.size();
  std::vector<std::size_t> picks(rows);
  if (without_replacement) {
    for (std::size_t i = 0; i < rows; ++i) picks[i] = i;
    // Fisher-Yates with the caller's stream keeps the order seeded.
    for (std::size_t i = rows - 1; i > 0; --i) {
      std::swap(picks[i], picks[rng.index(i + 1)]);
    }
  } else {
    for (auto& p : picks) p = rng.index(storage_.size());
  }

  const std::size_t state_dim = storage_.front().state.size();
  const std::size_t action_dim = storage_.front().action.size();
  Batch batch;
  batch.states = nn::Matrix(rows, state_dim);
  batch.actions = nn::Matrix(rows, action_dim);
  batch.next_states = nn::Matrix(rows, state_dim);
  batch.rewards.resize(rows);
  batch.done.resize(rows);
  for (std::size_t b = 0; b < rows; ++b) {
    const Transition& t = storage_[picks[b]];
    batch.states.set_row(b, t.state);
    batch.actions.set_row(b, t.action);
    batch.next_states.set_row(b, t.next_state);
    batch.rewards[b] = t.reward;
    batch.done[b] = t.done;
  }
  return batch;
}

}  // namespace edgeslice::rl
