#include "rl/replay_buffer.h"

#include <stdexcept>
#include <string>

#include "common/binio.h"

namespace edgeslice::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("ReplayBuffer: capacity must be > 0");
  storage_.reserve(capacity);
}

void ReplayBuffer::push(Transition transition) {
  if (storage_.size() < capacity_) {
    storage_.push_back(std::move(transition));
  } else {
    storage_[next_] = std::move(transition);
  }
  next_ = (next_ + 1) % capacity_;
}

Batch ReplayBuffer::sample(std::size_t batch_size, Rng& rng) const {
  if (batch_size == 0)
    throw std::invalid_argument("ReplayBuffer::sample: batch_size must be > 0");
  if (storage_.empty()) throw std::logic_error("ReplayBuffer::sample: buffer empty");
  // Clamp instead of silently padding a short buffer with duplicates:
  // requesting at least the whole buffer returns each transition exactly
  // once (in a seeded random order), never a with-replacement resample.
  const std::size_t rows = std::min(batch_size, storage_.size());
  const bool without_replacement = rows == storage_.size();
  std::vector<std::size_t> picks(rows);
  if (without_replacement) {
    for (std::size_t i = 0; i < rows; ++i) picks[i] = i;
    // Fisher-Yates with the caller's stream keeps the order seeded.
    for (std::size_t i = rows - 1; i > 0; --i) {
      std::swap(picks[i], picks[rng.index(i + 1)]);
    }
  } else {
    for (auto& p : picks) p = rng.index(storage_.size());
  }

  const std::size_t state_dim = storage_.front().state.size();
  const std::size_t action_dim = storage_.front().action.size();
  Batch batch;
  batch.states = nn::Matrix(rows, state_dim);
  batch.actions = nn::Matrix(rows, action_dim);
  batch.next_states = nn::Matrix(rows, state_dim);
  batch.rewards.resize(rows);
  batch.done.resize(rows);
  for (std::size_t b = 0; b < rows; ++b) {
    const Transition& t = storage_[picks[b]];
    batch.states.set_row(b, t.state);
    batch.actions.set_row(b, t.action);
    batch.next_states.set_row(b, t.next_state);
    batch.rewards[b] = t.reward;
    batch.done[b] = t.done;
  }
  return batch;
}

void ReplayBuffer::save_state(std::ostream& out) const {
  write_u64(out, capacity_);
  write_u64(out, storage_.size());
  write_u64(out, next_);
  for (const Transition& t : storage_) {
    write_f64_vector(out, t.state);
    write_f64_vector(out, t.action);
    write_f64(out, t.reward);
    write_f64_vector(out, t.next_state);
    write_u8(out, t.done ? 1 : 0);
  }
}

void ReplayBuffer::load_state(std::istream& in) {
  constexpr const char* kContext = "ReplayBuffer::load_state";
  const std::uint64_t capacity = read_u64(in, kContext);
  if (capacity != capacity_) {
    throw std::runtime_error(std::string(kContext) + ": capacity mismatch (stored " +
                             std::to_string(capacity) + ", configured " +
                             std::to_string(capacity_) + ")");
  }
  const std::uint64_t size = read_u64(in, kContext);
  const std::uint64_t next = read_u64(in, kContext);
  if (size > capacity_) {
    throw std::runtime_error(std::string(kContext) + ": size exceeds capacity");
  }
  // push() keeps next_ == size until the ring wraps; a cursor that breaks
  // that invariant marks a corrupt (or hand-edited) checkpoint.
  if (next >= capacity_ || (size < capacity_ && next != size)) {
    throw std::runtime_error(std::string(kContext) + ": corrupt write cursor");
  }

  std::vector<Transition> storage;
  storage.reserve(capacity_);  // keep the constructor's no-realloc property
  for (std::uint64_t i = 0; i < size; ++i) {
    Transition t;
    t.state = read_f64_vector(in, kContext);
    t.action = read_f64_vector(in, kContext);
    t.reward = read_f64(in, kContext);
    t.next_state = read_f64_vector(in, kContext);
    t.done = read_u8(in, kContext) != 0;
    if (i > 0 && (t.state.size() != storage.front().state.size() ||
                  t.action.size() != storage.front().action.size() ||
                  t.next_state.size() != storage.front().next_state.size())) {
      throw std::runtime_error(std::string(kContext) +
                               ": inconsistent transition dimensions at index " +
                               std::to_string(i));
    }
    storage.push_back(std::move(t));
  }
  storage_ = std::move(storage);
  next_ = static_cast<std::size_t>(next);
}

}  // namespace edgeslice::rl
