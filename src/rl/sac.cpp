#include "rl/sac.h"

#include <algorithm>
#include <cmath>

namespace edgeslice::rl {

Sac::Sac(const SacConfig& config, Rng& rng)
    : config_(config),
      rng_(rng.spawn()),
      policy_(config.base.state_dim, config.base.action_dim, config.base.hidden,
              config.base.hidden_layers, rng_, config.initial_log_std),
      q1_({config.base.state_dim + config.base.action_dim, config.base.hidden,
           config.base.hidden, 1},
          nn::Activation::LeakyRelu, nn::Activation::Identity, rng_),
      q2_({config.base.state_dim + config.base.action_dim, config.base.hidden,
           config.base.hidden, 1},
          nn::Activation::LeakyRelu, nn::Activation::Identity, rng_),
      q1_target_(q1_),
      q2_target_(q2_),
      policy_optimizer_(nn::AdamConfig{.learning_rate = config.base.actor_lr}),
      q1_optimizer_(nn::AdamConfig{.learning_rate = config.base.critic_lr}),
      q2_optimizer_(nn::AdamConfig{.learning_rate = config.base.critic_lr}),
      replay_(config.replay_capacity) {
  policy_.attach_to(policy_optimizer_);
  q1_.attach_to(q1_optimizer_);
  q2_.attach_to(q2_optimizer_);
}

std::vector<double> Sac::act(const std::vector<double>& state, bool explore) {
  return explore ? policy_.sample(state, rng_) : policy_.mean_action(state);
}

void Sac::observe(const std::vector<double>& state, const std::vector<double>& action,
                  double reward, const std::vector<double>& next_state, bool done) {
  replay_.push(Transition{state, action, reward, next_state, done});
  ++observed_;
  if (replay_.size() >= config_.warmup && observed_ % config_.train_every == 0) {
    train_batch();
  }
}

void Sac::train_batch() {
  const std::size_t batch = std::min(config_.batch_size, replay_.size());
  Batch b = replay_.sample(batch, rng_);
  const std::size_t action_dim = config_.base.action_dim;
  const auto log_std = policy_.log_std();

  // --- Soft Bellman targets with next actions sampled from the policy.
  const nn::Matrix next_means = policy_.mean_batch(b.next_states);
  nn::Matrix next_actions(batch, action_dim);
  std::vector<double> next_logp(batch, 0.0);
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t k = 0; k < action_dim; ++k) {
      const double sigma = std::exp(log_std[k]);
      const double eps = rng_.normal();
      next_actions(i, k) = std::clamp(next_means(i, k) + sigma * eps, 0.0, 1.0);
      next_logp[i] += -0.5 * eps * eps - log_std[k] - 0.9189385332046727;
    }
  }
  const nn::Matrix sa_next = nn::hconcat(b.next_states, next_actions);
  const nn::Matrix q1n = q1_target_.infer(sa_next);
  const nn::Matrix q2n = q2_target_.infer(sa_next);
  std::vector<double> targets(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const double soft_v = std::min(q1n(i, 0), q2n(i, 0)) - config_.alpha * next_logp[i];
    targets[i] = b.rewards[i] + (b.done[i] ? 0.0 : config_.base.gamma * soft_v);
  }

  // --- Twin critic regression.
  const nn::Matrix sa = nn::hconcat(b.states, b.actions);
  for (auto* pair : {&q1_, &q2_}) {
    const nn::Matrix q = pair->forward(sa);
    nn::Matrix grad(batch, 1);
    for (std::size_t i = 0; i < batch; ++i) {
      grad(i, 0) = 2.0 * (q(i, 0) - targets[i]) / static_cast<double>(batch);
    }
    pair->backward(grad);
  }
  q1_optimizer_.step();
  q2_optimizer_.step();

  // --- Policy update by reparameterization:
  //     minimize E[ alpha * log pi(a~|s) - Q1(s, a~) ],  a~ = mu + sigma*eps.
  const nn::Matrix means = policy_.mean_net().forward(b.states);
  nn::Matrix sampled(batch, action_dim);
  nn::Matrix eps_mat(batch, action_dim);
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t k = 0; k < action_dim; ++k) {
      const double eps = rng_.normal();
      eps_mat(i, k) = eps;
      sampled(i, k) = std::clamp(means(i, k) + std::exp(log_std[k]) * eps, 0.0, 1.0);
    }
  }
  q1_.forward(nn::hconcat(b.states, sampled));
  nn::Matrix minus_one(batch, 1, -1.0 / static_cast<double>(batch));
  const nn::Matrix input_grad = q1_.backward(minus_one);
  q1_.zero_grad();  // critic gradients from this pass are not applied
  const nn::Matrix action_grad =
      input_grad.slice_columns(config_.base.state_dim, config_.base.state_dim + action_dim);

  // d a~/d mu = 1 (straight-through on the clip), so mean gradient is the
  // action gradient; log-std picks up the reparameterized chain plus the
  // entropy term d(alpha * logp)/d log_std = -alpha.
  policy_.mean_net().backward(action_grad);
  std::vector<double> log_std_grad(action_dim, -config_.alpha);
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t k = 0; k < action_dim; ++k) {
      log_std_grad[k] += action_grad(i, k) * std::exp(log_std[k]) * eps_mat(i, k);
    }
  }
  policy_.add_log_std_gradient(log_std_grad);
  policy_optimizer_.step();

  q1_target_.soft_update_from(q1_, config_.tau);
  q2_target_.soft_update_from(q2_, config_.tau);
  ++updates_;
}

}  // namespace edgeslice::rl
