// Vanilla Policy Gradient (REINFORCE with a learned value baseline and GAE),
// per Sutton et al. 2000. Compared against DDPG in Fig. 10(b).
#pragma once

#include "nn/mlp.h"
#include "rl/agent.h"
#include "rl/gaussian_policy.h"
#include "rl/rollout.h"

namespace edgeslice::rl {

struct VpgConfig {
  AgentConfig base;
  std::size_t horizon = 256;
  double gae_lambda = 0.97;
  double value_lr = 1e-3;
  std::size_t value_epochs = 5;
};

class Vpg final : public Agent {
 public:
  Vpg(const VpgConfig& config, Rng& rng);

  std::vector<double> act(const std::vector<double>& state, bool explore) override;
  void observe(const std::vector<double>& state, const std::vector<double>& action,
               double reward, const std::vector<double>& next_state, bool done) override;

  std::string name() const override { return "VPG"; }
  std::size_t state_dim() const override { return config_.base.state_dim; }
  std::size_t action_dim() const override { return config_.base.action_dim; }
  std::size_t update_count() const override { return updates_; }
  const nn::Mlp* policy_network() const override { return &policy_.mean_net(); }

 private:
  void update(const std::vector<double>& last_next_state, bool last_done);

  VpgConfig config_;
  Rng rng_;
  GaussianPolicy policy_;
  nn::Mlp value_net_;
  nn::Adam policy_optimizer_;
  nn::Adam value_optimizer_;
  RolloutBuffer rollout_;
  std::size_t updates_ = 0;
};

}  // namespace edgeslice::rl
