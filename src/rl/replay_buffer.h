// Experience replay memory for off-policy learners (Fig. 3 of the paper).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "common/rng.h"
#include "nn/matrix.h"

namespace edgeslice::rl {

struct Transition {
  std::vector<double> state;
  std::vector<double> action;
  double reward = 0.0;
  std::vector<double> next_state;
  bool done = false;
};

/// A sampled minibatch in matrix form, ready for network forward passes.
struct Batch {
  nn::Matrix states;       // B x S
  nn::Matrix actions;      // B x A
  std::vector<double> rewards;
  nn::Matrix next_states;  // B x S
  std::vector<bool> done;
  std::size_t size() const { return rewards.size(); }
};

/// Fixed-capacity ring buffer with uniform random sampling.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  void push(Transition transition);
  std::size_t size() const { return storage_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return storage_.empty(); }

  /// Sample a minibatch of min(batch_size, size()) transitions.
  ///
  /// - batch_size == 0 throws std::invalid_argument; an empty buffer
  ///   throws std::logic_error.
  /// - batch_size < size(): uniform sampling *with* replacement.
  /// - batch_size >= size(): the request is clamped to size() and every
  ///   stored transition is returned exactly once, in a random order
  ///   drawn from `rng` (without replacement — a short buffer is never
  ///   padded with silent duplicates).
  Batch sample(std::size_t batch_size, Rng& rng) const;

  const Transition& at(std::size_t i) const { return storage_[i]; }

  /// Ring write cursor (the slot the next push overwrites once full).
  std::size_t next_index() const { return next_; }

  /// Serialize the complete buffer — capacity, write cursor, and every
  /// stored transition in storage order — via common/binio (the "replay
  /// buffer blob" of FORMATS.md). Round-trips the wrap-around position
  /// exactly, so post-resume evictions hit the same slots.
  void save_state(std::ostream& out) const;
  /// Restore into this buffer. The stored capacity must equal this
  /// buffer's; dims of every transition must match the first. Throws
  /// std::runtime_error on mismatch, truncation, or a corrupt cursor.
  void load_state(std::istream& in);

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::vector<Transition> storage_;
};

}  // namespace edgeslice::rl
