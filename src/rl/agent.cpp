#include "rl/agent.h"

#include <stdexcept>

#include "rl/ddpg.h"
#include "rl/ppo.h"
#include "rl/sac.h"
#include "rl/trpo.h"
#include "rl/vpg.h"

namespace edgeslice::rl {

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::Ddpg: return "DDPG";
    case Algorithm::Sac: return "SAC";
    case Algorithm::Ppo: return "PPO";
    case Algorithm::Trpo: return "TRPO";
    case Algorithm::Vpg: return "VPG";
  }
  return "?";
}

std::unique_ptr<Agent> make_agent(Algorithm algorithm, const AgentConfig& config,
                                  Rng& rng) {
  switch (algorithm) {
    case Algorithm::Ddpg: {
      DdpgConfig c;
      c.base = config;
      return std::make_unique<Ddpg>(c, rng);
    }
    case Algorithm::Sac: {
      SacConfig c;
      c.base = config;
      return std::make_unique<Sac>(c, rng);
    }
    case Algorithm::Ppo: {
      PpoConfig c;
      c.base = config;
      return std::make_unique<Ppo>(c, rng);
    }
    case Algorithm::Trpo: {
      TrpoConfig c;
      c.base = config;
      return std::make_unique<Trpo>(c, rng);
    }
    case Algorithm::Vpg: {
      VpgConfig c;
      c.base = config;
      return std::make_unique<Vpg>(c, rng);
    }
  }
  throw std::invalid_argument("make_agent: unknown algorithm");
}

}  // namespace edgeslice::rl
