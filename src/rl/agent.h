// Common interface for continuous-action reinforcement learning agents.
//
// Off-policy agents (DDPG, SAC) learn from a replay buffer on every
// observe(); on-policy agents (PPO, TRPO, VPG) accumulate a rollout and
// update when it is full. The orchestration agent in src/core drives either
// kind through this interface, which is how Fig. 10(b)'s training-technique
// comparison is produced.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace edgeslice::nn {
class Mlp;
}

namespace edgeslice::rl {

class Agent {
 public:
  virtual ~Agent() = default;

  /// Choose an action for `state`. With `explore` true the agent may add
  /// exploration noise / sample from its stochastic policy; with false it
  /// returns its deterministic (or mean) action. Actions are in (0,1)^d.
  virtual std::vector<double> act(const std::vector<double>& state, bool explore) = 0;

  /// Feed one environment transition back to the learner.
  virtual void observe(const std::vector<double>& state, const std::vector<double>& action,
                       double reward, const std::vector<double>& next_state, bool done) = 0;

  virtual std::string name() const = 0;

  virtual std::size_t state_dim() const = 0;
  virtual std::size_t action_dim() const = 0;

  /// Number of gradient updates performed so far.
  virtual std::size_t update_count() const = 0;

  /// The deterministic policy network (actor / policy mean), when the
  /// agent has one — used to freeze and serialize a trained policy.
  /// May be null for agents without an exportable network.
  virtual const nn::Mlp* policy_network() const { return nullptr; }

  /// The network whose plain forward pass IS act(state, explore=false) —
  /// non-null only when exploitation inference is exactly
  /// network->infer_vector(state) with no noise, clamping, or state
  /// mutation. Cross-agent batched inference (rl/batched_actor.h) groups
  /// agents by this pointer and runs one multi-row forward pass per
  /// shared network; per-row kernel determinism (see nn/gemm.h) makes the
  /// batched rows bit-identical to individual act() calls. Agents whose
  /// deterministic action is not a pure forward pass must return null.
  virtual const nn::Mlp* inference_actor() const { return nullptr; }
};

/// The training techniques compared in Fig. 10(b).
enum class Algorithm { Ddpg, Sac, Ppo, Trpo, Vpg };

const char* algorithm_name(Algorithm algorithm);

/// Shared knobs; algorithm-specific configs embed this.
struct AgentConfig {
  std::size_t state_dim = 0;
  std::size_t action_dim = 0;
  std::size_t hidden = 128;     // paper: 128 neurons per layer
  std::size_t hidden_layers = 2;
  double gamma = 0.99;          // paper: discount 0.99
  double actor_lr = 1e-3;       // paper: 0.001
  double critic_lr = 1e-3;      // paper: 0.001
};

/// Factory used by benches: builds an agent of the requested algorithm with
/// hyper-parameters per Sec. VI-A (scaled via `config`).
std::unique_ptr<Agent> make_agent(Algorithm algorithm, const AgentConfig& config, Rng& rng);

}  // namespace edgeslice::rl
