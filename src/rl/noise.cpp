#include "rl/noise.h"

#include <algorithm>
#include <cmath>

namespace edgeslice::rl {

std::vector<double> DecayingGaussianNoise::sample(Rng& rng) {
  std::vector<double> noise(dim_);
  for (auto& n : noise) n = rng.normal(0.0, sigma_);
  sigma_ = std::max(min_sigma_, sigma_ * decay_);
  return noise;
}

std::vector<double> OrnsteinUhlenbeckNoise::sample(Rng& rng) {
  for (auto& x : state_) {
    x += theta_ * (0.0 - x) * dt_ + sigma_ * std::sqrt(dt_) * rng.normal();
  }
  return state_;
}

void OrnsteinUhlenbeckNoise::reset() {
  std::fill(state_.begin(), state_.end(), 0.0);
}

}  // namespace edgeslice::rl
