#include "rl/ddpg.h"

#include <algorithm>
#include <stdexcept>

#include "common/metrics.h"
#include "common/trace_span.h"

namespace edgeslice::rl {

namespace {

std::vector<std::size_t> layer_sizes(std::size_t in, std::size_t hidden,
                                     std::size_t hidden_layers, std::size_t out) {
  std::vector<std::size_t> sizes{in};
  sizes.insert(sizes.end(), hidden_layers, hidden);
  sizes.push_back(out);
  return sizes;
}

}  // namespace

Ddpg::Ddpg(const DdpgConfig& config, Rng& rng)
    : config_(config),
      rng_(rng.spawn()),
      // Actor: sigmoid head -> actions in (0,1); hidden LeakyReLU (Sec. VI-A).
      actor_(layer_sizes(config.base.state_dim, config.base.hidden,
                         config.base.hidden_layers, config.base.action_dim),
             nn::Activation::LeakyRelu, nn::Activation::Sigmoid, rng_),
      critic_(layer_sizes(config.base.state_dim + config.base.action_dim,
                          config.base.hidden, config.base.hidden_layers, 1),
              nn::Activation::LeakyRelu, nn::Activation::Identity, rng_),
      actor_target_(actor_),
      critic_target_(critic_),
      actor_optimizer_(nn::AdamConfig{.learning_rate = config.base.actor_lr}),
      critic_optimizer_(nn::AdamConfig{.learning_rate = config.base.critic_lr}),
      replay_(config.replay_capacity),
      noise_(config.base.action_dim, config.noise_sigma, config.noise_decay,
             config.noise_min) {
  if (config.base.state_dim == 0 || config.base.action_dim == 0)
    throw std::invalid_argument("Ddpg: state/action dims must be set");
  actor_.attach_to(actor_optimizer_);
  critic_.attach_to(critic_optimizer_);
}

std::vector<double> Ddpg::act(const std::vector<double>& state, bool explore) {
  std::vector<double> action = actor_.infer_vector(state);
  if (explore) {
    const auto noise = noise_.sample(rng_);
    for (std::size_t i = 0; i < action.size(); ++i) {
      action[i] = std::clamp(action[i] + noise[i], 0.0, 1.0);
    }
  }
  return action;
}

void Ddpg::observe(const std::vector<double>& state, const std::vector<double>& action,
                   double reward, const std::vector<double>& next_state, bool done) {
  replay_.push(Transition{state, action, reward, next_state, done});
  ++observed_;
  if (replay_.size() >= config_.warmup && observed_ % config_.train_every == 0) {
    train_batch();
  }
}

void Ddpg::train_batch() {
  const auto train_span = global_tracer().span("ddpg.train_batch");
  const std::size_t batch = std::min(config_.batch_size, replay_.size());
  Batch minibatch = replay_.sample(batch, rng_);

  // --- Critic update: minimize MSBE (Eq. 16) against target value (Eq. 17).
  const nn::Matrix next_actions = actor_target_.infer(minibatch.next_states);
  const nn::Matrix q_next =
      critic_target_.infer(nn::hconcat(minibatch.next_states, next_actions));
  std::vector<double> targets(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const double bootstrap = minibatch.done[i] ? 0.0 : config_.base.gamma * q_next(i, 0);
    targets[i] = minibatch.rewards[i] + bootstrap;
  }

  nn::Matrix sa = nn::hconcat(minibatch.states, minibatch.actions);
  const nn::Matrix q = critic_.forward(sa);
  nn::Matrix critic_grad(batch, 1);
  double loss = 0.0;
  for (std::size_t i = 0; i < batch; ++i) {
    const double err = q(i, 0) - targets[i];
    loss += err * err;
    critic_grad(i, 0) = 2.0 * err / static_cast<double>(batch);
  }
  last_critic_loss_ = loss / static_cast<double>(batch);
  critic_.backward(critic_grad);
  critic_optimizer_.step();

  // --- Actor update: ascend E[Q(s, mu(s))] via the chain rule (Eq. 18).
  const nn::Matrix actions = actor_.forward(minibatch.states);
  // The state block of `sa` is unchanged; only the action columns differ
  // between the critic regression input and Q(s, mu(s)), so the batch
  // buffer is reused instead of concatenated afresh.
  sa.paste_columns(config_.base.state_dim, actions);
  const nn::Matrix q_of_mu = critic_.forward(sa);
  last_actor_objective_ = q_of_mu.total() / static_cast<double>(batch);
  // d(-J)/dQ = -1/B for each sample (gradient *descent* on -J).
  nn::Matrix minus_one(batch, 1, -1.0 / static_cast<double>(batch));
  const nn::Matrix input_grad = critic_.backward(minus_one);
  // Keep the critic clean: its gradients from this pass are not applied.
  critic_.zero_grad();
  nn::Matrix action_grad =
      input_grad.slice_columns(config_.base.state_dim,
                               config_.base.state_dim + config_.base.action_dim);
  if (config_.inverting_gradients) {
    // action_grad is d(-J)/da: negative entries push the action up. Scale
    // upward pushes by the headroom to 1 and downward pushes by the
    // headroom to 0, keeping the policy off the saturated boundary.
    for (std::size_t r = 0; r < action_grad.rows(); ++r) {
      for (std::size_t k = 0; k < action_grad.cols(); ++k) {
        const double a = actions(r, k);
        action_grad(r, k) *= action_grad(r, k) < 0.0 ? (1.0 - a) : a;
      }
    }
  }
  actor_.backward(action_grad);
  actor_optimizer_.step();

  // --- Target networks track slowly.
  actor_target_.soft_update_from(actor_, config_.tau);
  critic_target_.soft_update_from(critic_, config_.tau);
  ++updates_;

  auto& metrics = global_metrics();
  metrics.counter("ddpg.train_batches").add();
  metrics.gauge("ddpg.critic_loss").set(last_critic_loss_);
  metrics.gauge("ddpg.actor_objective").set(last_actor_objective_);
  metrics.gauge("ddpg.replay_occupancy")
      .set(static_cast<double>(replay_.size()) /
           static_cast<double>(std::max<std::size_t>(1, config_.replay_capacity)));
  metrics.gauge("ddpg.exploration_sigma").set(noise_.sigma());
}

}  // namespace edgeslice::rl
