#include "rl/ddpg.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/binio.h"
#include "common/metrics.h"
#include "common/trace_span.h"

namespace edgeslice::rl {

namespace {

std::vector<std::size_t> layer_sizes(std::size_t in, std::size_t hidden,
                                     std::size_t hidden_layers, std::size_t out) {
  std::vector<std::size_t> sizes{in};
  sizes.insert(sizes.end(), hidden_layers, hidden);
  sizes.push_back(out);
  return sizes;
}

void write_adam_state(std::ostream& out, const nn::Adam& optimizer) {
  const nn::AdamState state = optimizer.export_state();
  write_u64(out, state.step_count);
  write_f64_vector(out, state.m);
  write_f64_vector(out, state.v);
}

nn::AdamState read_adam_state(std::istream& in) {
  nn::AdamState state;
  state.step_count = static_cast<std::size_t>(read_u64(in, "Ddpg::load_checkpoint"));
  state.m = read_f64_vector(in, "Ddpg::load_checkpoint");
  state.v = read_f64_vector(in, "Ddpg::load_checkpoint");
  return state;
}

/// Deserialize one network blob and check it matches `target`'s
/// architecture (sizes and activations); returns its flat parameters.
std::vector<double> read_network_for(std::istream& in, const nn::Mlp& target,
                                     const char* which) {
  nn::Mlp loaded = nn::Mlp::load_binary(in);
  if (loaded.layer_sizes() != target.layer_sizes()) {
    throw std::runtime_error(std::string("Ddpg::load_checkpoint: ") + which +
                             " architecture mismatch");
  }
  for (std::size_t i = 0; i < loaded.layers().size(); ++i) {
    if (loaded.layers()[i].activation() != target.layers()[i].activation()) {
      throw std::runtime_error(std::string("Ddpg::load_checkpoint: ") + which +
                               " activation mismatch (layer " + std::to_string(i) + ")");
    }
  }
  return loaded.flat_parameters();
}

}  // namespace

Ddpg::Ddpg(const DdpgConfig& config, Rng& rng)
    : config_(config),
      rng_(rng.spawn()),
      // Actor: sigmoid head -> actions in (0,1); hidden LeakyReLU (Sec. VI-A).
      actor_(layer_sizes(config.base.state_dim, config.base.hidden,
                         config.base.hidden_layers, config.base.action_dim),
             nn::Activation::LeakyRelu, nn::Activation::Sigmoid, rng_),
      critic_(layer_sizes(config.base.state_dim + config.base.action_dim,
                          config.base.hidden, config.base.hidden_layers, 1),
              nn::Activation::LeakyRelu, nn::Activation::Identity, rng_),
      actor_target_(actor_),
      critic_target_(critic_),
      actor_optimizer_(nn::AdamConfig{.learning_rate = config.base.actor_lr}),
      critic_optimizer_(nn::AdamConfig{.learning_rate = config.base.critic_lr}),
      replay_(config.replay_capacity),
      noise_(config.base.action_dim, config.noise_sigma, config.noise_decay,
             config.noise_min) {
  if (config.base.state_dim == 0 || config.base.action_dim == 0)
    throw std::invalid_argument("Ddpg: state/action dims must be set");
  actor_.attach_to(actor_optimizer_);
  critic_.attach_to(critic_optimizer_);
}

std::vector<double> Ddpg::act(const std::vector<double>& state, bool explore) {
  std::vector<double> action = actor_.infer_vector(state);
  if (explore) {
    const auto noise = noise_.sample(rng_);
    for (std::size_t i = 0; i < action.size(); ++i) {
      action[i] = std::clamp(action[i] + noise[i], 0.0, 1.0);
    }
  }
  return action;
}

void Ddpg::observe(const std::vector<double>& state, const std::vector<double>& action,
                   double reward, const std::vector<double>& next_state, bool done) {
  replay_.push(Transition{state, action, reward, next_state, done});
  ++observed_;
  if (replay_.size() >= config_.warmup && observed_ % config_.train_every == 0) {
    train_batch();
  }
}

void Ddpg::train_batch() {
  const auto train_span = global_tracer().span("ddpg.train_batch");
  const std::size_t batch = std::min(config_.batch_size, replay_.size());
  Batch minibatch = replay_.sample(batch, rng_);

  // --- Critic update: minimize MSBE (Eq. 16) against target value (Eq. 17).
  const nn::Matrix next_actions = actor_target_.infer(minibatch.next_states);
  const nn::Matrix q_next =
      critic_target_.infer(nn::hconcat(minibatch.next_states, next_actions));
  std::vector<double> targets(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const double bootstrap = minibatch.done[i] ? 0.0 : config_.base.gamma * q_next(i, 0);
    targets[i] = minibatch.rewards[i] + bootstrap;
  }

  nn::Matrix sa = nn::hconcat(minibatch.states, minibatch.actions);
  const nn::Matrix q = critic_.forward(sa);
  nn::Matrix critic_grad(batch, 1);
  double loss = 0.0;
  for (std::size_t i = 0; i < batch; ++i) {
    const double err = q(i, 0) - targets[i];
    loss += err * err;
    critic_grad(i, 0) = 2.0 * err / static_cast<double>(batch);
  }
  last_critic_loss_ = loss / static_cast<double>(batch);
  critic_.backward(critic_grad);
  critic_optimizer_.step();

  // --- Actor update: ascend E[Q(s, mu(s))] via the chain rule (Eq. 18).
  const nn::Matrix actions = actor_.forward(minibatch.states);
  // The state block of `sa` is unchanged; only the action columns differ
  // between the critic regression input and Q(s, mu(s)), so the batch
  // buffer is reused instead of concatenated afresh.
  sa.paste_columns(config_.base.state_dim, actions);
  const nn::Matrix q_of_mu = critic_.forward(sa);
  last_actor_objective_ = q_of_mu.total() / static_cast<double>(batch);
  // d(-J)/dQ = -1/B for each sample (gradient *descent* on -J).
  nn::Matrix minus_one(batch, 1, -1.0 / static_cast<double>(batch));
  const nn::Matrix input_grad = critic_.backward(minus_one);
  // Keep the critic clean: its gradients from this pass are not applied.
  critic_.zero_grad();
  nn::Matrix action_grad =
      input_grad.slice_columns(config_.base.state_dim,
                               config_.base.state_dim + config_.base.action_dim);
  if (config_.inverting_gradients) {
    // action_grad is d(-J)/da: negative entries push the action up. Scale
    // upward pushes by the headroom to 1 and downward pushes by the
    // headroom to 0, keeping the policy off the saturated boundary.
    for (std::size_t r = 0; r < action_grad.rows(); ++r) {
      for (std::size_t k = 0; k < action_grad.cols(); ++k) {
        const double a = actions(r, k);
        action_grad(r, k) *= action_grad(r, k) < 0.0 ? (1.0 - a) : a;
      }
    }
  }
  actor_.backward(action_grad);
  actor_optimizer_.step();

  // --- Target networks track slowly.
  actor_target_.soft_update_from(actor_, config_.tau);
  critic_target_.soft_update_from(critic_, config_.tau);
  ++updates_;

  auto& metrics = global_metrics();
  metrics.counter("ddpg.train_batches").add();
  metrics.gauge("ddpg.critic_loss").set(last_critic_loss_);
  metrics.gauge("ddpg.actor_objective").set(last_actor_objective_);
  metrics.gauge("ddpg.replay_occupancy")
      .set(static_cast<double>(replay_.size()) /
           static_cast<double>(std::max<std::size_t>(1, config_.replay_capacity)));
  metrics.gauge("ddpg.exploration_sigma").set(noise_.sigma());
}

void Ddpg::save_checkpoint(std::ostream& out) const {
  write_u64(out, config_.base.state_dim);
  write_u64(out, config_.base.action_dim);
  write_u64(out, config_.base.hidden);
  write_u64(out, config_.base.hidden_layers);
  // Hyperparameters that steer every post-resume gradient step. Stored so
  // load_checkpoint can reject an agent configured differently — a silent
  // mismatch would resume "successfully" onto a different trajectory.
  write_f64(out, config_.base.gamma);
  write_f64(out, config_.base.actor_lr);
  write_f64(out, config_.base.critic_lr);
  write_u64(out, config_.replay_capacity);
  write_u64(out, config_.batch_size);
  write_u64(out, config_.warmup);
  write_u64(out, config_.train_every);
  write_f64(out, config_.tau);
  write_f64(out, config_.noise_decay);
  write_f64(out, config_.noise_min);
  write_u8(out, config_.inverting_gradients ? 1 : 0);
  actor_.save_binary(out);
  critic_.save_binary(out);
  actor_target_.save_binary(out);
  critic_target_.save_binary(out);
  write_adam_state(out, actor_optimizer_);
  write_adam_state(out, critic_optimizer_);
  replay_.save_state(out);
  write_f64(out, noise_.sigma());
  write_string(out, rng_.serialize());
  write_u64(out, observed_);
  write_u64(out, updates_);
  write_f64(out, last_critic_loss_);
  write_f64(out, last_actor_objective_);
}

void Ddpg::load_checkpoint(std::istream& in) {
  constexpr const char* kContext = "Ddpg::load_checkpoint";
  const auto expect = [&](std::uint64_t stored, std::size_t configured,
                          const char* field) {
    if (stored != configured) {
      throw std::runtime_error(std::string(kContext) + ": " + field +
                               " mismatch (stored " + std::to_string(stored) +
                               ", configured " + std::to_string(configured) + ")");
    }
  };
  const auto expect_f64 = [&](double stored, double configured, const char* field) {
    // Bitwise comparison: these are copied configuration constants, not
    // computed values, so exact equality is the correct test.
    if (stored != configured) {
      throw std::runtime_error(std::string(kContext) + ": " + field +
                               " mismatch (stored " + std::to_string(stored) +
                               ", configured " + std::to_string(configured) + ")");
    }
  };
  expect(read_u64(in, kContext), config_.base.state_dim, "state_dim");
  expect(read_u64(in, kContext), config_.base.action_dim, "action_dim");
  expect(read_u64(in, kContext), config_.base.hidden, "hidden");
  expect(read_u64(in, kContext), config_.base.hidden_layers, "hidden_layers");
  expect_f64(read_f64(in, kContext), config_.base.gamma, "gamma");
  expect_f64(read_f64(in, kContext), config_.base.actor_lr, "actor_lr");
  expect_f64(read_f64(in, kContext), config_.base.critic_lr, "critic_lr");
  expect(read_u64(in, kContext), config_.replay_capacity, "replay_capacity");
  expect(read_u64(in, kContext), config_.batch_size, "batch_size");
  expect(read_u64(in, kContext), config_.warmup, "warmup");
  expect(read_u64(in, kContext), config_.train_every, "train_every");
  expect_f64(read_f64(in, kContext), config_.tau, "tau");
  expect_f64(read_f64(in, kContext), config_.noise_decay, "noise_decay");
  expect_f64(read_f64(in, kContext), config_.noise_min, "noise_min");
  expect(read_u8(in, kContext), config_.inverting_gradients ? 1u : 0u,
         "inverting_gradients");

  // Parse and validate everything into temporaries first, so a corrupt
  // stream leaves the agent untouched (no partially applied state).
  const std::vector<double> actor_theta = read_network_for(in, actor_, "actor");
  const std::vector<double> critic_theta = read_network_for(in, critic_, "critic");
  const std::vector<double> actor_target_theta =
      read_network_for(in, actor_target_, "actor_target");
  const std::vector<double> critic_target_theta =
      read_network_for(in, critic_target_, "critic_target");
  const nn::AdamState actor_opt_state = read_adam_state(in);
  const nn::AdamState critic_opt_state = read_adam_state(in);

  ReplayBuffer replay(config_.replay_capacity);
  replay.load_state(in);

  const double sigma = read_f64(in, kContext);
  const Rng rng = Rng::deserialize(read_string(in, kContext));
  const std::uint64_t observed = read_u64(in, kContext);
  const std::uint64_t updates = read_u64(in, kContext);
  const double last_critic_loss = read_f64(in, kContext);
  const double last_actor_objective = read_f64(in, kContext);

  // All parsed — apply. Parameters are copied into the existing layer
  // tensors (never reassigned) so the Adam slots' pointers stay valid.
  actor_.set_flat_parameters(actor_theta);
  critic_.set_flat_parameters(critic_theta);
  actor_target_.set_flat_parameters(actor_target_theta);
  critic_target_.set_flat_parameters(critic_target_theta);
  actor_optimizer_.restore_state(actor_opt_state);
  critic_optimizer_.restore_state(critic_opt_state);
  replay_ = std::move(replay);
  noise_.reset(sigma);
  rng_ = rng;
  observed_ = static_cast<std::size_t>(observed);
  updates_ = static_cast<std::size_t>(updates);
  last_critic_loss_ = last_critic_loss;
  last_actor_objective_ = last_actor_objective;
}

}  // namespace edgeslice::rl
