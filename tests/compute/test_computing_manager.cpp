#include "compute/computing_manager.h"

#include <gtest/gtest.h>

#include <cmath>

namespace edgeslice::compute {
namespace {

ComputingManagerConfig prototype_config() {
  ComputingManagerConfig config;
  config.gpu.total_threads = 51200;  // Table II
  config.slices = 2;
  return config;
}

TEST(ComputingManager, ShareQuantizesToThreads) {
  ComputingManager manager(prototype_config());
  manager.set_slice_share(0, 0.5);
  EXPECT_EQ(manager.slice_threads(0), 25600u);
  manager.set_slice_share(0, 0.0);
  EXPECT_EQ(manager.slice_threads(0), 0u);
}

TEST(ComputingManager, Validation) {
  ComputingManager manager(prototype_config());
  EXPECT_THROW(manager.set_slice_share(0, -0.1), std::invalid_argument);
  EXPECT_THROW(manager.set_slice_share(5, 0.5), std::out_of_range);
}

TEST(ComputingManager, IpAssociation) {
  ComputingManager manager(prototype_config());
  manager.register_ip("10.0.1.1", 1);
  EXPECT_EQ(manager.slice_of_ip("10.0.1.1"), 1u);
  EXPECT_THROW(manager.slice_of_ip("1.1.1.1"), std::out_of_range);
}

TEST(ComputingManager, ServiceTimeInverseInShare) {
  ComputingManager manager(prototype_config());
  manager.set_slice_share(0, 0.5);
  const double half = manager.service_time(0, 1280.0);
  manager.set_slice_share(0, 1.0);
  const double full = manager.service_time(0, 1280.0);
  EXPECT_NEAR(half, 2.0 * full, 1e-9);
}

TEST(ComputingManager, ZeroShareServiceTimeInfinite) {
  ComputingManager manager(prototype_config());
  EXPECT_TRUE(std::isinf(manager.service_time(0, 100.0)));
}

TEST(ComputingManager, SlicesIsolatedByKernelSplit) {
  ComputingManagerConfig config;
  config.gpu.total_threads = 1000;
  config.slices = 2;
  ComputingManager manager(config);
  manager.set_slice_share(0, 0.3);
  manager.set_slice_share(1, 0.7);
  manager.submit(0, Kernel{1000, 1e6});  // demands the whole GPU
  manager.submit(1, Kernel{700, 1e6});
  const auto done = manager.run(1.0, 1e-2);
  // Despite slice 0 submitting a full-GPU kernel, the split caps it at 300
  // threads, leaving slice 1's 700 untouched.
  EXPECT_NEAR(done[0] / done[1], 300.0 / 700.0, 0.05);
}

TEST(ComputingManager, RunCompletesSubmittedWork) {
  ComputingManagerConfig config;
  config.gpu.total_threads = 1000;
  config.slices = 1;
  ComputingManager manager(config);
  manager.set_slice_share(0, 1.0);
  manager.submit(0, Kernel{500, 50.0});
  const auto done = manager.run(1.0, 1e-2);
  EXPECT_NEAR(done[0], 50.0, 1e-9);
  EXPECT_TRUE(manager.idle(0));
}

TEST(ComputingManager, ZeroQuotaWorkWaits) {
  ComputingManagerConfig config;
  config.gpu.total_threads = 1000;
  config.slices = 2;
  ComputingManager manager(config);
  manager.set_slice_share(0, 0.0);
  manager.submit(0, Kernel{100, 10.0});
  const auto stalled = manager.run(0.5, 1e-2);
  EXPECT_DOUBLE_EQ(stalled[0], 0.0);
  // Grant a share later: the queued kernel now executes.
  manager.set_slice_share(0, 0.5);
  const auto done = manager.run(0.5, 1e-2);
  EXPECT_GT(done[0], 0.0);
}

TEST(ComputingManager, PrototypeYolo320Latency) {
  // DESIGN.md anchor: YOLO-320 (320 work units) on the full 51200-thread
  // GPU should take ~6.25 ms.
  ComputingManager manager(prototype_config());
  manager.set_slice_share(0, 1.0);
  EXPECT_NEAR(manager.service_time(0, 320.0), 0.00625, 1e-9);
}

}  // namespace
}  // namespace edgeslice::compute
