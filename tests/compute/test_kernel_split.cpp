#include "compute/kernel_split.h"

#include <gtest/gtest.h>

#include <numeric>

namespace edgeslice::compute {
namespace {

TEST(KernelSplit, SmallKernelUnchanged) {
  const auto chunks = split_kernel(Kernel{100, 10.0}, 200);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].threads, 100u);
  EXPECT_DOUBLE_EQ(chunks[0].work, 10.0);
}

TEST(KernelSplit, EvenSplit) {
  const auto chunks = split_kernel(Kernel{400, 40.0}, 100);
  ASSERT_EQ(chunks.size(), 4u);
  for (const auto& c : chunks) {
    EXPECT_EQ(c.threads, 100u);
    EXPECT_DOUBLE_EQ(c.work, 10.0);
  }
}

TEST(KernelSplit, RemainderChunkIsSmaller) {
  const auto chunks = split_kernel(Kernel{250, 25.0}, 100);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[2].threads, 50u);
  EXPECT_DOUBLE_EQ(chunks[2].work, 5.0);
}

TEST(KernelSplit, WorkIsConserved) {
  for (std::size_t quota : {1u, 7u, 64u, 333u, 1000u}) {
    const Kernel k{1000, 123.456};
    const auto chunks = split_kernel(k, quota);
    double total_work = 0.0;
    std::size_t total_threads = 0;
    for (const auto& c : chunks) {
      EXPECT_LE(c.threads, quota);
      total_work += c.work;
      total_threads += c.threads;
    }
    EXPECT_NEAR(total_work, k.work, 1e-9) << "quota " << quota;
    EXPECT_EQ(total_threads, k.threads);
  }
}

TEST(KernelSplit, Validation) {
  EXPECT_THROW(split_kernel(Kernel{100, 1.0}, 0), std::invalid_argument);
  EXPECT_THROW(split_kernel(Kernel{0, 1.0}, 10), std::invalid_argument);
}

TEST(KernelSplit, SubmitSplitEnforcesQuotaEndToEnd) {
  GpuConfig config;
  config.total_threads = 1000;
  Gpu gpu(config);
  const auto capped = gpu.register_app();
  const auto other = gpu.register_app();
  gpu.set_thread_cap(capped, 100);
  // A huge kernel, split against the cap, cannot exceed 100 threads
  // concurrently, so the other app keeps 900 threads available.
  submit_split(gpu, capped, Kernel{1000, 1e6}, 100);
  gpu.submit(other, Kernel{900, 1e6});
  gpu.run(0.5, 1e-2);
  EXPECT_LE(gpu.last_occupancy().at(capped), 100u);
  EXPECT_EQ(gpu.last_occupancy().at(other), 900u);
}

TEST(KernelSplit, SplitKernelsRunConsecutively) {
  GpuConfig config;
  config.total_threads = 1000;
  Gpu gpu(config);
  const auto app = gpu.register_app();
  submit_split(gpu, app, Kernel{300, 30.0}, 100);
  EXPECT_EQ(gpu.queued_kernels(app), 3u);
  // Each 100-thread chunk of 10 work units takes 0.1 s.
  gpu.run(0.1, 1e-3);
  EXPECT_EQ(gpu.queued_kernels(app), 2u);
  gpu.run(0.2, 1e-3);
  EXPECT_TRUE(gpu.idle(app));
}

}  // namespace
}  // namespace edgeslice::compute
