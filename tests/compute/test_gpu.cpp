#include "compute/gpu.h"

#include <gtest/gtest.h>

namespace edgeslice::compute {
namespace {

GpuConfig small_gpu(std::size_t threads = 1000) {
  GpuConfig config;
  config.total_threads = threads;
  config.work_units_per_thread_per_second = 1.0;
  return config;
}

TEST(Gpu, ValidatesConfig) {
  GpuConfig bad;
  bad.total_threads = 0;
  EXPECT_THROW(Gpu{bad}, std::invalid_argument);
  bad = small_gpu();
  bad.work_units_per_thread_per_second = 0.0;
  EXPECT_THROW(Gpu{bad}, std::invalid_argument);
}

TEST(Gpu, SubmitValidates) {
  Gpu gpu(small_gpu());
  const auto app = gpu.register_app();
  EXPECT_THROW(gpu.submit(app + 1, Kernel{10, 1.0}), std::out_of_range);
  EXPECT_THROW(gpu.submit(app, Kernel{0, 1.0}), std::invalid_argument);
  EXPECT_THROW(gpu.submit(app, Kernel{2000, 1.0}), std::invalid_argument);  // > total
  EXPECT_THROW(gpu.submit(app, Kernel{10, -1.0}), std::invalid_argument);
}

TEST(Gpu, SingleKernelRunsToCompletion) {
  Gpu gpu(small_gpu());
  const auto app = gpu.register_app();
  gpu.submit(app, Kernel{100, 50.0});  // 100 threads -> 0.5 s
  const auto done = gpu.run(1.0, 1e-2);
  EXPECT_NEAR(done.at(app), 50.0, 1e-9);
  EXPECT_TRUE(gpu.idle(app));
}

TEST(Gpu, ExecutionIsInOrderPerStream) {
  Gpu gpu(small_gpu());
  const auto app = gpu.register_app();
  gpu.submit(app, Kernel{100, 10.0});
  gpu.submit(app, Kernel{100, 10.0});
  EXPECT_EQ(gpu.queued_kernels(app), 2u);
  gpu.run(0.1, 1e-2);  // exactly enough for the first kernel
  EXPECT_EQ(gpu.queued_kernels(app), 1u);
}

TEST(Gpu, ConcurrentAppsShareThreads) {
  Gpu gpu(small_gpu(100));
  const auto a = gpu.register_app();
  const auto b = gpu.register_app();
  gpu.submit(a, Kernel{60, 1000.0});
  gpu.submit(b, Kernel{40, 1000.0});
  gpu.run(1.0, 1e-2);
  const auto& occ = gpu.last_occupancy();
  EXPECT_EQ(occ.at(a), 60u);
  EXPECT_EQ(occ.at(b), 40u);
}

TEST(Gpu, MpsAdmissionIsGreedyAndUncontrollable) {
  // Without kernel-split caps, a greedy app starves its neighbour —
  // the vanilla-MPS behaviour the paper works around.
  Gpu gpu(small_gpu(100));
  const auto greedy = gpu.register_app();
  const auto victim = gpu.register_app();
  gpu.submit(greedy, Kernel{100, 1000.0});
  gpu.submit(victim, Kernel{50, 1000.0});
  const auto done = gpu.run(1.0, 1e-2);
  EXPECT_GT(done.at(greedy), 90.0);
  EXPECT_DOUBLE_EQ(done.at(victim), 0.0);
}

TEST(Gpu, ThreadCapBoundsOccupancy) {
  Gpu gpu(small_gpu(100));
  const auto a = gpu.register_app();
  const auto b = gpu.register_app();
  gpu.set_thread_cap(a, 30);
  gpu.submit(a, Kernel{100, 1000.0});
  gpu.submit(b, Kernel{70, 1000.0});
  gpu.run(0.5, 1e-2);
  EXPECT_LE(gpu.last_occupancy().at(a), 30u);
  EXPECT_EQ(gpu.last_occupancy().at(b), 70u);
}

TEST(Gpu, WorkRateScalesWithThreads) {
  Gpu gpu(small_gpu(1000));
  const auto a = gpu.register_app();
  const auto b = gpu.register_app();
  gpu.submit(a, Kernel{200, 1e6});
  gpu.submit(b, Kernel{100, 1e6});
  const auto done = gpu.run(1.0, 1e-2);
  EXPECT_NEAR(done.at(a) / done.at(b), 2.0, 1e-9);
}

TEST(Gpu, RunValidatesDurations) {
  Gpu gpu(small_gpu());
  EXPECT_THROW(gpu.run(-1.0), std::invalid_argument);
  EXPECT_THROW(gpu.run(1.0, 0.0), std::invalid_argument);
}

TEST(Gpu, IdleChecksUnknownApp) {
  Gpu gpu(small_gpu());
  EXPECT_THROW(gpu.idle(42), std::out_of_range);
}

}  // namespace
}  // namespace edgeslice::compute
