#include "common/logging.h"

#include <gtest/gtest.h>

namespace edgeslice {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::Warn); }
};

int evaluations = 0;

int expensive_arg() {
  ++evaluations;
  return 42;
}

TEST_F(LoggingTest, SuppressedStatementDoesNotEvaluateArguments) {
  // The original macro built the LogLine (and evaluated every streamed
  // expression) unconditionally, deferring the level check to emit time.
  // A suppressed ES_LOG must short-circuit before any argument runs.
  set_log_level(LogLevel::Warn);
  evaluations = 0;
  ES_LOG(Debug) << "value " << expensive_arg();
  ES_LOG(Info) << expensive_arg();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, EnabledStatementEvaluatesAndEmits) {
  set_log_level(LogLevel::Debug);
  evaluations = 0;
  testing::internal::CaptureStderr();
  ES_LOG(Debug) << "value " << expensive_arg();
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(err, "[DEBUG] value 42\n");
}

TEST_F(LoggingTest, OffSuppressesEverything) {
  set_log_level(LogLevel::Off);
  evaluations = 0;
  testing::internal::CaptureStderr();
  ES_LOG(Error) << expensive_arg();
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, MacroIsASingleStatement) {
  // ES_LOG must behave as one expression: usable bare, and safe as an
  // un-braced if/else branch (no dangling-else ambiguity).
  set_log_level(LogLevel::Off);
  ES_LOG(Info);
  bool reached_else = false;
  if (false)
    ES_LOG(Info) << "then";
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

}  // namespace
}  // namespace edgeslice
