#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace edgeslice {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  constexpr std::size_t kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.parallel_for(kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  ThreadPool pool(3);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> count{0};
  pool.parallel_for(7, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 7);
}

TEST(ThreadPool, ExceptionPropagatesAndBatchDrains) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  const auto body = [&](std::size_t i) {
    if (i == 3) throw std::runtime_error("task 3 failed");
    completed.fetch_add(1);
  };
  EXPECT_THROW(pool.parallel_for(16, body), std::runtime_error);
  EXPECT_EQ(completed.load(), 15);  // the other tasks still ran
  // The pool stays usable after a failed batch.
  std::atomic<int> second{0};
  pool.parallel_for(8, [&](std::size_t) { second.fetch_add(1); });
  EXPECT_EQ(second.load(), 8);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(12);
  pool.parallel_for(3, [&](std::size_t outer) {
    pool.parallel_for(4, [&](std::size_t inner) {
      hits[outer * 4 + inner].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(32, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 20L * (31L * 32L / 2));
}

TEST(ThreadPool, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace edgeslice
