#include "common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/rng.h"

namespace edgeslice {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  // Tests share the process-global enable switch; restore defaults so
  // ordering between tests (and other suites) does not matter.
  void TearDown() override { set_metrics_enabled(true); }
};

TEST_F(MetricsTest, CounterAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, CounterDisabledIsNoOp) {
  Counter c;
  set_metrics_enabled(false);
  c.add(7);
  EXPECT_EQ(c.value(), 0u);
  set_metrics_enabled(true);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST_F(MetricsTest, GaugeSetAddAndWrittenFlag) {
  Gauge g;
  EXPECT_FALSE(g.written());
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_TRUE(g.written());
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST_F(MetricsTest, GaugeDisabledIsNoOp) {
  Gauge g;
  set_metrics_enabled(false);
  g.set(3.0);
  g.add(1.0);
  EXPECT_FALSE(g.written());
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(MetricsTest, HistogramExactMoments) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  for (double x : {3.0, -1.0, 7.0, 0.0}) h.observe(x);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.25);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
  EXPECT_DOUBLE_EQ(h.total(), 9.0);
}

TEST_F(MetricsTest, HistogramQuantileWithinBucketResolution) {
  // Log buckets grow by kGrowth = 1.3, so any quantile estimate must sit
  // within a factor of 1.3 of the exact order statistic.
  Rng rng(7);
  Histogram h;
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) {
    const double x = std::exp(rng.uniform(-3.0, 3.0));
    xs.push_back(x);
    h.observe(x);
  }
  std::sort(xs.begin(), xs.end());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double exact = xs[static_cast<std::size_t>(q * (xs.size() - 1))];
    const double est = h.quantile(q);
    EXPECT_GT(est, exact / Histogram::kGrowth) << "q=" << q;
    EXPECT_LT(est, exact * Histogram::kGrowth) << "q=" << q;
  }
}

TEST_F(MetricsTest, HistogramQuantileClampedToObservedRange) {
  Histogram h;
  h.observe(5.0);
  h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST_F(MetricsTest, HistogramHandlesNegativesAndZeros) {
  Histogram h;
  for (double x : {-10.0, -10.0, -10.0, 0.0, 10.0}) h.observe(x);
  // Quantile walk goes negatives (descending magnitude), zero, positives.
  EXPECT_LT(h.quantile(0.2), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.7), 0.0);
  EXPECT_GT(h.quantile(0.95), 0.0);
}

TEST_F(MetricsTest, RegistryReturnsStableHandles) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(registry.counter("x").value(), 3u);
  registry.gauge("g").set(1.5);
  registry.histogram("h").observe(2.0);
  EXPECT_EQ(registry.counter_names(), std::vector<std::string>{"x"});
  EXPECT_EQ(registry.gauge_names(), std::vector<std::string>{"g"});
  EXPECT_EQ(registry.histogram_names(), std::vector<std::string>{"h"});
}

TEST_F(MetricsTest, RegistryClearDropsEverything) {
  MetricsRegistry registry;
  registry.counter("x").add();
  registry.clear();
  EXPECT_TRUE(registry.counter_names().empty());
}

TEST_F(MetricsTest, JsonExportContainsAllKinds) {
  MetricsRegistry registry;
  registry.counter("bus.sent").add(5);
  registry.gauge("sys.util").set(0.75);
  auto& h = registry.histogram("lat");
  h.observe(1.0);
  h.observe(2.0);
  std::stringstream out;
  registry.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"bus.sent\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"sys.util\": 0.75"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST_F(MetricsTest, CsvExportOneRowPerScalar) {
  MetricsRegistry registry;
  registry.counter("c").add(2);
  registry.gauge("g").set(4.0);
  std::stringstream out;
  registry.write_csv(out);
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line, "kind,name,field,value");
  std::getline(out, line);
  EXPECT_EQ(line, "counter,c,value,2");
  std::getline(out, line);
  EXPECT_EQ(line, "gauge,g,value,4");
}

TEST_F(MetricsTest, ConcurrentRecordingIsExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.counter("n").add();
        registry.histogram("h").observe(1.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(registry.counter("n").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.histogram("h").count(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&global_metrics(), &global_metrics());
}

TEST_F(MetricsTest, WriteJsonEscapesHostileMetricNames) {
  // Regression: names with control characters used to be emitted raw,
  // producing invalid JSON (RFC 8259 forbids unescaped bytes < 0x20).
  MetricsRegistry registry;
  const std::string hostile = std::string("bad\nname\t") + '\x01' + "\"q\" \\end";
  registry.counter(hostile).add(7);
  std::ostringstream out;
  registry.write_json(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"bad\\nname\\t\\u0001\\\"q\\\" \\\\end\": 7"),
            std::string::npos)
      << text;
  // No raw control characters anywhere in the document (newlines from the
  // pretty-printer are the only ones allowed).
  for (char c : text) {
    if (c == '\n') continue;
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST_F(MetricsTest, WriteJsonEscapedCoversEveryControlByte) {
  std::string all;
  for (int c = 1; c < 0x20; ++c) all.push_back(static_cast<char>(c));
  std::ostringstream out;
  write_json_escaped(out, all);
  const std::string text = out.str();
  for (char c : text) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  EXPECT_NE(text.find("\\b\\t\\n"), std::string::npos);      // 0x08, 0x09, 0x0a
  EXPECT_NE(text.find("\\u0001"), std::string::npos);        // generic escape
  EXPECT_NE(text.find("\\u001f"), std::string::npos);        // last control byte
}

TEST_F(MetricsTest, QuantileAllNegativeObservations) {
  Histogram h;
  for (double x : {-10.0, -5.0, -1.0}) h.observe(x);
  // Ascending order is most-negative first; every estimate must stay
  // within the observed range and within bucket resolution (x1.3) of the
  // exact order statistic.
  const double p0 = h.quantile(0.0);
  const double p50 = h.quantile(0.5);
  const double p100 = h.quantile(1.0);
  EXPECT_GE(p0, -10.0);
  EXPECT_LE(p0, -10.0 / 1.3);
  EXPECT_LE(p50, -5.0 / 1.3);
  EXPECT_GE(p50, -5.0 * 1.3);
  EXPECT_LE(p100, -1.0 / 1.3);
  EXPECT_GE(p100, -1.3);
  EXPECT_LE(p0, p50);
  EXPECT_LE(p50, p100);
}

TEST_F(MetricsTest, QuantileMixedSignObservations) {
  Histogram h;
  for (double x : {-4.0, -2.0, 2.0, 4.0}) h.observe(x);
  // Rank 2 of 4 is -2, rank 3 is +2: the estimates must carry the sign.
  EXPECT_LT(h.quantile(0.5), 0.0);
  EXPECT_GT(h.quantile(0.75), 0.0);
  EXPECT_NEAR(h.quantile(0.5), -2.0, 2.0 * 0.3);
  EXPECT_NEAR(h.quantile(0.75), 2.0, 2.0 * 0.3);
  // Extremes stay inside the observed range, within bucket resolution.
  EXPECT_LE(h.quantile(1.0), 4.0);
  EXPECT_GE(h.quantile(1.0), 4.0 / 1.3);
  EXPECT_GE(h.quantile(0.0), -4.0);
  EXPECT_LE(h.quantile(0.0), -4.0 / 1.3);
}

TEST_F(MetricsTest, QuantileStraddlingTheZeroBucket) {
  Histogram h;
  for (double x : {-1.0, 0.0, 0.0, 1.0}) h.observe(x);
  // Ranks 2 and 3 both land in the exact zero bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 0.0);
  EXPECT_LT(h.quantile(0.1), 0.0);
  EXPECT_GT(h.quantile(1.0), 0.0);
}

TEST_F(MetricsTest, WritePrometheusGoldenAndNameSanitization) {
  MetricsRegistry registry;
  registry.counter("bus.rcm_sent").add(3);
  registry.counter("99 bottles!").add(1);  // digit prefix + illegal chars
  registry.gauge("sla.margin.slice0").set(-2.5);
  auto& h = registry.histogram("coordinator.solve_s");
  h.observe(0.0);
  h.observe(0.0);
  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string expected =
      "# TYPE _99_bottles_ counter\n"
      "_99_bottles_ 1\n"
      "# TYPE bus_rcm_sent counter\n"
      "bus_rcm_sent 3\n"
      "# TYPE sla_margin_slice0 gauge\n"
      "sla_margin_slice0 -2.5\n"
      "# TYPE coordinator_solve_s summary\n"
      "coordinator_solve_s{quantile=\"0.5\"} 0\n"
      "coordinator_solve_s{quantile=\"0.9\"} 0\n"
      "coordinator_solve_s{quantile=\"0.99\"} 0\n"
      "coordinator_solve_s_sum 0\n"
      "coordinator_solve_s_count 2\n";
  EXPECT_EQ(out.str(), expected);
}

}  // namespace
}  // namespace edgeslice
