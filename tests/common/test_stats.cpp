#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace edgeslice {
namespace {

TEST(Stats, MeanBasic) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, StddevKnownValue) {
  // Sample stddev of {2,4,4,4,5,5,7,9} is ~2.138.
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.13809, 1e-4);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(Stats, SumBasic) {
  EXPECT_DOUBLE_EQ(sum({1.5, 2.5, -1.0}), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Stats, PercentileValidation) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(Stats, PercentileSingleElement) {
  // Interpolation endpoints degenerate to the lone sample for every p.
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100), 7.0);
}

TEST(Stats, PercentileBoundsExactOnUnsortedInput) {
  // p = 0 / p = 100 must hit the exact min/max regardless of input order.
  const std::vector<double> xs{4.0, -2.0, 9.0, 0.5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), -2.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 9.0);
  EXPECT_THROW(percentile(xs, -0.5), std::invalid_argument);
}

TEST(Stats, EcdfAtThreshold) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(ecdf_at(xs, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(ecdf_at(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ecdf_at(xs, 10.0), 1.0);
}

TEST(Stats, EcdfPointsMonotone) {
  Rng rng(1);
  const auto xs = rng.normals(500);
  const auto pts = ecdf_points(xs, 10);
  ASSERT_EQ(pts.size(), 10u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].first, pts[i].first);
    EXPECT_LT(pts[i - 1].second, pts[i].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(Stats, EcdfPointsWithMorePointsThanSamples) {
  // Requesting more points than samples must still return `points` pairs,
  // monotone, repeating sample values rather than reading out of range.
  const auto pts = ecdf_points({1.0, 2.0}, 5);
  ASSERT_EQ(pts.size(), 5u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].first, pts[i].first);
    EXPECT_LT(pts[i - 1].second, pts[i].second);
  }
  EXPECT_DOUBLE_EQ(pts.front().first, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().first, 2.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(Stats, EcdfPointsDegenerateInputs) {
  EXPECT_TRUE(ecdf_points({}, 10).empty());
  EXPECT_TRUE(ecdf_points({1.0, 2.0}, 0).empty());
  const auto single = ecdf_points({3.0}, 3);
  ASSERT_EQ(single.size(), 3u);
  for (const auto& [value, prob] : single) EXPECT_DOUBLE_EQ(value, 3.0);
}

TEST(RunningStat, MatchesBatchStats) {
  Rng rng(2);
  const auto xs = rng.normals(1000, 5.0, 2.0);
  RunningStat rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-9);
}

TEST(RunningStat, TracksMinMax) {
  RunningStat rs;
  rs.add(3.0);
  rs.add(-1.0);
  rs.add(7.0);
  EXPECT_DOUBLE_EQ(rs.min(), -1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 7.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  // Documented before-first-add behavior: min/max read as 0 until primed.
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.min(), 0.0);
  EXPECT_DOUBLE_EQ(rs.max(), 0.0);
}

TEST(RunningStat, FirstAddPrimesMinMax) {
  // The first sample must overwrite the zero-initialized extremes — an
  // all-positive (or all-negative) stream must not report min/max 0.
  RunningStat rs;
  rs.add(5.0);
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
  RunningStat negative;
  negative.add(-3.0);
  negative.add(-8.0);
  EXPECT_DOUBLE_EQ(negative.max(), -3.0);
  EXPECT_DOUBLE_EQ(negative.min(), -8.0);
}

TEST(Ema, ValueBeforePrimingIsZero) {
  Ema ema(0.9);
  EXPECT_TRUE(ema.empty());
  EXPECT_DOUBLE_EQ(ema.value(), 0.0);
  // Priming takes the first sample verbatim, ignoring alpha.
  EXPECT_DOUBLE_EQ(ema.add(-7.0), -7.0);
  EXPECT_FALSE(ema.empty());
}

TEST(Ema, FirstSamplePrimes) {
  Ema ema(0.5);
  EXPECT_TRUE(ema.empty());
  ema.add(10.0);
  EXPECT_DOUBLE_EQ(ema.value(), 10.0);
}

TEST(Ema, ConvergesToConstant) {
  Ema ema(0.3);
  for (int i = 0; i < 100; ++i) ema.add(4.0);
  EXPECT_NEAR(ema.value(), 4.0, 1e-9);
}

TEST(Ema, SmoothsSteps) {
  Ema ema(0.5);
  ema.add(0.0);
  ema.add(10.0);
  EXPECT_DOUBLE_EQ(ema.value(), 5.0);
}

}  // namespace
}  // namespace edgeslice
