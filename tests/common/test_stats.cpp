#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace edgeslice {
namespace {

TEST(Stats, MeanBasic) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, StddevKnownValue) {
  // Sample stddev of {2,4,4,4,5,5,7,9} is ~2.138.
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.13809, 1e-4);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(Stats, SumBasic) {
  EXPECT_DOUBLE_EQ(sum({1.5, 2.5, -1.0}), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Stats, PercentileValidation) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(Stats, EcdfAtThreshold) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(ecdf_at(xs, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(ecdf_at(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ecdf_at(xs, 10.0), 1.0);
}

TEST(Stats, EcdfPointsMonotone) {
  Rng rng(1);
  const auto xs = rng.normals(500);
  const auto pts = ecdf_points(xs, 10);
  ASSERT_EQ(pts.size(), 10u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].first, pts[i].first);
    EXPECT_LT(pts[i - 1].second, pts[i].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(RunningStat, MatchesBatchStats) {
  Rng rng(2);
  const auto xs = rng.normals(1000, 5.0, 2.0);
  RunningStat rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-9);
}

TEST(RunningStat, TracksMinMax) {
  RunningStat rs;
  rs.add(3.0);
  rs.add(-1.0);
  rs.add(7.0);
  EXPECT_DOUBLE_EQ(rs.min(), -1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 7.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(Ema, FirstSamplePrimes) {
  Ema ema(0.5);
  EXPECT_TRUE(ema.empty());
  ema.add(10.0);
  EXPECT_DOUBLE_EQ(ema.value(), 10.0);
}

TEST(Ema, ConvergesToConstant) {
  Ema ema(0.3);
  for (int i = 0; i < 100; ++i) ema.add(4.0);
  EXPECT_NEAR(ema.value(), 4.0, 1e-9);
}

TEST(Ema, SmoothsSteps) {
  Ema ema(0.5);
  ema.add(0.0);
  ema.add(10.0);
  EXPECT_DOUBLE_EQ(ema.value(), 5.0);
}

}  // namespace
}  // namespace edgeslice
