#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace edgeslice {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntIsInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(3));
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Rng, PoissonZeroRateIsZero) {
  Rng rng(13);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, IndexStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
}

TEST(Rng, IndexZeroThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, SpawnIsDeterministic) {
  Rng a(42);
  Rng b(42);
  Rng ca = a.spawn();
  Rng cb = b.spawn();
  EXPECT_DOUBLE_EQ(ca.uniform(), cb.uniform());
}

TEST(Rng, SpawnedStreamsAreIndependent) {
  Rng parent(42);
  Rng c1 = parent.spawn();
  Rng c2 = parent.spawn();
  EXPECT_NE(c1.uniform(), c2.uniform());
}

TEST(Rng, TaggedSpawnIgnoresParentState) {
  Rng a(42);
  a.uniform();  // consume some state
  Rng b(42);
  EXPECT_DOUBLE_EQ(a.spawn(9).uniform(), b.spawn(9).uniform());
}

TEST(Rng, VectorsHaveRequestedSize) {
  Rng rng(3);
  EXPECT_EQ(rng.uniforms(17).size(), 17u);
  EXPECT_EQ(rng.normals(9).size(), 9u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_GT(rng.exponential(2.0), 0.0);
}

}  // namespace
}  // namespace edgeslice
