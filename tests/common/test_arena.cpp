#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace edgeslice {
namespace {

TEST(MonotonicArena, ValueInitializesArrays) {
  MonotonicArena arena;
  double* xs = arena.make_array<double>(16);
  ASSERT_NE(xs, nullptr);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(xs[i], 0.0);
  bool* bs = arena.make_array<bool>(7);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_FALSE(bs[i]);
}

TEST(MonotonicArena, RespectsAlignment) {
  MonotonicArena arena(256);
  arena.allocate(1, 1);
  void* p = arena.allocate(sizeof(double), alignof(double));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(double), 0u);
  arena.allocate(3, 1);
  void* q = arena.allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % 64, 0u);
}

TEST(MonotonicArena, ZeroByteAllocationsGetDistinctPointers) {
  MonotonicArena arena;
  void* a = arena.allocate(0);
  void* b = arena.allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
}

TEST(MonotonicArena, GrowthCountsUpstreamAllocations) {
  MonotonicArena arena(128);
  EXPECT_EQ(arena.stats().upstream_allocations, 1u);  // initial slab
  arena.allocate(64);
  EXPECT_EQ(arena.stats().upstream_allocations, 1u);
  arena.allocate(4096);  // spills
  EXPECT_EQ(arena.stats().upstream_allocations, 2u);
  EXPECT_GE(arena.stats().capacity_bytes, 4096u + 128u);
}

TEST(MonotonicArena, ResetCoalescesAndStaysUpstreamFree) {
  MonotonicArena arena(64);
  // First cycle spills across several slabs.
  for (int i = 0; i < 8; ++i) arena.allocate(100);
  const std::size_t high_water = arena.stats().high_water_bytes;
  EXPECT_GE(high_water, 800u);
  arena.reset();
  EXPECT_EQ(arena.stats().resets, 1u);
  EXPECT_EQ(arena.stats().used_bytes, 0u);
  // The coalesced slab must absorb the same cycle with no new slabs, and
  // once it has (alignment padding differs between the spilled and the
  // coalesced layout), the high-water mark must go flat too.
  const std::size_t after_coalesce = arena.stats().upstream_allocations;
  for (int i = 0; i < 8; ++i) arena.allocate(100);
  arena.reset();
  const std::size_t steady_high_water = arena.stats().high_water_bytes;
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 8; ++i) arena.allocate(100);
    arena.reset();
  }
  EXPECT_EQ(arena.stats().upstream_allocations, after_coalesce);
  EXPECT_EQ(arena.stats().high_water_bytes, steady_high_water);
}

TEST(MonotonicArena, ResetKeepsSingleSlabWithoutReallocating) {
  MonotonicArena arena(1024);
  arena.allocate(512);
  const std::size_t before = arena.stats().upstream_allocations;
  arena.reset();
  arena.allocate(512);
  EXPECT_EQ(arena.stats().upstream_allocations, before);
}

TEST(ArenaAllocator, BacksStdVector) {
  MonotonicArena arena;
  std::vector<int, ArenaAllocator<int>> xs{ArenaAllocator<int>(arena)};
  for (int i = 0; i < 100; ++i) xs.push_back(i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(xs[i], i);
  // All storage (including growth copies) came from the arena.
  EXPECT_GT(arena.stats().used_bytes, 100u * sizeof(int));
}

TEST(ArenaAllocator, RebindsAndCompares) {
  MonotonicArena a;
  MonotonicArena b;
  ArenaAllocator<int> ai(a);
  ArenaAllocator<double> ad(ai);  // rebind-style conversion
  EXPECT_TRUE(ai == ad);
  ArenaAllocator<int> bi(b);
  EXPECT_TRUE(ai != bi);
}

}  // namespace
}  // namespace edgeslice
