#include "common/cli.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace edgeslice {
namespace {

CliArgs parse(std::vector<const char*> argv, std::vector<std::string> known) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()), argv.data(), known);
}

TEST(CliArgs, ParsesSpaceSeparated) {
  const auto args = parse({"--steps", "500"}, {"steps"});
  EXPECT_EQ(args.get_int("steps", 0), 500);
}

TEST(CliArgs, ParsesEqualsForm) {
  const auto args = parse({"--seed=42"}, {"seed"});
  EXPECT_EQ(args.get_int("seed", 0), 42);
}

TEST(CliArgs, BareFlagIsTrue) {
  const auto args = parse({"--verbose"}, {"verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(CliArgs, UnknownFlagExitsCleanly) {
  EXPECT_EXIT(parse({"--bogus", "1"}, {"steps"}), testing::ExitedWithCode(2),
              "unknown flag: --bogus");
}

TEST(CliArgs, PositionalExitsCleanly) {
  EXPECT_EXIT(parse({"oops"}, {"steps"}), testing::ExitedWithCode(2),
              "unexpected positional argument: oops");
}

TEST(CliArgs, FallbacksWhenAbsent) {
  const auto args = parse({}, {"steps", "ratio", "name"});
  EXPECT_EQ(args.get_int("steps", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.5), 0.5);
  EXPECT_EQ(args.get("name", "x"), "x");
  EXPECT_FALSE(args.has("steps"));
}

TEST(CliArgs, DoubleParsing) {
  const auto args = parse({"--ratio", "0.25"}, {"ratio"});
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 0.25);
}

TEST(CliArgs, BoolVariants) {
  EXPECT_TRUE(parse({"--f", "yes"}, {"f"}).get_bool("f", false));
  EXPECT_TRUE(parse({"--f", "1"}, {"f"}).get_bool("f", false));
  EXPECT_FALSE(parse({"--f", "no"}, {"f"}).get_bool("f", true));
}

TEST(CliArgs, EnvFallback) {
  setenv("ES_TEST_STEPS", "123", 1);
  const auto args = parse({}, {"steps"});
  EXPECT_EQ(args.get_int_env("steps", "ES_TEST_STEPS", 5), 123);
  unsetenv("ES_TEST_STEPS");
  EXPECT_EQ(args.get_int_env("steps", "ES_TEST_STEPS", 5), 5);
}

TEST(CliArgs, FlagBeatsEnv) {
  setenv("ES_TEST_STEPS", "123", 1);
  const auto args = parse({"--steps", "9"}, {"steps"});
  EXPECT_EQ(args.get_int_env("steps", "ES_TEST_STEPS", 5), 9);
  unsetenv("ES_TEST_STEPS");
}

// --- Hostile numeric input -------------------------------------------------
// Every malformed value must name the offending flag/env var and its value
// on stderr and exit 2 — never throw out of main or truncate silently.

TEST(CliArgsHostile, NonNumericIntExitsCleanly) {
  const auto args = parse({"--seed", "abc"}, {"seed"});
  EXPECT_EXIT(args.get_int("seed", 0), testing::ExitedWithCode(2),
              "flag --seed: expected an integer, got \"abc\"");
}

TEST(CliArgsHostile, TrailingGarbageIsRejectedNotTruncated) {
  const auto args = parse({"--steps", "12abc"}, {"steps"});
  EXPECT_EXIT(args.get_int("steps", 0), testing::ExitedWithCode(2),
              "flag --steps: expected an integer, got \"12abc\"");
}

TEST(CliArgsHostile, EmptyValueIsRejected) {
  const auto args = parse({"--steps="}, {"steps"});
  EXPECT_EXIT(args.get_int("steps", 0), testing::ExitedWithCode(2),
              "flag --steps: expected an integer");
}

TEST(CliArgsHostile, OutOfRangeIntExitsCleanly) {
  const auto args = parse({"--steps", "99999999999999999999999"}, {"steps"});
  EXPECT_EXIT(args.get_int("steps", 0), testing::ExitedWithCode(2),
              "flag --steps: integer out of range");
}

TEST(CliArgsHostile, NonNumericDoubleExitsCleanly) {
  const auto args = parse({"--ratio", "fast"}, {"ratio"});
  EXPECT_EXIT(args.get_double("ratio", 0.0), testing::ExitedWithCode(2),
              "flag --ratio: expected a number, got \"fast\"");
}

TEST(CliArgsHostile, DoubleTrailingGarbageIsRejected) {
  const auto args = parse({"--ratio", "0.5x"}, {"ratio"});
  EXPECT_EXIT(args.get_double("ratio", 0.0), testing::ExitedWithCode(2),
              "flag --ratio: expected a number, got \"0.5x\"");
}

TEST(CliArgsHostile, MalformedEnvVarNamesTheVariable) {
  setenv("ES_TEST_STEPS", "not-a-number", 1);
  const auto args = parse({}, {"steps"});
  EXPECT_EXIT(args.get_int_env("steps", "ES_TEST_STEPS", 5),
              testing::ExitedWithCode(2),
              "environment variable ES_TEST_STEPS: expected an integer, "
              "got \"not-a-number\"");
  unsetenv("ES_TEST_STEPS");
}

TEST(CliArgsHostile, OutOfRangeEnvVarNamesTheVariable) {
  setenv("ES_TEST_STEPS", "-99999999999999999999999", 1);
  const auto args = parse({}, {"steps"});
  EXPECT_EXIT(args.get_int_env("steps", "ES_TEST_STEPS", 5),
              testing::ExitedWithCode(2),
              "environment variable ES_TEST_STEPS: integer out of range");
  unsetenv("ES_TEST_STEPS");
}

}  // namespace
}  // namespace edgeslice
