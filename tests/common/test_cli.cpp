#include "common/cli.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace edgeslice {
namespace {

CliArgs parse(std::vector<const char*> argv, std::vector<std::string> known) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()), argv.data(), known);
}

TEST(CliArgs, ParsesSpaceSeparated) {
  const auto args = parse({"--steps", "500"}, {"steps"});
  EXPECT_EQ(args.get_int("steps", 0), 500);
}

TEST(CliArgs, ParsesEqualsForm) {
  const auto args = parse({"--seed=42"}, {"seed"});
  EXPECT_EQ(args.get_int("seed", 0), 42);
}

TEST(CliArgs, BareFlagIsTrue) {
  const auto args = parse({"--verbose"}, {"verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(CliArgs, UnknownFlagThrows) {
  EXPECT_THROW(parse({"--bogus", "1"}, {"steps"}), std::invalid_argument);
}

TEST(CliArgs, PositionalThrows) {
  EXPECT_THROW(parse({"oops"}, {"steps"}), std::invalid_argument);
}

TEST(CliArgs, FallbacksWhenAbsent) {
  const auto args = parse({}, {"steps", "ratio", "name"});
  EXPECT_EQ(args.get_int("steps", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.5), 0.5);
  EXPECT_EQ(args.get("name", "x"), "x");
  EXPECT_FALSE(args.has("steps"));
}

TEST(CliArgs, DoubleParsing) {
  const auto args = parse({"--ratio", "0.25"}, {"ratio"});
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 0.25);
}

TEST(CliArgs, BoolVariants) {
  EXPECT_TRUE(parse({"--f", "yes"}, {"f"}).get_bool("f", false));
  EXPECT_TRUE(parse({"--f", "1"}, {"f"}).get_bool("f", false));
  EXPECT_FALSE(parse({"--f", "no"}, {"f"}).get_bool("f", true));
}

TEST(CliArgs, EnvFallback) {
  setenv("ES_TEST_STEPS", "123", 1);
  const auto args = parse({}, {"steps"});
  EXPECT_EQ(args.get_int_env("steps", "ES_TEST_STEPS", 5), 123);
  unsetenv("ES_TEST_STEPS");
  EXPECT_EQ(args.get_int_env("steps", "ES_TEST_STEPS", 5), 5);
}

TEST(CliArgs, FlagBeatsEnv) {
  setenv("ES_TEST_STEPS", "123", 1);
  const auto args = parse({"--steps", "9"}, {"steps"});
  EXPECT_EQ(args.get_int_env("steps", "ES_TEST_STEPS", 5), 9);
  unsetenv("ES_TEST_STEPS");
}

}  // namespace
}  // namespace edgeslice
