#include "common/trace_span.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/metrics.h"

namespace edgeslice {
namespace {

class TraceSpanTest : public ::testing::Test {
 protected:
  void TearDown() override { set_metrics_enabled(true); }
  Tracer tracer_;
};

TEST_F(TraceSpanTest, RecordAggregatesDirectly) {
  tracer_.record("solve", 2.0);
  tracer_.record("solve", 4.0);
  const SpanStats stats = tracer_.overall("solve");
  EXPECT_EQ(stats.count, 2u);
  EXPECT_DOUBLE_EQ(stats.total_s, 6.0);
  EXPECT_DOUBLE_EQ(stats.mean_s(), 3.0);
  EXPECT_DOUBLE_EQ(stats.min_s, 2.0);
  EXPECT_DOUBLE_EQ(stats.max_s, 4.0);
  EXPECT_EQ(tracer_.names(), std::vector<std::string>{"solve"});
}

TEST_F(TraceSpanTest, UnknownPathIsEmptyStats) {
  EXPECT_EQ(tracer_.overall("nope").count, 0u);
  EXPECT_EQ(tracer_.for_period("nope", 3).count, 0u);
  EXPECT_TRUE(tracer_.periods("nope").empty());
}

TEST_F(TraceSpanTest, SpanMeasuresNonNegativeTime) {
  {
    auto span = tracer_.span("work");
    EXPECT_EQ(span.path(), "work");
    EXPECT_GE(span.stop(), 0.0);
  }
  EXPECT_EQ(tracer_.overall("work").count, 1u);
}

TEST_F(TraceSpanTest, StopIsIdempotentWithDestructor) {
  {
    auto span = tracer_.span("once");
    span.stop();
    // Destructor must not record a second time.
  }
  EXPECT_EQ(tracer_.overall("once").count, 1u);
}

TEST_F(TraceSpanTest, NestedSpansRecordUnderParentPath) {
  {
    auto outer = tracer_.span("period");
    auto inner = tracer_.span("solve");
    EXPECT_EQ(inner.path(), "period/solve");
    inner.stop();
    // After the child stops, a new span nests under the parent again.
    auto sibling = tracer_.span("train");
    EXPECT_EQ(sibling.path(), "period/train");
  }
  EXPECT_EQ(tracer_.overall("period").count, 1u);
  EXPECT_EQ(tracer_.overall("period/solve").count, 1u);
  EXPECT_EQ(tracer_.overall("period/train").count, 1u);
  // Top level is restored once the outer span closes.
  auto top = tracer_.span("fresh");
  EXPECT_EQ(top.path(), "fresh");
}

TEST_F(TraceSpanTest, PerPeriodAggregation) {
  tracer_.set_period(3);
  tracer_.record("solve", 1.0);
  tracer_.record("solve", 2.0);
  tracer_.set_period(4);
  tracer_.record("solve", 10.0);
  EXPECT_EQ(tracer_.period(), 4u);
  EXPECT_EQ(tracer_.for_period("solve", 3).count, 2u);
  EXPECT_DOUBLE_EQ(tracer_.for_period("solve", 3).total_s, 3.0);
  EXPECT_DOUBLE_EQ(tracer_.for_period("solve", 4).total_s, 10.0);
  EXPECT_EQ(tracer_.overall("solve").count, 3u);
  const auto periods = tracer_.periods("solve");
  ASSERT_EQ(periods.size(), 2u);
  EXPECT_EQ(periods[0].first, 3u);
  EXPECT_EQ(periods[1].first, 4u);
}

TEST_F(TraceSpanTest, RetentionEvictsOldestPeriodsOnly) {
  tracer_.set_period_retention(2);
  for (std::size_t p = 0; p < 5; ++p) {
    tracer_.set_period(p);
    tracer_.record("solve", 1.0);
  }
  const auto periods = tracer_.periods("solve");
  ASSERT_EQ(periods.size(), 2u);
  EXPECT_EQ(periods[0].first, 3u);
  EXPECT_EQ(periods[1].first, 4u);
  // The overall aggregate still covers every period.
  EXPECT_EQ(tracer_.overall("solve").count, 5u);
}

TEST_F(TraceSpanTest, DisabledSpansRecordNothing) {
  set_metrics_enabled(false);
  {
    auto span = tracer_.span("work");
    EXPECT_EQ(span.path(), "");
    EXPECT_DOUBLE_EQ(span.stop(), 0.0);
  }
  tracer_.record("work", 5.0);
  set_metrics_enabled(true);
  EXPECT_TRUE(tracer_.names().empty());
}

TEST_F(TraceSpanTest, DisabledSpanDoesNotBreakNesting) {
  auto outer = tracer_.span("period");
  set_metrics_enabled(false);
  {
    auto inert = tracer_.span("skipped");
  }
  set_metrics_enabled(true);
  // The inert span must not have clobbered the thread's current path.
  auto inner = tracer_.span("solve");
  EXPECT_EQ(inner.path(), "period/solve");
}

TEST_F(TraceSpanTest, WriteJsonContainsPathsAndPeriods) {
  tracer_.set_period(7);
  tracer_.record("period/solve", 1.5);
  std::stringstream out;
  tracer_.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"period/solve\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"total_s\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"periods\": {\"7\""), std::string::npos);
}

TEST_F(TraceSpanTest, ClearDropsSeries) {
  tracer_.record("x", 1.0);
  tracer_.clear();
  EXPECT_TRUE(tracer_.names().empty());
  std::stringstream out;
  tracer_.write_json(out);
  EXPECT_EQ(out.str(), "{}");
}

TEST_F(TraceSpanTest, GlobalTracerIsSingleton) {
  EXPECT_EQ(&global_tracer(), &global_tracer());
}

}  // namespace
}  // namespace edgeslice
