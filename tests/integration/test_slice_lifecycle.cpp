// Integration: tenant-driven slice lifecycle over the running system.
//
// A tenant requests slices through the SR interface (SliceManager), the
// SLAs propagate into the performance coordinator, users attach, the
// system runs, and an SLA modification at runtime changes the
// coordinator's projection target.
#include <gtest/gtest.h>

#include <memory>

#include "core/slice_manager.h"
#include "core/system.h"
#include "env/service_model.h"

namespace edgeslice::core {
namespace {

TEST(SliceLifecycle, RequestsDriveCoordinatorAndSystem) {
  // Operator-side setup: 2 RAs, capacity for 2 slices.
  CoordinatorConfig coordinator_config;
  coordinator_config.slices = 2;
  coordinator_config.ras = 2;

  const auto model =
      std::make_shared<env::DirectServiceModel>(env::prototype_capacity());
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<RaPolicy>> policies;
  env::RaEnvironmentConfig env_config;
  env_config.intervals_per_period = 5;
  for (std::size_t j = 0; j < 2; ++j) {
    environments.push_back(std::make_unique<env::RaEnvironment>(
        env_config, std::vector<env::AppProfile>{env::slice1_profile(),
                                                 env::slice2_profile()},
        model, env::make_queue_power_perf(), Rng(40 + j)));
    policies.push_back(std::make_unique<TaroPolicy>());
  }
  std::vector<env::RaEnvironment*> env_ptrs{environments[0].get(), environments[1].get()};
  std::vector<RaPolicy*> policy_ptrs{policies[0].get(), policies[1].get()};
  EdgeSliceSystem system(env_ptrs, policy_ptrs, coordinator_config);

  // Tenant-side: request two slices with distinct SLAs.
  SliceManagerConfig manager_config;
  manager_config.capacity = env::prototype_capacity();
  manager_config.admission_load_limit = 1.5;
  SliceManager manager(manager_config, &system.coordinator(), &system.monitor());

  const auto dashcam = manager.request_slice("acme-dashcam", env::slice1_profile(), -60.0);
  const auto inspect = manager.request_slice("inspect-co", env::slice2_profile(), -40.0);
  ASSERT_TRUE(dashcam.admitted);
  ASSERT_TRUE(inspect.admitted);
  EXPECT_DOUBLE_EQ(system.coordinator().config().u_min[0], -60.0);
  EXPECT_DOUBLE_EQ(system.coordinator().config().u_min[1], -40.0);

  manager.attach_user(*dashcam.slice_id, "310170000000001", "10.0.0.1");
  manager.attach_user(*inspect.slice_id, "310170000000002", "10.0.1.1");
  EXPECT_EQ(system.monitor().slice_of_imsi("310170000000001"), 0u);

  // Run a few periods; the coordinator projects onto the requested SLAs.
  system.run(3);
  EXPECT_TRUE(system.coordinator().sla_satisfied(0));
  EXPECT_TRUE(system.coordinator().sla_satisfied(1));

  // Runtime SLA modification tightens the projection target.
  manager.modify_sla(*inspect.slice_id, -20.0);
  EXPECT_DOUBLE_EQ(system.coordinator().config().u_min[1], -20.0);
  system.run(2);
  // z for slice 1 must respect the new bound by construction.
  double z_total = 0.0;
  for (std::size_t j = 0; j < 2; ++j) z_total += system.coordinator().z(1, j);
  EXPECT_GE(z_total, -20.0 - 1e-9);
}

TEST(SliceLifecycle, OverbookedTenantIsRejectedNotBroken) {
  CoordinatorConfig coordinator_config;
  coordinator_config.slices = 2;
  coordinator_config.ras = 1;
  PerformanceCoordinator coordinator(coordinator_config);
  SliceManagerConfig manager_config;
  manager_config.capacity = env::prototype_capacity();
  manager_config.admission_load_limit = 0.5;
  SliceManager manager(manager_config, &coordinator, nullptr);

  ASSERT_TRUE(manager.request_slice("a", env::slice1_profile(), -50.0).admitted);
  const auto rejected = manager.request_slice("b", env::slice1_profile(), -50.0);
  EXPECT_FALSE(rejected.admitted);
  // The rejected request must not have touched the coordinator's SLAs.
  EXPECT_DOUBLE_EQ(coordinator.config().u_min[1], -50.0);  // still the default
  EXPECT_EQ(manager.active_slices(), 1u);
}

}  // namespace
}  // namespace edgeslice::core
