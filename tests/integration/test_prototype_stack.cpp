// Integration: the environment's service model grounded in the actual
// substrate managers, plus an end-to-end task flow through radio ->
// transport -> compute for one RA (the prototype path of Fig. 4).
#include <gtest/gtest.h>

#include <memory>

#include "core/resource_autonomy.h"
#include "env/environment.h"
#include "env/service_model.h"

namespace edgeslice::core {
namespace {

TEST(PrototypeStack, GridDatasetFromManagerCapacity) {
  Rng rng(1);
  ResourceAutonomy ra(prototype_ra_config(0), rng);
  const auto capacity = ra.capacity();
  env::DirectServiceModel ground_truth(capacity);
  const env::GridDataset grid(env::slice1_profile(), ground_truth, 0.2);
  EXPECT_EQ(grid.samples().size(), 6u * 6u * 6u);
  // Every measured point with full allocation is fast; zero allocation is capped.
  for (const auto& s : grid.samples()) {
    if (s.allocation[0] == 0.0) {
      EXPECT_DOUBLE_EQ(s.service_time, env::kServiceTimeCap);
    } else {
      EXPECT_GT(s.service_time, 0.0);
    }
  }
}

TEST(PrototypeStack, LinearModelEnvTracksDirectEnv) {
  // The paper's simulated environment (linear model over grid data) should
  // behave like the direct pipeline model under identical seeds/actions.
  const auto capacity = env::prototype_capacity();
  const auto direct = std::make_shared<env::DirectServiceModel>(capacity);
  const auto grid =
      std::make_shared<env::GridDataset>(env::slice1_profile(), *direct, 0.1);
  const auto grid2 =
      std::make_shared<env::GridDataset>(env::slice2_profile(), *direct, 0.1);
  (void)grid2;
  const auto linear = std::make_shared<env::LocalLinearServiceModel>(grid);

  // Compare service-time predictions across a sweep (slice 1's profile).
  Rng rng(5);
  double ratio_sum = 0.0;
  int count = 0;
  for (int i = 0; i < 100; ++i) {
    env::Allocation a{rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)};
    const double d = direct->service_time(env::slice1_profile(), a);
    const double l = linear->service_time(env::slice1_profile(), a);
    if (d > 0.0 && d < env::kServiceTimeCap) {
      ratio_sum += l / d;
      ++count;
    }
  }
  ASSERT_GT(count, 50);
  EXPECT_NEAR(ratio_sum / count, 1.0, 0.15);  // close on average
}

TEST(PrototypeStack, TaskFlowThroughAllThreeManagers) {
  Rng rng(2);
  ResourceAutonomy ra(prototype_ra_config(0), rng);
  ra.attach_user("310170000000001", "10.0.0.1", 1, 0);
  ra.attach_user("310170000000002", "10.0.1.1", 2, 1);
  ra.apply({0.7, 0.7, 0.3, 0.3, 0.3, 0.7});

  // One slice-1 task (500x500 frame, YOLO-320).
  const auto app = env::slice1_profile();
  ra.radio().enqueue_bits(1, app.uplink_bits);
  const auto served = ra.radio().run(100, rng);  // 100 ms of TTIs
  EXPECT_NEAR(served[0], app.uplink_bits, 1.0);  // uplink done within 100 ms

  const double transported =
      ra.transport().slice_capacity_bits(0, 0.1);  // 100 ms of link time
  EXPECT_GT(transported, app.uplink_bits);         // 0.7 * 80 Mbps * 0.1 s

  ra.computing().submit(0, compute::Kernel{20000, app.compute_work});
  const auto done = ra.computing().run(0.5, 1e-3);
  EXPECT_NEAR(done[0], app.compute_work, 1e-6);
}

TEST(PrototypeStack, EnvironmentOverManagerCapacityIsStable) {
  Rng rng(3);
  ResourceAutonomy ra(prototype_ra_config(0), rng);
  const auto model = std::make_shared<env::DirectServiceModel>(ra.capacity());
  env::RaEnvironmentConfig config;
  config.arrival_rate = 5.0;
  env::RaEnvironment environment(config,
                                 {env::slice1_profile(), env::slice2_profile()}, model,
                                 env::make_queue_power_perf(), Rng(9));
  // A sensible static allocation keeps queues bounded over a long run.
  const std::vector<double> action{0.7, 0.7, 0.25, 0.25, 0.25, 0.7};
  double max_queue = 0.0;
  for (int t = 0; t < 200; ++t) {
    const auto result = environment.step(action);
    max_queue = std::max(max_queue,
                         result.queue_lengths[0] + result.queue_lengths[1]);
  }
  EXPECT_LT(max_queue, 100.0);
}

}  // namespace
}  // namespace edgeslice::core
