// Integration: the full Alg. 1 loop with trained DDPG agents against TARO.
//
// A scaled-down version of the Fig. 6 experiment: train small agents
// offline, run the coordinated system, and check the qualitative claims —
// EdgeSlice outperforms TARO, the coordinator's ADMM iterates, and SLA
// projection holds.
#include <gtest/gtest.h>

#include <memory>

#include "core/system.h"
#include "core/training.h"
#include "env/service_model.h"
#include "rl/ddpg.h"

namespace edgeslice::core {
namespace {

std::shared_ptr<const env::ServiceModel> shared_model() {
  return std::make_shared<env::DirectServiceModel>(env::prototype_capacity());
}

env::RaEnvironmentConfig env_config() {
  env::RaEnvironmentConfig config;
  config.intervals_per_period = 10;
  config.arrival_rate = 10.0;  // Sec. VII-C
  return config;
}

std::unique_ptr<env::RaEnvironment> make_env(std::uint64_t seed,
                                             bool traffic_in_state = true) {
  auto config = env_config();
  config.include_traffic_in_state = traffic_in_state;
  return std::make_unique<env::RaEnvironment>(
      config, std::vector<env::AppProfile>{env::slice1_profile(), env::slice2_profile()},
      shared_model(), env::make_queue_power_perf(), Rng(seed));
}

std::shared_ptr<rl::Ddpg> make_trained_agent(env::RaEnvironment& environment, Rng& rng,
                                             std::size_t steps) {
  rl::DdpgConfig config;
  config.base.state_dim = environment.state_dim();
  config.base.action_dim = environment.action_dim();
  config.base.hidden = 64;
  config.batch_size = 64;
  config.warmup = 128;
  config.noise_decay = 0.9995;
  config.noise_min = 0.08;
  auto agent = std::make_shared<rl::Ddpg>(config, rng);
  TrainingConfig training;
  training.steps = steps;
  train_agent(*agent, environment, training, rng);
  environment.reset();
  return agent;
}

double run_system(std::vector<std::unique_ptr<env::RaEnvironment>>& environments,
                  std::vector<std::unique_ptr<RaPolicy>>& policies, bool coordinate,
                  std::size_t periods) {
  CoordinatorConfig coordinator;
  coordinator.slices = 2;
  coordinator.ras = environments.size();
  std::vector<env::RaEnvironment*> env_ptrs;
  std::vector<RaPolicy*> policy_ptrs;
  for (auto& e : environments) env_ptrs.push_back(e.get());
  for (auto& p : policies) policy_ptrs.push_back(p.get());
  SystemConfig system_config;
  system_config.use_coordinator = coordinate;
  EdgeSliceSystem system(env_ptrs, policy_ptrs, coordinator, system_config);
  double total = 0.0;
  for (const auto& result : system.run(periods)) total += result.system_performance;
  return total;
}

TEST(EndToEnd, TrainedEdgeSliceBeatsTaro) {
  Rng rng(2024);
  // Train one agent per RA in its own environment copy.
  std::vector<std::unique_ptr<env::RaEnvironment>> train_envs;
  std::vector<std::shared_ptr<rl::Ddpg>> agents;
  for (std::size_t j = 0; j < 2; ++j) {
    train_envs.push_back(make_env(10 + j));
    agents.push_back(make_trained_agent(*train_envs[j], rng, 6000));
  }

  // EdgeSlice run.
  std::vector<std::unique_ptr<env::RaEnvironment>> es_envs;
  std::vector<std::unique_ptr<RaPolicy>> es_policies;
  for (std::size_t j = 0; j < 2; ++j) {
    es_envs.push_back(make_env(500 + j));
    es_policies.push_back(std::make_unique<LearnedPolicy>(agents[j], /*learn=*/false));
  }
  const double edgeslice = run_system(es_envs, es_policies, /*coordinate=*/true, 8);

  // TARO run on identically seeded environments.
  std::vector<std::unique_ptr<env::RaEnvironment>> taro_envs;
  std::vector<std::unique_ptr<RaPolicy>> taro_policies;
  for (std::size_t j = 0; j < 2; ++j) {
    taro_envs.push_back(make_env(500 + j));
    taro_policies.push_back(std::make_unique<TaroPolicy>());
  }
  const double taro = run_system(taro_envs, taro_policies, /*coordinate=*/false, 8);

  EXPECT_GT(edgeslice, taro);  // Fig. 6(a)'s ordering (both totals negative)
}

TEST(EndToEnd, CoordinatorIteratesAndProjectsSla) {
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<RaPolicy>> policies;
  for (std::size_t j = 0; j < 2; ++j) {
    environments.push_back(make_env(900 + j));
    policies.push_back(std::make_unique<EqualSharePolicy>());
  }
  CoordinatorConfig coordinator;
  coordinator.slices = 2;
  coordinator.ras = 2;
  std::vector<env::RaEnvironment*> env_ptrs{environments[0].get(), environments[1].get()};
  std::vector<RaPolicy*> policy_ptrs{policies[0].get(), policies[1].get()};
  EdgeSliceSystem system(env_ptrs, policy_ptrs, coordinator);
  system.run(5);
  EXPECT_EQ(system.coordinator().iterations(), 5u);
  // The z variables always satisfy the SLA half-space by construction.
  EXPECT_TRUE(system.coordinator().sla_satisfied(0));
  EXPECT_TRUE(system.coordinator().sla_satisfied(1));
}

TEST(EndToEnd, MonitorCapturesFullRun) {
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<RaPolicy>> policies;
  for (std::size_t j = 0; j < 2; ++j) {
    environments.push_back(make_env(700 + j));
    policies.push_back(std::make_unique<TaroPolicy>());
  }
  std::vector<env::RaEnvironment*> env_ptrs{environments[0].get(), environments[1].get()};
  std::vector<RaPolicy*> policy_ptrs{policies[0].get(), policies[1].get()};
  CoordinatorConfig coordinator;
  coordinator.slices = 2;
  coordinator.ras = 2;
  EdgeSliceSystem system(env_ptrs, policy_ptrs, coordinator);
  system.run(3);
  EXPECT_EQ(system.monitor().records().size(), 3u * 10u * 2u);
  const auto series = system.monitor().system_performance_series();
  EXPECT_EQ(series.size(), 30u);
  // RC-M reports reproduce the per-period sums.
  const auto report = system.monitor().report(0, 1);
  EXPECT_EQ(report.performance_sums.size(), 2u);
}

}  // namespace
}  // namespace edgeslice::core
