// The ESCK container and every serialized component, round-tripped and
// attacked: corrupted, truncated, and hostile inputs must throw clean
// std::runtime_errors (never UB — these tests also run under the
// sanitizer presets via the "ckpt" label).
#include "ckpt/container.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>

#include "common/binio.h"
#include "common/rng.h"
#include "common/stats.h"
#include "nn/adam.h"
#include "nn/mlp.h"
#include "rl/ddpg.h"
#include "rl/replay_buffer.h"

namespace edgeslice::ckpt {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- Container -------------------------------------------------------------

std::string two_section_image() {
  CheckpointWriter writer("experiment = test\nseed = 7\n");
  writer.add_section(SectionKind::Meta, 0, "hello");
  writer.add_section(SectionKind::Environment, 3, std::string("\x00\x01\xff", 3));
  return writer.bytes();
}

TEST(Container, RoundTripsSectionsAndFingerprint) {
  const auto reader = CheckpointReader::from_bytes(two_section_image());
  EXPECT_EQ(reader.fingerprint(), "experiment = test\nseed = 7\n");
  ASSERT_EQ(reader.sections().size(), 2u);
  EXPECT_EQ(reader.require(SectionKind::Meta), "hello");
  EXPECT_EQ(reader.require(SectionKind::Environment, 3),
            std::string("\x00\x01\xff", 3));
  EXPECT_EQ(reader.find(SectionKind::Policy), nullptr);
  EXPECT_THROW(reader.require(SectionKind::Policy), std::runtime_error);
}

TEST(Container, WriteFilePublishesAtomically) {
  const std::string path = temp_path("esck_container_test.ckpt");
  CheckpointWriter writer("fp\n");
  writer.add_section(SectionKind::Meta, 0, "payload");
  ASSERT_TRUE(writer.write_file(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const auto reader = CheckpointReader::from_file(path);
  EXPECT_EQ(reader.require(SectionKind::Meta), "payload");
  std::filesystem::remove(path);
  EXPECT_THROW(CheckpointReader::from_file(path), std::runtime_error);
}

TEST(Container, RejectsBadMagic) {
  std::string bytes = two_section_image();
  bytes[0] = 'X';
  EXPECT_THROW(CheckpointReader::from_bytes(bytes), std::runtime_error);
}

TEST(Container, RejectsUnsupportedVersion) {
  std::string bytes = two_section_image();
  bytes[4] = static_cast<char>(kCkptFormatVersion + 1);  // u32 LE low byte
  EXPECT_THROW(CheckpointReader::from_bytes(bytes), std::runtime_error);
}

TEST(Container, RejectsHeaderAndPayloadCorruption) {
  const std::string good = two_section_image();
  // A flipped bit in the fingerprint trips the header CRC; one in a
  // payload trips that section's CRC.
  const std::size_t fingerprint_byte = 4 + 4 + 8 + 3;  // inside "experiment..."
  const std::size_t payload_byte = good.size() - 2;    // inside the last payload
  for (const std::size_t at : {fingerprint_byte, payload_byte}) {
    std::string bytes = good;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x40);
    EXPECT_THROW(CheckpointReader::from_bytes(bytes), std::runtime_error)
        << "flipped byte " << at;
  }
}

TEST(Container, RejectsEveryTruncation) {
  const std::string good = two_section_image();
  // Every strict prefix must be rejected — there is no length at which a
  // torn write parses as a valid (shorter) checkpoint.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW(CheckpointReader::from_bytes(good.substr(0, len)),
                 std::runtime_error)
        << "prefix of " << len << " bytes";
  }
}

TEST(Container, RejectsTrailingBytes) {
  EXPECT_THROW(CheckpointReader::from_bytes(two_section_image() + "x"),
               std::runtime_error);
}

TEST(Container, RejectsAbsurdSectionCountBeforeAllocating) {
  // Hand-built hostile header with a VALID CRC but an absurd section
  // count: the cap must fire before any per-section work.
  std::ostringstream out;
  out.write(kCkptMagic, 4);
  write_u32(out, kCkptFormatVersion);
  write_string(out, "fp");
  write_u64(out, 1ull << 60);
  const std::string head = out.str();
  write_u32(out, crc32(head));
  EXPECT_THROW(CheckpointReader::from_bytes(out.str()), std::runtime_error);
}

TEST(Container, RejectsAbsurdPayloadLengthBeforeAllocating) {
  std::ostringstream out;
  out.write(kCkptMagic, 4);
  write_u32(out, kCkptFormatVersion);
  write_string(out, "fp");
  write_u64(out, 1);
  const std::string head = out.str();
  write_u32(out, crc32(head));
  // One section whose declared payload is 1 TiB; no bytes follow.
  write_u32(out, static_cast<std::uint32_t>(SectionKind::Meta));
  write_u32(out, 0);
  write_u64(out, 1ull << 40);
  write_u32(out, 0);
  EXPECT_THROW(CheckpointReader::from_bytes(out.str()), std::runtime_error);
}

// --- Rng streams -----------------------------------------------------------

TEST(RngSerialization, RoundTripsStreamExactly) {
  Rng a(42);
  a.normal();
  a.uniform(0.0, 5.0);
  (void)a.spawn();  // advance the spawn counter too
  Rng b = Rng::deserialize(a.serialize());
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(a.normal(), b.normal()) << "draw " << i;
  }
  // Spawned children continue identically as well.
  Rng ca = a.spawn();
  Rng cb = b.spawn();
  for (int i = 0; i < 50; ++i) ASSERT_EQ(ca.uniform(), cb.uniform());
}

TEST(RngSerialization, RejectsMalformedBlobs) {
  EXPECT_THROW(Rng::deserialize(""), std::runtime_error);
  EXPECT_THROW(Rng::deserialize("not an rng"), std::runtime_error);
}

// --- RunningStat -----------------------------------------------------------

TEST(RunningStatSerialization, RestoreContinuesExactly) {
  RunningStat a;
  Rng rng(3);
  for (int i = 0; i < 37; ++i) a.add(rng.normal(0.0, 4.0));
  RunningStat b;
  b.restore(a.count(), a.mean(), a.m2(), a.min(), a.max());
  for (int i = 0; i < 20; ++i) {
    const double x = rng.uniform(-3.0, 3.0);
    a.add(x);
    b.add(x);
  }
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.m2(), b.m2());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

// --- Adam moments ----------------------------------------------------------

TEST(AdamSerialization, RestoredOptimizerStepsBitIdentically) {
  Rng rng(5);
  nn::Mlp net_a({3, 8, 2}, nn::Activation::LeakyRelu, nn::Activation::Identity, rng);
  nn::Mlp net_b = net_a;  // deep clone
  nn::Adam opt_a;
  nn::Adam opt_b;
  net_a.attach_to(opt_a);
  net_b.attach_to(opt_b);

  const auto train_step = [](nn::Mlp& net, nn::Adam& opt, Rng& data) {
    nn::Matrix x(4, 3);
    for (auto& v : x.data()) v = data.normal();
    net.zero_grad();
    net.forward(x);
    net.backward(nn::Matrix(4, 2, 1.0));
    opt.step();
  };

  Rng data_a(9);
  for (int i = 0; i < 10; ++i) train_step(net_a, opt_a, data_a);

  // Restore A's moments + parameters into B (the exact flow load_checkpoint
  // uses: parameters in place, then restore_state).
  net_b.set_flat_parameters(net_a.flat_parameters());
  opt_b.restore_state(opt_a.export_state());

  // The bias correction depends on t, the update on m/v — one more
  // identical step must produce bit-identical parameters.
  Rng data_b = Rng::deserialize(data_a.serialize());
  train_step(net_a, opt_a, data_a);
  train_step(net_b, opt_b, data_b);
  EXPECT_EQ(net_a.flat_parameters(), net_b.flat_parameters());
}

TEST(AdamSerialization, RestoreRejectsMomentLengthMismatch) {
  Rng rng(6);
  nn::Mlp small({2, 3, 1}, nn::Activation::Relu, nn::Activation::Identity, rng);
  nn::Mlp large({4, 9, 2}, nn::Activation::Relu, nn::Activation::Identity, rng);
  nn::Adam opt_small;
  nn::Adam opt_large;
  small.attach_to(opt_small);
  large.attach_to(opt_large);
  EXPECT_THROW(opt_large.restore_state(opt_small.export_state()),
               std::invalid_argument);
}

// --- Replay buffer ---------------------------------------------------------

rl::Transition make_transition(double tag) {
  rl::Transition t;
  t.state = {tag, tag + 0.5};
  t.action = {tag * 0.1};
  t.reward = -tag;
  t.next_state = {tag + 1.0, tag + 1.5};
  t.done = false;
  return t;
}

TEST(ReplayBufferSerialization, RoundTripsWrapAroundExactly) {
  rl::ReplayBuffer buffer(4);
  for (int i = 0; i < 7; ++i) buffer.push(make_transition(i));  // wrapped
  ASSERT_EQ(buffer.size(), 4u);
  ASSERT_EQ(buffer.next_index(), 3u);

  std::stringstream stream;
  buffer.save_state(stream);
  rl::ReplayBuffer loaded(4);
  loaded.load_state(stream);

  EXPECT_EQ(loaded.size(), buffer.size());
  EXPECT_EQ(loaded.next_index(), buffer.next_index());
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_EQ(loaded.at(i).state, buffer.at(i).state);
    EXPECT_EQ(loaded.at(i).action, buffer.at(i).action);
    EXPECT_EQ(loaded.at(i).reward, buffer.at(i).reward);
    EXPECT_EQ(loaded.at(i).next_state, buffer.at(i).next_state);
    EXPECT_EQ(loaded.at(i).done, buffer.at(i).done);
  }
  // Identical sampling from identical Rng streams.
  Rng rng_a(11);
  Rng rng_b(11);
  const auto batch_a = buffer.sample(3, rng_a);
  const auto batch_b = loaded.sample(3, rng_b);
  EXPECT_EQ(batch_a.states.data(), batch_b.states.data());
  EXPECT_EQ(batch_a.rewards, batch_b.rewards);
}

TEST(ReplayBufferSerialization, RejectsCapacityMismatch) {
  rl::ReplayBuffer buffer(4);
  buffer.push(make_transition(1));
  std::stringstream stream;
  buffer.save_state(stream);
  rl::ReplayBuffer wrong(8);
  EXPECT_THROW(wrong.load_state(stream), std::runtime_error);
}

TEST(ReplayBufferSerialization, RejectsTruncation) {
  rl::ReplayBuffer buffer(4);
  for (int i = 0; i < 3; ++i) buffer.push(make_transition(i));
  std::stringstream stream;
  buffer.save_state(stream);
  std::string raw = stream.str();
  raw.resize(raw.size() / 2);
  std::istringstream truncated(raw);
  rl::ReplayBuffer loaded(4);
  EXPECT_THROW(loaded.load_state(truncated), std::runtime_error);
}

// --- Mlp binary form -------------------------------------------------------

TEST(MlpBinary, RoundTripsBitExactly) {
  Rng rng(13);
  nn::Mlp net({3, 7, 2}, nn::Activation::LeakyRelu, nn::Activation::Sigmoid, rng);
  std::stringstream stream;
  net.save_binary(stream);
  const nn::Mlp loaded = nn::Mlp::load_binary(stream);
  EXPECT_EQ(loaded.layer_sizes(), net.layer_sizes());
  EXPECT_EQ(loaded.flat_parameters(), net.flat_parameters());
}

TEST(MlpBinary, RejectsNonFiniteParameterNamingOffset) {
  Rng rng(14);
  nn::Mlp net({2, 3, 1}, nn::Activation::Relu, nn::Activation::Identity, rng);
  std::stringstream stream;
  net.save_binary(stream);
  std::string raw = stream.str();
  // Overwrite the LAST parameter with a quiet NaN (IEEE-754 LE bytes).
  const unsigned char nan_bytes[8] = {0, 0, 0, 0, 0, 0, 0xf8, 0x7f};
  for (int i = 0; i < 8; ++i) {
    raw[raw.size() - 8 + i] = static_cast<char>(nan_bytes[i]);
  }
  std::istringstream bad(raw);
  try {
    nn::Mlp::load_binary(bad);
    FAIL() << "non-finite parameter accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite parameter"), std::string::npos)
        << e.what();
  }
}

TEST(MlpBinary, RejectsTruncationNamingOffset) {
  Rng rng(15);
  nn::Mlp net({2, 3, 1}, nn::Activation::Relu, nn::Activation::Identity, rng);
  std::stringstream stream;
  net.save_binary(stream);
  std::string raw = stream.str();
  raw.resize(raw.size() - 12);  // mid-parameter
  std::istringstream bad(raw);
  try {
    nn::Mlp::load_binary(bad);
    FAIL() << "truncated parameters accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated parameters"), std::string::npos)
        << e.what();
  }
}

TEST(MlpBinary, RejectsHostileLayerWidthBeforeAllocating) {
  // A header declaring a 2 x 2^40 network must be rejected by the size
  // caps, not die allocating terabytes.
  std::ostringstream out;
  write_u32(out, 2);
  write_u64(out, 2);
  write_u64(out, 1ull << 40);
  write_u8(out, 0);
  std::istringstream bad(out.str());
  EXPECT_THROW(nn::Mlp::load_binary(bad), std::runtime_error);
}

// --- DDPG agent blob -------------------------------------------------------

rl::DdpgConfig small_ddpg_config() {
  rl::DdpgConfig config;
  config.base.state_dim = 4;
  config.base.action_dim = 2;
  config.base.hidden = 16;
  config.replay_capacity = 64;
  config.batch_size = 8;
  config.warmup = 16;
  config.noise_decay = 0.99;
  config.noise_min = 0.05;
  return config;
}

/// Drive `agent` through `steps` interactions fed from `data` (the same
/// stream produces the same inputs, so two agents in the same state stay
/// in lockstep).
void drive(rl::Ddpg& agent, Rng& data, int steps,
           std::vector<std::vector<double>>* actions_out = nullptr) {
  std::vector<double> state(4);
  for (auto& v : state) v = data.uniform(-1.0, 1.0);
  for (int t = 0; t < steps; ++t) {
    const auto action = agent.act(state, /*explore=*/true);
    std::vector<double> next(4);
    for (auto& v : next) v = data.uniform(-1.0, 1.0);
    agent.observe(state, action, data.normal(), next, false);
    if (actions_out != nullptr) actions_out->push_back(action);
    state = next;
  }
}

TEST(DdpgCheckpoint, ResavedBlobIsByteIdentical) {
  Rng rng_a(21);
  rl::Ddpg a(small_ddpg_config(), rng_a);
  Rng data(22);
  drive(a, data, 40);  // past warmup: Adam moments + replay populated
  ASSERT_GT(a.update_count(), 0u);

  std::stringstream blob;
  a.save_checkpoint(blob);

  Rng rng_b(999);  // deliberately different construction stream
  rl::Ddpg b(small_ddpg_config(), rng_b);
  b.load_checkpoint(blob);

  std::stringstream resaved;
  b.save_checkpoint(resaved);
  EXPECT_EQ(blob.str(), resaved.str());
}

TEST(DdpgCheckpoint, RestoredAgentContinuesBitIdentically) {
  Rng rng_a(23);
  rl::Ddpg a(small_ddpg_config(), rng_a);
  Rng data(24);
  drive(a, data, 40);

  std::stringstream blob;
  a.save_checkpoint(blob);
  Rng rng_b(1234);
  rl::Ddpg b(small_ddpg_config(), rng_b);
  b.load_checkpoint(blob);

  // Both agents see the same future inputs (cloned data stream).
  Rng data_b = Rng::deserialize(data.serialize());
  std::vector<std::vector<double>> actions_a;
  std::vector<std::vector<double>> actions_b;
  drive(a, data, 30, &actions_a);
  drive(b, data_b, 30, &actions_b);
  EXPECT_EQ(actions_a, actions_b);  // exploration noise included — bit-exact

  std::stringstream final_a;
  std::stringstream final_b;
  a.save_checkpoint(final_a);
  b.save_checkpoint(final_b);
  EXPECT_EQ(final_a.str(), final_b.str());
}

TEST(DdpgCheckpoint, RejectsHyperparameterMismatch) {
  Rng rng_a(25);
  rl::Ddpg a(small_ddpg_config(), rng_a);
  std::stringstream blob;
  a.save_checkpoint(blob);

  auto wrong = small_ddpg_config();
  wrong.batch_size = 16;  // silently resuming onto a different trajectory
  Rng rng_b(26);
  rl::Ddpg b(wrong, rng_b);
  try {
    b.load_checkpoint(blob);
    FAIL() << "hyperparameter mismatch accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("mismatch"), std::string::npos) << e.what();
  }
}

TEST(DdpgCheckpoint, RejectsArchitectureMismatchWithoutPartialApply) {
  Rng rng_a(27);
  rl::Ddpg a(small_ddpg_config(), rng_a);
  std::stringstream blob;
  a.save_checkpoint(blob);

  auto wrong = small_ddpg_config();
  wrong.base.hidden = 8;
  Rng rng_b(28);
  rl::Ddpg b(wrong, rng_b);
  const std::vector<double> probe{0.1, -0.2, 0.3, -0.4};
  const auto before = b.act(probe, /*explore=*/false);
  EXPECT_THROW(b.load_checkpoint(blob), std::runtime_error);
  // The failed load must not have touched the agent.
  EXPECT_EQ(b.act(probe, /*explore=*/false), before);
}

TEST(DdpgCheckpoint, RejectsTruncatedBlob) {
  Rng rng_a(29);
  rl::Ddpg a(small_ddpg_config(), rng_a);
  Rng data(30);
  drive(a, data, 20);
  std::stringstream blob;
  a.save_checkpoint(blob);
  std::string raw = blob.str();
  raw.resize(raw.size() * 2 / 3);
  std::istringstream truncated(raw);
  Rng rng_b(31);
  rl::Ddpg b(small_ddpg_config(), rng_b);
  EXPECT_THROW(b.load_checkpoint(truncated), std::runtime_error);
}

}  // namespace
}  // namespace edgeslice::ckpt
