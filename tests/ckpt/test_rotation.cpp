// Keep-last-N checkpoint rotation (ctest label: ckpt).
//
// The crash-safety invariant under test: once the first checkpoint has
// been published, NO crash point in the save-then-prune sequence leaves
// zero valid checkpoints on disk. A crash mid-save leaves only a .tmp
// (not a rotation sibling); a torn/corrupt newest file is skipped by
// latest() in favour of the next-newest valid one; a crash mid-prune
// leaves extra files, never fewer.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/container.h"
#include "ckpt/rotation.h"

namespace edgeslice::ckpt {
namespace {

namespace fs = std::filesystem;

class RotationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "esck_rotation_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    base_ = (dir_ / "run.ckpt").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Publish a small but fully valid container as period `p`'s sibling.
  std::string publish(std::size_t period) {
    CheckpointWriter writer("rotation-test");
    writer.add_section(SectionKind::Meta, 0, "period " + std::to_string(period));
    const std::string path = CheckpointRotation(base_, 1).path_for(period);
    EXPECT_TRUE(writer.write_file(path));
    return path;
  }

  void write_garbage(const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    out << "ESCK but not really; truncated hostile bytes";
  }

  fs::path dir_;
  std::string base_;
};

TEST_F(RotationTest, RejectsDegenerateConfig) {
  EXPECT_THROW(CheckpointRotation("", 3), std::invalid_argument);
  EXPECT_THROW(CheckpointRotation(base_, 0), std::invalid_argument);
}

TEST_F(RotationTest, PathNamingAndListOrder) {
  const CheckpointRotation rotation(base_, 2);
  EXPECT_EQ(rotation.path_for(12), base_ + ".p12");
  publish(10);
  publish(2);
  publish(6);
  // Non-sibling files must be ignored: a stale tmp, a non-numeric suffix,
  // an unrelated file.
  write_garbage(base_ + ".p8.tmp");
  write_garbage(base_ + ".pX");
  write_garbage((dir_ / "other.ckpt.p3").string());
  const auto siblings = rotation.list();
  ASSERT_EQ(siblings.size(), 3u);
  EXPECT_EQ(siblings[0].first, 2u);
  EXPECT_EQ(siblings[1].first, 6u);
  EXPECT_EQ(siblings[2].first, 10u);
}

TEST_F(RotationTest, ForeignAndOverflowingSiblingsAreSkippedNotThrown) {
  // Regression: the directory scan used std::stoull on anything matching
  // "<base>.p*", so a foreign sibling with an all-digit-but-huge suffix
  // threw std::out_of_range out of list()/latest()/prune(). Hostile
  // neighbours of every kind must be skipped silently.
  const CheckpointRotation rotation(base_, 2);
  publish(5);
  write_garbage(base_ + ".pbak");                          // backup file
  write_garbage(base_ + ".p12.tmp");                       // torn save
  write_garbage(base_ + ".p99999999999999999999999999");   // > uint64 max
  write_garbage(base_ + ".p-3");                           // signed garbage
  write_garbage(base_ + ".p");                             // empty suffix
  std::vector<std::pair<std::size_t, std::string>> siblings;
  ASSERT_NO_THROW(siblings = rotation.list());
  ASSERT_EQ(siblings.size(), 1u);
  EXPECT_EQ(siblings[0].first, 5u);
  ASSERT_NO_THROW(rotation.prune(5));
  ASSERT_TRUE(rotation.latest().has_value());
  EXPECT_EQ(*rotation.latest(), rotation.path_for(5));
  // The foreign files were skipped, not deleted.
  EXPECT_TRUE(fs::exists(base_ + ".pbak"));
  EXPECT_TRUE(fs::exists(base_ + ".p99999999999999999999999999"));
}

TEST_F(RotationTest, PruneKeepsTheNewestNAndReportsRemovals) {
  const CheckpointRotation rotation(base_, 2);
  for (const std::size_t p : {1u, 2u, 3u, 4u, 5u}) publish(p);
  EXPECT_EQ(rotation.prune(5), 3u);
  const auto siblings = rotation.list();
  ASSERT_EQ(siblings.size(), 2u);
  EXPECT_EQ(siblings[0].first, 4u);
  EXPECT_EQ(siblings[1].first, 5u);
  // Idempotent: nothing more to remove.
  EXPECT_EQ(rotation.prune(5), 0u);
}

TEST_F(RotationTest, PruneNeverDeletesTheJustPublishedFile) {
  // Pathological but possible after crash-recovery interleavings: the
  // just-published period is not the numerically newest sibling. It must
  // survive the prune regardless.
  const CheckpointRotation rotation(base_, 1);
  publish(3);
  publish(9);
  publish(7);
  rotation.prune(7);
  EXPECT_TRUE(fs::exists(rotation.path_for(7)));
  EXPECT_TRUE(rotation.latest().has_value());
}

TEST_F(RotationTest, LatestReturnsNewestValidAndSkipsCorrupt) {
  const CheckpointRotation rotation(base_, 3);
  EXPECT_FALSE(rotation.latest().has_value());
  const std::string p2 = publish(2);
  const std::string p4 = publish(4);
  EXPECT_EQ(rotation.latest(), p4);
  // Torn newest (bad sector, partial rename): fall back, don't fail.
  write_garbage(p4);
  EXPECT_EQ(rotation.latest(), p2);
  // The corrupt file is left in place for post-mortems.
  EXPECT_TRUE(fs::exists(p4));
}

TEST_F(RotationTest, MidRotationCrashNeverLeavesZeroValidCheckpoints) {
  const CheckpointRotation rotation(base_, 2);

  // Crash point A: mid-save of the very next checkpoint. Only a .tmp
  // exists for it; the published history is untouched.
  publish(2);
  write_garbage(rotation.path_for(4) + ".tmp");
  ASSERT_TRUE(rotation.latest().has_value());
  EXPECT_EQ(*rotation.latest(), rotation.path_for(2));

  // Crash point B: published but not yet pruned. Extra files, never
  // fewer — latest() is the new checkpoint, a later prune converges.
  publish(4);
  publish(6);
  publish(8);  // crash happened before prune(6) and prune(8) ran
  ASSERT_TRUE(rotation.latest().has_value());
  EXPECT_EQ(*rotation.latest(), rotation.path_for(8));
  rotation.prune(8);
  EXPECT_EQ(rotation.list().size(), 2u);
  EXPECT_EQ(*rotation.latest(), rotation.path_for(8));

  // Crash point C: the rename itself tore the newest file. Every suffix
  // of the sequence still resolves to SOME valid checkpoint.
  write_garbage(rotation.path_for(8));
  ASSERT_TRUE(rotation.latest().has_value());
  EXPECT_EQ(*rotation.latest(), rotation.path_for(6));
}

}  // namespace
}  // namespace edgeslice::ckpt
