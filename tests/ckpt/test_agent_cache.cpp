// The content-addressed agent cache: fingerprint-addressed entries,
// byte-for-byte fingerprint verification (digest collisions and renamed
// files must not load), and corruption safety.
#include "ckpt/agent_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/rng.h"

namespace edgeslice::ckpt {
namespace {

class AgentCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("esck_agent_cache_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

nn::Mlp make_policy(std::uint64_t seed) {
  Rng rng(seed);
  return nn::Mlp({3, 8, 2}, nn::Activation::LeakyRelu, nn::Activation::Sigmoid, rng);
}

TEST_F(AgentCacheTest, DigestIsStableAndHex) {
  const std::string digest = fingerprint_digest("algorithm = DDPG\nseed = 1\n");
  EXPECT_EQ(digest.size(), 16u);
  EXPECT_EQ(digest, fingerprint_digest("algorithm = DDPG\nseed = 1\n"));
  EXPECT_NE(digest, fingerprint_digest("algorithm = DDPG\nseed = 2\n"));
}

TEST_F(AgentCacheTest, StoreThenLoadRoundTrips) {
  const std::string fingerprint = "algorithm = DDPG\nseed = 1\n";
  const nn::Mlp policy = make_policy(5);
  ASSERT_TRUE(store_policy(dir_, fingerprint, policy));
  EXPECT_TRUE(std::filesystem::exists(cache_entry_path(dir_, fingerprint)));

  const auto loaded = load_policy(dir_, fingerprint);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->layer_sizes(), policy.layer_sizes());
  EXPECT_EQ(loaded->flat_parameters(), policy.flat_parameters());
}

TEST_F(AgentCacheTest, MissingEntryIsNullopt) {
  EXPECT_FALSE(load_policy(dir_, "algorithm = DDPG\nseed = 9\n").has_value());
}

TEST_F(AgentCacheTest, RenamedEntryIsRejectedNotMisloaded) {
  // Store under one fingerprint, then move the file onto another
  // fingerprint's address: the stored fingerprint no longer matches the
  // requested one, which is exactly what a digest collision would look
  // like — it must throw, never silently return the wrong policy.
  const std::string fp_a = "algorithm = DDPG\nseed = 1\n";
  const std::string fp_b = "algorithm = DDPG\nseed = 2\n";
  ASSERT_TRUE(store_policy(dir_, fp_a, make_policy(5)));
  std::filesystem::rename(cache_entry_path(dir_, fp_a), cache_entry_path(dir_, fp_b));
  EXPECT_THROW(load_policy(dir_, fp_b), std::runtime_error);
}

TEST_F(AgentCacheTest, CorruptedEntryThrowsCleanly) {
  const std::string fingerprint = "algorithm = DDPG\nseed = 3\n";
  ASSERT_TRUE(store_policy(dir_, fingerprint, make_policy(7)));
  const std::string path = cache_entry_path(dir_, fingerprint);
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(-4, std::ios::end);  // corrupt the policy payload tail
  file.put('\x5a');
  file.close();
  EXPECT_THROW(load_policy(dir_, fingerprint), std::runtime_error);
}

TEST_F(AgentCacheTest, GarbageFileThrowsCleanly) {
  const std::string fingerprint = "algorithm = DDPG\nseed = 4\n";
  std::filesystem::create_directories(dir_);
  std::ofstream out(cache_entry_path(dir_, fingerprint), std::ios::binary);
  out << "this is not an ESCK container";
  out.close();
  EXPECT_THROW(load_policy(dir_, fingerprint), std::runtime_error);
}

}  // namespace
}  // namespace edgeslice::ckpt
