// The headline contract of the checkpoint subsystem: resuming from a
// mid-run checkpoint is BIT-IDENTICAL to the uninterrupted run — for
// offline training (at 1/2/4 threads) and for the online system loop
// under an active FaultPlan.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "core/policies.h"
#include "core/system.h"
#include "core/training.h"
#include "env/service_model.h"
#include "rl/ddpg.h"
#include "rl/sac.h"

namespace edgeslice {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- Training resume -------------------------------------------------------

std::unique_ptr<env::RaEnvironment> make_env(std::uint64_t seed) {
  const auto model =
      std::make_shared<env::DirectServiceModel>(env::prototype_capacity());
  env::RaEnvironmentConfig config;
  config.intervals_per_period = 10;
  return std::make_unique<env::RaEnvironment>(
      config, std::vector<env::AppProfile>{env::slice1_profile(), env::slice2_profile()},
      model, env::make_queue_power_perf(), Rng(seed));
}

std::unique_ptr<rl::Ddpg> make_ddpg(const env::RaEnvironment& environment,
                                    std::uint64_t seed) {
  rl::DdpgConfig config;
  config.base.state_dim = environment.state_dim();
  config.base.action_dim = environment.action_dim();
  config.base.hidden = 16;
  config.replay_capacity = 2048;
  config.batch_size = 16;
  config.warmup = 32;
  config.noise_decay = 0.999;
  config.noise_min = 0.08;
  Rng rng(seed);
  return std::make_unique<rl::Ddpg>(config, rng);
}

/// Everything one train_agents batch needs, reconstructible from scratch
/// so run A (uninterrupted), run B (checkpointing), and run C (resumed)
/// start from identical state.
struct JobSet {
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<rl::Ddpg>> agents;
  std::vector<core::TrainingJob> jobs;
};

JobSet make_jobs(const core::TrainingConfig& base,
                 const std::vector<std::string>& paths) {
  JobSet set;
  Rng parent(77);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    set.environments.push_back(make_env(100 + i));
    set.agents.push_back(make_ddpg(*set.environments[i], 500 + i));
  }
  for (std::size_t i = 0; i < paths.size(); ++i) {
    core::TrainingJob job;
    job.agent = set.agents[i].get();
    job.environment = set.environments[i].get();
    job.config = base;
    job.config.checkpoint_path = paths[i];
    job.rng = parent.spawn();
    set.jobs.push_back(std::move(job));
  }
  return set;
}

std::vector<std::string> final_agent_blobs(const JobSet& set) {
  std::vector<std::string> blobs;
  for (const auto& agent : set.agents) {
    std::stringstream out;
    agent->save_checkpoint(out);
    blobs.push_back(out.str());
  }
  return blobs;
}

class TrainingResume : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TrainingResume, BitIdenticalToUninterruptedRun) {
  const std::size_t threads = GetParam();
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  const std::vector<std::string> paths{
      temp_path("esck_resume_t" + std::to_string(threads) + "_a.ckpt"),
      temp_path("esck_resume_t" + std::to_string(threads) + "_b.ckpt")};
  for (const auto& p : paths) std::filesystem::remove(p);

  core::TrainingConfig base;
  base.steps = 600;

  // Run A: uninterrupted, no checkpointing.
  JobSet run_a = make_jobs(base, paths);
  for (auto& job : run_a.jobs) job.config.checkpoint_path.clear();
  const auto results_a = core::train_agents(run_a.jobs, pool.get());
  const auto blobs_a = final_agent_blobs(run_a);

  // Run B: same run with mid-run checkpointing on. Saving is
  // observation-only, so the final state must match run A exactly.
  core::TrainingConfig with_ckpt = base;
  with_ckpt.checkpoint_every = 300;
  JobSet run_b = make_jobs(with_ckpt, paths);
  const auto results_b = core::train_agents(run_b.jobs, pool.get());
  EXPECT_EQ(final_agent_blobs(run_b), blobs_a);
  for (const auto& p : paths) ASSERT_TRUE(std::filesystem::exists(p));

  // Run C: freshly constructed jobs resume from the step-300 checkpoints
  // and run the remaining 300 steps — the crash-and-restart scenario.
  core::TrainingConfig resumed = with_ckpt;
  resumed.resume = true;
  JobSet run_c = make_jobs(resumed, paths);
  const auto results_c = core::train_agents(run_c.jobs, pool.get());
  EXPECT_EQ(final_agent_blobs(run_c), blobs_a);

  ASSERT_EQ(results_c.size(), results_a.size());
  for (std::size_t i = 0; i < results_a.size(); ++i) {
    EXPECT_EQ(results_c[i].reward_history, results_a[i].reward_history) << "job " << i;
    EXPECT_EQ(results_c[i].final_mean_reward, results_a[i].final_mean_reward);
    EXPECT_EQ(results_b[i].reward_history, results_a[i].reward_history);
  }
  for (const auto& p : paths) std::filesystem::remove(p);
}

INSTANTIATE_TEST_SUITE_P(Threads, TrainingResume, ::testing::Values(1u, 2u, 4u),
                         [](const auto& suite_info) {
                           return "threads" + std::to_string(suite_info.param);
                         });

TEST(TrainingResumeEdge, MissingCheckpointStartsFresh) {
  const std::string path = temp_path("esck_resume_missing.ckpt");
  std::filesystem::remove(path);

  auto env_a = make_env(1);
  auto agent_a = make_ddpg(*env_a, 2);
  Rng rng_a(3);
  core::TrainingConfig plain;
  plain.steps = 200;
  core::train_agent(*agent_a, *env_a, plain, rng_a);

  auto env_b = make_env(1);
  auto agent_b = make_ddpg(*env_b, 2);
  Rng rng_b(3);
  core::TrainingConfig resume = plain;
  resume.resume = true;
  resume.checkpoint_path = path;  // does not exist: crash-and-rerun ergonomics
  core::train_agent(*agent_b, *env_b, resume, rng_b);

  std::stringstream blob_a;
  std::stringstream blob_b;
  agent_a->save_checkpoint(blob_a);
  agent_b->save_checkpoint(blob_b);
  EXPECT_EQ(blob_a.str(), blob_b.str());
}

TEST(TrainingResumeEdge, ResumeBeyondRequestedStepsThrows) {
  const std::string path = temp_path("esck_resume_beyond.ckpt");
  std::filesystem::remove(path);
  auto environment = make_env(4);
  auto agent = make_ddpg(*environment, 5);
  Rng rng(6);
  core::TrainingConfig config;
  config.steps = 400;
  config.checkpoint_every = 300;
  config.checkpoint_path = path;
  core::train_agent(*agent, *environment, config, rng);
  ASSERT_TRUE(std::filesystem::exists(path));

  auto env_b = make_env(4);
  auto agent_b = make_ddpg(*env_b, 5);
  Rng rng_b(6);
  core::TrainingConfig shorter = config;
  shorter.resume = true;
  shorter.steps = 200;  // checkpoint is at step 300
  EXPECT_THROW(core::train_agent(*agent_b, *env_b, shorter, rng_b),
               std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TrainingResumeEdge, NonDdpgAgentRejectsCheckpointing) {
  auto environment = make_env(7);
  rl::SacConfig config;
  config.base.state_dim = environment->state_dim();
  config.base.action_dim = environment->action_dim();
  config.base.hidden = 16;
  Rng ctor(8);
  rl::Sac agent(config, ctor);
  Rng rng(9);
  core::TrainingConfig training;
  training.steps = 50;
  training.checkpoint_every = 10;
  training.checkpoint_path = temp_path("esck_sac.ckpt");
  EXPECT_THROW(core::train_agent(agent, *environment, training, rng),
               std::invalid_argument);
}

TEST(TrainingResumeEdge, SharedCheckpointPathAcrossJobsThrows) {
  const std::string shared = temp_path("esck_shared.ckpt");
  core::TrainingConfig config;
  config.steps = 50;
  config.checkpoint_every = 10;
  JobSet set = make_jobs(config, {shared, shared});
  EXPECT_THROW(core::train_agents(set.jobs, nullptr), std::invalid_argument);
}

TEST(TrainingResumeEdge, FingerprintMismatchRejectsForeignCheckpoint) {
  const std::string path = temp_path("esck_foreign.ckpt");
  std::filesystem::remove(path);
  auto environment = make_env(10);
  auto agent = make_ddpg(*environment, 11);
  Rng rng(12);
  core::TrainingConfig config;
  config.steps = 400;
  config.checkpoint_every = 300;
  config.checkpoint_path = path;
  core::train_agent(*agent, *environment, config, rng);

  auto env_b = make_env(10);
  auto agent_b = make_ddpg(*env_b, 11);
  Rng rng_b(12);
  core::TrainingConfig different = config;
  different.resume = true;
  different.coordination_low = -40.0;  // different training distribution
  EXPECT_THROW(core::train_agent(*agent_b, *env_b, different, rng_b),
               std::runtime_error);
  std::filesystem::remove(path);
}

// --- System resume under an active FaultPlan -------------------------------

FaultPlan chaos_plan() {
  FaultPlan plan;
  plan.seed = 13;
  plan.rates.rcm_drop = 0.15;
  plan.rates.rcl_drop = 0.10;
  plan.rates.ra_crash = 0.05;
  plan.rates.ra_crash_periods = 2;
  return plan;
}

/// Owns everything an EdgeSliceSystem references; heap members keep every
/// pointer stable regardless of how the rig itself moves.
struct SystemRig {
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<core::RaPolicy>> policies;
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<core::EdgeSliceSystem> system;
};

SystemRig make_system(std::size_t ras, ThreadPool* pool) {
  SystemRig rig;
  const auto model =
      std::make_shared<env::DirectServiceModel>(env::prototype_capacity());
  env::RaEnvironmentConfig config;
  config.intervals_per_period = 10;
  const std::vector<env::AppProfile> profiles{env::slice1_profile(),
                                              env::slice2_profile()};
  for (std::size_t j = 0; j < ras; ++j) {
    rig.environments.push_back(std::make_unique<env::RaEnvironment>(
        config, profiles, model, env::make_queue_power_perf(), Rng(900 + j)));
    rig.policies.push_back(std::make_unique<core::TaroPolicy>());
  }
  rig.injector = std::make_unique<FaultInjector>(FaultInjector{chaos_plan()});

  core::CoordinatorConfig coordinator;
  coordinator.slices = 2;
  coordinator.ras = ras;
  core::SystemConfig system_config;
  system_config.faults = rig.injector.get();
  system_config.pool = pool;

  std::vector<env::RaEnvironment*> env_ptrs;
  std::vector<core::RaPolicy*> policy_ptrs;
  for (auto& e : rig.environments) env_ptrs.push_back(e.get());
  for (auto& p : rig.policies) policy_ptrs.push_back(p.get());
  rig.system = std::make_unique<core::EdgeSliceSystem>(env_ptrs, policy_ptrs,
                                                       coordinator, system_config);
  return rig;
}

void expect_periods_equal(const core::PeriodResult& a, const core::PeriodResult& b,
                          std::size_t period) {
  EXPECT_EQ(a.system_performance, b.system_performance) << "period " << period;
  EXPECT_EQ(a.performance_sums.data(), b.performance_sums.data())
      << "period " << period;
  EXPECT_EQ(a.reports_carried, b.reports_carried) << "period " << period;
  EXPECT_EQ(a.columns_frozen, b.columns_frozen) << "period " << period;
  EXPECT_EQ(a.crashed_ras, b.crashed_ras) << "period " << period;
  EXPECT_EQ(a.rcl_losses, b.rcl_losses) << "period " << period;
}

class SystemResume : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SystemResume, BitIdenticalUnderFaultPlan) {
  const std::size_t threads = GetParam();
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  const std::size_t ras = 3;
  const std::size_t periods = 8;
  const std::size_t cut = 4;
  const std::string path =
      temp_path("esck_system_resume_t" + std::to_string(threads) + ".ckpt");
  std::filesystem::remove(path);

  // Run A: uninterrupted.
  SystemRig run_a = make_system(ras, pool.get());
  std::vector<core::PeriodResult> results_a;
  for (std::size_t p = 0; p < periods; ++p) {
    results_a.push_back(run_a.system->run_period());
  }

  // Run B: identical start, checkpoint at the period-`cut` boundary.
  SystemRig run_b = make_system(ras, pool.get());
  for (std::size_t p = 0; p < cut; ++p) {
    expect_periods_equal(run_b.system->run_period(), results_a[p], p);
  }
  ASSERT_TRUE(run_b.system->save_checkpoint(path));

  // Run C: a FRESH process image restores the checkpoint and continues.
  // The fault injector is a pure function of (plan seed, period, RA), so
  // the restored period counter alone re-aligns the fault sequence.
  SystemRig run_c = make_system(ras, pool.get());
  run_c.system->load_checkpoint(path);
  EXPECT_EQ(run_c.system->period_count(), cut);
  for (std::size_t p = cut; p < periods; ++p) {
    expect_periods_equal(run_c.system->run_period(), results_a[p], p);
  }

  // And the end states are byte-identical checkpoints.
  const std::string path_a = path + ".final_a";
  const std::string path_c = path + ".final_c";
  ASSERT_TRUE(run_a.system->save_checkpoint(path_a));
  ASSERT_TRUE(run_c.system->save_checkpoint(path_c));
  std::ifstream file_a(path_a, std::ios::binary);
  std::ifstream file_c(path_c, std::ios::binary);
  std::stringstream bytes_a;
  std::stringstream bytes_c;
  bytes_a << file_a.rdbuf();
  bytes_c << file_c.rdbuf();
  EXPECT_EQ(bytes_a.str(), bytes_c.str());
  for (const auto& p : {path, path_a, path_c}) std::filesystem::remove(p);
}

INSTANTIATE_TEST_SUITE_P(Threads, SystemResume, ::testing::Values(1u, 2u, 4u),
                         [](const auto& suite_info) {
                           return "threads" + std::to_string(suite_info.param);
                         });

TEST(SystemResumeEdge, RejectsCheckpointFromDifferentShape) {
  const std::string path = temp_path("esck_system_shape.ckpt");
  std::filesystem::remove(path);
  SystemRig two = make_system(2, nullptr);
  two.system->run_period();
  ASSERT_TRUE(two.system->save_checkpoint(path));

  SystemRig three = make_system(3, nullptr);
  EXPECT_THROW(three.system->load_checkpoint(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace edgeslice
