// ESFR wire-frame codec and deadline-bounded fd I/O (ctest label: ipc).
//
// The contract under test (FORMATS.md "ESFR wire frame"): both CRC
// levels and strict seq monotonicity are enforced before a frame is
// surfaced, corruption tears the connection down instead of being parsed
// past, and the fd helpers survive partial transfers, full socket
// buffers (bounded backoff, then a Deadline verdict) and dead peers
// (Closed, never SIGPIPE).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/binio.h"
#include "ipc/event_loop.h"
#include "ipc/frame.h"
#include "ipc/wire.h"

namespace edgeslice::ipc {
namespace {

Frame make_frame(FrameType type, std::uint64_t seq, std::string payload,
                 std::uint32_t ra = kConnectionScope) {
  Frame frame;
  frame.type = type;
  frame.ra = ra;
  frame.seq = seq;
  frame.payload = std::move(payload);
  return frame;
}

/// A connected socketpair that closes whatever the test leaves open.
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  void close_reader() {
    ::close(fds[1]);
    fds[1] = -1;
  }
};

// ---- codec ----------------------------------------------------------------

TEST(FrameCodec, RoundTripPreservesEveryField) {
  const Frame sent = make_frame(FrameType::Trace, 7, "trace payload bytes", 3);
  const std::string bytes = encode_frame(sent);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + sent.payload.size());

  Frame got;
  std::uint64_t payload_len = 0;
  decode_frame_header(bytes.data(), got, payload_len);
  EXPECT_EQ(got.type, FrameType::Trace);
  EXPECT_EQ(got.ra, 3u);
  EXPECT_EQ(got.seq, 7u);
  EXPECT_EQ(payload_len, sent.payload.size());
  // Payload CRC travels in the header; the body verifies against it.
  const std::string body = bytes.substr(kFrameHeaderSize);
  EXPECT_NO_THROW(verify_frame_payload(crc32(sent.payload), body));
}

TEST(FrameCodec, EmptyPayloadRoundTrips) {
  const std::string bytes = encode_frame(make_frame(FrameType::Ping, 0, ""));
  ASSERT_EQ(bytes.size(), kFrameHeaderSize);
  Frame got;
  std::uint64_t payload_len = 1;
  decode_frame_header(bytes.data(), got, payload_len);
  EXPECT_EQ(payload_len, 0u);
}

TEST(FrameCodec, HeaderCorruptionIsDetected) {
  const std::string clean = encode_frame(make_frame(FrameType::Hello, 0, "x"));
  // Every header byte is covered by either the magic check or header_crc.
  for (std::size_t i = 0; i < kFrameHeaderSize; ++i) {
    std::string bytes = clean;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x40);
    Frame got;
    std::uint64_t payload_len = 0;
    EXPECT_THROW(decode_frame_header(bytes.data(), got, payload_len),
                 std::runtime_error)
        << "flip at offset " << i;
  }
}

TEST(FrameCodec, PayloadCorruptionIsDetected) {
  const std::string payload = "the payload under protection";
  std::string tampered = payload;
  tampered[5] = static_cast<char>(tampered[5] ^ 1);
  EXPECT_THROW(verify_frame_payload(crc32(payload), tampered), std::runtime_error);
  EXPECT_NO_THROW(verify_frame_payload(crc32(payload), payload));
}

TEST(FrameCodec, HostilePayloadLengthIsRejectedBeforeAllocation) {
  // Craft a header that passes both magic and CRC but declares an absurd
  // payload length: patch the length field, then recompute header_crc the
  // way a hostile (or differently-versioned) peer could.
  std::string bytes = encode_frame(make_frame(FrameType::Ping, 0, ""));
  const std::uint64_t huge = kMaxFramePayload + 1;
  std::memcpy(&bytes[24], &huge, sizeof(huge));  // payload_len, little-endian host
  const std::uint32_t header_crc = crc32(bytes.data(), 36);
  std::memcpy(&bytes[36], &header_crc, sizeof(header_crc));
  Frame got;
  std::uint64_t payload_len = 0;
  EXPECT_THROW(decode_frame_header(bytes.data(), got, payload_len),
               std::runtime_error);
}

// ---- assembler ------------------------------------------------------------

TEST(FrameAssembler, ReassemblesByteByByteDelivery) {
  const Frame first = make_frame(FrameType::RunPeriod, 0, "first body", 1);
  const Frame second = make_frame(FrameType::Coordination, 1, "", 2);
  const std::string stream = encode_frame(first) + encode_frame(second);

  FrameAssembler assembler;
  std::vector<Frame> out;
  for (char byte : stream) {
    for (Frame& frame : assembler.feed(&byte, 1)) out.push_back(std::move(frame));
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].type, FrameType::RunPeriod);
  EXPECT_EQ(out[0].payload, "first body");
  EXPECT_EQ(out[1].type, FrameType::Coordination);
  EXPECT_EQ(out[1].seq, 1u);
  EXPECT_EQ(assembler.pending_bytes(), 0u);
}

TEST(FrameAssembler, SequenceBreakTearsTheConnectionDown) {
  FrameAssembler assembler;
  const std::string ok = encode_frame(make_frame(FrameType::Ping, 0, ""));
  EXPECT_EQ(assembler.feed(ok.data(), ok.size()).size(), 1u);
  // seq 2 after seq 0: a frame was lost; parsing past it would desync
  // every later payload boundary.
  const std::string skipped = encode_frame(make_frame(FrameType::Ping, 2, ""));
  EXPECT_THROW(assembler.feed(skipped.data(), skipped.size()), std::runtime_error);
}

TEST(FrameAssembler, CorruptBytesMidStreamThrow) {
  FrameAssembler assembler;
  std::string bytes = encode_frame(make_frame(FrameType::Ping, 0, "abc"));
  bytes[kFrameHeaderSize + 1] ^= 0x10;  // payload flip
  EXPECT_THROW(assembler.feed(bytes.data(), bytes.size()), std::runtime_error);
}

// ---- fd I/O ---------------------------------------------------------------

TEST(FrameIo, SocketRoundTrip) {
  SocketPair pair;
  const Frame sent = make_frame(FrameType::EnvState, 4, std::string(100000, 'e'), 9);
  ASSERT_EQ(write_frame(pair.fds[0], sent), IoResult::Ok);
  Frame got;
  ASSERT_EQ(read_frame(pair.fds[1], got, 2000), IoResult::Ok);
  EXPECT_EQ(got.type, sent.type);
  EXPECT_EQ(got.ra, sent.ra);
  EXPECT_EQ(got.seq, sent.seq);
  EXPECT_EQ(got.payload, sent.payload);
}

TEST(FrameIo, ReadDeadlineOnSilentPeer) {
  SocketPair pair;
  Frame got;
  EXPECT_EQ(read_frame(pair.fds[1], got, 50), IoResult::Deadline);
}

TEST(FrameIo, ReadClosedOnEof) {
  SocketPair pair;
  ::close(pair.fds[0]);
  pair.fds[0] = -1;
  Frame got;
  EXPECT_EQ(read_frame(pair.fds[1], got, 1000), IoResult::Closed);
}

TEST(FrameIo, TruncatedFrameSurfacesAsClosed) {
  SocketPair pair;
  const std::string bytes =
      encode_frame(make_frame(FrameType::Restore, 0, "half of this never arrives"));
  // Header + a sliver of payload, then the peer dies.
  ASSERT_EQ(::write(pair.fds[0], bytes.data(), kFrameHeaderSize + 4),
            static_cast<ssize_t>(kFrameHeaderSize + 4));
  ::close(pair.fds[0]);
  pair.fds[0] = -1;
  Frame got;
  EXPECT_EQ(read_frame(pair.fds[1], got, 1000), IoResult::Closed);
}

TEST(FrameIo, WriteBacksOffThenReportsDeadlineWhenPeerNeverDrains) {
  SocketPair pair;
  const int small = 4096;
  ASSERT_EQ(::setsockopt(pair.fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small)), 0);
  // Non-blocking, as the supervisor's sockets are: a full buffer must
  // surface as EAGAIN + backoff, not a blocked send().
  ASSERT_EQ(::fcntl(pair.fds[0], F_SETFL,
                    ::fcntl(pair.fds[0], F_GETFL, 0) | O_NONBLOCK), 0);
  SendOptions options;
  options.deadline_ms = 200;
  options.max_attempts = 3;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 8;
  // Nobody reads fds[1]: the buffers fill, the send path polls with
  // bounded backoff, and the verdict is Deadline — not a hang, not a
  // partial silent success.
  const Frame big = make_frame(FrameType::EnvState, 0, std::string(1 << 20, 'b'));
  IoResult last = IoResult::Ok;
  for (std::uint64_t seq = 0; seq < 64 && last == IoResult::Ok; ++seq) {
    Frame frame = big;
    frame.seq = seq;
    last = write_frame(pair.fds[0], frame, options);
  }
  EXPECT_EQ(last, IoResult::Deadline);
}

TEST(FrameIo, WriteToDeadPeerIsClosedNotSigpipe) {
  SocketPair pair;
  pair.close_reader();
  // Two writes: the first may succeed into the kernel buffer of a
  // half-dead socket; the second must observe EPIPE. Either way the
  // process must survive (MSG_NOSIGNAL) — the test failing by signal IS
  // the regression.
  const Frame frame = make_frame(FrameType::Ping, 0, std::string(1 << 16, 'p'));
  IoResult result = write_frame(pair.fds[0], frame);
  if (result == IoResult::Ok) {
    Frame second = frame;
    second.seq = 1;
    result = write_frame(pair.fds[0], second);
  }
  EXPECT_EQ(result, IoResult::Closed);
}

// ---- payload codecs -------------------------------------------------------

TEST(WireCodec, RunPeriodDirectivesRoundTrip) {
  RunPeriodPayload payload;
  payload.period = 12;
  payload.ras = {1, 3};
  core::RaPeriodDirective run;
  run.run = true;
  run.has_derate = true;
  run.derate = {0.5, 1.0, 0.25};
  core::RaPeriodDirective skip;
  skip.run = false;
  skip.stall_ms = 40;
  skip.abort_run = true;
  payload.directives = {run, skip};

  const RunPeriodPayload got = decode_run_period(encode_run_period(payload));
  EXPECT_EQ(got.period, 12u);
  EXPECT_EQ(got.ras, payload.ras);
  ASSERT_EQ(got.directives.size(), 2u);
  EXPECT_TRUE(got.directives[0].run);
  EXPECT_TRUE(got.directives[0].has_derate);
  EXPECT_EQ(got.directives[0].derate, run.derate);
  EXPECT_FALSE(got.directives[1].run);
  EXPECT_EQ(got.directives[1].stall_ms, 40u);
  EXPECT_TRUE(got.directives[1].abort_run);
  // The supervisor-side physical action never crosses the wire.
  EXPECT_EQ(got.directives[1].fault, ProcessFaultKind::None);
}

TEST(WireCodec, TraceRoundTripIsExact) {
  TracePayload payload;
  payload.period = 3;
  payload.trace.ran = true;
  env::StepResult step;
  step.state = {0.125, -2.5};
  step.next_state = {1.0, 3.0};
  step.reward = -17.25;
  step.performance = {-8.5, -0.25};
  step.queue_lengths = {4.0, 0.0};
  step.service_rates = {2.5, 3.5};
  step.constraint_violation = 0.75;
  payload.trace.steps = {step};
  payload.trace.actions = {{0.1, 0.9, 0.4}};

  const TracePayload got = decode_trace(encode_trace(payload));
  EXPECT_EQ(got.period, 3u);
  ASSERT_TRUE(got.trace.ran);
  ASSERT_EQ(got.trace.steps.size(), 1u);
  // Doubles as bit patterns: equality must be exact, not approximate.
  EXPECT_EQ(got.trace.steps[0].state, step.state);
  EXPECT_EQ(got.trace.steps[0].next_state, step.next_state);
  EXPECT_EQ(got.trace.steps[0].reward, step.reward);
  EXPECT_EQ(got.trace.steps[0].performance, step.performance);
  EXPECT_EQ(got.trace.steps[0].queue_lengths, step.queue_lengths);
  EXPECT_EQ(got.trace.steps[0].service_rates, step.service_rates);
  EXPECT_EQ(got.trace.steps[0].constraint_violation, step.constraint_violation);
  EXPECT_EQ(got.trace.actions, payload.trace.actions);
}

TEST(WireCodec, HelloAndCoordinationRoundTrip) {
  HelloPayload hello;
  hello.worker_index = 2;
  hello.hosted_ras = {2, 5, 8};
  const HelloPayload hello_got = decode_hello(encode_hello(hello));
  EXPECT_EQ(hello_got.worker_index, 2u);
  EXPECT_EQ(hello_got.hosted_ras, hello.hosted_ras);

  CoordinationPayload coordination;
  coordination.period = 9;
  coordination.z_minus_y = {-0.5, 0.0, 12.25};
  const CoordinationPayload coordination_got =
      decode_coordination(encode_coordination(coordination));
  EXPECT_EQ(coordination_got.period, 9u);
  EXPECT_EQ(coordination_got.z_minus_y, coordination.z_minus_y);

  EXPECT_EQ(decode_u64(encode_u64(0xDEADBEEFull), "test"), 0xDEADBEEFull);
  EXPECT_THROW(decode_u64("abc", "test"), std::runtime_error);
}

TEST(WireCodec, TruncatedPayloadsThrowInsteadOfMisparse) {
  RunPeriodPayload payload;
  payload.period = 1;
  payload.ras = {0};
  payload.directives = {core::RaPeriodDirective{}};
  const std::string bytes = encode_run_period(payload);
  EXPECT_THROW(decode_run_period(bytes.substr(0, bytes.size() / 2)),
               std::runtime_error);
  const std::string hello = encode_hello(HelloPayload{1, {1, 2}});
  EXPECT_THROW(decode_hello(hello.substr(0, hello.size() - 1)), std::runtime_error);
}

}  // namespace
}  // namespace edgeslice::ipc
