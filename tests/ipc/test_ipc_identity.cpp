// Bit-identity of the multi-process control plane (ctest label: ipc).
//
// The acceptance contract: run_period trajectories are byte-identical
// whether the RAs live in this process (workers = 0) or in 1, 2 or 4
// supervised worker processes behind the ESFR wire protocol — across
// seeds, policies, and a fault plan that physically SIGKILLs a worker
// and half-closes a socket mid-run. Traces cross the wire as exact
// IEEE-754 bit patterns and the (t, j)-ordered reduction is unchanged,
// so every float must match with ==, not with a tolerance. Checkpoints
// taken through the transport (Snapshot frames) must be byte-identical
// to in-process ones.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "core/policies.h"
#include "core/system.h"
#include "env/service_model.h"
#include "ipc/supervisor.h"
#include "rl/frozen.h"

namespace edgeslice::ipc {
namespace {

constexpr std::size_t kRas = 4;
constexpr std::size_t kPeriods = 4;

std::unique_ptr<env::RaEnvironment> make_env(Rng rng) {
  env::RaEnvironmentConfig config;  // 2 slices, T = 10
  return std::make_unique<env::RaEnvironment>(
      config,
      std::vector<env::AppProfile>{env::slice1_profile(), env::slice2_profile()},
      std::make_shared<env::DirectServiceModel>(env::prototype_capacity()),
      env::make_queue_power_perf(), rng);
}

struct SystemRun {
  std::vector<core::PeriodResult> periods;
  std::vector<double> series;
  std::vector<core::IntervalRecord> records;
  std::string checkpoint_bytes;
};

/// One full evaluation run at `workers` worker processes (0 = in-process,
/// the reference). When `checkpoint_path` is set, a checkpoint is saved
/// after the last period and its bytes returned for comparison.
SystemRun run_system(std::uint64_t seed, std::size_t workers,
                     const FaultInjector* faults, std::shared_ptr<rl::Agent> agent,
                     const std::string& checkpoint_path = "") {
  const Rng parent(seed);
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<core::RaPolicy>> policies;
  std::vector<env::RaEnvironment*> env_ptrs;
  std::vector<core::RaPolicy*> policy_ptrs;
  for (std::size_t j = 0; j < kRas; ++j) {
    environments.push_back(make_env(parent.spawn(500 + j)));
    if (agent) {
      policies.push_back(std::make_unique<core::LearnedPolicy>(agent, /*learn=*/false));
    } else {
      policies.push_back(std::make_unique<core::TaroPolicy>());
    }
    env_ptrs.push_back(environments.back().get());
    policy_ptrs.push_back(policies.back().get());
  }
  core::CoordinatorConfig coordinator;
  coordinator.slices = 2;
  coordinator.ras = kRas;
  core::SystemConfig config;
  config.faults = faults;

  std::unique_ptr<WorkerSupervisor> supervisor;
  if (workers > 0) {
    SupervisorConfig sup_config;
    sup_config.workers = workers;
    supervisor = std::make_unique<WorkerSupervisor>(env_ptrs, policy_ptrs, sup_config);
    supervisor->start();
    config.transport = supervisor.get();
  }
  core::EdgeSliceSystem system(env_ptrs, policy_ptrs, coordinator, config);

  SystemRun out;
  out.periods = system.run(kPeriods);
  out.series = system.monitor().system_performance_series();
  out.records = system.monitor().records();
  if (!checkpoint_path.empty()) {
    EXPECT_TRUE(system.save_checkpoint(checkpoint_path));
    std::ifstream in(checkpoint_path, std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    out.checkpoint_bytes = bytes.str();
  }
  return out;
}

void expect_identical(const SystemRun& a, const SystemRun& b, const char* label) {
  ASSERT_EQ(a.periods.size(), b.periods.size()) << label;
  for (std::size_t p = 0; p < a.periods.size(); ++p) {
    EXPECT_EQ(a.periods[p].performance_sums.data(), b.periods[p].performance_sums.data())
        << label << " period " << p;
    EXPECT_EQ(a.periods[p].slice_performance, b.periods[p].slice_performance);
    EXPECT_EQ(a.periods[p].system_performance, b.periods[p].system_performance);
    EXPECT_EQ(a.periods[p].crashed_ras, b.periods[p].crashed_ras);
    EXPECT_EQ(a.periods[p].reports_fresh, b.periods[p].reports_fresh);
    EXPECT_EQ(a.periods[p].reports_carried, b.periods[p].reports_carried);
    EXPECT_EQ(a.periods[p].columns_frozen, b.periods[p].columns_frozen);
    EXPECT_EQ(a.periods[p].rcl_losses, b.periods[p].rcl_losses);
  }
  EXPECT_EQ(a.series, b.series) << label;
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (std::size_t r = 0; r < a.records.size(); ++r) {
    EXPECT_EQ(a.records[r].period, b.records[r].period) << label << " record " << r;
    EXPECT_EQ(a.records[r].interval, b.records[r].interval);
    EXPECT_EQ(a.records[r].ra, b.records[r].ra);
    EXPECT_EQ(a.records[r].performance, b.records[r].performance);
    EXPECT_EQ(a.records[r].action, b.records[r].action);
    EXPECT_EQ(a.records[r].reward, b.records[r].reward);
  }
}

TEST(IpcIdentity, TrajectoriesIdenticalAcrossWorkerCountsWithTaro) {
  for (const std::uint64_t seed : {21u, 22u}) {
    const SystemRun reference = run_system(seed, 0, nullptr, nullptr);
    for (const std::size_t workers : {1u, 2u, 4u}) {
      const SystemRun run = run_system(seed, workers, nullptr, nullptr);
      expect_identical(reference, run,
                       ("taro seed " + std::to_string(seed) + " workers " +
                        std::to_string(workers))
                           .c_str());
    }
  }
}

TEST(IpcIdentity, TrajectoriesIdenticalWithSharedFrozenActor) {
  Rng rng(31);
  nn::Mlp actor({4, 24, 6}, nn::Activation::LeakyRelu, nn::Activation::Sigmoid, rng);
  const auto agent = std::make_shared<rl::FrozenActor>(actor);
  for (const std::uint64_t seed : {21u, 22u}) {
    const SystemRun reference = run_system(seed, 0, nullptr, agent);
    for (const std::size_t workers : {2u, 4u}) {
      expect_identical(reference, run_system(seed, workers, nullptr, agent),
                       "frozen actor");
    }
  }
}

TEST(IpcIdentity, TrajectoriesIdenticalUnderWorkerKillAndSocketDropChaos) {
  // The plan SIGKILLs RA 0's worker at period 1 (down 2 periods) and
  // half-closes RA 3's socket at period 2, on top of probabilistic
  // message loss. With workers these are physical process faults restored
  // by the supervisor; without workers they fold into the same
  // ra_crashed() windows — the trajectories must not differ by one bit.
  FaultPlan plan;
  plan.seed = 7;
  plan.events.push_back(FaultEvent{FaultType::WorkerKill, 1, 0, 2, 1.0});
  plan.events.push_back(FaultEvent{FaultType::SocketDrop, 2, kRas - 1, 1, 1.0});
  plan.rates.rcm_drop = 0.2;
  plan.rates.rcl_drop = 0.2;
  const FaultInjector faults(plan);
  for (const std::uint64_t seed : {5u, 6u}) {
    const SystemRun reference = run_system(seed, 0, &faults, nullptr);
    bool crashed_periods_seen = false;
    for (const auto& period : reference.periods) {
      if (period.crashed_ras > 0) crashed_periods_seen = true;
    }
    EXPECT_TRUE(crashed_periods_seen) << "plan did not fire; test is vacuous";
    for (const std::size_t workers : {1u, 2u, 4u}) {
      expect_identical(reference, run_system(seed, workers, &faults, nullptr),
                       ("chaos workers " + std::to_string(workers)).c_str());
    }
  }
}

TEST(IpcIdentity, CheckpointsByteIdenticalAcrossWorkerCounts) {
  const auto temp = [](const char* name) {
    return (std::filesystem::temp_directory_path() / name).string();
  };
  const std::string path_w0 = temp("esfr_identity_w0.ckpt");
  const std::string path_w2 = temp("esfr_identity_w2.ckpt");
  std::filesystem::remove(path_w0);
  std::filesystem::remove(path_w2);
  // Checkpoints through the transport assemble Environment sections from
  // Snapshot frames; the container must come out byte-for-byte equal to
  // the in-process one (same kCkptFormatVersion, same section bytes).
  const SystemRun a = run_system(42, 0, nullptr, nullptr, path_w0);
  const SystemRun b = run_system(42, 2, nullptr, nullptr, path_w2);
  ASSERT_FALSE(a.checkpoint_bytes.empty());
  EXPECT_EQ(a.checkpoint_bytes, b.checkpoint_bytes);
  std::filesystem::remove(path_w0);
  std::filesystem::remove(path_w2);
}

}  // namespace
}  // namespace edgeslice::ipc
