// WorkerSupervisor failure policy (ctest label: ipc).
//
// Edge cases of the supervised control plane, each with a real forked
// worker process on the other side of the socketpair: a worker dying
// mid-exchange (abrupt _exit while its RunPeriod is outstanding), a
// worker hanging past the trace deadline, a restart storm capped by the
// backoff budget (a permanently failing worker stays down instead of
// fork-bombing), and a double-restart of the same worker within one
// period (planned kill at the boundary + crash mid-period).
#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <vector>

#include "core/policies.h"
#include "env/environment.h"
#include "env/service_model.h"
#include "ipc/supervisor.h"

namespace edgeslice::ipc {
namespace {

std::unique_ptr<env::RaEnvironment> make_env(Rng rng) {
  env::RaEnvironmentConfig config;  // 2 slices, T = 10
  return std::make_unique<env::RaEnvironment>(
      config,
      std::vector<env::AppProfile>{env::slice1_profile(), env::slice2_profile()},
      std::make_shared<env::DirectServiceModel>(env::prototype_capacity()),
      env::make_queue_power_perf(), rng);
}

/// A small supervised fleet: `ras` environments with TARO policies across
/// `workers` worker processes, torn down with the fixture.
struct Fleet {
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<core::RaPolicy>> policies;
  std::unique_ptr<WorkerSupervisor> supervisor;

  explicit Fleet(std::size_t ras, SupervisorConfig config = {}) {
    std::vector<env::RaEnvironment*> env_ptrs;
    std::vector<core::RaPolicy*> policy_ptrs;
    const Rng parent(99);
    for (std::size_t j = 0; j < ras; ++j) {
      environments.push_back(make_env(parent.spawn(j)));
      policies.push_back(std::make_unique<core::TaroPolicy>());
      env_ptrs.push_back(environments.back().get());
      policy_ptrs.push_back(policies.back().get());
    }
    supervisor = std::make_unique<WorkerSupervisor>(env_ptrs, policy_ptrs, config);
    supervisor->start();
  }

  std::vector<core::RaPeriodDirective> directives() const {
    return std::vector<core::RaPeriodDirective>(environments.size());
  }
};

std::size_t ran_count(const std::vector<core::RaPeriodTrace>& traces) {
  std::size_t ran = 0;
  for (const auto& trace : traces) {
    if (trace.ran) ++ran;
  }
  return ran;
}

TEST(WorkerSupervisor, StartsOneWorkerPerSlotAndRefusesDoubleStart) {
  SupervisorConfig config;
  config.workers = 2;
  Fleet fleet(4, config);
  EXPECT_EQ(fleet.supervisor->worker_count(), 2u);
  EXPECT_TRUE(fleet.supervisor->worker_alive(0));
  EXPECT_TRUE(fleet.supervisor->worker_alive(1));
  EXPECT_EQ(fleet.supervisor->worker_of(0), 0u);
  EXPECT_EQ(fleet.supervisor->worker_of(3), 1u);
  EXPECT_THROW(fleet.supervisor->start(), std::logic_error);

  const auto traces = fleet.supervisor->run_intervals(0, fleet.directives());
  EXPECT_EQ(ran_count(traces), 4u);
  for (const auto& trace : traces) {
    EXPECT_EQ(trace.steps.size(), 10u);
    EXPECT_EQ(trace.actions.size(), 10u);
  }
  fleet.supervisor->end_period(0);
}

TEST(WorkerSupervisor, WorkerDeathMidExchangeDegradesOnlyItsRas) {
  SupervisorConfig config;
  config.workers = 2;
  Fleet fleet(2, config);

  // RA 0's worker aborts abruptly while its RunPeriod is outstanding —
  // the supervisor sees EOF mid-collection, not an error reply.
  auto directives = fleet.directives();
  directives[0].abort_run = true;
  const auto traces = fleet.supervisor->run_intervals(0, directives);
  EXPECT_FALSE(traces[0].ran);
  EXPECT_TRUE(traces[1].ran);
  EXPECT_FALSE(fleet.supervisor->worker_alive(0));
  EXPECT_TRUE(fleet.supervisor->worker_alive(1));

  // RC-L to the dead worker's RA reports the loss; the healthy one works.
  core::RcLearningMessage message;
  message.ra = 0;
  message.z_minus_y = {0.1, 0.2};
  EXPECT_FALSE(fleet.supervisor->send_coordination(0, message));
  message.ra = 1;
  EXPECT_TRUE(fleet.supervisor->send_coordination(0, message));

  // end_period restores the worker from its cached state; the next period
  // is whole again.
  fleet.supervisor->end_period(0);
  EXPECT_TRUE(fleet.supervisor->worker_alive(0));
  EXPECT_EQ(fleet.supervisor->restart_count(0), 1u);
  const auto healed = fleet.supervisor->run_intervals(1, fleet.directives());
  EXPECT_EQ(ran_count(healed), 2u);
}

TEST(WorkerSupervisor, HungWorkerIsDeclaredDeadAtTheTraceDeadline) {
  SupervisorConfig config;
  config.workers = 2;
  config.trace_deadline_ms = 300;  // the test's whole wait, not 30 s
  Fleet fleet(2, config);

  // RA 0's worker stalls far past the deadline mid-period. The supervisor
  // must cut it loose at ~trace_deadline_ms and keep the healthy worker's
  // results.
  auto directives = fleet.directives();
  directives[0].stall_ms = 5000;
  const auto traces = fleet.supervisor->run_intervals(0, directives);
  EXPECT_FALSE(traces[0].ran);
  EXPECT_TRUE(traces[1].ran);
  EXPECT_FALSE(fleet.supervisor->worker_alive(0));

  fleet.supervisor->end_period(0);
  EXPECT_TRUE(fleet.supervisor->worker_alive(0));
  const auto healed = fleet.supervisor->run_intervals(1, fleet.directives());
  EXPECT_EQ(ran_count(healed), 2u);
}

TEST(WorkerSupervisor, RestartStormIsCappedAndTheWorkerStaysDown) {
  SupervisorConfig config;
  config.workers = 2;
  config.restart_backoff_initial_ms = 1;
  config.restart_backoff_max_ms = 4;
  config.max_restart_attempts = 2;
  Fleet fleet(2, config);

  // The worker crashes every single period: each end_period respawn is
  // consumed by the next period's crash, so the consecutive-restart
  // budget must trip and leave the worker permanently down.
  std::size_t periods_run = 0;
  for (std::size_t p = 0; p < 30 && !fleet.supervisor->worker_failed(0); ++p) {
    auto directives = fleet.directives();
    directives[0].abort_run = true;
    fleet.supervisor->run_intervals(p, directives);
    fleet.supervisor->end_period(p);
    ::usleep(6000);  // get past the (tiny) backoff gate
    ++periods_run;
  }
  EXPECT_TRUE(fleet.supervisor->worker_failed(0));
  EXPECT_FALSE(fleet.supervisor->worker_alive(0));
  // attempts are counted only when the backoff gate admits a respawn, so
  // the lifetime restart count stays within the budget.
  EXPECT_LE(fleet.supervisor->restart_count(0),
            static_cast<std::size_t>(config.max_restart_attempts));
  EXPECT_TRUE(fleet.supervisor->worker_alive(1));

  // A failed worker is never resurrected; its RAs stay degraded while the
  // rest of the fleet keeps running.
  const std::size_t restarts_at_failure = fleet.supervisor->restart_count(0);
  const auto traces = fleet.supervisor->run_intervals(periods_run, fleet.directives());
  fleet.supervisor->end_period(periods_run);
  EXPECT_FALSE(traces[0].ran);
  EXPECT_TRUE(traces[1].ran);
  EXPECT_FALSE(fleet.supervisor->worker_alive(0));
  EXPECT_EQ(fleet.supervisor->restart_count(0), restarts_at_failure);
}

TEST(WorkerSupervisor, DoubleRestartOfTheSameWorkerWithinOnePeriod) {
  SupervisorConfig config;
  config.workers = 2;
  Fleet fleet(4, config);  // worker 0 hosts RAs {0, 2}

  // Restart #1: a planned kill at the period boundary (physical SIGKILL +
  // immediate restore of both hosted RAs). Restart #2: the restored
  // worker crashes again mid-period, healed by end_period.
  auto directives = fleet.directives();
  directives[0].fault = ProcessFaultKind::Kill;
  directives[2].abort_run = true;
  const auto traces = fleet.supervisor->run_intervals(0, directives);
  fleet.supervisor->end_period(0);
  EXPECT_TRUE(fleet.supervisor->worker_alive(0));
  EXPECT_EQ(fleet.supervisor->restart_count(0), 2u);
  // The co-hosted RA 0 ran after the planned restore (its abort sibling
  // came later in directive order); worker 1's RAs are untouched.
  EXPECT_TRUE(traces[0].ran);
  EXPECT_TRUE(traces[1].ran);
  EXPECT_FALSE(traces[2].ran);
  EXPECT_TRUE(traces[3].ran);

  const auto healed = fleet.supervisor->run_intervals(1, fleet.directives());
  EXPECT_EQ(ran_count(healed), 4u);
}

TEST(WorkerSupervisor, PlannedHalfCloseIsRestoredBeforeThePeriodRuns) {
  SupervisorConfig config;
  config.workers = 2;
  Fleet fleet(2, config);

  // SocketDrop's physical action: half-close at the boundary, respawn,
  // restore — the restored worker then runs its period normally.
  auto directives = fleet.directives();
  directives[1].fault = ProcessFaultKind::HalfClose;
  const auto traces = fleet.supervisor->run_intervals(0, directives);
  EXPECT_EQ(ran_count(traces), 2u);
  EXPECT_EQ(fleet.supervisor->restart_count(1), 1u);
  EXPECT_TRUE(fleet.supervisor->worker_alive(1));
}

TEST(WorkerSupervisor, SnapshotAndRestoreRoundTripThroughTheWorker) {
  SupervisorConfig config;
  config.workers = 1;
  Fleet fleet(2, config);

  fleet.supervisor->run_intervals(0, fleet.directives());
  fleet.supervisor->end_period(0);
  const std::string blob = fleet.supervisor->environment_state(0);
  ASSERT_FALSE(blob.empty());
  // Restore the snapshot we just took: the next snapshot must be
  // byte-identical (the worker's state is exactly the blob).
  fleet.supervisor->restore_environment(0, blob);
  EXPECT_EQ(fleet.supervisor->environment_state(0), blob);
  EXPECT_THROW(fleet.supervisor->environment_state(7), std::invalid_argument);
}

}  // namespace
}  // namespace edgeslice::ipc
