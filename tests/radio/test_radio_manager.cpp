#include "radio/radio_manager.h"

#include <gtest/gtest.h>

namespace edgeslice::radio {
namespace {

RadioManager make_manager(Rng& rng) {
  RadioManagerConfig config;
  config.bandwidth_mhz = 5.0;
  config.slices = 2;
  return RadioManager(config, rng);
}

TEST(RadioManager, PrototypeHas25Prbs) {
  Rng rng(1);
  const auto manager = make_manager(rng);
  EXPECT_EQ(manager.total_prbs(), 25u);
  EXPECT_EQ(manager.slice_count(), 2u);
}

TEST(RadioManager, ShareQuantizesToPrbs) {
  Rng rng(1);
  auto manager = make_manager(rng);
  manager.set_slice_share(0, 0.5);
  EXPECT_EQ(manager.slice_prbs(0), 12u);  // floor(0.5 * 25)
  manager.set_slice_share(0, 1.0);
  EXPECT_EQ(manager.slice_prbs(0), 25u);
  manager.set_slice_share(0, 0.0);
  EXPECT_EQ(manager.slice_prbs(0), 0u);
}

TEST(RadioManager, ShareValidation) {
  Rng rng(1);
  auto manager = make_manager(rng);
  EXPECT_THROW(manager.set_slice_share(0, -0.1), std::invalid_argument);
  EXPECT_THROW(manager.set_slice_share(0, 1.1), std::invalid_argument);
  EXPECT_THROW(manager.set_slice_share(9, 0.5), std::out_of_range);
}

TEST(RadioManager, AttachRequiresKnownImsi) {
  Rng rng(2);
  auto manager = make_manager(rng);
  EXPECT_THROW(manager.on_attach(S1apAttach{"310170000000001", 0, 1}),
               std::invalid_argument);
  manager.register_imsi("310170000000001", 1);
  manager.on_attach(S1apAttach{"310170000000001", 0, 1});
  EXPECT_EQ(manager.user_count(), 1u);
  EXPECT_EQ(manager.slice_of_user(1), 1u);
}

TEST(RadioManager, EnqueueValidatesUser) {
  Rng rng(3);
  auto manager = make_manager(rng);
  EXPECT_THROW(manager.enqueue_bits(5, 100.0), std::out_of_range);
  manager.register_imsi("imsi-a", 0);
  manager.on_attach(S1apAttach{"imsi-a", 0, 5});
  EXPECT_THROW(manager.enqueue_bits(5, -1.0), std::invalid_argument);
  manager.enqueue_bits(5, 100.0);
  EXPECT_DOUBLE_EQ(manager.user_backlog(5), 100.0);
}

TEST(RadioManager, RunDrainsBacklogPerShares) {
  Rng rng(4);
  auto manager = make_manager(rng);
  manager.register_imsi("imsi-a", 0);
  manager.register_imsi("imsi-b", 1);
  manager.on_attach(S1apAttach{"imsi-a", 0, 1});
  manager.on_attach(S1apAttach{"imsi-b", 0, 2});
  manager.set_slice_share(0, 0.8);
  manager.set_slice_share(1, 0.2);
  manager.enqueue_bits(1, 1e7);
  manager.enqueue_bits(2, 1e7);
  const auto served = manager.run(200, rng);
  EXPECT_GT(served[0], 2.0 * served[1]);  // ~4x shares, CQI noise allowed
  EXPECT_LT(manager.user_backlog(1), 1e7);
}

TEST(RadioManager, ZeroShareSliceServesNothing) {
  Rng rng(5);
  auto manager = make_manager(rng);
  manager.register_imsi("imsi-a", 0);
  manager.on_attach(S1apAttach{"imsi-a", 0, 1});
  manager.set_slice_share(0, 0.0);
  manager.set_slice_share(1, 1.0);
  manager.enqueue_bits(1, 1e6);
  const auto served = manager.run(100, rng);
  EXPECT_DOUBLE_EQ(served[0], 0.0);
  EXPECT_DOUBLE_EQ(manager.user_backlog(1), 1e6);
}

TEST(RadioManager, CapacityScalesWithShare) {
  Rng rng(6);
  auto manager = make_manager(rng);
  manager.set_slice_share(0, 1.0);
  const double full = manager.slice_capacity_bits(0, 1.0);
  manager.set_slice_share(0, 0.48);  // 12 PRBs
  const double half = manager.slice_capacity_bits(0, 1.0);
  EXPECT_NEAR(half / full, 12.0 / 25.0, 1e-9);
}

TEST(RadioManager, CapacityMatchesSimulatedRun) {
  // The analytic capacity should be close to what the per-TTI simulation
  // actually delivers for a saturated, stable-channel user.
  Rng rng(7);
  RadioManagerConfig config;
  config.slices = 1;
  RadioManager manager(config, rng);
  manager.register_imsi("imsi-a", 0);
  manager.on_attach(S1apAttach{"imsi-a", 0, 1}, /*mean_cqi=*/9);
  manager.set_slice_share(0, 1.0);
  manager.enqueue_bits(1, 1e9);
  const auto served = manager.run(1000, rng);  // 1 simulated second
  const double analytic = manager.slice_capacity_bits(0, 1.0, 9);
  EXPECT_NEAR(served[0] / analytic, 1.0, 0.25);  // CQI random walk tolerance
}

}  // namespace
}  // namespace edgeslice::radio
