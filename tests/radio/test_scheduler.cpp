#include "radio/scheduler.h"

#include <gtest/gtest.h>

#include "radio/lte.h"

namespace edgeslice::radio {
namespace {

UserDemand user(std::size_t id, std::size_t slice, double backlog, std::size_t cqi = 9) {
  return UserDemand{id, slice, cqi, backlog};
}

TEST(Scheduler, ZeroPrbsThrows) {
  EXPECT_THROW(SliceAwareScheduler(0, {}), std::invalid_argument);
}

TEST(Scheduler, ZeroQuotaSliceNotScheduled) {
  // The paper's key MAC change: users of a slice holding no radio
  // resources are not scheduled at all.
  SliceAwareScheduler scheduler(25, {0, 25});
  const auto result = scheduler.schedule({user(1, 0, 1e6), user(2, 1, 1e6)});
  EXPECT_DOUBLE_EQ(result.slice_served_bits[0], 0.0);
  EXPECT_GT(result.slice_served_bits[1], 0.0);
  for (const auto& grant : result.grants) EXPECT_EQ(grant.slice_id, 1u);
}

TEST(Scheduler, GrantsAreConsecutive) {
  SliceAwareScheduler scheduler(25, {10, 15});
  const auto result =
      scheduler.schedule({user(1, 0, 1e6), user(2, 0, 1e6), user(3, 1, 1e6)});
  std::size_t expected_start = 0;
  for (const auto& grant : result.grants) {
    EXPECT_EQ(grant.first_prb, expected_start);
    expected_start += grant.prbs;
  }
  EXPECT_EQ(result.prbs_used, expected_start);
}

TEST(Scheduler, QuotaIsRespected) {
  SliceAwareScheduler scheduler(25, {10, 15});
  const auto result = scheduler.schedule({user(1, 0, 1e9), user(2, 1, 1e9)});
  std::size_t slice0_prbs = 0;
  std::size_t slice1_prbs = 0;
  for (const auto& grant : result.grants) {
    (grant.slice_id == 0 ? slice0_prbs : slice1_prbs) += grant.prbs;
  }
  EXPECT_EQ(slice0_prbs, 10u);
  EXPECT_EQ(slice1_prbs, 15u);
}

TEST(Scheduler, BacklogLimitsGrant) {
  SliceAwareScheduler scheduler(25, {25, 0});
  const double one_prb_bits = tbs_bits(1, 9);
  const auto result = scheduler.schedule({user(1, 0, one_prb_bits * 2.5)});
  ASSERT_EQ(result.grants.size(), 1u);
  EXPECT_EQ(result.grants[0].prbs, 3u);  // ceil(2.5)
  EXPECT_NEAR(result.grants[0].bits, one_prb_bits * 2.5, 1e-6);
}

TEST(Scheduler, EmptyBacklogUsersSkipped) {
  SliceAwareScheduler scheduler(25, {25});
  const auto result = scheduler.schedule({user(1, 0, 0.0)});
  EXPECT_TRUE(result.grants.empty());
  EXPECT_EQ(result.prbs_used, 0u);
}

TEST(Scheduler, OversubscribedQuotasTruncated) {
  SliceAwareScheduler scheduler(25, {20, 20});  // sums to 40 > 25
  const auto result = scheduler.schedule({user(1, 0, 1e9), user(2, 1, 1e9)});
  EXPECT_LE(result.prbs_used, 25u);
  std::size_t slice1_prbs = 0;
  for (const auto& grant : result.grants) {
    if (grant.slice_id == 1) slice1_prbs += grant.prbs;
  }
  EXPECT_EQ(slice1_prbs, 5u);  // only what remains after slice 0
}

TEST(Scheduler, HigherCqiMovesMoreBits) {
  SliceAwareScheduler scheduler(25, {25});
  const auto low = scheduler.schedule({user(1, 0, 1e9, 3)});
  const auto high = scheduler.schedule({user(1, 0, 1e9, 14)});
  EXPECT_GT(high.slice_served_bits[0], 2.0 * low.slice_served_bits[0]);
}

TEST(Scheduler, RoundRobinRotatesUsers) {
  // Quota of 1 PRB: only one user served per TTI; rotation must alternate.
  SliceAwareScheduler scheduler(25, {1});
  const std::vector<UserDemand> users{user(1, 0, 1e9), user(2, 0, 1e9)};
  const auto first = scheduler.schedule(users);
  const auto second = scheduler.schedule(users);
  ASSERT_EQ(first.grants.size(), 1u);
  ASSERT_EQ(second.grants.size(), 1u);
  EXPECT_NE(first.grants[0].user_id, second.grants[0].user_id);
}

TEST(Scheduler, SetQuotasTakesEffect) {
  SliceAwareScheduler scheduler(25, {25, 0});
  scheduler.set_quotas({0, 25});
  const auto result = scheduler.schedule({user(1, 0, 1e9), user(2, 1, 1e9)});
  EXPECT_DOUBLE_EQ(result.slice_served_bits[0], 0.0);
  EXPECT_GT(result.slice_served_bits[1], 0.0);
}

}  // namespace
}  // namespace edgeslice::radio
