#include "radio/lte.h"

#include <gtest/gtest.h>

namespace edgeslice::radio {
namespace {

TEST(Lte, CqiEfficiencyMonotone) {
  for (std::size_t cqi = kMinCqi + 1; cqi <= kMaxCqi; ++cqi) {
    EXPECT_GT(cqi_efficiency(cqi), cqi_efficiency(cqi - 1)) << "cqi " << cqi;
  }
}

TEST(Lte, CqiBoundsEnforced) {
  EXPECT_THROW(cqi_efficiency(0), std::out_of_range);
  EXPECT_THROW(cqi_efficiency(16), std::out_of_range);
  EXPECT_NO_THROW(cqi_efficiency(1));
  EXPECT_NO_THROW(cqi_efficiency(15));
}

TEST(Lte, KnownEfficiencies) {
  // Spot values from TS 36.213 Table 7.2.3-1.
  EXPECT_NEAR(cqi_efficiency(1), 0.1523, 1e-6);
  EXPECT_NEAR(cqi_efficiency(9), 2.4063, 1e-6);
  EXPECT_NEAR(cqi_efficiency(15), 5.5547, 1e-6);
}

TEST(Lte, PrototypeBandwidthIs25Prbs) {
  EXPECT_EQ(prbs_for_bandwidth_mhz(5.0), 25u);  // Table II: 5 MHz carriers
}

TEST(Lte, AllStandardBandwidths) {
  EXPECT_EQ(prbs_for_bandwidth_mhz(1.4), 6u);
  EXPECT_EQ(prbs_for_bandwidth_mhz(3.0), 15u);
  EXPECT_EQ(prbs_for_bandwidth_mhz(10.0), 50u);
  EXPECT_EQ(prbs_for_bandwidth_mhz(15.0), 75u);
  EXPECT_EQ(prbs_for_bandwidth_mhz(20.0), 100u);
  EXPECT_THROW(prbs_for_bandwidth_mhz(7.3), std::invalid_argument);
}

TEST(Lte, TbsScalesLinearlyWithPrbs) {
  EXPECT_NEAR(tbs_bits(10, 9), 10.0 * tbs_bits(1, 9), 1e-9);
}

TEST(Lte, PeakThroughputPlausible) {
  // 25 PRBs at CQI 15 (64QAM peak): in the ballpark of LTE 5 MHz ~ 18 Mbps.
  const double mbps = peak_throughput_mbps(25, 15);
  EXPECT_GT(mbps, 12.0);
  EXPECT_LT(mbps, 25.0);
}

TEST(Lte, ZeroPrbsZeroBits) {
  EXPECT_DOUBLE_EQ(tbs_bits(0, 9), 0.0);
}

}  // namespace
}  // namespace edgeslice::radio
