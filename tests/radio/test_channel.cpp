#include "radio/channel.h"

#include <gtest/gtest.h>

namespace edgeslice::radio {
namespace {

TEST(Channel, StartsAtMeanCqi) {
  ChannelModel channel(9);
  EXPECT_EQ(channel.cqi(), 9u);
}

TEST(Channel, ValidatesConstruction) {
  EXPECT_THROW(ChannelModel(0), std::invalid_argument);
  EXPECT_THROW(ChannelModel(16), std::invalid_argument);
  EXPECT_THROW(ChannelModel(9, 1.5), std::invalid_argument);
  EXPECT_THROW(ChannelModel(9, -0.1), std::invalid_argument);
}

TEST(Channel, StaysInValidRange) {
  ChannelModel channel(3, 0.9);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const std::size_t cqi = channel.step(rng);
    EXPECT_GE(cqi, kMinCqi);
    EXPECT_LE(cqi, kMaxCqi);
  }
}

TEST(Channel, ZeroVolatilityIsConstant) {
  ChannelModel channel(7, 0.0);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(channel.step(rng), 7u);
  }
}

TEST(Channel, LongRunMeanNearAnchor) {
  ChannelModel channel(10, 0.5);
  Rng rng(3);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(channel.step(rng));
  EXPECT_NEAR(total / n, 10.0, 1.5);
}

TEST(Channel, ChangesAreUnitSteps) {
  ChannelModel channel(8, 1.0);
  Rng rng(4);
  std::size_t prev = channel.cqi();
  for (int i = 0; i < 1000; ++i) {
    const std::size_t cur = channel.step(rng);
    const auto diff = cur > prev ? cur - prev : prev - cur;
    EXPECT_LE(diff, 1u);
    prev = cur;
  }
}

}  // namespace
}  // namespace edgeslice::radio
