// City-scale bench smoke tests: the small-scale city must be
// bit-identical at 1/2/4 threads, allocation-flat on the steady-state
// period hot path, and bit-identical across checkpoint/resume — both
// in-process and through the real city_scale binary's forced-abort +
// --resume legs (EDGESLICE_CITY_BENCH_PATH is injected by the build).
#include "city_common.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace edgeslice::bench::city {
namespace {

CityConfig smoke_config() {
  CityConfig config;
  config.ras = 12;
  config.slices_per_ra = 4;
  config.periods = 8;
  config.intervals_per_period = 4;
  config.peak_rate = 5.0;
  config.seed = 11;
  return config;
}

TEST(CityScale, BitIdenticalAcrossThreadCounts) {
  const CityRun reference = run_city(smoke_config());
  ASSERT_EQ(reference.period_digests.size(), 8u);
  for (std::size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    CityConfig config = smoke_config();
    config.pool = &pool;
    const CityRun run = run_city(config);
    EXPECT_EQ(run.period_digests, reference.period_digests)
        << threads << " threads diverged";
    EXPECT_EQ(run.trajectory_digest, reference.trajectory_digest);
  }
}

TEST(CityScale, SteadyStatePeriodLoopAddsNoArenaUpstreamAllocations) {
  CityConfig config = smoke_config();
  config.periods = 12;  // several periods past warm-up
  const CityRun run = run_city(config);
  EXPECT_EQ(run.arena.upstream_allocations, run.arena_upstream_after_warmup)
      << "period hot path allocated after warm-up";
  EXPECT_EQ(run.arena.resets, 12u);  // one reset per period
  EXPECT_GT(run.arena.high_water_bytes, 0u);
}

TEST(CityScale, WatchdogAndThroughputAreReported) {
  const CityRun run = run_city(smoke_config());
  EXPECT_EQ(run.periods_run, 8u);
  EXPECT_GT(run.periods_per_second, 0.0);
  EXPECT_GE(run.p99_solve_seconds, 0.0);
  ASSERT_EQ(run.slice_violation_rates.size(), 4u);
  for (double rate : run.slice_violation_rates) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  EXPECT_LT(run.total_performance, 0.0);  // queue-power U is non-positive
}

TEST(CityScale, InProcessResumeContinuesBitIdentically) {
  const std::string base = ::testing::TempDir() + "city_inproc.ckpt";
  for (const auto& entry :
       std::filesystem::directory_iterator(::testing::TempDir())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("city_inproc.ckpt", 0) == 0) std::filesystem::remove(entry);
  }

  const CityRun reference = run_city(smoke_config());

  // First half of the day, checkpointing every other period. The config
  // keeps periods = 8 (the arrival profiles span the configured day, so a
  // shorter day would be a different city) and stops cleanly at 4.
  CityConfig first = smoke_config();
  first.stop_after_period = 4;
  first.checkpoint_every = 2;
  first.checkpoint_out = base;
  first.checkpoint_keep = 2;
  const CityRun half = run_city(first);
  ASSERT_EQ(half.period_digests.size(), 4u);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(half.period_digests[p], reference.period_digests[p]);
  }

  // Resume from the rotation's newest sibling (period 4) and finish.
  CityConfig rest = smoke_config();
  rest.resume_path = base;
  rest.checkpoint_keep = 2;
  const CityRun tail = run_city(rest);
  EXPECT_EQ(tail.start_period, 4u);
  ASSERT_EQ(tail.period_digests.size(), 4u);
  for (std::size_t i = 0; i < tail.period_digests.size(); ++i) {
    EXPECT_EQ(tail.period_digests[i],
              reference.period_digests[tail.start_period + i])
        << "period " << tail.start_period + i << " diverged after resume";
  }
}

// ---------------------------------------------------------------------------
// Crash-at-midday acceptance: the real binary aborts mid-day, a rerun with
// --resume finishes it, and the stitched digest lines equal an uncrashed
// run's (subprocess tests against the actual city_scale executable).
// ---------------------------------------------------------------------------
#ifdef EDGESLICE_CITY_BENCH_PATH

std::vector<std::string> digest_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("digest period=", 0) == 0) lines.push_back(line);
  }
  return lines;
}

TEST(CityScaleHarness, CrashAtMiddayResumesBitIdentically) {
  const std::string dir = ::testing::TempDir();
  const std::string ckpt = dir + "city_day.ckpt";
  const std::string shape =
      " --ras 8 --slices-per-ra 3 --periods 8 --intervals 4 --seed 7";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("city_day.ckpt", 0) == 0) std::filesystem::remove(entry);
  }

  const std::string ref_out = dir + "city_ref.out";
  ASSERT_EQ(std::system((std::string(EDGESLICE_CITY_BENCH_PATH) + shape +
                         " --out " + dir + "city_ref.json > " + ref_out +
                         " 2>/dev/null")
                            .c_str()),
            0);
  const auto reference = digest_lines(ref_out);
  ASSERT_EQ(reference.size(), 8u);

  // Crash at midday. Dies by SIGABRT; the pre-crash digest lines must
  // survive (they are flushed per period).
  const std::string crash_out = dir + "city_crash.out";
  const int crash_status = std::system(
      (std::string(EDGESLICE_CITY_BENCH_PATH) + shape +
       " --checkpoint-every 2 --checkpoint-out " + ckpt +
       " --checkpoint-keep 2 --crash-at-period 4 --out " + dir +
       "city_crash.json > " + crash_out + " 2>/dev/null")
          .c_str());
  ASSERT_TRUE(WIFSIGNALED(crash_status) ||
              (WIFEXITED(crash_status) && WEXITSTATUS(crash_status) != 0));
  const auto before = digest_lines(crash_out);
  ASSERT_EQ(before.size(), 4u);  // periods 0..3 ran before the abort

  // Resume and finish the day.
  const std::string resume_out = dir + "city_resume.out";
  ASSERT_EQ(std::system((std::string(EDGESLICE_CITY_BENCH_PATH) + shape +
                         " --resume " + ckpt + " --checkpoint-keep 2 --out " +
                         dir + "city_resume.json > " + resume_out +
                         " 2>/dev/null")
                            .c_str()),
            0);
  const auto after = digest_lines(resume_out);
  ASSERT_EQ(after.size(), 4u);  // periods 4..7

  // Stitched pre-crash + post-resume trajectory == uncrashed trajectory.
  std::vector<std::string> stitched = before;
  stitched.insert(stitched.end(), after.begin(), after.end());
  EXPECT_EQ(stitched, reference);
}

TEST(CityScaleHarness, WritesBenchCityJsonWithDigest) {
  const std::string dir = ::testing::TempDir();
  const std::string json_path = dir + "city_smoke.json";
  std::remove(json_path.c_str());
  ASSERT_EQ(std::system((std::string(EDGESLICE_CITY_BENCH_PATH) +
                         " --ras 4 --slices-per-ra 2 --periods 4 --intervals 3"
                         " --out " + json_path + " > /dev/null 2>&1")
                            .c_str()),
            0);
  std::ifstream in(json_path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  for (const char* field :
       {"\"ras\"", "\"periods_per_second\"", "\"p99_coordinator_solve_seconds\"",
        "\"sla_violation_rate\"", "\"slice_violation_rates\"",
        "\"arena_upstream_allocations\"", "\"trajectory_digest\": \"0x"}) {
    EXPECT_NE(text.find(field), std::string::npos) << "missing " << field;
  }
  std::remove(json_path.c_str());
}

#endif  // EDGESLICE_CITY_BENCH_PATH

}  // namespace
}  // namespace edgeslice::bench::city
