#include "core/policies.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "env/service_model.h"
#include "rl/ddpg.h"

namespace edgeslice::core {
namespace {

env::RaEnvironment make_env(std::uint64_t seed = 1) {
  const auto model =
      std::make_shared<env::DirectServiceModel>(env::prototype_capacity());
  return env::RaEnvironment({}, {env::slice1_profile(), env::slice2_profile()}, model,
                            env::make_queue_power_perf(), Rng(seed));
}

TEST(TaroPolicy, EqualSplitWhenQueuesEmpty) {
  auto environment = make_env();
  TaroPolicy taro;
  const auto action = taro.decide(environment);
  ASSERT_EQ(action.size(), 6u);
  for (double a : action) EXPECT_DOUBLE_EQ(a, 0.5);
}

TEST(TaroPolicy, ProportionalToQueueLengths) {
  auto environment = make_env();
  // Load the queues unevenly: let arrivals accumulate with zero service for
  // slice-specific rates.
  environment.set_arrival_rates({30.0, 10.0});
  environment.step(std::vector<double>(6, 0.0));
  const double l0 = static_cast<double>(environment.queue(0).length());
  const double l1 = static_cast<double>(environment.queue(1).length());
  ASSERT_GT(l0 + l1, 0.0);
  TaroPolicy taro;
  const auto action = taro.decide(environment);
  for (std::size_t k = 0; k < env::kResources; ++k) {
    EXPECT_NEAR(action[0 * 3 + k], l0 / (l0 + l1), 1e-12);
    EXPECT_NEAR(action[1 * 3 + k], l1 / (l0 + l1), 1e-12);
  }
  // TARO never over-subscribes.
  for (std::size_t k = 0; k < env::kResources; ++k) {
    EXPECT_NEAR(action[k] + action[3 + k], 1.0, 1e-12);
  }
}

TEST(TaroPolicy, SameShareForAllResources) {
  // TARO's defining limitation: it cannot differentiate resource domains.
  auto environment = make_env();
  environment.set_arrival_rates({20.0, 5.0});
  environment.step(std::vector<double>(6, 0.0));
  TaroPolicy taro;
  const auto action = taro.decide(environment);
  EXPECT_DOUBLE_EQ(action[0], action[1]);
  EXPECT_DOUBLE_EQ(action[1], action[2]);
}

TEST(EqualSharePolicy, UniformSplit) {
  auto environment = make_env();
  EqualSharePolicy policy;
  const auto action = policy.decide(environment);
  for (double a : action) EXPECT_DOUBLE_EQ(a, 0.5);
  EXPECT_EQ(policy.name(), "EqualShare");
}

TEST(LearnedPolicy, NullAgentThrows) {
  EXPECT_THROW(LearnedPolicy(nullptr, true), std::invalid_argument);
}

TEST(LearnedPolicy, DecideUsesAgentAction) {
  auto environment = make_env();
  Rng rng(2);
  rl::DdpgConfig config;
  config.base.state_dim = environment.state_dim();
  config.base.action_dim = environment.action_dim();
  config.base.hidden = 16;
  const auto agent = std::make_shared<rl::Ddpg>(config, rng);
  LearnedPolicy policy(agent, /*learn=*/false);
  const auto action = policy.decide(environment);
  EXPECT_EQ(action, agent->act(environment.state(), false));
  EXPECT_NE(policy.name().find("DDPG"), std::string::npos);
}

TEST(LearnedPolicy, FeedbackTrainsOnlyWhenLearning) {
  auto environment = make_env();
  Rng rng(3);
  rl::DdpgConfig config;
  config.base.state_dim = environment.state_dim();
  config.base.action_dim = environment.action_dim();
  config.base.hidden = 16;
  config.warmup = 1;
  config.batch_size = 4;
  const auto agent = std::make_shared<rl::Ddpg>(config, rng);
  LearnedPolicy policy(agent, /*learn=*/true);

  for (int t = 0; t < 5; ++t) {
    const auto action = policy.decide(environment);
    policy.feedback(environment.step(action));
  }
  EXPECT_GT(agent->replay().size(), 0u);
  const std::size_t trained = agent->update_count();
  EXPECT_GT(trained, 0u);

  policy.set_learning(false);
  const auto action = policy.decide(environment);
  policy.feedback(environment.step(action));
  EXPECT_EQ(agent->update_count(), trained);  // no further updates
}

}  // namespace
}  // namespace edgeslice::core
