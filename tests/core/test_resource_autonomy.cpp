#include "core/resource_autonomy.h"

#include <gtest/gtest.h>

namespace edgeslice::core {
namespace {

TEST(ResourceAutonomy, PrototypeConfigMatchesTable2) {
  const auto config = prototype_ra_config(0);
  EXPECT_DOUBLE_EQ(config.radio.bandwidth_mhz, 5.0);
  EXPECT_DOUBLE_EQ(config.transport.link_capacity_mbps, 80.0);
  EXPECT_EQ(config.transport.switches, 6u);
  EXPECT_EQ(config.computing.gpu.total_threads, 51200u);
}

TEST(ResourceAutonomy, MismatchedSliceCountsThrow) {
  auto config = prototype_ra_config(0);
  config.radio.slices = 3;
  Rng rng(1);
  EXPECT_THROW(ResourceAutonomy(config, rng), std::invalid_argument);
}

TEST(ResourceAutonomy, ApplyDispatchesVrMessages) {
  Rng rng(2);
  ResourceAutonomy ra(prototype_ra_config(1), rng);
  const auto messages = ra.apply({0.6, 0.5, 0.4, 0.3, 0.2, 0.1});
  ASSERT_EQ(messages.size(), 6u);  // 2 slices x 3 domains
  EXPECT_EQ(messages[0].domain, Domain::Radio);
  EXPECT_EQ(messages[0].ra, 1u);
  EXPECT_DOUBLE_EQ(messages[0].fraction, 0.6);
  EXPECT_EQ(messages[5].domain, Domain::Computing);
  // Managers reflect the applied shares.
  EXPECT_EQ(ra.radio().slice_prbs(0), 15u);  // floor(0.6 * 25)
  EXPECT_DOUBLE_EQ(ra.transport().slice_rate_mbps(0), 40.0);
  EXPECT_EQ(ra.computing().slice_threads(1), 5120u);  // 0.1 * 51200
}

TEST(ResourceAutonomy, OversubscriptionScaledProportionally) {
  Rng rng(3);
  ResourceAutonomy ra(prototype_ra_config(0), rng);
  // Radio column sums to 1.6: must be scaled by 1/1.6.
  const auto messages = ra.apply({0.8, 0.2, 0.2, 0.8, 0.2, 0.2});
  EXPECT_NEAR(messages[0].fraction, 0.5, 1e-12);
  EXPECT_NEAR(messages[3].fraction, 0.5, 1e-12);
  // Non-oversubscribed columns untouched.
  EXPECT_NEAR(messages[1].fraction, 0.2, 1e-12);
}

TEST(ResourceAutonomy, ApplyValidatesSize) {
  Rng rng(4);
  ResourceAutonomy ra(prototype_ra_config(0), rng);
  EXPECT_THROW(ra.apply({0.5, 0.5}), std::invalid_argument);
}

TEST(ResourceAutonomy, AttachUserWiresAllManagers) {
  Rng rng(5);
  ResourceAutonomy ra(prototype_ra_config(0), rng);
  ra.attach_user("310170000000001", "10.0.1.9", 42, 1);
  EXPECT_EQ(ra.radio().slice_of_user(42), 1u);
  EXPECT_EQ(ra.computing().slice_of_ip("10.0.1.9"), 1u);
}

TEST(ResourceAutonomy, CapacityIsPositive) {
  Rng rng(6);
  ResourceAutonomy ra(prototype_ra_config(0), rng);
  const auto cap = ra.capacity();
  EXPECT_GT(cap.radio_bits_per_second, 0.0);
  EXPECT_GT(cap.transport_bits_per_second, 0.0);
  EXPECT_GT(cap.compute_work_per_second, 0.0);
}

}  // namespace
}  // namespace edgeslice::core
