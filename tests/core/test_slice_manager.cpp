#include "core/slice_manager.h"

#include <gtest/gtest.h>

namespace edgeslice::core {
namespace {

SliceManagerConfig make_config() {
  SliceManagerConfig config;
  config.capacity = env::prototype_capacity();
  config.max_slices = 4;
  config.admission_load_limit = 1.0;
  return config;
}

TEST(SliceManager, ValidatesConstruction) {
  SliceManagerConfig config = make_config();
  config.max_slices = 0;
  EXPECT_THROW(SliceManager(config, nullptr, nullptr), std::invalid_argument);
  config = make_config();
  config.capacity.radio_bits_per_second = 0.0;
  EXPECT_THROW(SliceManager(config, nullptr, nullptr), std::invalid_argument);
}

TEST(SliceManager, AdmitsWithinBudget) {
  SliceManager manager(make_config(), nullptr, nullptr);
  const auto result = manager.request_slice("tenant-a", env::slice2_profile(), -50.0);
  EXPECT_TRUE(result.admitted);
  ASSERT_TRUE(result.slice_id.has_value());
  EXPECT_EQ(manager.slice(*result.slice_id).tenant, "tenant-a");
  EXPECT_EQ(manager.slice(*result.slice_id).state, SliceState::Active);
  EXPECT_EQ(manager.active_slices(), 1u);
}

TEST(SliceManager, EstimatedLoadPicksDominantResource) {
  SliceManager manager(make_config(), nullptr, nullptr);
  // Slice 1's dominant demand is radio; slice 2's is compute.
  const double l1 = manager.estimated_load(env::slice1_profile());
  const double l2 = manager.estimated_load(env::slice2_profile());
  EXPECT_GT(l1, 0.0);
  EXPECT_GT(l2, 0.0);
  const auto cap = env::prototype_capacity();
  EXPECT_NEAR(l1, 10.0 * env::slice1_profile().uplink_bits / cap.radio_bits_per_second,
              1e-12);
  EXPECT_NEAR(l2, 10.0 * env::slice2_profile().compute_work / cap.compute_work_per_second,
              1e-12);
}

TEST(SliceManager, RejectsWhenBudgetExceeded) {
  SliceManagerConfig config = make_config();
  config.admission_load_limit = 0.8;
  SliceManager manager(config, nullptr, nullptr);
  // Slice 1 consumes ~0.38 of radio per unit; two fit, a third does not.
  EXPECT_TRUE(manager.request_slice("a", env::slice1_profile(), -50.0).admitted);
  EXPECT_TRUE(manager.request_slice("b", env::slice1_profile(), -50.0).admitted);
  const auto third = manager.request_slice("c", env::slice1_profile(), -50.0);
  EXPECT_FALSE(third.admitted);
  EXPECT_NE(third.reason.find("budget"), std::string::npos);
}

TEST(SliceManager, RejectsWhenSlotsExhausted) {
  SliceManagerConfig config = make_config();
  config.max_slices = 1;
  config.admission_load_limit = 10.0;
  SliceManager manager(config, nullptr, nullptr);
  EXPECT_TRUE(manager.request_slice("a", env::slice2_profile(), -50.0).admitted);
  const auto second = manager.request_slice("b", env::slice2_profile(), -50.0);
  EXPECT_FALSE(second.admitted);
  EXPECT_NE(second.reason.find("capacity"), std::string::npos);
}

TEST(SliceManager, TerminationReleasesBudget) {
  SliceManagerConfig config = make_config();
  config.admission_load_limit = 0.8;
  SliceManager manager(config, nullptr, nullptr);
  const auto a = manager.request_slice("a", env::slice1_profile(), -50.0);
  EXPECT_TRUE(manager.request_slice("b", env::slice1_profile(), -50.0).admitted);
  EXPECT_FALSE(manager.request_slice("c", env::slice1_profile(), -50.0).admitted);
  manager.terminate(*a.slice_id);
  EXPECT_TRUE(manager.request_slice("c", env::slice1_profile(), -50.0).admitted);
  EXPECT_EQ(manager.active_slices(), 2u);
}

TEST(SliceManager, SlaPropagatesToCoordinator) {
  CoordinatorConfig coordinator_config;
  coordinator_config.slices = 2;
  coordinator_config.ras = 1;
  PerformanceCoordinator coordinator(coordinator_config);
  SliceManager manager(make_config(), &coordinator, nullptr);
  const auto result = manager.request_slice("a", env::slice1_profile(), -33.0);
  ASSERT_TRUE(result.admitted);
  EXPECT_DOUBLE_EQ(coordinator.config().u_min[0], -33.0);
  manager.modify_sla(0, -44.0);
  EXPECT_DOUBLE_EQ(coordinator.config().u_min[0], -44.0);
  EXPECT_EQ(manager.slice(0).state, SliceState::Modified);
}

TEST(SliceManager, UserAttachRegistersWithMonitor) {
  SystemMonitor monitor(2, 1);
  SliceManager manager(make_config(), nullptr, &monitor);
  const auto result = manager.request_slice("a", env::slice1_profile(), -50.0);
  manager.attach_user(*result.slice_id, "310170000000009", "10.0.0.9");
  EXPECT_EQ(monitor.slice_of_imsi("310170000000009"), *result.slice_id);
  EXPECT_EQ(manager.slice(*result.slice_id).user_count, 1u);
}

TEST(SliceManager, TerminatedSliceRejectsOperations) {
  SliceManager manager(make_config(), nullptr, nullptr);
  const auto result = manager.request_slice("a", env::slice2_profile(), -50.0);
  manager.terminate(*result.slice_id);
  EXPECT_THROW(manager.modify_sla(*result.slice_id, -10.0), std::logic_error);
  EXPECT_THROW(manager.attach_user(*result.slice_id, "i", "p"), std::logic_error);
}

TEST(SliceManager, UnknownSliceThrows) {
  SliceManager manager(make_config(), nullptr, nullptr);
  EXPECT_THROW(manager.slice(0), std::out_of_range);
  EXPECT_THROW(manager.terminate(3), std::out_of_range);
}

}  // namespace
}  // namespace edgeslice::core
