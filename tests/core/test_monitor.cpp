#include "core/monitor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>

namespace edgeslice::core {
namespace {

env::StepResult make_step(std::vector<double> perf, std::vector<double> queues) {
  env::StepResult result;
  result.performance = std::move(perf);
  result.queue_lengths = std::move(queues);
  result.reward = -1.0;
  return result;
}

TEST(Monitor, ValidatesConstruction) {
  EXPECT_THROW(SystemMonitor(0, 1), std::invalid_argument);
  EXPECT_THROW(SystemMonitor(1, 0), std::invalid_argument);
}

TEST(Monitor, RecordsRows) {
  SystemMonitor monitor(2, 2);
  monitor.record(0, 0, 0, make_step({-1, -2}, {1, 2}), {0.5, 0.5, 0.5, 0.5, 0.5, 0.5});
  ASSERT_EQ(monitor.records().size(), 1u);
  EXPECT_EQ(monitor.records()[0].ra, 0u);
  EXPECT_THROW(monitor.record(5, 0, 0, make_step({}, {}), {}), std::out_of_range);
}

TEST(Monitor, RcmReportSumsPeriodPerformance) {
  SystemMonitor monitor(2, 2);
  monitor.record(0, 0, 0, make_step({-1, -2}, {}), {});
  monitor.record(0, 0, 1, make_step({-3, -4}, {}), {});
  monitor.record(0, 1, 2, make_step({-100, -100}, {}), {});  // next period
  monitor.record(1, 0, 0, make_step({-10, -10}, {}), {});    // other RA
  const auto report = monitor.report(0, 0);
  EXPECT_EQ(report.ra, 0u);
  EXPECT_DOUBLE_EQ(report.performance_sums[0], -4.0);
  EXPECT_DOUBLE_EQ(report.performance_sums[1], -6.0);
}

TEST(Monitor, ReportForSkippedPeriodIsZero) {
  // A monitor that recorded nothing for a period (e.g. its RA was down)
  // reports zero sums rather than stale or garbage data.
  SystemMonitor monitor(2, 2);
  monitor.record(0, 0, 0, make_step({-1, -2}, {}), {});
  monitor.record(0, 2, 20, make_step({-7, -8}, {}), {});  // period 1 skipped
  const auto report = monitor.report(0, 1);
  ASSERT_EQ(report.performance_sums.size(), 2u);
  EXPECT_DOUBLE_EQ(report.performance_sums[0], 0.0);
  EXPECT_DOUBLE_EQ(report.performance_sums[1], 0.0);
}

TEST(Monitor, OutOfOrderRecordsStillSumPerPeriod) {
  // Records arriving out of interval/period order (delayed telemetry)
  // must not change a period's report.
  SystemMonitor monitor(2, 1);
  monitor.record(0, 1, 12, make_step({-5, -6}, {}), {});
  monitor.record(0, 0, 3, make_step({-1, -2}, {}), {});  // older period, later arrival
  monitor.record(0, 0, 1, make_step({-3, -4}, {}), {});  // earlier interval, last
  const auto period0 = monitor.report(0, 0);
  EXPECT_DOUBLE_EQ(period0.performance_sums[0], -4.0);
  EXPECT_DOUBLE_EQ(period0.performance_sums[1], -6.0);
  const auto period1 = monitor.report(0, 1);
  EXPECT_DOUBLE_EQ(period1.performance_sums[0], -5.0);
  EXPECT_DOUBLE_EQ(period1.performance_sums[1], -6.0);
}

TEST(Monitor, SystemPerformanceSeriesSumsAcrossRas) {
  SystemMonitor monitor(2, 2);
  monitor.record(0, 0, 0, make_step({-1, -2}, {}), {});
  monitor.record(1, 0, 0, make_step({-3, -4}, {}), {});
  monitor.record(0, 0, 1, make_step({-5, -5}, {}), {});
  const auto series = monitor.system_performance_series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], -10.0);
  EXPECT_DOUBLE_EQ(series[1], -10.0);
}

TEST(Monitor, SlicePerformanceSeries) {
  SystemMonitor monitor(2, 1);
  monitor.record(0, 0, 0, make_step({-1, -9}, {}), {});
  const auto series = monitor.slice_performance_series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0][0], -1.0);
  EXPECT_DOUBLE_EQ(series[1][0], -9.0);
}

TEST(Monitor, ResourceUsageSeries) {
  SystemMonitor monitor(2, 1);
  monitor.record(0, 0, 0, make_step({-1, -1}, {}), {0.7, 0.6, 0.5, 0.3, 0.4, 0.5});
  const auto radio_s0 = monitor.resource_usage_series(0, 0, 0);
  const auto compute_s1 = monitor.resource_usage_series(0, 1, 2);
  EXPECT_DOUBLE_EQ(radio_s0[0], 0.7);
  EXPECT_DOUBLE_EQ(compute_s1[0], 0.5);
  EXPECT_THROW(monitor.resource_usage_series(0, 0, 9), std::out_of_range);
}

TEST(Monitor, UserAssociationByImsiAndIp) {
  SystemMonitor monitor(2, 1);
  monitor.register_user(UserAssociation{"310170000000001", "10.0.0.1", 0});
  monitor.register_user(UserAssociation{"310170000000002", "10.0.1.1", 1});
  EXPECT_EQ(monitor.slice_of_imsi("310170000000001"), 0u);
  EXPECT_EQ(monitor.slice_of_ip("10.0.1.1"), 1u);
  EXPECT_EQ(monitor.user_count(), 2u);
  EXPECT_THROW(monitor.slice_of_imsi("nope"), std::out_of_range);
  EXPECT_THROW(monitor.slice_of_ip("9.9.9.9"), std::out_of_range);
}

TEST(Monitor, DuplicateIdentityRejected) {
  SystemMonitor monitor(2, 1);
  monitor.register_user(UserAssociation{"imsi-1", "10.0.0.1", 0});
  EXPECT_THROW(monitor.register_user(UserAssociation{"imsi-1", "10.0.0.2", 0}),
               std::invalid_argument);
  EXPECT_THROW(monitor.register_user(UserAssociation{"imsi-2", "10.0.0.1", 0}),
               std::invalid_argument);
}

TEST(Monitor, BadSliceInAssociationRejected) {
  SystemMonitor monitor(2, 1);
  EXPECT_THROW(monitor.register_user(UserAssociation{"x", "y", 7}),
               std::invalid_argument);
}

TEST(Monitor, CsvExportHasRowPerSlice) {
  SystemMonitor monitor(2, 1);
  env::StepResult step = make_step({-1, -2}, {3, 4});
  monitor.record(0, 0, 0, step, {0.1, 0.2, 0.3, 0.4, 0.5, 0.6});
  std::stringstream out;
  monitor.write_csv(out);
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line,
            "period,interval,ra,slice,queue,performance,radio,transport,computing,reward");
  std::getline(out, line);
  EXPECT_EQ(line, "0,0,0,0,3,-1,0.1,0.2,0.3,-1");
  std::getline(out, line);
  EXPECT_EQ(line, "0,0,0,1,4,-2,0.4,0.5,0.6,-1");
}

// Brute-force reference for report(): rescan the full row log, in the
// exact order the pre-rework implementation used.
std::vector<double> scan_report(const SystemMonitor& monitor, std::size_t ra,
                                std::size_t period) {
  std::vector<double> sums(monitor.slices(), 0.0);
  for (const auto& row : monitor.records()) {
    if (row.ra != ra || row.period != period) continue;
    for (std::size_t i = 0; i < sums.size() && i < row.performance.size(); ++i) {
      sums[i] += row.performance[i];
    }
  }
  return sums;
}

TEST(Monitor, ReportMatchesFullScanOnLongLog) {
  // 1000 periods x 2 RAs x 5 intervals. The incremental sums behind
  // report() must be bit-identical to a full-history rescan.
  SystemMonitor monitor(2, 2);
  for (std::size_t period = 0; period < 1000; ++period) {
    for (std::size_t ra = 0; ra < 2; ++ra) {
      for (std::size_t t = 0; t < 5; ++t) {
        const double base = -0.001 * static_cast<double>(period * 10 + ra * 5 + t);
        monitor.record(ra, period, period * 5 + t,
                       make_step({base, base * 0.7}, {}), {});
      }
    }
  }
  for (std::size_t period : {0u, 1u, 499u, 998u, 999u}) {
    for (std::size_t ra = 0; ra < 2; ++ra) {
      const auto report = monitor.report(ra, period);
      const auto expected = scan_report(monitor, ra, period);
      ASSERT_EQ(report.performance_sums.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(report.performance_sums[i], expected[i])
            << "ra " << ra << " period " << period << " slice " << i;
      }
    }
  }
}

TEST(Monitor, ReportDoesNotRescanHistory) {
  // 100k report() calls against a 10k-row log. The old implementation
  // rescanned every row per call (~1e9 row visits, tens of seconds); the
  // O(slices) lookup finishes orders of magnitude inside this bound.
  SystemMonitor monitor(2, 1);
  for (std::size_t period = 0; period < 1000; ++period) {
    for (std::size_t t = 0; t < 10; ++t) {
      monitor.record(0, period, period * 10 + t, make_step({-1.0, -2.0}, {}), {});
    }
  }
  const auto start = std::chrono::steady_clock::now();
  double checksum = 0.0;
  for (std::size_t call = 0; call < 100000; ++call) {
    checksum += monitor.report(0, call % 1000).performance_sums[0];
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_DOUBLE_EQ(checksum, -1.0 * 10 * 100000);
  EXPECT_LT(elapsed, 2.0) << "report() appears to rescan the row log";
}

TEST(Monitor, RetentionCapEvictsOldestRows) {
  SystemMonitor monitor(2, 1);
  monitor.set_retention_cap(100);
  EXPECT_EQ(monitor.retention_cap(), 100u);
  for (std::size_t t = 0; t < 500; ++t) {
    monitor.record(0, t / 10, t, make_step({-1.0, -2.0}, {}), {});
  }
  // Eviction is chunked (amortized O(1)), so the log may briefly exceed
  // the cap by the chunk slack but never by more.
  EXPECT_LE(monitor.records().size(), 125u);
  EXPECT_EQ(monitor.records().size() + monitor.evicted_rows(), 500u);
  // The retained tail is the newest rows, in recording order.
  EXPECT_EQ(monitor.records().back().interval, 499u);
  EXPECT_GT(monitor.records().front().interval, 300u);
}

TEST(Monitor, ReportsSurviveEviction) {
  // Period sums must keep the full history even after their raw rows
  // have been evicted, so RC-M reports stay exact on long runs.
  SystemMonitor monitor(2, 1);
  monitor.set_retention_cap(10);
  for (std::size_t period = 0; period < 100; ++period) {
    monitor.record(0, period, period, make_step({-3.0, -4.0}, {}), {});
  }
  const auto oldest = monitor.report(0, 0);
  EXPECT_DOUBLE_EQ(oldest.performance_sums[0], -3.0);
  EXPECT_DOUBLE_EQ(oldest.performance_sums[1], -4.0);
  EXPECT_GT(monitor.evicted_rows(), 0u);
}

TEST(Monitor, ZeroCapRetainsEverything) {
  SystemMonitor monitor(2, 1);
  for (std::size_t t = 0; t < 300; ++t) {
    monitor.record(0, 0, t, make_step({-1.0, -1.0}, {}), {});
  }
  EXPECT_EQ(monitor.records().size(), 300u);
  EXPECT_EQ(monitor.evicted_rows(), 0u);
}

TEST(Monitor, ClearRecordsKeepsAssociations) {
  SystemMonitor monitor(2, 1);
  monitor.register_user(UserAssociation{"imsi-1", "10.0.0.1", 0});
  monitor.record(0, 0, 0, make_step({-1, -1}, {}), {});
  monitor.clear_records();
  EXPECT_TRUE(monitor.records().empty());
  EXPECT_EQ(monitor.user_count(), 1u);
}

}  // namespace
}  // namespace edgeslice::core
