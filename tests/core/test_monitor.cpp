#include "core/monitor.h"

#include <gtest/gtest.h>

#include <sstream>

namespace edgeslice::core {
namespace {

env::StepResult make_step(std::vector<double> perf, std::vector<double> queues) {
  env::StepResult result;
  result.performance = std::move(perf);
  result.queue_lengths = std::move(queues);
  result.reward = -1.0;
  return result;
}

TEST(Monitor, ValidatesConstruction) {
  EXPECT_THROW(SystemMonitor(0, 1), std::invalid_argument);
  EXPECT_THROW(SystemMonitor(1, 0), std::invalid_argument);
}

TEST(Monitor, RecordsRows) {
  SystemMonitor monitor(2, 2);
  monitor.record(0, 0, 0, make_step({-1, -2}, {1, 2}), {0.5, 0.5, 0.5, 0.5, 0.5, 0.5});
  ASSERT_EQ(monitor.records().size(), 1u);
  EXPECT_EQ(monitor.records()[0].ra, 0u);
  EXPECT_THROW(monitor.record(5, 0, 0, make_step({}, {}), {}), std::out_of_range);
}

TEST(Monitor, RcmReportSumsPeriodPerformance) {
  SystemMonitor monitor(2, 2);
  monitor.record(0, 0, 0, make_step({-1, -2}, {}), {});
  monitor.record(0, 0, 1, make_step({-3, -4}, {}), {});
  monitor.record(0, 1, 2, make_step({-100, -100}, {}), {});  // next period
  monitor.record(1, 0, 0, make_step({-10, -10}, {}), {});    // other RA
  const auto report = monitor.report(0, 0);
  EXPECT_EQ(report.ra, 0u);
  EXPECT_DOUBLE_EQ(report.performance_sums[0], -4.0);
  EXPECT_DOUBLE_EQ(report.performance_sums[1], -6.0);
}

TEST(Monitor, ReportForSkippedPeriodIsZero) {
  // A monitor that recorded nothing for a period (e.g. its RA was down)
  // reports zero sums rather than stale or garbage data.
  SystemMonitor monitor(2, 2);
  monitor.record(0, 0, 0, make_step({-1, -2}, {}), {});
  monitor.record(0, 2, 20, make_step({-7, -8}, {}), {});  // period 1 skipped
  const auto report = monitor.report(0, 1);
  ASSERT_EQ(report.performance_sums.size(), 2u);
  EXPECT_DOUBLE_EQ(report.performance_sums[0], 0.0);
  EXPECT_DOUBLE_EQ(report.performance_sums[1], 0.0);
}

TEST(Monitor, OutOfOrderRecordsStillSumPerPeriod) {
  // Records arriving out of interval/period order (delayed telemetry)
  // must not change a period's report.
  SystemMonitor monitor(2, 1);
  monitor.record(0, 1, 12, make_step({-5, -6}, {}), {});
  monitor.record(0, 0, 3, make_step({-1, -2}, {}), {});  // older period, later arrival
  monitor.record(0, 0, 1, make_step({-3, -4}, {}), {});  // earlier interval, last
  const auto period0 = monitor.report(0, 0);
  EXPECT_DOUBLE_EQ(period0.performance_sums[0], -4.0);
  EXPECT_DOUBLE_EQ(period0.performance_sums[1], -6.0);
  const auto period1 = monitor.report(0, 1);
  EXPECT_DOUBLE_EQ(period1.performance_sums[0], -5.0);
  EXPECT_DOUBLE_EQ(period1.performance_sums[1], -6.0);
}

TEST(Monitor, SystemPerformanceSeriesSumsAcrossRas) {
  SystemMonitor monitor(2, 2);
  monitor.record(0, 0, 0, make_step({-1, -2}, {}), {});
  monitor.record(1, 0, 0, make_step({-3, -4}, {}), {});
  monitor.record(0, 0, 1, make_step({-5, -5}, {}), {});
  const auto series = monitor.system_performance_series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], -10.0);
  EXPECT_DOUBLE_EQ(series[1], -10.0);
}

TEST(Monitor, SlicePerformanceSeries) {
  SystemMonitor monitor(2, 1);
  monitor.record(0, 0, 0, make_step({-1, -9}, {}), {});
  const auto series = monitor.slice_performance_series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0][0], -1.0);
  EXPECT_DOUBLE_EQ(series[1][0], -9.0);
}

TEST(Monitor, ResourceUsageSeries) {
  SystemMonitor monitor(2, 1);
  monitor.record(0, 0, 0, make_step({-1, -1}, {}), {0.7, 0.6, 0.5, 0.3, 0.4, 0.5});
  const auto radio_s0 = monitor.resource_usage_series(0, 0, 0);
  const auto compute_s1 = monitor.resource_usage_series(0, 1, 2);
  EXPECT_DOUBLE_EQ(radio_s0[0], 0.7);
  EXPECT_DOUBLE_EQ(compute_s1[0], 0.5);
  EXPECT_THROW(monitor.resource_usage_series(0, 0, 9), std::out_of_range);
}

TEST(Monitor, UserAssociationByImsiAndIp) {
  SystemMonitor monitor(2, 1);
  monitor.register_user(UserAssociation{"310170000000001", "10.0.0.1", 0});
  monitor.register_user(UserAssociation{"310170000000002", "10.0.1.1", 1});
  EXPECT_EQ(monitor.slice_of_imsi("310170000000001"), 0u);
  EXPECT_EQ(monitor.slice_of_ip("10.0.1.1"), 1u);
  EXPECT_EQ(monitor.user_count(), 2u);
  EXPECT_THROW(monitor.slice_of_imsi("nope"), std::out_of_range);
  EXPECT_THROW(monitor.slice_of_ip("9.9.9.9"), std::out_of_range);
}

TEST(Monitor, DuplicateIdentityRejected) {
  SystemMonitor monitor(2, 1);
  monitor.register_user(UserAssociation{"imsi-1", "10.0.0.1", 0});
  EXPECT_THROW(monitor.register_user(UserAssociation{"imsi-1", "10.0.0.2", 0}),
               std::invalid_argument);
  EXPECT_THROW(monitor.register_user(UserAssociation{"imsi-2", "10.0.0.1", 0}),
               std::invalid_argument);
}

TEST(Monitor, BadSliceInAssociationRejected) {
  SystemMonitor monitor(2, 1);
  EXPECT_THROW(monitor.register_user(UserAssociation{"x", "y", 7}),
               std::invalid_argument);
}

TEST(Monitor, CsvExportHasRowPerSlice) {
  SystemMonitor monitor(2, 1);
  env::StepResult step = make_step({-1, -2}, {3, 4});
  monitor.record(0, 0, 0, step, {0.1, 0.2, 0.3, 0.4, 0.5, 0.6});
  std::stringstream out;
  monitor.write_csv(out);
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line,
            "period,interval,ra,slice,queue,performance,radio,transport,computing,reward");
  std::getline(out, line);
  EXPECT_EQ(line, "0,0,0,0,3,-1,0.1,0.2,0.3,-1");
  std::getline(out, line);
  EXPECT_EQ(line, "0,0,0,1,4,-2,0.4,0.5,0.6,-1");
}

TEST(Monitor, ClearRecordsKeepsAssociations) {
  SystemMonitor monitor(2, 1);
  monitor.register_user(UserAssociation{"imsi-1", "10.0.0.1", 0});
  monitor.record(0, 0, 0, make_step({-1, -1}, {}), {});
  monitor.clear_records();
  EXPECT_TRUE(monitor.records().empty());
  EXPECT_EQ(monitor.user_count(), 1u);
}

}  // namespace
}  // namespace edgeslice::core
