// Property test: the coordinator's ADMM loop solves the consensus problem
// it is built for. Scripted "agents" respond to the coordinating
// information by delivering performance that tracks the target (as the
// trained DRL agents do, per the reward in Eq. 15); the coordinator's z
// must converge onto the SLA boundary and the duals must stabilize.
#include <gtest/gtest.h>

#include "core/coordinator.h"

namespace edgeslice::core {
namespace {

class ConsensusSweep : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(ConsensusSweep, TrackingAgentsReachConsensus) {
  const auto [slices_int, ras_int, u_min] = GetParam();
  const auto slices = static_cast<std::size_t>(slices_int);
  const auto ras = static_cast<std::size_t>(ras_int);

  CoordinatorConfig config;
  config.slices = slices;
  config.ras = ras;
  config.u_min = std::vector<double>(slices, u_min);
  PerformanceCoordinator coordinator(config);

  // Agent model: each RA delivers exactly what the coordinator asks for,
  // up to a performance ceiling of 0 (queues cannot be negative) and a
  // floor representing finite resources.
  const double floor = u_min;  // an RA can at worst deliver the whole SLA
  nn::Matrix u(slices, ras);
  for (int iteration = 0; iteration < 60; ++iteration) {
    for (std::size_t i = 0; i < slices; ++i) {
      for (std::size_t j = 0; j < ras; ++j) {
        const double target =
            coordinator.coordination_for(j).z_minus_y.empty()
                ? 0.0
                : coordinator.coordination_for(j).z_minus_y[i];
        u(i, j) = std::clamp(target, floor, 0.0);
      }
    }
    coordinator.update(u);
  }

  // Consensus: every slice's z sums to at least U_min, duals finite, and
  // the delivered performance satisfies the SLA.
  for (std::size_t i = 0; i < slices; ++i) {
    EXPECT_TRUE(coordinator.sla_satisfied(i)) << "slice " << i;
    double delivered = 0.0;
    for (std::size_t j = 0; j < ras; ++j) delivered += u(i, j);
    EXPECT_GE(delivered, u_min - 1.0) << "slice " << i;
    for (std::size_t j = 0; j < ras; ++j) {
      EXPECT_LT(std::abs(coordinator.y(i, j)), 1e3) << "dual diverged";
    }
  }
  EXPECT_TRUE(coordinator.converged());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ConsensusSweep,
    ::testing::Values(std::make_tuple(2, 2, -50.0), std::make_tuple(2, 2, -10.0),
                      std::make_tuple(5, 10, -50.0), std::make_tuple(3, 7, -25.0),
                      std::make_tuple(1, 1, -50.0), std::make_tuple(7, 3, -100.0)),
    [](const auto& param_info) {
      return "s" + std::to_string(std::get<0>(param_info.param)) + "r" +
             std::to_string(std::get<1>(param_info.param)) + "u" +
             std::to_string(static_cast<int>(-std::get<2>(param_info.param)));
    });

}  // namespace
}  // namespace edgeslice::core
