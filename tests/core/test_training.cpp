#include "core/training.h"

#include <gtest/gtest.h>

#include <memory>

#include "rl/frozen.h"

#include "env/service_model.h"
#include "rl/ddpg.h"

namespace edgeslice::core {
namespace {

env::RaEnvironment make_env(std::uint64_t seed = 1) {
  const auto model =
      std::make_shared<env::DirectServiceModel>(env::prototype_capacity());
  env::RaEnvironmentConfig config;
  config.intervals_per_period = 10;
  return env::RaEnvironment(config, {env::slice1_profile(), env::slice2_profile()}, model,
                            env::make_queue_power_perf(), Rng(seed));
}

std::unique_ptr<rl::Ddpg> make_agent(const env::RaEnvironment& environment, Rng& rng) {
  rl::DdpgConfig config;
  config.base.state_dim = environment.state_dim();
  config.base.action_dim = environment.action_dim();
  config.base.hidden = 48;
  config.batch_size = 48;
  config.warmup = 96;
  config.noise_decay = 0.999;
  config.noise_min = 0.08;
  return std::make_unique<rl::Ddpg>(config, rng);
}

TEST(Training, DimensionMismatchThrows) {
  auto environment = make_env();
  Rng rng(1);
  rl::DdpgConfig config;
  config.base.state_dim = 3;  // wrong
  config.base.action_dim = environment.action_dim();
  rl::Ddpg agent(config, rng);
  TrainingConfig training;
  EXPECT_THROW(train_agent(agent, environment, training, rng), std::invalid_argument);
}

TEST(Training, BadCoordinationRangeThrows) {
  auto environment = make_env();
  Rng rng(2);
  auto agent = make_agent(environment, rng);
  TrainingConfig training;
  training.coordination_low = 0.0;
  training.coordination_high = -1.0;
  EXPECT_THROW(train_agent(*agent, environment, training, rng), std::invalid_argument);
}

TEST(Training, RunsRequestedSteps) {
  auto environment = make_env();
  Rng rng(3);
  auto agent = make_agent(environment, rng);
  TrainingConfig training;
  training.steps = 300;
  const auto result = train_agent(*agent, environment, training, rng);
  EXPECT_EQ(result.steps, 300u);
  EXPECT_EQ(result.reward_history.size(), 3u);  // one entry per 100 steps
  EXPECT_GT(agent->update_count(), 0u);
}

TEST(Training, ImprovesShapedReward) {
  auto environment = make_env(7);
  Rng rng(4);
  auto agent = make_agent(environment, rng);
  TrainingConfig training;
  training.steps = 3500;
  const auto result = train_agent(*agent, environment, training, rng);
  ASSERT_GE(result.reward_history.size(), 5u);
  // Mean of last 3 windows should beat the mean of the first 3.
  double early = 0.0;
  double late = 0.0;
  for (int k = 0; k < 3; ++k) {
    early += result.reward_history[k] / 3.0;
    late += result.reward_history[result.reward_history.size() - 1 - k] / 3.0;
  }
  EXPECT_GT(late, early);
}

TEST(Training, ValidationCheckpointingKeepsBestPolicy) {
  auto environment = make_env(3);
  Rng rng(6);
  auto agent = make_agent(environment, rng);
  TrainingConfig training;
  training.steps = 1500;
  training.validation_every = 300;
  training.validation_intervals = 30;
  const auto result = train_agent(*agent, environment, training, rng);
  ASSERT_TRUE(result.best_policy.has_value());
  ASSERT_FALSE(result.validation_history.empty());
  // The recorded best score is the max of the history.
  double best = result.validation_history.front();
  for (double v : result.validation_history) best = std::max(best, v);
  EXPECT_DOUBLE_EQ(result.best_validation_score, best);
  // The snapshot reproduces (at least) its recorded validation score.
  rl::FrozenActor frozen(*result.best_policy);
  const double replay_score = validate_policy(frozen, environment, -25.0, 30);
  EXPECT_LE(std::abs(replay_score - result.best_validation_score),
            std::abs(result.best_validation_score) * 0.9 + 50.0);
}

TEST(Training, ValidationDisabledByDefault) {
  auto environment = make_env(4);
  Rng rng(7);
  auto agent = make_agent(environment, rng);
  TrainingConfig training;
  training.steps = 300;
  const auto result = train_agent(*agent, environment, training, rng);
  EXPECT_FALSE(result.best_policy.has_value());
  EXPECT_TRUE(result.validation_history.empty());
}

TEST(Training, ValidatePolicyRestoresEnvironmentState) {
  auto environment = make_env(5);
  Rng rng(8);
  auto agent = make_agent(environment, rng);
  environment.set_coordination({-10.0, -20.0});
  validate_policy(*agent, environment, -25.0, 10);
  EXPECT_EQ(environment.coordination(), (std::vector<double>{-10.0, -20.0}));
  EXPECT_EQ(environment.queue(0).length(), 0u);  // reset on exit
}

TEST(Training, BoundarySamplingPinsCoordination) {
  auto environment = make_env(9);
  Rng rng(10);
  auto agent = make_agent(environment, rng);
  TrainingConfig training;
  training.steps = 25;
  training.boundary_sample_probability = 1.0;  // always the boundary
  training.coordination_low = -42.0;
  train_agent(*agent, environment, training, rng);
  for (double c : environment.coordination()) EXPECT_DOUBLE_EQ(c, -42.0);
}

TEST(Training, ContinuingModeKeepsQueuesAcrossResamples) {
  auto environment = make_env(11);
  Rng rng(12);
  // An agent that starves the queues: zero training effect needed, so use
  // an untrained agent but give the env no service at all via zero arrival
  // observation — instead simply check that reset is not called by
  // verifying total arrivals accumulate monotonically across resamples.
  auto agent = make_agent(environment, rng);
  TrainingConfig training;
  training.steps = 45;           // several resample boundaries (period = 10)
  training.reset_on_resample = false;
  train_agent(*agent, environment, training, rng);
  // 45 steps of Poisson(10) arrivals with no reset: total arrivals ~ 450.
  EXPECT_GT(environment.queue(0).total_arrivals() + environment.queue(1).total_arrivals(),
            500u);  // both slices combined
}

TEST(Training, EpisodicModeResetsQueues) {
  auto environment = make_env(13);
  Rng rng(14);
  auto agent = make_agent(environment, rng);
  TrainingConfig training;
  training.steps = 45;
  training.reset_on_resample = true;  // default
  train_agent(*agent, environment, training, rng);
  // The last reset happened at step 40; only ~5 steps of arrivals remain
  // in the counters.
  EXPECT_LT(environment.queue(0).total_arrivals(), 150u);
}

TEST(Training, ValidationScoreInvariantToCurrentTrafficRates) {
  // Regression: validate_policy must pin the arrival rate. Before the fix,
  // whatever rates the last traffic resample happened to set leaked into
  // the rollout, so checkpoint scores taken under randomize_traffic were
  // measured under different (incomparable) traffic.
  auto environment_a = make_env(21);
  auto environment_b = make_env(21);
  environment_a.set_arrival_rates({3.0, 4.0});
  environment_b.set_arrival_rates({18.0, 9.0});
  Rng rng(22);
  nn::Mlp actor({environment_a.state_dim(), 24, environment_a.action_dim()},
                nn::Activation::LeakyRelu, nn::Activation::Sigmoid, rng);
  rl::FrozenActor agent(actor);
  const double score_a = validate_policy(agent, environment_a, -25.0, 30);
  const double score_b = validate_policy(agent, environment_b, -25.0, 30);
  EXPECT_DOUBLE_EQ(score_a, score_b);
}

TEST(Training, ValidationScoresComparableAcrossCheckpoints) {
  // Same environment, validated twice with arbitrary training activity in
  // between (rate perturbation + consumed randomness): a frozen policy
  // must score identically at both "checkpoints", otherwise best-policy
  // selection compares noise.
  auto environment = make_env(23);
  Rng rng(24);
  nn::Mlp actor({environment.state_dim(), 24, environment.action_dim()},
                nn::Activation::LeakyRelu, nn::Activation::Sigmoid, rng);
  rl::FrozenActor agent(actor);
  const double first = validate_policy(agent, environment, -25.0, 25, 7.0);

  environment.set_arrival_rates({29.0, 2.5});
  const std::vector<double> action(environment.action_dim(), 0.5);
  for (int t = 0; t < 57; ++t) environment.step(action);

  const double second = validate_policy(agent, environment, -25.0, 25, 7.0);
  EXPECT_DOUBLE_EQ(first, second);
  // The perturbed training state survives validation untouched.
  EXPECT_DOUBLE_EQ(environment.arrival_rate(0), 29.0);
  EXPECT_DOUBLE_EQ(environment.arrival_rate(1), 2.5);
}

TEST(Training, TrafficRandomizationChangesArrivals) {
  auto environment = make_env();
  Rng rng(5);
  auto agent = make_agent(environment, rng);
  TrainingConfig training;
  training.steps = 50;
  training.randomize_traffic = true;
  training.traffic_low = 1.0;
  training.traffic_high = 30.0;
  train_agent(*agent, environment, training, rng);
  // At least one slice's rate should have moved off the default 10.0.
  const bool moved = environment.arrival_rate(0) != 10.0 ||
                     environment.arrival_rate(1) != 10.0;
  EXPECT_TRUE(moved);
}

}  // namespace
}  // namespace edgeslice::core
