#include "core/system.h"

#include <gtest/gtest.h>

#include <memory>

#include "env/service_model.h"

namespace edgeslice::core {
namespace {

class SystemTest : public ::testing::Test {
 protected:
  SystemTest() {
    const auto model =
        std::make_shared<env::DirectServiceModel>(env::prototype_capacity());
    env::RaEnvironmentConfig config;
    config.intervals_per_period = 5;
    for (std::size_t j = 0; j < 2; ++j) {
      environments_.push_back(std::make_unique<env::RaEnvironment>(
          config, std::vector<env::AppProfile>{env::slice1_profile(), env::slice2_profile()},
          model, env::make_queue_power_perf(), Rng(100 + j)));
      policies_.push_back(std::make_unique<TaroPolicy>());
    }
  }

  CoordinatorConfig coordinator_config() {
    CoordinatorConfig config;
    config.slices = 2;
    config.ras = 2;
    return config;
  }

  std::vector<env::RaEnvironment*> env_ptrs() {
    std::vector<env::RaEnvironment*> out;
    for (auto& e : environments_) out.push_back(e.get());
    return out;
  }
  std::vector<RaPolicy*> policy_ptrs() {
    std::vector<RaPolicy*> out;
    for (auto& p : policies_) out.push_back(p.get());
    return out;
  }

  std::vector<std::unique_ptr<env::RaEnvironment>> environments_;
  std::vector<std::unique_ptr<RaPolicy>> policies_;
};

TEST_F(SystemTest, ValidatesWiring) {
  auto envs = env_ptrs();
  auto pols = policy_ptrs();
  pols.pop_back();
  EXPECT_THROW(EdgeSliceSystem(envs, pols, coordinator_config()), std::invalid_argument);
  CoordinatorConfig bad = coordinator_config();
  bad.ras = 3;
  EXPECT_THROW(EdgeSliceSystem(env_ptrs(), policy_ptrs(), bad), std::invalid_argument);
}

TEST_F(SystemTest, PeriodRunsTIntervalsPerRa) {
  EdgeSliceSystem system(env_ptrs(), policy_ptrs(), coordinator_config());
  system.run_period();
  // 5 intervals x 2 RAs = 10 monitor rows.
  EXPECT_EQ(system.monitor().records().size(), 10u);
  EXPECT_EQ(system.period_count(), 1u);
}

TEST_F(SystemTest, PerformanceSumsConsistent) {
  EdgeSliceSystem system(env_ptrs(), policy_ptrs(), coordinator_config());
  const auto result = system.run_period();
  double total = 0.0;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) total += result.performance_sums(i, j);
  }
  EXPECT_NEAR(total, result.system_performance, 1e-9);
  EXPECT_NEAR(result.slice_performance[0] + result.slice_performance[1],
              result.system_performance, 1e-9);
}

TEST_F(SystemTest, CoordinatorFeedsCoordinationToEnvs) {
  EdgeSliceSystem system(env_ptrs(), policy_ptrs(), coordinator_config());
  system.run_period();
  // TARO with queue growth violates the SLA, so coordination becomes
  // non-zero after the first coordinator update.
  bool any_nonzero = false;
  for (const auto* environment : env_ptrs()) {
    for (double c : environment->coordination()) {
      if (c != 0.0) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
}

TEST_F(SystemTest, NoCoordinatorModeLeavesCoordinationZero) {
  SystemConfig config;
  config.use_coordinator = false;
  EdgeSliceSystem system(env_ptrs(), policy_ptrs(), coordinator_config(), config);
  system.run_period();
  for (const auto* environment : env_ptrs()) {
    for (double c : environment->coordination()) EXPECT_DOUBLE_EQ(c, 0.0);
  }
}

TEST_F(SystemTest, RunReturnsOneResultPerPeriod) {
  EdgeSliceSystem system(env_ptrs(), policy_ptrs(), coordinator_config());
  const auto results = system.run(4);
  EXPECT_EQ(results.size(), 4u);
  EXPECT_EQ(system.period_count(), 4u);
  // Interval indices are global: 4 periods x 5 intervals.
  EXPECT_EQ(system.monitor().system_performance_series().size(), 20u);
}

TEST_F(SystemTest, MonitorSeriesMatchesPeriodSums) {
  EdgeSliceSystem system(env_ptrs(), policy_ptrs(), coordinator_config());
  const auto result = system.run_period();
  const auto series = system.monitor().system_performance_series();
  double from_series = 0.0;
  for (double v : series) from_series += v;
  EXPECT_NEAR(from_series, result.system_performance, 1e-9);
}

}  // namespace
}  // namespace edgeslice::core
