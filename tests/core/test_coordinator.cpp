#include "core/coordinator.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace edgeslice::core {
namespace {

CoordinatorConfig make_config(std::size_t slices = 2, std::size_t ras = 2) {
  CoordinatorConfig config;
  config.slices = slices;
  config.ras = ras;
  config.u_min = std::vector<double>(slices, -50.0);  // paper default
  return config;
}

TEST(Coordinator, InitialCoordinationIsZero) {
  PerformanceCoordinator coordinator(make_config());
  const auto msg = coordinator.coordination_for(0);
  EXPECT_EQ(msg.z_minus_y.size(), 2u);
  EXPECT_DOUBLE_EQ(msg.z_minus_y[0], 0.0);
  EXPECT_DOUBLE_EQ(msg.z_minus_y[1], 0.0);
}

TEST(Coordinator, ValidatesConstruction) {
  CoordinatorConfig config;
  config.slices = 0;
  EXPECT_THROW(PerformanceCoordinator{config}, std::invalid_argument);
  config = make_config();
  config.u_min = {1.0};  // wrong size
  EXPECT_THROW(PerformanceCoordinator{config}, std::invalid_argument);
}

TEST(Coordinator, DefaultsUMinToMinus50) {
  CoordinatorConfig config;
  config.slices = 3;
  config.ras = 1;
  PerformanceCoordinator coordinator(config);
  EXPECT_EQ(coordinator.config().u_min, (std::vector<double>{-50, -50, -50}));
}

TEST(Coordinator, FeasiblePerformanceKeepsZEqualToUPlusY) {
  // When sum_j U_ij >= U_min, the projection is the identity: z = U + y,
  // and with y starting at 0 the dual stays 0.
  PerformanceCoordinator coordinator(make_config());
  nn::Matrix u{{-10.0, -15.0}, {-5.0, -20.0}};  // rows: slices, cols: RAs
  coordinator.update(u);
  EXPECT_DOUBLE_EQ(coordinator.z(0, 0), -10.0);
  EXPECT_DOUBLE_EQ(coordinator.z(1, 1), -20.0);
  EXPECT_DOUBLE_EQ(coordinator.y(0, 0), 0.0);
  EXPECT_TRUE(coordinator.sla_satisfied(0));
  EXPECT_TRUE(coordinator.sla_satisfied(1));
}

TEST(Coordinator, InfeasiblePerformanceProjectsOntoSla) {
  PerformanceCoordinator coordinator(make_config());
  nn::Matrix u{{-40.0, -40.0}, {-10.0, -10.0}};  // slice 0 violates -50
  coordinator.update(u);
  // z for slice 0 lands on the boundary: sum_j z = -50, deficit split.
  EXPECT_NEAR(coordinator.z(0, 0) + coordinator.z(0, 1), -50.0, 1e-9);
  EXPECT_NEAR(coordinator.z(0, 0), -25.0, 1e-9);
  EXPECT_TRUE(coordinator.sla_satisfied(0));
  // Dual reflects the violation: y = U - z = -40 + 25 = -15 per RA.
  EXPECT_NEAR(coordinator.y(0, 0), -15.0, 1e-9);
  // Coordination pushes the agent to improve: z - y = -25 + 15 = -10.
  EXPECT_NEAR(coordinator.coordination_for(0).z_minus_y[0], -10.0, 1e-9);
}

TEST(Coordinator, DualAccumulatesAcrossIterations) {
  PerformanceCoordinator coordinator(make_config());
  nn::Matrix u{{-40.0, -40.0}, {-10.0, -10.0}};
  coordinator.update(u);
  coordinator.update(u);
  EXPECT_NEAR(coordinator.y(0, 0), -30.0, 1e-9);  // two violations accumulated
}

TEST(Coordinator, UpdateValidatesShape) {
  PerformanceCoordinator coordinator(make_config());
  EXPECT_THROW(coordinator.update(nn::Matrix(3, 2)), std::invalid_argument);
}

TEST(Coordinator, RcmReportsPathEquivalent) {
  PerformanceCoordinator a(make_config());
  PerformanceCoordinator b(make_config());
  nn::Matrix u{{-40.0, -40.0}, {-10.0, -10.0}};
  a.update(u);
  std::vector<RcMonitoringMessage> reports(2);
  reports[0].ra = 0;
  reports[0].performance_sums = {-40.0, -10.0};
  reports[1].ra = 1;
  reports[1].performance_sums = {-40.0, -10.0};
  b.update(reports);
  EXPECT_DOUBLE_EQ(a.z(0, 0), b.z(0, 0));
  EXPECT_DOUBLE_EQ(a.y(1, 1), b.y(1, 1));
}

TEST(Coordinator, MalformedReportsThrow) {
  PerformanceCoordinator coordinator(make_config());
  std::vector<RcMonitoringMessage> reports(1);  // missing one RA
  reports[0].ra = 0;
  reports[0].performance_sums = {-1.0, -2.0};
  EXPECT_THROW(coordinator.update(reports), std::invalid_argument);
}

TEST(Coordinator, RejectsNonFinitePerformanceSums) {
  PerformanceCoordinator coordinator(make_config());
  nn::Matrix with_nan{{-1.0, std::nan("")}, {-2.0, -3.0}};
  EXPECT_THROW(coordinator.update(with_nan), std::invalid_argument);
  nn::Matrix with_inf{{-1.0, -2.0},
                      {-3.0, -std::numeric_limits<double>::infinity()}};
  EXPECT_THROW(coordinator.update(with_inf), std::invalid_argument);
  // A rejected update must not have poisoned z/y.
  EXPECT_DOUBLE_EQ(coordinator.z(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(coordinator.y(1, 1), 0.0);
}

TEST(Coordinator, RejectsDuplicateAndNonFiniteReports) {
  PerformanceCoordinator coordinator(make_config());
  std::vector<RcMonitoringMessage> duplicate(2);
  duplicate[0].ra = 0;
  duplicate[0].performance_sums = {-1.0, -2.0};
  duplicate[1].ra = 0;  // RA 1 missing, RA 0 reported twice
  duplicate[1].performance_sums = {-3.0, -4.0};
  EXPECT_THROW(coordinator.update(duplicate), std::invalid_argument);

  std::vector<RcMonitoringMessage> poisoned(2);
  poisoned[0].ra = 0;
  poisoned[0].performance_sums = {-1.0, std::nan("")};
  poisoned[1].ra = 1;
  poisoned[1].performance_sums = {-2.0, -3.0};
  EXPECT_THROW(coordinator.update(poisoned), std::invalid_argument);
}

TEST(Coordinator, RejectsNonFiniteSliceRequest) {
  PerformanceCoordinator coordinator(make_config());
  EXPECT_THROW(
      coordinator.apply_slice_request(SliceRequest{0, std::nan(""), "bad"}),
      std::invalid_argument);
  EXPECT_THROW(coordinator.apply_slice_request(SliceRequest{
                   0, std::numeric_limits<double>::infinity(), "bad"}),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(coordinator.config().u_min[0], -50.0);  // unchanged
}

TEST(Coordinator, MaskedUpdateFreezesInactiveColumns) {
  PerformanceCoordinator coordinator(make_config());
  nn::Matrix u{{-40.0, -40.0}, {-10.0, -10.0}};
  coordinator.update(u);
  const double z_frozen = coordinator.z(0, 1);
  const double y_frozen = coordinator.y(0, 1);
  nn::Matrix u2{{-30.0, 0.0}, {-5.0, 0.0}};  // column 1 is stale garbage
  coordinator.update(u2, {true, false});
  EXPECT_DOUBLE_EQ(coordinator.z(0, 1), z_frozen);
  EXPECT_DOUBLE_EQ(coordinator.y(0, 1), y_frozen);
  EXPECT_THROW(coordinator.update(u2, {true}), std::invalid_argument);  // bad mask size
}

TEST(Coordinator, MaskedUpdateWithAllActiveMatchesUnmasked) {
  PerformanceCoordinator masked(make_config());
  PerformanceCoordinator plain(make_config());
  nn::Matrix u{{-40.0, -40.0}, {-10.0, -10.0}};
  masked.update(u, {true, true});
  plain.update(u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(masked.z(i, j), plain.z(i, j));
      EXPECT_EQ(masked.y(i, j), plain.y(i, j));
    }
  }
}

TEST(Coordinator, ConvergesWhenPerformanceStabilizesFeasibly) {
  PerformanceCoordinator coordinator(make_config());
  nn::Matrix u{{-10.0, -10.0}, {-10.0, -10.0}};
  for (int i = 0; i < 5; ++i) coordinator.update(u);
  // Feasible + constant: primal residual 0 after first iteration, dual 0
  // after second -> converged.
  EXPECT_TRUE(coordinator.converged());
}

TEST(Coordinator, SliceRequestUpdatesSla) {
  PerformanceCoordinator coordinator(make_config());
  coordinator.apply_slice_request(SliceRequest{1, -30.0, "video"});
  EXPECT_DOUBLE_EQ(coordinator.config().u_min[1], -30.0);
  EXPECT_THROW(coordinator.apply_slice_request(SliceRequest{9, 0.0, ""}),
               std::out_of_range);
}

TEST(Coordinator, ScalesToManyRasAndSlices) {
  auto config = make_config(5, 10);
  PerformanceCoordinator coordinator(config);
  nn::Matrix u(5, 10, -2.0);
  coordinator.update(u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(coordinator.sla_satisfied(i));  // -20 total >= -50
    EXPECT_EQ(coordinator.coordination_for(9).z_minus_y.size(), 5u);
  }
}

}  // namespace
}  // namespace edgeslice::core
