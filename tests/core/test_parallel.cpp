// Determinism of the parallel execution paths (ctest label: parallel).
//
// The contract under test: with equal seeds, training a fleet of agents
// through core::train_agents and running EdgeSliceSystem::run_period are
// bit-identical whether executed sequentially or on a thread pool —
// per-job/per-RA Rng streams plus index-ordered reduction make worker
// interleaving unobservable. These tests also run under TSan
// (cmake --preset tsan && ctest --preset tsan) to prove the paths are
// data-race-free, not merely deterministic by luck.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "core/policies.h"
#include "core/system.h"
#include "core/training.h"
#include "env/service_model.h"
#include "rl/ddpg.h"
#include "rl/frozen.h"

namespace edgeslice::core {
namespace {

std::shared_ptr<const env::ServiceModel> make_model() {
  return std::make_shared<env::DirectServiceModel>(env::prototype_capacity());
}

std::unique_ptr<env::RaEnvironment> make_env(Rng rng) {
  env::RaEnvironmentConfig config;  // 2 slices, T = 10
  return std::make_unique<env::RaEnvironment>(
      config,
      std::vector<env::AppProfile>{env::slice1_profile(), env::slice2_profile()},
      make_model(), env::make_queue_power_perf(), rng);
}

// ---- train_agents: sequential == pooled, bit for bit ----------------------

struct FleetRun {
  std::vector<TrainingResult> results;
  std::vector<std::vector<double>> final_params;
};

FleetRun run_fleet(std::uint64_t seed, std::size_t agents, std::size_t threads) {
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<rl::Ddpg>> ddpgs;
  std::vector<TrainingJob> jobs;
  const Rng parent(seed);
  for (std::size_t j = 0; j < agents; ++j) {
    environments.push_back(make_env(parent.spawn(100 + j)));
    rl::DdpgConfig config;
    config.base.state_dim = environments[j]->state_dim();
    config.base.action_dim = environments[j]->action_dim();
    config.base.hidden = 24;
    config.batch_size = 32;
    config.warmup = 64;
    Rng agent_rng = parent.spawn(200 + j);
    ddpgs.push_back(std::make_unique<rl::Ddpg>(config, agent_rng));

    TrainingJob job;
    job.agent = ddpgs[j].get();
    job.environment = environments[j].get();
    job.config.steps = 400;
    job.config.validation_every = 150;
    job.config.validation_intervals = 20;
    job.config.randomize_traffic = true;  // exercises the pinned validation
    job.rng = parent.spawn(300 + j);
    jobs.push_back(std::move(job));
  }

  FleetRun out;
  if (threads <= 1) {
    out.results = train_agents(jobs, nullptr);
  } else {
    ThreadPool pool(threads);
    out.results = train_agents(jobs, &pool);
  }
  for (const auto& agent : ddpgs) {
    out.final_params.push_back(agent->policy_network()->flat_parameters());
  }
  return out;
}

TEST(ParallelDeterminism, TrainAgentsBitIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {11u, 12u}) {
    const FleetRun sequential = run_fleet(seed, 4, 1);
    const FleetRun pooled = run_fleet(seed, 4, 4);
    ASSERT_EQ(sequential.results.size(), pooled.results.size());
    for (std::size_t j = 0; j < sequential.results.size(); ++j) {
      const auto& a = sequential.results[j];
      const auto& b = pooled.results[j];
      EXPECT_EQ(a.reward_history, b.reward_history) << "seed " << seed << " agent " << j;
      EXPECT_EQ(a.validation_history, b.validation_history);
      EXPECT_EQ(a.best_validation_score, b.best_validation_score);
      EXPECT_EQ(a.final_mean_reward, b.final_mean_reward);
      EXPECT_EQ(sequential.final_params[j], pooled.final_params[j]);
    }
  }
}

TEST(ParallelDeterminism, TrainAgentsRejectsSharedAgentOrEnvironment) {
  auto environment_a = make_env(Rng(1));
  auto environment_b = make_env(Rng(2));
  rl::DdpgConfig config;
  config.base.state_dim = environment_a->state_dim();
  config.base.action_dim = environment_a->action_dim();
  Rng rng(3);
  rl::Ddpg agent(config, rng);
  std::vector<TrainingJob> shared_agent(2);
  shared_agent[0].agent = shared_agent[1].agent = &agent;
  shared_agent[0].environment = environment_a.get();
  shared_agent[1].environment = environment_b.get();
  EXPECT_THROW(train_agents(shared_agent), std::invalid_argument);

  std::vector<TrainingJob> null_env(1);
  null_env[0].agent = &agent;
  EXPECT_THROW(train_agents(null_env), std::invalid_argument);
}

// ---- run_period: sequential == pooled, bit for bit ------------------------

struct SystemRun {
  std::vector<PeriodResult> periods;
  std::vector<double> series;
  std::vector<IntervalRecord> records;
};

SystemRun run_system(std::uint64_t seed, std::size_t threads,
                     const FaultInjector* faults, std::shared_ptr<rl::Agent> agent) {
  constexpr std::size_t kRas = 4;
  const Rng parent(seed);
  std::vector<std::unique_ptr<env::RaEnvironment>> environments;
  std::vector<std::unique_ptr<RaPolicy>> policies;
  std::vector<env::RaEnvironment*> env_ptrs;
  std::vector<RaPolicy*> policy_ptrs;
  for (std::size_t j = 0; j < kRas; ++j) {
    environments.push_back(make_env(parent.spawn(500 + j)));
    if (agent) {
      policies.push_back(std::make_unique<LearnedPolicy>(agent, /*learn=*/false));
    } else {
      policies.push_back(std::make_unique<TaroPolicy>());
    }
    env_ptrs.push_back(environments.back().get());
    policy_ptrs.push_back(policies.back().get());
  }
  CoordinatorConfig coordinator;
  coordinator.slices = 2;
  coordinator.ras = kRas;
  SystemConfig config;
  config.faults = faults;
  ThreadPool pool(threads);
  config.pool = threads > 1 ? &pool : nullptr;
  EdgeSliceSystem system(env_ptrs, policy_ptrs, coordinator, config);

  SystemRun out;
  out.periods = system.run(4);
  out.series = system.monitor().system_performance_series();
  out.records = system.monitor().records();
  return out;
}

void expect_identical(const SystemRun& a, const SystemRun& b) {
  ASSERT_EQ(a.periods.size(), b.periods.size());
  for (std::size_t p = 0; p < a.periods.size(); ++p) {
    EXPECT_EQ(a.periods[p].performance_sums.data(), b.periods[p].performance_sums.data());
    EXPECT_EQ(a.periods[p].slice_performance, b.periods[p].slice_performance);
    EXPECT_EQ(a.periods[p].system_performance, b.periods[p].system_performance);
    EXPECT_EQ(a.periods[p].crashed_ras, b.periods[p].crashed_ras);
    EXPECT_EQ(a.periods[p].reports_fresh, b.periods[p].reports_fresh);
    EXPECT_EQ(a.periods[p].columns_frozen, b.periods[p].columns_frozen);
    EXPECT_EQ(a.periods[p].rcl_losses, b.periods[p].rcl_losses);
  }
  EXPECT_EQ(a.series, b.series);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t r = 0; r < a.records.size(); ++r) {
    EXPECT_EQ(a.records[r].period, b.records[r].period);
    EXPECT_EQ(a.records[r].interval, b.records[r].interval);
    EXPECT_EQ(a.records[r].ra, b.records[r].ra);
    EXPECT_EQ(a.records[r].performance, b.records[r].performance);
    EXPECT_EQ(a.records[r].action, b.records[r].action);
    EXPECT_EQ(a.records[r].reward, b.records[r].reward);
  }
}

TEST(ParallelDeterminism, RunPeriodBitIdenticalWithTaroPolicies) {
  for (const std::uint64_t seed : {21u, 22u}) {
    expect_identical(run_system(seed, 1, nullptr, nullptr),
                     run_system(seed, 4, nullptr, nullptr));
  }
}

TEST(ParallelDeterminism, RunPeriodBitIdenticalWithSharedFrozenActor) {
  Rng rng(31);
  // A shared deployment actor: act() is const inference, so concurrent
  // per-RA use is race-free (the case the benches run).
  nn::Mlp actor({4, 24, 6}, nn::Activation::LeakyRelu, nn::Activation::Sigmoid, rng);
  const auto agent = std::make_shared<rl::FrozenActor>(actor);
  for (const std::uint64_t seed : {21u, 22u}) {
    expect_identical(run_system(seed, 1, nullptr, agent),
                     run_system(seed, 4, nullptr, agent));
  }
}

TEST(ParallelDeterminism, RunPeriodBitIdenticalUnderFaults) {
  // PR 1's chaos-reproducibility guarantee must survive the pool: the
  // same fault plan yields the same degraded-mode run at any thread count.
  FaultPlan plan;
  plan.seed = 5;
  plan.rates.ra_crash = 0.2;
  plan.rates.rcm_drop = 0.2;
  plan.rates.rcm_delay = 0.2;
  plan.rates.rcl_drop = 0.2;
  plan.rates.cqi_blackout = 0.1;
  plan.rates.compute_slowdown = 0.15;
  const FaultInjector faults(plan);
  expect_identical(run_system(23, 1, &faults, nullptr),
                   run_system(23, 4, &faults, nullptr));
}

}  // namespace
}  // namespace edgeslice::core
